set title "Optimal k value for k-binomial tree (fixed n, varying m)"
set xlabel "Number of packets (m)"
set ylabel "Optimal k"
set key left top
set grid
set terminal pngcairo size 800,600
set output "fig12a.png"
set datafile missing "?"
plot "fig12a.dat" using 1:2 with linespoints title "15 dest", \
     "fig12a.dat" using 1:3 with linespoints title "31 dest", \
     "fig12a.dat" using 1:4 with linespoints title "47 dest", \
     "fig12a.dat" using 1:5 with linespoints title "63 dest"
