set title "Loss recovery latency: stop-and-wait vs. windowed ARQ"
set xlabel "drop rate"
set ylabel "recovery latency (us)"
set key left top
set grid
set terminal pngcairo size 800,600
set output "chaos_arq.png"
set datafile missing "?"
plot "chaos_arq.dat" using 1:2 with linespoints title "stop-and-wait", \
     "chaos_arq.dat" using 1:3 with linespoints title "windowed"
