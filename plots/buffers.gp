set title "Buffer residency per packet, k = 3 children (t_sq units)"
set xlabel "packets (m)"
set ylabel "residency (t_sq)"
set key left top
set grid
set terminal pngcairo size 800,600
set output "buffers.png"
set datafile missing "?"
plot "buffers.dat" using 1:2 with linespoints title "FCFS", \
     "buffers.dat" using 1:3 with linespoints title "FPFS"
