set title "Optimal-tree steps, FPFS vs FCFS (n = 64)"
set xlabel "Number of packets (m)"
set ylabel "steps at optimal k"
set key left top
set grid
set terminal pngcairo size 800,600
set output "disciplines.png"
set datafile missing "?"
plot "disciplines.dat" using 1:2 with linespoints title "FPFS", \
     "disciplines.dat" using 1:3 with linespoints title "FCFS"
