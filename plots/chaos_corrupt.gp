set title "Mean delivered latency vs corruption rate"
set xlabel "corruption rate"
set ylabel "latency (us)"
set key left top
set grid
set terminal pngcairo size 800,600
set output "chaos_corrupt.png"
set datafile missing "?"
plot "chaos_corrupt.dat" using 1:2 with linespoints title "0.00 drop rate", \
     "chaos_corrupt.dat" using 1:3 with linespoints title "0.05 drop rate"
