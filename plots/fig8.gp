set title "Pipelined packet completions (binomial, 7 dest, 3 packets)"
set xlabel "packet"
set ylabel "completion step"
set key left top
set grid
set terminal pngcairo size 800,600
set output "fig8.png"
set datafile missing "?"
plot "fig8.dat" using 1:2 with linespoints title "completion"
