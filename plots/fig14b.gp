set title "Binomial vs k-binomial latency (fixed m, varying n)"
set xlabel "Multicast set size (n)"
set ylabel "latency (us)"
set key left top
set grid
set terminal pngcairo size 800,600
set output "fig14b.png"
set datafile missing "?"
plot "fig14b.dat" using 1:2 with linespoints title "8 pkts bin", \
     "fig14b.dat" using 1:3 with linespoints title "8 pkts kbin", \
     "fig14b.dat" using 1:4 with linespoints title "2 pkts bin", \
     "fig14b.dat" using 1:5 with linespoints title "2 pkts kbin"
