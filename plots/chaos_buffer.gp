set title "Mean delivered latency vs NI buffer capacity"
set xlabel "NI buffer capacity (packets)"
set ylabel "latency (us)"
set key left top
set grid
set terminal pngcairo size 800,600
set output "chaos_buffer.png"
set datafile missing "?"
plot "chaos_buffer.dat" using 1:2 with linespoints title "4 packets", \
     "chaos_buffer.dat" using 1:3 with linespoints title "8 packets"
