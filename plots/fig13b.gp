set title "Multicast latency using k-binomial tree (fixed m, varying n)"
set xlabel "Multicast set size (n)"
set ylabel "latency (us)"
set key left top
set grid
set terminal pngcairo size 800,600
set output "fig13b.png"
set datafile missing "?"
plot "fig13b.dat" using 1:2 with linespoints title "8 pkts", \
     "fig13b.dat" using 1:3 with linespoints title "4 pkts", \
     "fig13b.dat" using 1:4 with linespoints title "2 pkts", \
     "fig13b.dat" using 1:5 with linespoints title "1 pkt"
