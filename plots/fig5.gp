set title "Binomial vs linear tree, 3 packets to 3 destinations"
set xlabel "tree"
set ylabel "steps"
set key left top
set grid
set terminal pngcairo size 800,600
set output "fig5.png"
set datafile missing "?"
plot "fig5.dat" using 1:2 with linespoints title "binomial", \
     "fig5.dat" using 1:3 with linespoints title "linear"
