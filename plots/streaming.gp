set title "Frame staleness under churn, load, and backpressure"
set xlabel "offered load (x nominal service)"
set ylabel "mean staleness (us)"
set key left top
set grid
set terminal pngcairo size 800,600
set output "streaming.png"
set datafile missing "?"
plot "streaming.dat" using 1:2 with linespoints title "churn=0 buf=1", \
     "streaming.dat" using 1:3 with linespoints title "churn=0 buf=4", \
     "streaming.dat" using 1:4 with linespoints title "churn=0 buf=16", \
     "streaming.dat" using 1:5 with linespoints title "churn=4 buf=1", \
     "streaming.dat" using 1:6 with linespoints title "churn=4 buf=4", \
     "streaming.dat" using 1:7 with linespoints title "churn=4 buf=16", \
     "streaming.dat" using 1:8 with linespoints title "churn=8 buf=1", \
     "streaming.dat" using 1:9 with linespoints title "churn=8 buf=4", \
     "streaming.dat" using 1:10 with linespoints title "churn=8 buf=16"
