set title "Binomial vs k-binomial latency (fixed n, varying m)"
set xlabel "Number of packets (m)"
set ylabel "latency (us)"
set key left top
set grid
set terminal pngcairo size 800,600
set output "fig14a.png"
set datafile missing "?"
plot "fig14a.dat" using 1:2 with linespoints title "47 dest bin", \
     "fig14a.dat" using 1:3 with linespoints title "47 dest kbin", \
     "fig14a.dat" using 1:4 with linespoints title "15 dest bin", \
     "fig14a.dat" using 1:5 with linespoints title "15 dest kbin"
