set title "p99 tenant completion: FIFO vs contention-aware admission"
set xlabel "concurrent jobs"
set ylabel "p99 completion (us)"
set key left top
set grid
set terminal pngcairo size 800,600
set output "multi_tenant.png"
set datafile missing "?"
plot "multi_tenant.dat" using 1:2 with linespoints title "fifo ia25 g8", \
     "multi_tenant.dat" using 1:3 with linespoints title "fifo ia25 g16", \
     "multi_tenant.dat" using 1:4 with linespoints title "fifo ia100 g8", \
     "multi_tenant.dat" using 1:5 with linespoints title "fifo ia100 g16", \
     "multi_tenant.dat" using 1:6 with linespoints title "contention-aware ia25 g8", \
     "multi_tenant.dat" using 1:7 with linespoints title "contention-aware ia25 g16", \
     "multi_tenant.dat" using 1:8 with linespoints title "contention-aware ia100 g8", \
     "multi_tenant.dat" using 1:9 with linespoints title "contention-aware ia100 g16"
