set title "Conventional vs smart NI (binomial, 3 dest, 1 packet)"
set xlabel "NI architecture"
set ylabel "latency (us)"
set key left top
set grid
set terminal pngcairo size 800,600
set output "fig4.png"
set datafile missing "?"
plot "fig4.dat" using 1:2 with linespoints title "conventional", \
     "fig4.dat" using 1:3 with linespoints title "smart"
