set title "Optimal k value for k-binomial tree (fixed m, varying n)"
set xlabel "Multicast set size (n)"
set ylabel "Optimal k"
set key left top
set grid
set terminal pngcairo size 800,600
set output "fig12b.png"
set datafile missing "?"
plot "fig12b.dat" using 1:2 with linespoints title "1 pkt", \
     "fig12b.dat" using 1:3 with linespoints title "2 pkts", \
     "fig12b.dat" using 1:4 with linespoints title "4 pkts", \
     "fig12b.dat" using 1:5 with linespoints title "8 pkts"
