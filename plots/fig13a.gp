set title "Multicast latency using k-binomial tree (fixed n, varying m)"
set xlabel "Number of packets (m)"
set ylabel "latency (us)"
set key left top
set grid
set terminal pngcairo size 800,600
set output "fig13a.png"
set datafile missing "?"
plot "fig13a.dat" using 1:2 with linespoints title "15 dest", \
     "fig13a.dat" using 1:3 with linespoints title "31 dest", \
     "fig13a.dat" using 1:4 with linespoints title "47 dest", \
     "fig13a.dat" using 1:5 with linespoints title "63 dest"
