set title "Mean delivered latency vs link-outage window"
set xlabel "outage window (us)"
set ylabel "latency (us)"
set key left top
set grid
set terminal pngcairo size 800,600
set output "chaos_outage.png"
set datafile missing "?"
plot "chaos_outage.dat" using 1:2 with linespoints title "1 links down", \
     "chaos_outage.dat" using 1:3 with linespoints title "2 links down", \
     "chaos_outage.dat" using 1:4 with linespoints title "4 links down"
