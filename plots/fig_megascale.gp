set title "Mega-scale fat-tree optimal-k multicast (m = 16)"
set xlabel "hosts"
set ylabel "Mevents/s | setup s | setup MiB"
set key left top
set grid
set terminal pngcairo size 800,600
set output "fig_megascale.png"
set datafile missing "?"
plot "fig_megascale.dat" using 1:2 with linespoints title "sim Mevents/s", \
     "fig_megascale.dat" using 1:3 with linespoints title "setup seconds", \
     "fig_megascale.dat" using 1:4 with linespoints title "setup peak MiB"
