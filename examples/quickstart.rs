//! Quickstart: multicast a packetized message with the optimal k-binomial
//! tree on the paper's 64-node irregular network, and compare against the
//! conventional binomial tree.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use optimcast::prelude::*;

fn main() {
    // The paper's evaluation platform: 64 processors on 16 eight-port
    // switches, random interconnect, up*/down* routing.
    let net = IrregularNetwork::generate(IrregularConfig::default(), 2024);
    println!("network : {}", net.describe());

    // The Chain Concatenated Ordering is the base ordering on which
    // contention-free(-ish) trees are built.
    let ordering = cco(&net);

    // Multicast a 1 KiB message from host 0 to 31 destinations.
    let params = SystemParams::paper_1997();
    let message_bytes = 1024;
    let m = params.packets_for(message_bytes);
    let source = HostId(0);
    let dests: Vec<HostId> = (1..32).map(HostId).collect();
    let chain = ordering.arrange(source, &dests);
    let n = chain.len() as u32;
    println!(
        "message : {message_bytes} B = {m} packets of {} B",
        params.packet_bytes
    );
    println!(
        "set     : {} participants (1 source + {} dests)\n",
        n,
        n - 1
    );

    // Theorem 3: the optimal child cap for (n, m).
    let opt = optimal_k(u64::from(n), m);
    println!(
        "optimal k = {} (predicted {} steps = t1 + (m-1)k)",
        opt.k, opt.steps
    );

    // Build both trees on the same ordering and simulate.
    for (name, tree) in [
        ("binomial ", binomial_tree(n)),
        ("k-binomial", kbinomial_tree(n, opt.k)),
    ] {
        let sched = fpfs_schedule(&tree, m);
        let analytic = smart_latency_us(&sched, &params);
        let out = run_multicast(&net, &tree, &chain, m, &params, RunConfig::default()).unwrap();
        println!(
            "{name}: simulated {:7.2} us  (analytic contention-free {:7.2} us, \
             {} steps, {} blocked sends)",
            out.latency_us,
            analytic,
            sched.total_steps(),
            out.blocked_sends
        );
    }
}
