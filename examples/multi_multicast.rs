//! Multiple simultaneous multicasts sharing the 64-node irregular network —
//! the node-contention problem of the authors' companion paper
//! (Kesavan & Panda, ICPP'96). Shows how concurrent jobs slow each other
//! through shared NIs and channels, and how much tree choice still matters.
//!
//! ```text
//! cargo run --release --example multi_multicast [JOBS]
//! ```

use optimcast::netsim::{MulticastJob, SimRun, WorkloadConfig};
use optimcast::prelude::*;
use optimcast_rng::{ChaCha8Rng, SliceRandom};

fn main() {
    let jobs: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("JOBS must be a number"))
        .unwrap_or(4);

    let params = SystemParams::paper_1997();
    let net = IrregularNetwork::generate(IrregularConfig::default(), 99);
    let ordering = cco(&net);
    let m = 8;
    let dests = 31;

    // Each job: random source + 31 destinations, all drawn from the same 64
    // hosts, so jobs overlap heavily.
    let rng = ChaCha8Rng::seed_from_u64(7);
    let make_jobs = |rng: &mut ChaCha8Rng, policy_k: Option<u32>| -> Vec<MulticastJob> {
        (0..jobs)
            .map(|_| {
                let mut hosts: Vec<HostId> = (0..64).map(HostId).collect();
                hosts.shuffle(rng);
                let chain = ordering.arrange(hosts[0], &hosts[1..=dests]);
                let n = chain.len() as u32;
                let k = policy_k.unwrap_or_else(|| optimal_k(u64::from(n), m).k);
                MulticastJob::fpfs(kbinomial_tree(n, k), chain, m)
            })
            .collect()
    };

    println!(
        "{jobs} concurrent multicasts, {} dests each, {m} packets, shared 64-host network\n",
        dests
    );
    for (name, k) in [
        ("optimal k-binomial", None),
        ("binomial baseline ", Some(5)),
    ] {
        let mut rng = rng.clone();
        let job_list = make_jobs(&mut rng, k);
        // Solo reference: each job run alone.
        let solo: Vec<f64> = job_list
            .iter()
            .map(|j| {
                SimRun::new(
                    &net,
                    std::slice::from_ref(j),
                    &params,
                    WorkloadConfig::default(),
                )
                .run()
                .unwrap()
                .jobs[0]
                    .latency_us
            })
            .collect();
        let wl = SimRun::new(&net, &job_list, &params, WorkloadConfig::default())
            .run()
            .unwrap();
        let avg_solo = solo.iter().sum::<f64>() / solo.len() as f64;
        let avg_conc = wl.jobs.iter().map(|o| o.latency_us).sum::<f64>() / wl.jobs.len() as f64;
        println!(
            "{name}: solo avg {avg_solo:8.2} us -> concurrent avg {avg_conc:8.2} us \
             (x{:.2} slowdown), makespan {:.2} us, {:.1} us total stall",
            avg_conc / avg_solo,
            wl.makespan_us,
            wl.channel_wait_us
        );
    }
    println!("\nNode and channel contention compound: trees that finish faster also");
    println!("vacate shared NIs sooner, so the k-binomial advantage persists under load.");
}
