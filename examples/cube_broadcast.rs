//! Extension (paper §4.3.2 / §7): k-binomial broadcast on regular k-ary
//! n-cubes using the dimension-ordered chain, where the construction is
//! provably contention-free — the simulator reports zero blocked sends.
//!
//! ```text
//! cargo run --release --example cube_broadcast
//! ```

use optimcast::prelude::*;

fn broadcast(net: &CubeNetwork, m: u32, policy_k: Option<u32>) -> (f64, u64, u32) {
    let params = SystemParams::paper_1997();
    let n = net.num_hosts();
    let ordering = dimension_ordered(net);
    let dests: Vec<HostId> = (1..n).map(HostId).collect();
    let chain = ordering.arrange(HostId(0), &dests);
    let k = policy_k.unwrap_or_else(|| optimal_k(u64::from(n), m).k);
    let tree = kbinomial_tree(n, k);
    let out = run_multicast(net, &tree, &chain, m, &params, RunConfig::default()).unwrap();
    (out.latency_us, out.blocked_sends, k)
}

fn main() {
    println!("broadcast on k-ary n-cubes, dimension-ordered chain, FPFS smart NI\n");
    for (arity, dims) in [(2u32, 6u32), (4, 3), (8, 2)] {
        let net = CubeNetwork::new(arity, dims);
        println!("== {}", net.describe());
        println!(
            "{:>8} {:>10} {:>12} {:>12} {:>9}",
            "packets", "optimal k", "kbin (us)", "bin (us)", "blocked"
        );
        for m in [1u32, 2, 4, 8, 16, 32] {
            let (kbin, blocked_k, k) = broadcast(&net, m, None);
            let bin_k = optimcast::core::coverage::ceil_log2(u64::from(net.num_hosts()));
            let (bin, blocked_b, _) = broadcast(&net, m, Some(bin_k));
            println!(
                "{m:>8} {k:>10} {kbin:>12.2} {bin:>12.2} {:>4}/{:<4}",
                blocked_k, blocked_b
            );
        }
        println!();
    }
    println!("Zero blocked sends on hypercubes: the dimension-ordered chain");
    println!("construction is depth contention-free, as the paper asserts.");
}
