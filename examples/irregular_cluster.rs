//! The paper's headline experiment, one configuration at a time: sweep the
//! message length on the 64-node irregular cluster and watch the optimal
//! k-binomial tree pull away from the binomial baseline (Fig. 14(a)).
//!
//! ```text
//! cargo run --release --example irregular_cluster [DESTS]
//! ```

use optimcast::experiments::{avg_latency, m_axis, EvalConfig, TreePolicy};
use optimcast::prelude::*;

fn main() {
    let dests: u32 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("DESTS must be a number"))
        .unwrap_or(47);
    assert!(
        (1..=63).contains(&dests),
        "DESTS must be in 1..=63 on the 64-host network"
    );

    let cfg = EvalConfig {
        topologies: 4,
        dest_sets: 10,
        ..EvalConfig::paper()
    };
    println!(
        "multicast to {dests} destinations, averaged over {} topologies x {} sets",
        cfg.topologies, cfg.dest_sets
    );
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>8}",
        "packets", "optimal k", "bin (us)", "kbin (us)", "speedup"
    );
    for m in m_axis() {
        let k = optimal_k(u64::from(dests) + 1, m).k;
        let bin = avg_latency(&cfg, TreePolicy::Binomial, dests, m, RunConfig::default());
        let kbin = avg_latency(
            &cfg,
            TreePolicy::OptimalKBinomial,
            dests,
            m,
            RunConfig::default(),
        );
        println!(
            "{m:>8} {k:>10} {bin:>12.2} {kbin:>12.2} {:>7.2}x",
            bin / kbin
        );
    }
    println!("\nThe speedup approaches ~2x for long messages — the paper's result.");
}
