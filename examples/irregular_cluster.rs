//! The paper's headline experiment, one configuration at a time: sweep the
//! message length on the 64-node irregular cluster and watch the optimal
//! k-binomial tree pull away from the binomial baseline (Fig. 14(a)).
//!
//! ```text
//! cargo run --release --example irregular_cluster [DESTS]
//! ```

use optimcast::experiments::{m_axis, PointSpec};
use optimcast::prelude::*;

fn main() {
    let dests: u32 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("DESTS must be a number"))
        .unwrap_or(47);
    assert!(
        (1..=63).contains(&dests),
        "DESTS must be in 1..=63 on the 64-host network"
    );

    let sweep = SweepBuilder::paper()
        .topologies(4)
        .dest_sets(10)
        .parallelism_auto()
        .build()
        .expect("preset configuration is valid");
    let cfg = sweep.config();
    println!(
        "multicast to {dests} destinations, averaged over {} topologies x {} sets ({} worker(s))",
        cfg.topologies(),
        cfg.dest_sets(),
        cfg.threads()
    );
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>8}",
        "packets", "optimal k", "bin (us)", "kbin (us)", "speedup"
    );
    // One engine pass over the whole (policy × m) grid; the memoized
    // topologies and trees are shared across every cell.
    let specs: Vec<PointSpec> = m_axis()
        .into_iter()
        .flat_map(|m| {
            [
                PointSpec::new(TreePolicy::Binomial, dests, m),
                PointSpec::new(TreePolicy::OptimalKBinomial, dests, m),
            ]
        })
        .collect();
    let means = sweep.grid(&specs).expect("points fit the 64-host network");
    for (m, pair) in m_axis().into_iter().zip(means.chunks_exact(2)) {
        let k = optimal_k(u64::from(dests) + 1, m).k;
        let (bin, kbin) = (pair[0], pair[1]);
        println!(
            "{m:>8} {k:>10} {bin:>12.2} {kbin:>12.2} {:>7.2}x",
            bin / kbin
        );
    }
    println!("\nThe speedup approaches ~2x for long messages — the paper's result.");
}
