//! Chaos engineering for multicast: deterministic fault injection, the
//! ACK/NACK reliability layer, and k-binomial tree self-repair.
//!
//! Three escalating scenarios on the paper's 64-host platform:
//! 1. packet loss alone — recovered transparently by retransmission;
//! 2. a crashed intermediate — its subtree is unreachable, reported as a
//!    typed `SimError::DeliveryFailed` (never a hang);
//! 3. repairing the tree around the crash and re-running over survivors.
//!
//! Run with: `cargo run --example chaos_multicast`

use optimcast::prelude::*;
use std::sync::Arc;

fn main() {
    let net = IrregularNetwork::generate(IrregularConfig::default(), 21);
    let params = SystemParams::paper_1997();
    let m = 8;
    let chain: Vec<HostId> = (0..64).map(HostId).collect();
    let opt = optimal_k(64, m);
    let tree = Arc::new(kbinomial_tree(64, opt.k));

    // 1. Loss alone: every transmission is dropped with 5% probability
    // (decided by a PRF over the packet's identity, so the run is exactly
    // reproducible), and stop-and-wait retransmission recovers all of it.
    let mut plan = FaultPlan::new(0xC0FFEE);
    plan.drop_rate = 0.05;
    let (out, counters) = run_multicast_with_faults(
        &net,
        tree.clone(),
        &chain,
        m,
        &params,
        RunConfig::default(),
        &plan,
    )
    .expect("drops alone are fully recovered");
    println!(
        "5% drop: latency {:.1} us | {} drops, {} retransmits, {:.1} us spent waiting on ACKs",
        out.latency_us, counters.packets_dropped, counters.retransmits, counters.recovery_wait_us
    );

    // 2. Crash an intermediate at time zero: its whole subtree is
    // unreachable, and the run terminates with a typed failure listing it.
    plan.crashes.push(HostCrash {
        host: HostId(13),
        at_us: 0.0,
    });
    match run_multicast_with_faults(
        &net,
        tree.clone(),
        &chain,
        m,
        &params,
        RunConfig::default(),
        &plan,
    ) {
        Err(SimError::DeliveryFailed {
            unreached,
            counters,
        }) => println!(
            "host 13 crashed: {} destination(s) unreached, {} copies abandoned",
            unreached.len(),
            counters.deliveries_abandoned
        ),
        other => panic!("expected DeliveryFailed, got {other:?}"),
    }

    // 3. Repair: re-attach the orphaned subtrees to surviving ancestors
    // (preserving the <= k fan-out bound), rebind the survivors, and rerun
    // under the same lossy plan — the crashed host simply no longer
    // participates.
    let repair = tree.repair(&[Rank(13)]).expect("rank 13 is not the source");
    println!(
        "repair: {} orphaned subtree(s) re-attached, fan-out bound {} preserved",
        repair.reattached.len(),
        repair.tree.max_degree()
    );
    let sched = fpfs_schedule(&repair.tree, m);
    println!(
        "analytic degraded estimate at 5% drop: {:.1} us (fault-free {:.1} us)",
        degraded_smart_latency_us(&sched, &params, plan.drop_rate, plan.ack_timeout_us),
        smart_latency_us(&sched, &params)
    );
    let binding: Vec<HostId> = repair
        .new_to_old
        .iter()
        .map(|&r| chain[r.index()])
        .collect();
    let survivors = binding.len();
    let (out, counters) = run_multicast_with_faults(
        &net,
        Arc::new(repair.tree),
        &binding,
        m,
        &params,
        RunConfig::default(),
        &plan,
    )
    .expect("every survivor is reachable after repair");
    println!(
        "repaired: latency {:.1} us over {survivors} survivors ({} retransmits)",
        out.latency_us, counters.retransmits
    );
}
