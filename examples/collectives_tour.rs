//! Tour of the collective operations built on the paper's machinery
//! (its §7 future work): broadcast, scatter/gather, all-gather, reduce,
//! and barrier on the 64-node irregular cluster.
//!
//! ```text
//! cargo run --release --example collectives_tour
//! ```

use optimcast::collectives::{
    allgather_recursive_doubling_us, allgather_ring_us, barrier_us, broadcast,
    broadcast_latency_us, gather_schedule, optimal_reduce_k, reduce_latency_us, scatter_schedule,
    OrderPolicy,
};
use optimcast::core::param_model::ParamModel;
use optimcast::prelude::*;

fn main() {
    let params = SystemParams::paper_1997();
    let n = 64u32;
    let m = params.packets_for(512); // 8 packets per block/message

    println!("collectives on {n} hosts, {m}-packet blocks, paper-1997 parameters\n");

    // Broadcast: the paper's multicast with every host as destination.
    let net = IrregularNetwork::generate(IrregularConfig::default(), 64);
    let ordering = cco(&net);
    let out = broadcast(&net, &ordering, HostId(0), m, &params, RunConfig::default());
    println!(
        "broadcast : simulated {:8.2} us (contention-free floor {:.2} us, k = {})",
        out.latency_us,
        broadcast_latency_us(n, m, &params),
        optimal_k(u64::from(n), m).k
    );

    // Scatter and gather over the optimal multicast tree vs the chain.
    for (name, tree) in [
        ("kbin tree", kbinomial_tree(n, optimal_k(u64::from(n), m).k)),
        ("chain    ", linear_tree(n)),
    ] {
        let s = scatter_schedule(&tree, m, OrderPolicy::DeepestFirst);
        let g = gather_schedule(&tree, m, OrderPolicy::DeepestFirst);
        println!(
            "scatter   : {name} {:5} steps (source bound {}), gather mirrors at {:5} steps",
            s.total_steps(),
            s.source_bound(),
            g.total_steps()
        );
    }
    println!("            (scatter inverts the multicast preference: the chain wins)");

    // All-gather: ring vs recursive doubling under the step model and with
    // wire latency.
    let step = ParamModel::step_model(&params);
    let mut lat = step;
    lat.latency = 10.0;
    println!(
        "all-gather: ring {:9.1} us vs recursive doubling {:9.1} us   (step model: tie)",
        allgather_ring_us(n, m, &step),
        allgather_recursive_doubling_us(n, m, &step)
    );
    println!(
        "            ring {:9.1} us vs recursive doubling {:9.1} us   (with 10 us wire latency)",
        allgather_ring_us(n, m, &lat),
        allgather_recursive_doubling_us(n, m, &lat)
    );

    // Reduce: mirror of multicast; optimal k carries over.
    let gamma = 0.5; // us per packet combine
    let rk = optimal_reduce_k(n, m, gamma);
    println!(
        "reduce    : optimal k = {} (same as multicast), latency {:.2} us at gamma = {gamma}",
        rk.k,
        reduce_latency_us(n, m, rk.k, gamma, &params)
    );

    // Barrier.
    println!(
        "barrier   : {:.1} us (dissemination, {} rounds)",
        barrier_us(n, &params),
        6
    );
}
