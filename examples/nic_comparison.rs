//! Compares the four NI designs of the paper's §2–§3 on one workload:
//! conventional host-forwarded multicast vs smart-NI FCFS vs smart-NI FPFS,
//! with buffer occupancy (the §3.3.2 argument) and the analytic Fig. 4
//! formulas.
//!
//! ```text
//! cargo run --release --example nic_comparison
//! ```

use optimcast::core::buffer::BufferAnalysis;
use optimcast::core::schedule::ForwardingDiscipline;
use optimcast::prelude::*;

fn main() {
    let params = SystemParams::paper_1997();
    let net = IrregularNetwork::generate(IrregularConfig::default(), 7);
    let ordering = cco(&net);
    let dests: Vec<HostId> = (1..32).map(HostId).collect();
    let chain = ordering.arrange(HostId(0), &dests);
    let n = chain.len() as u32;
    let m = params.packets_for(512); // 8 packets

    println!("workload: {n} participants, {m} packets, binomial tree, seed 7\n");
    let tree = binomial_tree(n);

    let configs = [
        ("conventional NI", NicKind::Conventional),
        (
            "smart NI, FCFS ",
            NicKind::Smart(ForwardingDiscipline::Fcfs),
        ),
        (
            "smart NI, FPFS ",
            NicKind::Smart(ForwardingDiscipline::Fpfs),
        ),
    ];
    println!(
        "{:>18} {:>12} {:>28}",
        "NI design", "latency", "max forwarding buffer (pkts)"
    );
    for (name, nic) in configs {
        let out = run_multicast(
            &net,
            &tree,
            &chain,
            m,
            &params,
            RunConfig {
                nic,
                ..RunConfig::default()
            },
        )
        .unwrap();
        // Intermediate nodes only: the source NI legitimately stages the
        // whole message; the §3.3.2 comparison is about forwarding buffers.
        let max_buf = out.max_ni_buffer[1..].iter().copied().max().unwrap_or(0);
        println!("{name:>18} {:>9.2} us {max_buf:>28}", out.latency_us);
    }

    // The paper's Fig. 4 closed forms for a 3-destination single packet.
    println!("\nFig. 4 closed forms (3 destinations, 1 packet):");
    let t4 = binomial_tree(4);
    let s4 = fpfs_schedule(&t4, 1);
    println!(
        "  conventional: 2(t_s + t_step + t_r) = {:.1} us",
        conventional_latency_us(&t4, 1, &params)
    );
    println!(
        "  smart       : t_s + 2 t_step + t_r  = {:.1} us",
        smart_latency_us(&s4, &params)
    );

    // §3.3.2 buffer formulas for an intermediate node with k = 3 children.
    println!("\nBuffer residency per packet at a 3-child intermediate node (t_sq units):");
    println!("{:>8} {:>8} {:>8} {:>8}", "m", "FCFS", "FPFS", "ratio");
    for m in [1u32, 4, 8, 16, 32] {
        let a = BufferAnalysis::new(3, m);
        println!(
            "{m:>8} {:>8} {:>8} {:>7.1}x",
            a.fcfs_residency,
            a.fpfs_residency,
            a.residency_ratio()
        );
    }
    println!("\nFPFS buffering is constant in message length; FCFS grows linearly —");
    println!("the paper's case for FPFS as the practical smart-NI implementation.");
}
