//! MPI-style usage through the [`Communicator`] facade: one object, one
//! method per collective, bytes in, microseconds out.
//!
//! ```text
//! cargo run --release --example mpi_style
//! ```

use optimcast::comm::Communicator;
use optimcast::prelude::*;

fn main() {
    // 64-rank "job" on a randomly wired irregular cluster.
    let comm = Communicator::irregular(IrregularConfig::default(), 1234);
    println!("communicator over {}\n", comm.network().describe());

    let root = HostId(0);
    for bytes in [64u64, 1024, 4096] {
        let bcast = comm.bcast(root, bytes);
        let scatter = comm.scatter(root, bytes / 8);
        let gather = comm.gather(root, bytes / 8);
        let reduce = comm.reduce(bytes, 0.5);
        let allgather = comm.allgather(bytes / 8);
        println!("payload {bytes:>5} B:");
        println!(
            "  bcast     {:>9.1} us  ({} blocked sends)",
            bcast.latency_us, bcast.blocked_sends
        );
        println!(
            "  scatter   {:>9.1} us  ({} B per rank)",
            scatter.latency_us,
            bytes / 8
        );
        println!(
            "  gather    {:>9.1} us  (analytic mirror)",
            gather.latency_us
        );
        println!(
            "  reduce    {:>9.1} us  (gamma = 0.5 us/pkt)",
            reduce.latency_us
        );
        println!("  allgather {:>9.1} us", allgather.latency_us);
    }
    let barrier = comm.barrier();
    println!(
        "\nbarrier     {:>9.1} us  ({} dissemination rounds)",
        barrier.latency_us, barrier.steps
    );
}
