//! Determinism guarantees of the parallel sweep engine: thread count must
//! never change results, only wall time.

use optimcast::prelude::*;
use optimcast::sweep::{PointSpec, ToJson};
use proptest::prelude::*;

/// Renders a grid result as Figure JSON, the engine's public output format.
fn grid_figure_json(sweep: &Sweep, specs: &[PointSpec]) -> String {
    let means = sweep.grid(specs).expect("specs fit the network");
    let fig = Figure {
        id: "prop".into(),
        title: "property grid".into(),
        x_label: "point".into(),
        y_label: "latency (us)".into(),
        series: vec![Series {
            label: "grid".into(),
            points: means
                .into_iter()
                .enumerate()
                .map(|(i, y)| (i as f64, y))
                .collect(),
        }],
    };
    fig.to_json().to_string_pretty()
}

proptest! {
    /// The parallel runner at 1, 2, and 8 workers produces byte-identical
    /// figure JSON for random small configurations.
    #[test]
    fn workers_1_2_8_byte_identical(
        topologies in 1u32..=2,
        dest_sets in 1u32..=2,
        base_seed in 0u64..1_000_000,
        dests in 3u32..=63,
        m in 1u32..=8,
        policy_idx in 0usize..4,
    ) {
        let policy = [
            TreePolicy::Linear,
            TreePolicy::Binomial,
            TreePolicy::OptimalKBinomial,
            TreePolicy::FixedK(3),
        ][policy_idx];
        let specs = [
            PointSpec::new(policy, dests, m),
            PointSpec::new(policy, dests.min(15), m + 1),
        ];
        let json_for = |threads: usize| {
            let sweep = SweepBuilder::quick()
                .topologies(topologies)
                .dest_sets(dest_sets)
                .base_seed(base_seed)
                .parallelism(threads)
                .build()
                .expect("small configs are valid");
            grid_figure_json(&sweep, &specs)
        };
        let serial = json_for(1);
        prop_assert_eq!(&serial, &json_for(2), "2 workers diverged");
        prop_assert_eq!(&serial, &json_for(8), "8 workers diverged");
    }
}

proptest! {
    /// The multi-tenant job grid at 1, 2, and 8 workers produces
    /// byte-identical report JSON for random small configurations: job
    /// sampling, staggered arrivals, admission planning, and the per-cell
    /// percentile reductions must all stay schedule-independent.
    #[test]
    fn tenant_grid_workers_1_2_8_byte_identical(
        base_seed in 0u64..1_000_000,
        jobs_hi in 2u32..=4,
        group in 4u32..=12,
        ia_idx in 0usize..3,
    ) {
        let mean_ia = [10.0f64, 40.0, 160.0][ia_idx];
        let json_for = |threads: usize| {
            let sweep = SweepBuilder::quick()
                .base_seed(base_seed)
                .parallelism(threads)
                .build()
                .expect("quick config is valid");
            sweep
                .multi_tenant(&[1, jobs_hi], &[mean_ia], &[group], 2)
                .expect("small tenant grids are valid")
                .to_json()
                .to_string_pretty()
        };
        let serial = json_for(1);
        prop_assert_eq!(&serial, &json_for(2), "2 workers diverged");
        prop_assert_eq!(&serial, &json_for(8), "8 workers diverged");
    }
}

/// A full simulated figure is byte-identical across 1, 2, and 8 workers on
/// the quick methodology.
#[test]
fn full_figure_byte_identical_across_workers() {
    let json_for = |threads: usize| {
        let sweep = SweepBuilder::quick().parallelism(threads).build().unwrap();
        let fig = sweep.figure(FigureId::Fig13b).unwrap();
        fig.to_json().to_string_pretty()
    };
    let serial = json_for(1);
    assert_eq!(serial, json_for(2));
    assert_eq!(serial, json_for(8));
}

/// Memoization shares one tree arena per resolved `(n, k)` across the whole
/// engine — repeated lookups are pointer-equal, not merely value-equal.
#[test]
fn memoized_trees_are_pointer_equal() {
    let sweep = SweepBuilder::quick().build().unwrap();
    let a = sweep.tree(TreePolicy::OptimalKBinomial, 48, 8);
    let b = sweep.tree(TreePolicy::OptimalKBinomial, 48, 8);
    assert!(std::sync::Arc::ptr_eq(&a, &b));
    // A fixed-k request resolving to the same shape shares it too.
    let k = optimal_k(48, 8).k;
    let c = sweep.tree(TreePolicy::FixedK(k), 48, 8);
    assert!(std::sync::Arc::ptr_eq(&a, &c));
    let stats = sweep.cache_stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, 2);
}

/// The memoized topology entries are shared across grid evaluations, so a
/// multi-point sweep generates each topology exactly once.
#[test]
fn topologies_built_once_per_sweep() {
    let sweep = SweepBuilder::quick().parallelism(2).build().unwrap();
    let specs: Vec<PointSpec> = (1..=4)
        .map(|m| PointSpec::new(TreePolicy::OptimalKBinomial, 15, m))
        .collect();
    sweep.grid(&specs).unwrap();
    let stats = sweep.cache_stats();
    // 2 topology builds + at most a handful of distinct (n, k) trees + one
    // sampled chain per (topology, dest-set) pair; all other lookups must be
    // hits.
    assert!(stats.misses <= 2 + 4 + 4, "misses: {}", stats.misses);
    assert!(stats.hits >= 16, "hits: {}", stats.hits);
    // Route tables are interned per (topology, chain, tree shape): the first
    // cell of each distinct combination builds, the rest reuse.
    assert!(
        stats.route_misses > 0,
        "route misses: {}",
        stats.route_misses
    );
    assert!(
        stats.route_hits >= stats.route_misses,
        "route hits: {} misses: {}",
        stats.route_hits,
        stats.route_misses
    );
}

/// The chaos grid is byte-identical across 1 and 8 workers — fault
/// injection (PRF-keyed drop decisions, crash-set draws, tree repair) must
/// not reintroduce scheduling dependence.
#[test]
fn chaos_grid_byte_identical_across_workers() {
    use optimcast::sweep::FaultPlanSpec;
    let json_for = |threads: usize| {
        let sweep = SweepBuilder::quick()
            .fault(FaultPlanSpec {
                seed: 7,
                corrupt_rate: 0.02,
                ..FaultPlanSpec::default()
            })
            .parallelism(threads)
            .build()
            .unwrap();
        sweep
            .chaos(&[0.0, 0.05, 0.1], &[0, 1, 2], 15, 2)
            .unwrap()
            .to_json()
            .to_string_pretty()
    };
    let serial = json_for(1);
    assert_eq!(serial, json_for(8), "8 workers diverged");
}

proptest! {
    /// The streaming grid at 1, 2, and 8 workers produces byte-identical
    /// report JSON for random small configurations: chain sampling, churn
    /// planning, frame-by-frame simulation, and the per-cell reductions
    /// must all stay schedule-independent.
    #[test]
    fn streaming_grid_workers_1_2_8_byte_identical(
        base_seed in 0u64..1_000_000,
        churn in 0u32..=6,
        load_idx in 0usize..3,
        buffer in 0u32..=3,
        dests in 3u32..=15,
    ) {
        let load = [0.5f64, 1.0, 2.0][load_idx];
        let grid = StreamGrid {
            churn_levels: vec![0, churn],
            loads: vec![load],
            buffer_depths: vec![buffer],
            dests,
            frames: 6,
            ..StreamGrid::quick()
        };
        let json_for = |threads: usize| {
            let sweep = SweepBuilder::quick()
                .base_seed(base_seed)
                .parallelism(threads)
                .build()
                .expect("quick config is valid");
            sweep
                .streaming(&grid)
                .expect("small streaming grids are valid")
                .to_json()
                .to_string_pretty()
        };
        let serial = json_for(1);
        prop_assert_eq!(&serial, &json_for(2), "2 workers diverged");
        prop_assert_eq!(&serial, &json_for(8), "8 workers diverged");
    }
}
