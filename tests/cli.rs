//! End-to-end tests of the `optimcast` and `figures` binaries (the
//! interfaces a downstream user drives first).

use std::process::Command;

fn optimcast(args: &[&str]) -> (String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_optimcast"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        out.status.success(),
    )
}

#[test]
fn optimal_subcommand() {
    let (out, ok) = optimcast(&["optimal", "--n", "64", "--m", "8"]);
    assert!(ok);
    assert!(out.contains("optimal k = 2"), "{out}");
    assert!(out.contains("22 steps"), "{out}");
    assert!(out.contains("135.00 us"), "{out}");
}

#[test]
fn tree_subcommand_with_diagram() {
    let (out, ok) = optimcast(&["tree", "--n", "4", "--k", "2", "--m", "3", "--diagram"]);
    assert!(ok);
    // Paper Fig. 5(a) FPFS layout on the binomial tree.
    assert!(out.contains("completes in 6 steps"), "{out}");
    assert!(out.contains("r0 -> r2:"), "{out}");
}

#[test]
fn tree_dot_output() {
    let (out, ok) = optimcast(&["tree", "--n", "8", "--k", "3", "--dot"]);
    assert!(ok);
    assert!(out.contains("digraph multicast"), "{out}");
    assert_eq!(out.matches(" -> ").count(), 7, "{out}");
}

#[test]
fn simulate_subcommand() {
    let (out, ok) = optimcast(&[
        "simulate", "--dests", "7", "--m", "2", "--seed", "3", "--ideal",
    ]);
    assert!(ok);
    assert!(out.contains("latency"), "{out}");
    assert!(out.contains("0 blocked"), "{out}");
}

#[test]
fn simulate_reports_structured_counters() {
    let (out, ok) = optimcast(&["simulate", "--dests", "15", "--m", "4", "--seed", "2"]);
    assert!(ok);
    assert!(out.contains("counters:"), "{out}");
    assert!(out.contains("forwarded"), "{out}");
    assert!(out.contains("recv-unit waits"), "{out}");
    assert!(out.contains("send queue depth"), "{out}");
    assert!(out.contains("events"), "{out}");
    assert!(out.contains("buffer occupancy"), "{out}");
}

#[test]
fn simulate_json_output() {
    let (out, ok) = optimcast(&[
        "simulate", "--dests", "7", "--m", "2", "--seed", "3", "--json",
    ]);
    assert!(ok);
    for key in [
        "\"latency_us\"",
        "\"makespan_us\"",
        "\"optimal_k\"",
        "\"counters\"",
        "\"total_sends\"",
        "\"blocked_sends\"",
        "\"packets_forwarded\"",
        "\"recv_unit_waits\"",
        "\"max_send_queue\"",
        "\"buffer_occupancy\"",
        "\"events\"",
        "\"packets_dropped\"",
        "\"packets_corrupted\"",
        "\"retransmits\"",
        "\"deliveries_abandoned\"",
        "\"faults_triggered\"",
        "\"recovery_wait_us\"",
        "\"repairs\"",
        "\"reissued_packets\"",
        "\"repair_wait_us\"",
        "\"resend_requests\"",
        "\"nack_ranges_sent\"",
        "\"late_acks\"",
        "\"duplicate_acks\"",
        "\"window_stalls_us\"",
        "\"deadline_writeoffs\"",
        "\"unreached\"",
    ] {
        assert!(out.contains(key), "missing {key} in {out}");
    }
    // A fault-free run has an empty write-off list and zero fault counters.
    assert!(out.contains("\"unreached\": []"), "{out}");
    assert!(out.contains("\"packets_dropped\": 0"), "{out}");
    // Valid JSON shape at least at the bracket level.
    assert!(out.trim_start().starts_with('{'), "{out}");
    assert!(out.trim_end().ends_with('}'), "{out}");
}

#[test]
fn simulate_json_surfaces_faults_and_unreached() {
    // Drop faults plus one live-repair crash: the counters and the
    // written-off destination must surface in the JSON document.
    let (out, ok) = optimcast(&[
        "simulate",
        "--dests",
        "15",
        "--m",
        "4",
        "--seed",
        "2",
        "--drop-rate",
        "0.05",
        "--crashes",
        "1",
        "--live-repair",
        "--json",
    ]);
    assert!(ok, "{out}");
    assert!(!out.contains("\"packets_dropped\": 0"), "{out}");
    assert!(!out.contains("\"retransmits\": 0"), "{out}");
    assert!(out.contains("\"unreached\": ["), "{out}");
    assert!(out.contains("\"rank\""), "{out}");
}

#[test]
fn simulate_windowed_arq_surfaces_recovery_counters() {
    // A window > 1 switches the run onto the selective-repeat path over
    // the multi-send-unit NI; the loss must be recovered (empty write-off
    // list) and the recovery must surface in the ARQ counters.
    let (out, ok) = optimcast(&[
        "simulate",
        "--dests",
        "15",
        "--m",
        "4",
        "--seed",
        "2",
        "--drop-rate",
        "0.08",
        "--window",
        "8",
        "--send-units",
        "2",
        "--json",
    ]);
    assert!(ok, "{out}");
    assert!(!out.contains("\"packets_dropped\": 0"), "{out}");
    assert!(!out.contains("\"retransmits\": 0"), "{out}");
    assert!(out.contains("\"resend_requests\""), "{out}");
    assert!(out.contains("\"unreached\": []"), "{out}");
}

#[test]
fn simulate_rejects_windowed_stop_and_wait_mismatch() {
    // Multiple send units under stop-and-wait (window 1) are rejected with
    // a typed NI-model error, not a panic.
    let out = Command::new(env!("CARGO_BIN_EXE_optimcast"))
        .args([
            "simulate",
            "--dests",
            "7",
            "--drop-rate",
            "0.05",
            "--send-units",
            "2",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("invalid NI model"), "{err}");
}

#[test]
fn simulate_rejects_crashing_every_destination() {
    let out = Command::new(env!("CARGO_BIN_EXE_optimcast"))
        .args([
            "simulate",
            "--dests",
            "3",
            "--crashes",
            "4",
            "--live-repair",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--crashes"), "{err}");
}

#[test]
fn simulate_rejects_invalid_workload_gracefully() {
    // More destinations than hosts: the binding names hosts outside the
    // network, which must surface as a clean error, not a panic.
    let out = Command::new(env!("CARGO_BIN_EXE_optimcast"))
        .args([
            "simulate",
            "--hosts",
            "8",
            "--switches",
            "2",
            "--ports",
            "8",
            "--dests",
            "20",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("simulate:"), "{err}");
}

#[test]
fn table_subcommand() {
    let (out, ok) = optimcast(&["table", "--max-n", "8", "--max-m", "4"]);
    assert!(ok);
    // n=8 row: optimal k = 3, 3, 2, 2 for m = 1..4 (k=3 still ties at m=2:
    // t1(8,3)+k = 3+3 = t1(8,2)+2 = 4+2, ties resolve to larger k).
    let row = out
        .lines()
        .find(|l| l.trim_start().starts_with("8 "))
        .unwrap();
    assert!(row.contains("3  3  2  2"), "{row}");
}

#[test]
fn topo_dot_output() {
    let (out, ok) = optimcast(&[
        "topo",
        "--switches",
        "2",
        "--ports",
        "4",
        "--hosts",
        "4",
        "--dot",
    ]);
    assert!(ok);
    assert!(out.starts_with("graph topology"), "{out}");
    assert!(
        out.contains("s0 -- s1") || out.contains("s1 -- s0"),
        "{out}"
    );
}

#[test]
fn figures_quick_analytic_subset() {
    let out = Command::new(env!("CARGO_BIN_EXE_figures"))
        .args(["--quick", "fig5", "fig12a"])
        .output()
        .expect("figures runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("## fig5"), "{text}");
    assert!(text.contains("## fig12a"), "{text}");
    assert!(text.contains("binomial"), "{text}");
}

#[test]
fn figures_chaos_axis_by_name() {
    let out = Command::new(env!("CARGO_BIN_EXE_figures"))
        .args(["--quick", "chaos_outage"])
        .output()
        .expect("figures runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("## chaos_outage"), "{text}");
    assert!(text.contains("links down"), "{text}");
    assert!(
        !text.contains("## fig5"),
        "chaos name should not pull in paper figures: {text}"
    );
}

#[test]
fn figures_threads_flag_is_output_invariant() {
    let run = |threads: &str| {
        let dir = std::env::temp_dir().join(format!("optimcast-figjson-{threads}"));
        let _ = std::fs::remove_dir_all(&dir);
        let out = Command::new(env!("CARGO_BIN_EXE_figures"))
            .args([
                "--quick",
                "--threads",
                threads,
                "--json",
                dir.to_str().unwrap(),
                "fig13a",
            ])
            .output()
            .expect("figures runs");
        assert!(out.status.success());
        std::fs::read_to_string(dir.join("fig13a.json")).expect("sidecar written")
    };
    assert_eq!(run("1"), run("3"), "thread count changed figure bytes");
}

#[test]
fn chaos_arq_threads_flag_is_output_invariant() {
    let run = |threads: &str| {
        let out_path = std::env::temp_dir().join(format!("optimcast-chaos-arq-{threads}.json"));
        let _ = std::fs::remove_file(&out_path);
        let out = Command::new(env!("CARGO_BIN_EXE_optimcast"))
            .args([
                "chaos",
                "--arq",
                "--quick",
                "--seed",
                "7",
                "--dests",
                "15",
                "--m",
                "2",
                "--threads",
                threads,
                "--out",
                out_path.to_str().unwrap(),
            ])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("stop-and-wait"), "{stdout}");
        assert!(stdout.contains("windowed"), "{stdout}");
        std::fs::read_to_string(&out_path).expect("report written")
    };
    let serial = run("1");
    assert_eq!(serial, run("4"), "thread count changed ARQ report bytes");
    assert!(serial.contains("\"id\": \"chaos_arq\""), "{serial}");
    assert!(serial.contains("\"recovery_latency_us\""), "{serial}");
}

#[test]
fn bench_sweep_smoke() {
    let out_path = std::env::temp_dir().join("optimcast-bench-sweep-smoke.json");
    let _ = std::fs::remove_file(&out_path);
    let out = Command::new(env!("CARGO_BIN_EXE_optimcast"))
        .args([
            "bench-sweep",
            "--smoke",
            "--threads",
            "2",
            "--out",
            out_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("identical to serial: true"), "{stdout}");
    let body = std::fs::read_to_string(&out_path).expect("report written");
    for key in [
        "\"cells\"",
        "\"serial_seconds\"",
        "\"parallel_seconds\"",
        "\"serial_cells_per_sec\"",
        "\"parallel_cells_per_sec\"",
        "\"speedup\"",
        "\"cache_hit_rate\"",
        "\"identical\": true",
        "\"figure\"",
    ] {
        assert!(body.contains(key), "missing {key} in {body}");
    }
}

#[test]
fn wire_demo_reaches_parity() {
    let (out, ok) = optimcast(&[
        "wire",
        "--n",
        "6",
        "--m",
        "3",
        "--payload",
        "600",
        "--timeout-ms",
        "15000",
    ]);
    assert!(ok, "{out}");
    // One JSON line per sink, every one at parity with the schedule.
    assert_eq!(out.lines().count(), 5, "{out}");
    for line in out.lines() {
        assert!(line.contains("\"parity\": true"), "{out}");
    }
}

#[test]
fn wire_source_and_sinks_as_separate_processes() {
    // The multi-process mode: two sink processes and one source process
    // reconstruct the same plan from (n, k, m) with no side channel.
    let base_args = ["--n", "3", "--k", "1", "--m", "2", "--port-base", "51234"];
    let sink = |rank: &str| {
        Command::new(env!("CARGO_BIN_EXE_optimcast"))
            .args(["wire", "--role", "sink", "--rank", rank])
            .args(base_args)
            .args(["--timeout-ms", "20000"])
            .spawn()
            .expect("sink spawns")
    };
    let sinks = [sink("1"), sink("2")];
    // Sinks bind synchronously on spawn-ish; give them a beat to be safe.
    std::thread::sleep(std::time::Duration::from_millis(300));
    let source = Command::new(env!("CARGO_BIN_EXE_optimcast"))
        .args(["wire", "--role", "source"])
        .args(base_args)
        .output()
        .expect("source runs");
    assert!(
        source.status.success(),
        "source stderr: {}",
        String::from_utf8_lossy(&source.stderr)
    );
    assert!(String::from_utf8_lossy(&source.stdout).contains("wire source:"));
    for s in sinks {
        let out = s.wait_with_output().expect("sink exits");
        assert!(out.status.success(), "sink failed");
    }
}

#[test]
fn chaos_subcommand_is_deterministic_across_threads() {
    let p1 = std::env::temp_dir().join("optimcast-chaos-t1.json");
    let p2 = std::env::temp_dir().join("optimcast-chaos-t4.json");
    let _ = std::fs::remove_file(&p1);
    let _ = std::fs::remove_file(&p2);
    let run = |threads: &str, out_path: &std::path::Path| {
        let (out, ok) = optimcast(&[
            "chaos",
            "--quick",
            "--seed",
            "7",
            "--threads",
            threads,
            "--out",
            out_path.to_str().unwrap(),
        ]);
        assert!(ok, "{out}");
        out
    };
    let stdout = run("1", &p1);
    assert!(stdout.contains("chaos grid:"), "{stdout}");
    assert!(
        stdout.contains("all-reached invariant holds") || stdout.contains("unreached"),
        "no invariant verdict in {stdout}"
    );
    run("4", &p2);
    // Identical seeds must produce byte-identical chaos JSON at 1 and 4
    // workers — the report deliberately records no thread count.
    let a = std::fs::read(&p1).expect("report written");
    let b = std::fs::read(&p2).expect("report written");
    assert_eq!(a, b, "chaos JSON drifted across thread counts");
    let body = String::from_utf8(a).unwrap();
    for key in [
        "\"id\": \"chaos\"",
        "\"drop_rates\"",
        "\"crash_counts\"",
        "\"all_reached\"",
        "\"cells\"",
        "\"figure\"",
    ] {
        assert!(body.contains(key), "missing {key} in {body}");
    }
    assert!(
        !body.contains("thread"),
        "thread count leaked into the JSON"
    );
}

#[test]
fn stream_threads_flag_is_output_invariant() {
    let run = |threads: &str| {
        let out_path = std::env::temp_dir().join(format!("optimcast-stream-{threads}.json"));
        let _ = std::fs::remove_file(&out_path);
        let out = Command::new(env!("CARGO_BIN_EXE_optimcast"))
            .args([
                "stream",
                "--quick",
                "--seed",
                "7",
                "--dests",
                "11",
                "--frames",
                "6",
                "--threads",
                threads,
                "--out",
                out_path.to_str().unwrap(),
            ])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("droprate"), "{stdout}");
        assert!(stdout.contains("stale(us)"), "{stdout}");
        std::fs::read_to_string(&out_path).expect("report written")
    };
    let serial = run("1");
    assert_eq!(
        serial,
        run("4"),
        "thread count changed streaming report bytes"
    );
    assert!(serial.contains("\"id\": \"streaming\""), "{serial}");
    assert!(serial.contains("\"mean_staleness_us\""), "{serial}");
}
