//! End-to-end tests of the `optimcast` and `figures` binaries (the
//! interfaces a downstream user drives first).

use std::process::Command;

fn optimcast(args: &[&str]) -> (String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_optimcast"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        out.status.success(),
    )
}

#[test]
fn optimal_subcommand() {
    let (out, ok) = optimcast(&["optimal", "--n", "64", "--m", "8"]);
    assert!(ok);
    assert!(out.contains("optimal k = 2"), "{out}");
    assert!(out.contains("22 steps"), "{out}");
    assert!(out.contains("135.00 us"), "{out}");
}

#[test]
fn tree_subcommand_with_diagram() {
    let (out, ok) = optimcast(&["tree", "--n", "4", "--k", "2", "--m", "3", "--diagram"]);
    assert!(ok);
    // Paper Fig. 5(a) FPFS layout on the binomial tree.
    assert!(out.contains("completes in 6 steps"), "{out}");
    assert!(out.contains("r0 -> r2:"), "{out}");
}

#[test]
fn tree_dot_output() {
    let (out, ok) = optimcast(&["tree", "--n", "8", "--k", "3", "--dot"]);
    assert!(ok);
    assert!(out.contains("digraph multicast"), "{out}");
    assert_eq!(out.matches(" -> ").count(), 7, "{out}");
}

#[test]
fn simulate_subcommand() {
    let (out, ok) = optimcast(&[
        "simulate", "--dests", "7", "--m", "2", "--seed", "3", "--ideal",
    ]);
    assert!(ok);
    assert!(out.contains("latency"), "{out}");
    assert!(out.contains("0 blocked"), "{out}");
}

#[test]
fn table_subcommand() {
    let (out, ok) = optimcast(&["table", "--max-n", "8", "--max-m", "4"]);
    assert!(ok);
    // n=8 row: optimal k = 3, 3, 2, 2 for m = 1..4 (k=3 still ties at m=2:
    // t1(8,3)+k = 3+3 = t1(8,2)+2 = 4+2, ties resolve to larger k).
    let row = out.lines().find(|l| l.trim_start().starts_with("8 ")).unwrap();
    assert!(row.contains("3  3  2  2"), "{row}");
}

#[test]
fn topo_dot_output() {
    let (out, ok) = optimcast(&["topo", "--switches", "2", "--ports", "4", "--hosts", "4", "--dot"]);
    assert!(ok);
    assert!(out.starts_with("graph topology"), "{out}");
    assert!(out.contains("s0 -- s1") || out.contains("s1 -- s0"), "{out}");
}

#[test]
fn figures_quick_analytic_subset() {
    let out = Command::new(env!("CARGO_BIN_EXE_figures"))
        .args(["--quick", "fig5", "fig12a"])
        .output()
        .expect("figures runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("## fig5"), "{text}");
    assert!(text.contains("## fig12a"), "{text}");
    assert!(text.contains("binomial"), "{text}");
}
