//! Golden tests pinning the sweep engine's output to the committed
//! `results/*.json` files — byte-for-byte, including float formatting.
//!
//! The analytic figures are cheap and compared on every test run. The
//! simulated figures under the full 10 × 30 paper methodology take minutes,
//! so they are `#[ignore]`d here and exercised by
//! `cargo test --release -- --ignored` (and by regenerating the committed
//! files with `figures --json results`).

use optimcast::prelude::*;
use optimcast::sweep::{Json, ToJson};

fn committed(id: FigureId) -> String {
    let path = format!("{}/results/{id}.json", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

fn regenerate(id: FigureId, threads: usize) -> String {
    let sweep = SweepBuilder::paper()
        .parallelism(threads)
        .build()
        .expect("paper methodology is valid");
    sweep
        .figure(id)
        .expect("committed figures regenerate")
        .to_json()
        .to_string_pretty()
}

/// Analytic figures reproduce their committed JSON byte-for-byte.
#[test]
fn analytic_figures_byte_identical() {
    for id in FigureId::ALL {
        if id.simulated() {
            continue;
        }
        assert_eq!(
            regenerate(id, 1),
            committed(id),
            "{id} drifted from results/{id}.json"
        );
    }
}

/// Every committed results file round-trips through the shared JSON schema
/// (parse → `Figure::from_json` → re-serialize) without losing a byte.
#[test]
fn schema_round_trips_all_committed_results() {
    for id in FigureId::ALL {
        let text = committed(id);
        let value = Json::parse(&text).unwrap_or_else(|e| panic!("{id}: {e}"));
        let fig = Figure::from_json(&value).unwrap_or_else(|e| panic!("{id}: {e}"));
        assert_eq!(fig.id, id.as_str());
        assert!(!fig.series.is_empty(), "{id} has no series");
        assert_eq!(
            fig.to_json().to_string_pretty(),
            text,
            "{id} schema round-trip is lossy"
        );
    }
}

/// Full-methodology simulated figures, serial engine. Expensive; run with
/// `cargo test --release -- --ignored`.
#[test]
#[ignore = "full 10x30 methodology: minutes of simulation"]
fn simulated_figures_byte_identical_serial() {
    for id in [
        FigureId::Fig13a,
        FigureId::Fig13b,
        FigureId::Fig14a,
        FigureId::Fig14b,
    ] {
        assert_eq!(
            regenerate(id, 1),
            committed(id),
            "{id} drifted from results/{id}.json"
        );
    }
}

/// Full-methodology simulated figures on a multi-worker engine match the
/// committed serial goldens byte-for-byte.
#[test]
#[ignore = "full 10x30 methodology: minutes of simulation"]
fn simulated_figures_byte_identical_parallel() {
    for id in [
        FigureId::Fig13a,
        FigureId::Fig13b,
        FigureId::Fig14a,
        FigureId::Fig14b,
    ] {
        assert_eq!(
            regenerate(id, 4),
            committed(id),
            "{id} (4 workers) drifted from results/{id}.json"
        );
    }
}

/// The committed chaos report (`results/chaos.json`) regenerates
/// byte-identically under the full paper methodology. Unlike the simulated
/// figures this is cheap enough to run unconditionally: the chaos grid
/// reuses the memoized topologies and trees across all 30 cells.
#[test]
fn chaos_report_matches_committed_golden() {
    let spec = FaultPlanSpec {
        seed: 1997,
        ..FaultPlanSpec::default()
    };
    let sweep = SweepBuilder::paper()
        .parallelism(4)
        .fault(spec)
        .build()
        .unwrap();
    let report = sweep
        .chaos(&[0.0, 0.01, 0.02, 0.05, 0.1, 0.2], &[0, 1, 2, 4, 8], 31, 4)
        .expect("the committed grid is valid");
    assert!(report.all_reached(), "a committed cell lost destinations");
    let path = format!("{}/results/chaos.json", env!("CARGO_MANIFEST_DIR"));
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    assert_eq!(
        report.to_json().to_string_pretty(),
        committed,
        "chaos drifted from results/chaos.json"
    );
}

/// The committed multi-tenant report (`results/multi_tenant.json`)
/// regenerates byte-identically: the grid `optimcast jobs` writes by
/// default (3 topologies × 5 job-set samples, job counts 1..16, two
/// inter-arrival regimes, two group sizes, both admission policies on
/// identical job sets), run here on 4 workers against the serially
/// generated committed file.
#[test]
fn multi_tenant_report_matches_committed_golden() {
    let sweep = SweepBuilder::paper()
        .topologies(3)
        .dest_sets(5)
        .base_seed(1997)
        .parallelism(4)
        .build()
        .unwrap();
    let report = sweep
        .multi_tenant(&[1, 2, 4, 8, 16], &[25.0, 100.0], &[8, 16], 4)
        .expect("the committed grid is valid");
    let path = format!("{}/results/multi_tenant.json", env!("CARGO_MANIFEST_DIR"));
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    assert_eq!(
        report.to_json().to_string_pretty(),
        committed,
        "multi-tenant grid drifted from results/multi_tenant.json"
    );
}

/// The committed live-repair chaos report (`results/chaos_repair.json`)
/// regenerates byte-identically. This is the grid the CI `repair-smoke`
/// job produces with `optimcast chaos --quick --live-repair`: the quick
/// methodology, crashes landing mid-run at 5 µs, and the simulator
/// repairing the surviving membership live.
#[test]
fn chaos_repair_report_matches_committed_golden() {
    let spec = FaultPlanSpec {
        seed: 1997,
        live_repair: true,
        crash_at_us: 5.0,
        ..FaultPlanSpec::default()
    };
    let sweep = SweepBuilder::quick()
        .parallelism(4)
        .fault(spec)
        .build()
        .unwrap();
    let report = sweep
        .chaos(&[0.0, 0.05, 0.1], &[0, 1, 2], 31, 4)
        .expect("the committed repair grid is valid");
    assert!(
        report.all_reached(),
        "a committed live-repair cell lost surviving destinations"
    );
    let path = format!("{}/results/chaos_repair.json", env!("CARGO_MANIFEST_DIR"));
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    assert_eq!(
        report.to_json().to_string_pretty(),
        committed,
        "live-repair chaos drifted from results/chaos_repair.json"
    );
}

/// The committed streaming report (`results/streaming.json`) regenerates
/// byte-identically. This is the grid the CI `stream-smoke` job produces
/// with `optimcast stream --quick`: the quick methodology's churn × load
/// × buffer grid, run here on 4 workers against the serially generated
/// committed file.
#[test]
fn streaming_report_matches_committed_golden() {
    let sweep = SweepBuilder::quick().parallelism(4).build().unwrap();
    let report = sweep
        .streaming(&StreamGrid::quick())
        .expect("the committed grid is valid");
    let path = format!("{}/results/streaming.json", env!("CARGO_MANIFEST_DIR"));
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    assert_eq!(
        report.to_json().to_string_pretty(),
        committed,
        "streaming grid drifted from results/streaming.json"
    );
}
