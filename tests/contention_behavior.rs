//! Contention behaviour of tree embeddings: where the paper's
//! contention-free constructions hold exactly, where irregular networks
//! force residual contention, and the pipelining-induced nesting effect
//! documented in EXPERIMENTS.md.

use optimcast::analysis::schedule_conflicts;
use optimcast::core::schedule::ForwardingDiscipline;
use optimcast::prelude::*;
use optimcast::topology::ordering;

fn params() -> SystemParams {
    SystemParams::paper_1997()
}

/// Single-packet binomial multicast on the dimension-ordered hypercube
/// chain is depth contention-free (TPDS'94 / paper §4.3.2): the wormhole
/// simulator observes zero blocked sends and matches the analytic latency.
#[test]
fn hypercube_single_packet_contention_free() {
    for dims in [3u32, 4, 5, 6] {
        let net = CubeNetwork::new(2, dims);
        let n = net.num_hosts();
        let chain: Vec<HostId> = (0..n).map(HostId).collect();
        for k in 1..=dims {
            let tree = kbinomial_tree(n, k);
            let out =
                run_multicast(&net, &tree, &chain, 1, &params(), RunConfig::default()).unwrap();
            assert_eq!(out.blocked_sends, 0, "dims={dims} k={k}");
            let analytic = smart_latency_us(&fpfs_schedule(&tree, 1), &params());
            assert!((out.latency_us - analytic).abs() < 1e-6);
            // Static analysis agrees.
            let report = schedule_conflicts(&net, &fpfs_schedule(&tree, 1), &chain);
            assert!(report.is_contention_free(), "dims={dims} k={k}");
        }
    }
}

/// The reproduction finding: *multi-packet pipelining* over the Fig. 11
/// construction creates nested concurrent messages (the root re-contacts
/// its first child while later children's subtrees are active), which the
/// contention-free ordering property (`a ≺ b ≼ c ≺ d`) does not cover.
/// Contention appears even on hypercubes — but its latency cost stays
/// small relative to the analytic prediction.
#[test]
fn pipelining_induces_bounded_nested_contention() {
    let net = CubeNetwork::new(2, 6);
    let chain: Vec<HostId> = (0..64).map(HostId).collect();
    let m = 16;
    let tree = kbinomial_tree(64, 2);
    let out = run_multicast(&net, &tree, &chain, m, &params(), RunConfig::default()).unwrap();
    let analytic = smart_latency_us(&fpfs_schedule(&tree, m), &params());
    // Overhead exists (nested conflicts are real)...
    assert!(
        out.blocked_sends > 0,
        "expected some nested-pipeline blocking"
    );
    // ...but stays within a few percent of the contention-free prediction.
    assert!(
        out.latency_us <= analytic * 1.10,
        "sim {:.1} vs analytic {analytic:.1}",
        out.latency_us
    );
}

/// On irregular networks CCO keeps wormhole slowdown small; a random
/// ordering of the same participants contends more (aggregate over seeds).
#[test]
fn cco_contends_less_than_random_ordering_end_to_end() {
    let mut cco_wait = 0.0;
    let mut rnd_wait = 0.0;
    for seed in 0..6u64 {
        let net = IrregularNetwork::generate(IrregularConfig::default(), seed);
        let m = 8;
        let tree = binomial_tree(64);
        let c = ordering::cco(&net);
        let chain_c = c.arrange(HostId(0), &(1..64).map(HostId).collect::<Vec<_>>());
        let out_c =
            run_multicast(&net, &tree, &chain_c, m, &params(), RunConfig::default()).unwrap();
        cco_wait += out_c.channel_wait_us;
        let r = Ordering::random(64, seed + 4242);
        let chain_r = r.arrange(HostId(0), &(1..64).map(HostId).collect::<Vec<_>>());
        let out_r =
            run_multicast(&net, &tree, &chain_r, m, &params(), RunConfig::default()).unwrap();
        rnd_wait += out_r.channel_wait_us;
    }
    assert!(
        cco_wait < rnd_wait,
        "CCO total wait {cco_wait:.1} should undercut random {rnd_wait:.1}"
    );
}

/// FCFS and FPFS see identical routes; contention hits both, and the
/// wormhole simulator keeps both above their analytic floors.
#[test]
fn both_disciplines_respect_floors_under_contention() {
    let net = IrregularNetwork::generate(IrregularConfig::default(), 9);
    let c = ordering::cco(&net);
    let chain = c.arrange(HostId(5), &(6..38).map(HostId).collect::<Vec<_>>());
    let n = chain.len() as u32;
    let m = 6;
    for disc in [ForwardingDiscipline::Fpfs, ForwardingDiscipline::Fcfs] {
        let tree = kbinomial_tree(n, 3);
        let sched = optimcast::core::schedule::build_schedule(&tree, m, disc);
        let floor = smart_latency_us(&sched, &params());
        let out = run_multicast(
            &net,
            &tree,
            &chain,
            m,
            &params(),
            RunConfig {
                nic: NicKind::Smart(disc),
                ..RunConfig::default()
            },
        )
        .unwrap();
        assert!(
            out.latency_us >= floor - 1e-6,
            "{disc:?}: {} < floor {floor}",
            out.latency_us
        );
    }
}

/// Static schedule conflicts predict simulator blocking: zero static
/// conflicts implies zero blocked sends for single-packet runs.
#[test]
fn static_analysis_predicts_dynamic_blocking_single_packet() {
    for seed in 0..8u64 {
        let net = IrregularNetwork::generate(IrregularConfig::default(), seed);
        let c = ordering::cco(&net);
        let chain = c.arrange(HostId(1), &(2..34).map(HostId).collect::<Vec<_>>());
        let tree = binomial_tree(chain.len() as u32);
        let sched = fpfs_schedule(&tree, 1);
        let report = schedule_conflicts(&net, &sched, &chain);
        let out = run_multicast(&net, &tree, &chain, 1, &params(), RunConfig::default()).unwrap();
        if report.is_contention_free() {
            assert_eq!(out.blocked_sends, 0, "seed {seed}");
        } else {
            assert!(
                out.blocked_sends > 0,
                "seed {seed}: static found {}",
                report.total
            );
        }
    }
}
