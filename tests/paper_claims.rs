//! End-to-end checks of the paper's headline claims on the full evaluation
//! pipeline (reduced sample counts keep test time reasonable; the `figures`
//! binary runs the full 10 × 30 methodology).

use optimcast::experiments::{fig12a, fig12b, fig5, fig8};
use optimcast::prelude::*;

fn sweep() -> Sweep {
    SweepBuilder::paper()
        .topologies(3)
        .dest_sets(5)
        .parallelism(2)
        .build()
        .expect("reduced paper methodology is valid")
}

/// §5.2 / Fig. 14: "the performance of the k-binomial tree is better by a
/// factor of up to 2 when compared to the binomial tree".
#[test]
fn kbinomial_up_to_2x_better_than_binomial() {
    let s = sweep();
    let f = s.improvement_factor(47).unwrap();
    assert!(
        f >= 1.8,
        "expected ~2x max improvement for 47 dests, got {f:.2}x"
    );
    // And the same for the largest multicast set.
    let f63 = s.improvement_factor(63).unwrap();
    assert!(f63 >= 1.8, "63 dests: {f63:.2}x");
}

/// Fig. 14(b): "with increase in number of packets in the message, the
/// performance improvement of k-binomial over binomial increases".
#[test]
fn improvement_grows_with_packet_count() {
    let s = sweep();
    let ratio = |m: u32| {
        s.avg_latency(TreePolicy::Binomial, 47, m, RunConfig::default())
            .unwrap()
            / s.avg_latency(TreePolicy::OptimalKBinomial, 47, m, RunConfig::default())
                .unwrap()
    };
    let r2 = ratio(2);
    let r8 = ratio(8);
    let r32 = ratio(32);
    assert!(r8 >= r2 - 1e-9, "m=8 ratio {r8:.2} < m=2 ratio {r2:.2}");
    assert!(r32 >= r8 - 1e-9, "m=32 ratio {r32:.2} < m=8 ratio {r8:.2}");
    assert!(r2 >= 0.99, "k-binomial should never lose at m=2: {r2:.2}");
}

/// The optimal k-binomial tree also dominates the linear chain (the other
/// end of the k spectrum).
#[test]
fn optimal_tree_dominates_linear_too() {
    let s = sweep();
    for (dests, m) in [(15u32, 4u32), (47, 8), (63, 32)] {
        let lin = s
            .avg_latency(TreePolicy::Linear, dests, m, RunConfig::default())
            .unwrap();
        let opt = s
            .avg_latency(TreePolicy::OptimalKBinomial, dests, m, RunConfig::default())
            .unwrap();
        assert!(
            opt <= lin + 1e-9,
            "dests={dests} m={m}: optimal {opt:.1} > linear {lin:.1}"
        );
    }
}

/// Fig. 13: latency slope flattens once the optimal k has converged (the
/// "increase in multicast latency is less when the optimal k reduces").
#[test]
fn latency_grows_linearly_once_k_converges() {
    let s = sweep();
    // For 63 dests the optimal k is 2 from m = 4 onwards (Fig. 12). The
    // marginal per-packet latency is then constant: 2 steps = 10 us.
    let l8 = s
        .avg_latency(TreePolicy::OptimalKBinomial, 63, 8, RunConfig::default())
        .unwrap();
    let l16 = s
        .avg_latency(TreePolicy::OptimalKBinomial, 63, 16, RunConfig::default())
        .unwrap();
    let l24 = s
        .avg_latency(TreePolicy::OptimalKBinomial, 63, 24, RunConfig::default())
        .unwrap();
    let s1 = (l16 - l8) / 8.0;
    let s2 = (l24 - l16) / 8.0;
    assert!(
        (s1 - s2).abs() < 2.0,
        "slopes should stabilise: {s1:.2} vs {s2:.2} us/pkt"
    );
    assert!(
        (s1 - 10.0).abs() < 3.0,
        "slope should be ~= k*t_step = 10 us/pkt, got {s1:.2}"
    );
}

/// Fig. 5 as data: binomial 6 steps vs linear 5 steps.
#[test]
fn fig5_series() {
    let f = fig5();
    assert_eq!(f.series[0].points[0].1, 6.0);
    assert_eq!(f.series[1].points[0].1, 5.0);
}

/// Fig. 8 as data: completions at steps 3, 6, 9.
#[test]
fn fig8_series() {
    let f = fig8();
    let ys: Vec<f64> = f.series[0].points.iter().map(|p| p.1).collect();
    assert_eq!(ys, vec![3.0, 6.0, 9.0]);
}

/// Fig. 12(a): optimal k falls with m; 15-dest curve reaches 1 first.
#[test]
fn fig12a_crossover_order() {
    let f = fig12a();
    let first_k1 = |label: &str| {
        f.series
            .iter()
            .find(|s| s.label == label)
            .unwrap()
            .points
            .iter()
            .find(|p| p.1 == 1.0)
            .map(|p| p.0)
    };
    let c15 = first_k1("15 dest").expect("15 dest reaches k=1");
    if let Some(c31) = first_k1("31 dest") {
        assert!(c15 < c31);
    }
    assert!(
        first_k1("63 dest").is_none(),
        "63 dest stays above k=1 to m=32"
    );
}

/// Fig. 12(b): for m = 1 the curve is the ceiling log; for m = 4, 8 it
/// settles at 2.
#[test]
fn fig12b_shapes() {
    let f = fig12b();
    let one = f.series.iter().find(|s| s.label == "1 pkt").unwrap();
    for &(x, y) in &one.points {
        assert_eq!(
            y as u32,
            optimcast::core::coverage::ceil_log2(x as u64),
            "n={x}"
        );
    }
    for label in ["4 pkts", "8 pkts"] {
        let s = f.series.iter().find(|s| s.label == label).unwrap();
        assert_eq!(s.points.last().unwrap().1, 2.0, "{label}");
    }
}

/// The simulated latency of every policy is bounded below by its analytic
/// contention-free prediction — averaging over random sets cannot dip under
/// the physics of the model.
#[test]
fn simulated_never_beats_analytic_floor() {
    let s = sweep();
    for policy in [
        TreePolicy::Linear,
        TreePolicy::Binomial,
        TreePolicy::OptimalKBinomial,
    ] {
        for (dests, m) in [(15u32, 2u32), (31, 8)] {
            let avg = s
                .avg_latency(policy, dests, m, RunConfig::default())
                .unwrap();
            let n = dests + 1;
            let tree = policy.tree(n, m);
            let floor = smart_latency_us(&fpfs_schedule(&tree, m), s.config().params());
            assert!(
                avg >= floor - 1e-6,
                "{policy:?} dests={dests} m={m}: avg {avg:.2} < floor {floor:.2}"
            );
        }
    }
}
