//! Integration tests for the extension systems: mesh substrate, POC
//! ordering, the parameterized model, personalized (scatter) simulation,
//! and the multi-multicast workload engine — each exercised end to end
//! across crates.

use optimcast::collectives::{scatter_schedule, OrderPolicy};
use optimcast::core::param_model::{optimal_k_param, param_schedule, ParamModel};
use optimcast::core::schedule::ForwardingDiscipline;
use optimcast::netsim::{MulticastJob, PersonalizedOrder, SimRun, WorkloadConfig};
use optimcast::prelude::*;
use optimcast::topology::mesh::{snake_ordering, MeshNetwork};
use optimcast::topology::ordering::{partial_ordered_chains, poc};

fn params() -> SystemParams {
    SystemParams::paper_1997()
}

/// Multicast over a mesh with the snake chain: single-packet k-binomial
/// trees are contention-free, matching the analytic model exactly.
#[test]
fn mesh_snake_single_packet_contention_free() {
    for (arity, dims) in [(4u32, 2u32), (8, 2), (4, 3)] {
        let net = MeshNetwork::new(arity, dims);
        let n = net.num_hosts();
        let chain =
            snake_ordering(&net).arrange(HostId(0), &(1..n).map(HostId).collect::<Vec<_>>());
        for k in [1u32, 2, 3] {
            let tree = kbinomial_tree(n, k);
            let out =
                run_multicast(&net, &tree, &chain, 1, &params(), RunConfig::default()).unwrap();
            assert_eq!(out.blocked_sends, 0, "{arity}-ary {dims}-mesh k={k}");
            let analytic = smart_latency_us(&fpfs_schedule(&tree, 1), &params());
            assert!((out.latency_us - analytic).abs() < 1e-6);
        }
    }
}

/// Mesh multi-packet multicast keeps the k-binomial advantage (the ICPP'95
/// [2] setting revisited with fixed packet sizes and NI support).
#[test]
fn mesh_kbinomial_beats_binomial_for_long_messages() {
    let net = MeshNetwork::new(8, 2); // 64 processors
    let n = net.num_hosts();
    let chain = snake_ordering(&net).arrange(HostId(0), &(1..n).map(HostId).collect::<Vec<_>>());
    let m = 16;
    let lat = |k: u32| {
        run_multicast(
            &net,
            &kbinomial_tree(n, k),
            &chain,
            m,
            &params(),
            RunConfig::default(),
        )
        .unwrap()
        .latency_us
    };
    let bin = lat(6);
    let kbin = lat(optimal_k(u64::from(n), m).k);
    assert!(
        kbin < bin / 1.5,
        "mesh: kbin {kbin:.1} should beat bin {bin:.1} clearly"
    );
}

/// POC end to end: the concatenated contention-free chains never produce
/// more simulator blocking than the raw CCO ordering, summed over seeds.
#[test]
fn poc_blocking_no_worse_than_cco() {
    let cfg = IrregularConfig {
        switches: 8,
        ports: 6,
        hosts: 24,
    };
    let mut poc_wait = 0.0;
    let mut cco_wait = 0.0;
    for seed in 0..5 {
        let net = IrregularNetwork::generate(cfg, seed);
        let dests: Vec<HostId> = (1..24).map(HostId).collect();
        let tree = kbinomial_tree(24, 2);
        let chain_p = poc(&net).arrange(HostId(0), &dests);
        poc_wait += run_multicast(&net, &tree, &chain_p, 8, &params(), RunConfig::default())
            .unwrap()
            .channel_wait_us;
        let chain_c = cco(&net).arrange(HostId(0), &dests);
        cco_wait += run_multicast(&net, &tree, &chain_c, 8, &params(), RunConfig::default())
            .unwrap()
            .channel_wait_us;
    }
    assert!(
        poc_wait <= cco_wait * 1.5 + 1e-9,
        "POC stall {poc_wait:.1} should be comparable to CCO {cco_wait:.1}"
    );
    assert!(poc_wait.is_finite() && cco_wait.is_finite());
}

/// POC chain structure holds on the paper-size network.
#[test]
fn poc_chains_on_paper_network() {
    let net = IrregularNetwork::generate(IrregularConfig::default(), 0);
    let chains = partial_ordered_chains(&net);
    let total: usize = chains.chains().iter().map(Vec::len).sum();
    assert_eq!(total, 64);
    assert!(!chains.is_empty());
    // At least one chain spans several hosts (CCO clusters work).
    assert!(chains.chains().iter().any(|c| c.len() >= 4));
}

/// The parameterized model agrees with the simulator's overlapped timing:
/// `g = o_s` continuous schedules match `NiTiming::Overlapped` runs on a
/// crossbar for chains (where FIFO and analytic orders coincide).
#[test]
fn param_model_overlapped_matches_simulator_on_chains() {
    let net = IrregularNetwork::generate(
        IrregularConfig {
            switches: 1,
            ports: 16,
            hosts: 16,
        },
        0,
    );
    let p = params();
    let model = ParamModel::overlapped(&p);
    for n in [4u32, 9, 16] {
        for m in [1u32, 3, 6] {
            let tree = linear_tree(n);
            let ps = param_schedule(&tree, m, ForwardingDiscipline::Fpfs, &model);
            let binding: Vec<HostId> = (0..n).map(HostId).collect();
            let out = run_multicast(
                &net,
                &tree,
                &binding,
                m,
                &p,
                RunConfig {
                    timing: NiTiming::Overlapped,
                    contention: ContentionMode::Ideal,
                    ..RunConfig::default()
                },
            )
            .unwrap();
            let expect = ps.latency_us(&p);
            assert!(
                (out.latency_us - expect).abs() < 1e-6,
                "n={n} m={m}: sim {} vs param {expect}",
                out.latency_us
            );
        }
    }
}

/// The generalised optimal-k under the overlapped model is achievable in
/// the simulator: the recommended tree is never slower there than the
/// step-model recommendation.
#[test]
fn overlapped_recommendation_wins_under_overlapped_timing() {
    let net = IrregularNetwork::generate(
        IrregularConfig {
            switches: 1,
            ports: 64,
            hosts: 64,
        },
        0,
    );
    let p = params();
    let run = |k: u32, m: u32| {
        let tree = kbinomial_tree(64, k);
        run_multicast(
            &net,
            &tree,
            &(0..64).map(HostId).collect::<Vec<_>>(),
            m,
            &p,
            RunConfig {
                timing: NiTiming::Overlapped,
                contention: ContentionMode::Ideal,
                ..RunConfig::default()
            },
        )
        .unwrap()
        .latency_us
    };
    for m in [4u32, 8, 16] {
        let k_ov = optimal_k_param(64, m, &ParamModel::overlapped(&p)).k;
        let k_st = optimal_k(64, m).k;
        assert!(
            run(k_ov, m) <= run(k_st, m) + 1e-9,
            "m={m}: overlapped pick k={k_ov} vs step pick k={k_st}"
        );
    }
}

/// Scatter simulation agrees with the analytic scatter schedule through
/// the public cross-crate pipeline (OwnFirst, irregular crossbar).
#[test]
fn scatter_pipeline_cross_validates() {
    let net = IrregularNetwork::generate(
        IrregularConfig {
            switches: 1,
            ports: 24,
            hosts: 24,
        },
        0,
    );
    let p = params();
    let tree = kbinomial_tree(24, 3);
    let sched = scatter_schedule(&tree, 2, OrderPolicy::OwnFirst);
    let binding: Vec<HostId> = (0..24).map(HostId).collect();
    let out = SimRun::new(
        &net,
        &[MulticastJob::scatter(
            tree,
            binding,
            2,
            PersonalizedOrder::OwnFirst,
        )],
        &p,
        WorkloadConfig {
            contention: ContentionMode::Ideal,
            timing: NiTiming::Handshake,
            trace: false,
            ..WorkloadConfig::default()
        },
    )
    .run()
    .unwrap();
    let expect = p.t_s + f64::from(sched.total_steps()) * p.t_step() + p.t_r;
    assert!((out.jobs[0].latency_us - expect).abs() < 1e-6);
}

/// Concurrency scaling: average per-job latency is non-decreasing in the
/// number of co-scheduled multicasts (node contention can only hurt).
#[test]
fn workload_interference_monotone() {
    let net = IrregularNetwork::generate(IrregularConfig::default(), 31);
    let ordering = cco(&net);
    let p = params();
    let mk = |count: usize| -> Vec<MulticastJob> {
        (0..count)
            .map(|i| {
                let src = HostId((i as u32 * 7) % 64);
                let dests: Vec<HostId> =
                    (0..64).map(HostId).filter(|&h| h != src).take(31).collect();
                let chain = ordering.arrange(src, &dests);
                MulticastJob::fpfs(kbinomial_tree(32, 2), chain, 8)
            })
            .collect()
    };
    let mut prev_avg = 0.0;
    for count in [1usize, 2, 4] {
        let wl = SimRun::new(&net, &mk(count), &p, WorkloadConfig::default())
            .run()
            .unwrap();
        let avg = wl.jobs.iter().map(|o| o.latency_us).sum::<f64>() / count as f64;
        assert!(
            avg >= prev_avg - 1e-9,
            "{count} jobs: avg {avg:.1} dropped below {prev_avg:.1}"
        );
        prev_avg = avg;
    }
}

/// Scale: a 256-host irregular network (32 switches x 16 ports) runs the
/// whole pipeline — generation, CCO, optimal tree, simulation — and the
/// simulator still matches the contention-free analytic model.
#[test]
fn scales_to_256_hosts() {
    let cfg = IrregularConfig {
        switches: 32,
        ports: 16,
        hosts: 256,
    };
    let net = IrregularNetwork::generate(cfg, 1);
    assert_eq!(net.num_hosts(), 256);
    let ordering = cco(&net);
    let dests: Vec<HostId> = (1..256).map(HostId).collect();
    let chain = ordering.arrange(HostId(0), &dests);
    let m = 8;
    let k = optimal_k(256, m).k;
    let tree = kbinomial_tree(256, k);
    let ideal = run_multicast(
        &net,
        &tree,
        &chain,
        m,
        &params(),
        RunConfig {
            contention: ContentionMode::Ideal,
            ..RunConfig::default()
        },
    )
    .unwrap();
    let analytic = smart_latency_us(&fpfs_schedule(&tree, m), &params());
    assert!((ideal.latency_us - analytic).abs() < 1e-6);
    let worm = run_multicast(&net, &tree, &chain, m, &params(), RunConfig::default()).unwrap();
    assert!(worm.latency_us >= ideal.latency_us - 1e-9);
    assert!(
        worm.latency_us < analytic * 3.0,
        "contention overhead bounded"
    );
}

/// The FCFS per-message counter works with interleaved messages: two FCFS
/// multicasts relayed by the same intermediate hosts complete correctly
/// (the §3.3.1 bookkeeping concern the paper raises against FCFS).
#[test]
fn fcfs_multi_message_counters() {
    let net = IrregularNetwork::generate(IrregularConfig::default(), 17);
    let tree = kbinomial_tree(32, 3);
    let binding_a: Vec<HostId> = (0..32).map(HostId).collect();
    let binding_b: Vec<HostId> = (0..32).rev().map(HostId).collect();
    let m = 6;
    let mk = |binding: Vec<HostId>| {
        let mut j = MulticastJob::fpfs(tree.clone(), binding, m);
        j.nic = optimcast::netsim::NicKind::Smart(ForwardingDiscipline::Fcfs);
        j
    };
    let wl = SimRun::new(
        &net,
        &[mk(binding_a), mk(binding_b)],
        &params(),
        WorkloadConfig::default(),
    )
    .run()
    .unwrap();
    for (i, out) in wl.jobs.iter().enumerate() {
        for r in 1..32 {
            assert!(out.host_done_us[r] > 0.0, "job {i} rank {r} incomplete");
        }
        // Each job moved exactly (n-1) * m packets despite interleaving.
        assert_eq!(out.total_sends, 31 * u64::from(m), "job {i}");
    }
}

/// Throughput sanity on the big network: the event engine handles a
/// full-machine broadcast workload quickly (guard against superlinear
/// regressions; generous wall-clock bound).
#[test]
fn engine_throughput_sanity() {
    let cfg = IrregularConfig {
        switches: 32,
        ports: 16,
        hosts: 256,
    };
    let net = IrregularNetwork::generate(cfg, 2);
    let ordering = cco(&net);
    let dests: Vec<HostId> = (1..256).map(HostId).collect();
    let chain = ordering.arrange(HostId(0), &dests);
    let tree = kbinomial_tree(256, 2);
    let start = std::time::Instant::now();
    let out = run_multicast(&net, &tree, &chain, 32, &params(), RunConfig::default()).unwrap();
    let wall = start.elapsed();
    assert!(out.events > 0);
    assert!(
        wall.as_secs_f64() < 30.0,
        "256-host m=32 multicast took {wall:?}"
    );
}
