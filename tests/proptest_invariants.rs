//! Property-based tests of the core invariants across randomly drawn
//! configurations (trees, schedules, optimal-k search, orderings, routes).

use optimcast::core::coverage::{ceil_log2, coverage, min_steps};
use optimcast::core::schedule::{build_schedule, ForwardingDiscipline};
use optimcast::prelude::*;
use proptest::prelude::*;

proptest! {
    /// Lemma 1 recurrence holds pointwise for random (s, k).
    #[test]
    fn coverage_satisfies_recurrence(s in 1u32..40, k in 1u32..10) {
        let direct = coverage(s, k);
        let mut sum = 1u128;
        for i in 1..=k.min(s) {
            sum = sum.saturating_add(coverage(s - i, k));
        }
        prop_assert_eq!(direct, sum);
    }

    /// min_steps is the exact inverse of coverage for random (n, k).
    #[test]
    fn min_steps_inverts_coverage(n in 1u64..100_000, k in 1u32..12) {
        let s = min_steps(n, k);
        prop_assert!(coverage(s, k) >= u128::from(n));
        if s > 0 {
            prop_assert!(coverage(s - 1, k) < u128::from(n));
        }
    }

    /// Every constructed k-binomial tree is valid, degree-capped, covers all
    /// ranks exactly once, and completes single-packet multicast in t1.
    #[test]
    fn kbinomial_tree_invariants(n in 1u32..300, k in 1u32..10) {
        let tree = kbinomial_tree(n, k);
        prop_assert!(tree.validate().is_ok());
        prop_assert_eq!(tree.len(), n as usize);
        prop_assert!(tree.max_degree() <= k);
        let sched = fpfs_schedule(&tree, 1);
        prop_assert_eq!(sched.total_steps(), min_steps(u64::from(n), k));
    }

    /// Theorem 2 on random configurations: FPFS completion equals
    /// t1 + (m-1) * bottleneck, bounded by the analytic t1 + (m-1) * k.
    #[test]
    fn theorem2_random(n in 2u32..200, k in 1u32..8, m in 1u32..20) {
        let tree = kbinomial_tree(n, k);
        let t1 = min_steps(u64::from(n), k);
        let sched = fpfs_schedule(&tree, m);
        prop_assert_eq!(
            sched.total_steps(),
            t1 + (m - 1) * tree.max_degree()
        );
        prop_assert!(sched.total_steps() <= t1 + (m - 1) * k);
    }

    /// The optimal-k search returns the true minimum over the interval and
    /// is achieved exactly by the constructed tree.
    #[test]
    fn optimal_k_is_exact(n in 2u64..200, m in 1u32..40) {
        let opt = optimal_k(n, m);
        let hi = ceil_log2(n).max(1);
        prop_assert!(opt.k >= 1 && opt.k <= hi);
        for k in 1..=hi {
            prop_assert!(
                optimcast::core::optimal::total_steps(n, m, k) >= opt.steps
            );
        }
        let tree = kbinomial_tree(n as u32, opt.k);
        prop_assert_eq!(u64::from(fpfs_schedule(&tree, m).total_steps()), opt.steps);
    }

    /// Schedules are well-formed under both disciplines: causal sends, one
    /// send per NI per step, every destination receives each packet once,
    /// and FPFS never finishes later than FCFS.
    #[test]
    fn schedules_wellformed(n in 2u32..80, k in 1u32..7, m in 1u32..10) {
        let tree = kbinomial_tree(n, k);
        let mut totals = Vec::new();
        for disc in [ForwardingDiscipline::Fpfs, ForwardingDiscipline::Fcfs] {
            let s = build_schedule(&tree, m, disc);
            let mut busy = std::collections::HashSet::new();
            for e in s.events() {
                prop_assert!(busy.insert((e.from, e.step)));
                prop_assert!(e.step > s.receive_step(e.from, e.packet));
            }
            prop_assert_eq!(s.events().len(), ((n - 1) * m) as usize);
            totals.push(s.total_steps());
        }
        prop_assert!(totals[0] <= totals[1], "FPFS beat by FCFS");
    }

    /// Ordering::arrange returns the participants exactly, source first,
    /// with the non-source suffix sorted by ordering position.
    #[test]
    fn arrange_is_sound(seed in 0u64..1000, n_dests in 1usize..40) {
        let order = Ordering::random(64, seed);
        let mut hosts: Vec<HostId> = (0..64).map(HostId).collect();
        // Deterministic pseudo-shuffle from the seed.
        let perm = Ordering::random(64, seed ^ 0xABCD);
        hosts.sort_by_key(|&h| perm.position(h));
        let source = hosts[0];
        let dests = &hosts[1..=n_dests];
        let chain = order.arrange(source, dests);
        prop_assert_eq!(chain.len(), n_dests + 1);
        prop_assert_eq!(chain[0], source);
        let mut expected: Vec<HostId> = dests.to_vec();
        expected.push(source);
        expected.sort();
        let mut got = chain.clone();
        got.sort();
        prop_assert_eq!(got, expected);
        // Suffix after any rotation point is position-sorted in cyclic order:
        // check that consecutive non-source pairs wrap at most once.
        let positions: Vec<u32> = chain.iter().map(|&h| order.position(h)).collect();
        let wraps = positions
            .windows(2)
            .filter(|w| w[1] < w[0])
            .count();
        prop_assert!(wraps <= 1, "chain must be one rotation of a sorted list");
    }

    /// Routes on random irregular networks are connected channel walks from
    /// source injection to destination ejection.
    #[test]
    fn irregular_routes_wellformed(seed in 0u64..60, a in 0u32..64, b in 0u32..64) {
        let net = IrregularNetwork::generate(IrregularConfig::default(), seed);
        let route = net.route(HostId(a), HostId(b));
        if a == b {
            prop_assert!(route.is_empty());
        } else {
            let topo = net.topology();
            prop_assert_eq!(route[0], topo.injection_channel(HostId(a)));
            prop_assert_eq!(*route.last().unwrap(), topo.ejection_channel(HostId(b)));
            for w in route.windows(2) {
                let (_, x) = topo.channel_endpoints(w[0]);
                let (y, _) = topo.channel_endpoints(w[1]);
                prop_assert_eq!(x, y);
            }
            // up*/down* bounds path length by 2 + switch count.
            prop_assert!(route.len() <= 2 + 16);
        }
    }

    /// Simulated FPFS latency equals the analytic value on conflict-free
    /// substrates for random (n, k, m) — the pipeline end to end.
    #[test]
    fn sim_matches_analytic_random(n in 2u32..64, k in 1u32..7, m in 1u32..8) {
        let net = IrregularNetwork::generate(
            IrregularConfig { switches: 1, ports: 64, hosts: 64 },
            0,
        );
        let tree = kbinomial_tree(n, k);
        let binding: Vec<HostId> = (0..n).map(HostId).collect();
        let out = run_multicast(
            &net,
            &tree,
            &binding,
            m,
            &SystemParams::paper_1997(),
            RunConfig {
                nic: NicKind::Smart(ForwardingDiscipline::Fpfs),
                contention: ContentionMode::Ideal,
                timing: NiTiming::Handshake,
            },
        ).unwrap();
        let analytic = smart_latency_us(&fpfs_schedule(&tree, m), &SystemParams::paper_1997());
        prop_assert!((out.latency_us - analytic).abs() < 1e-6);
    }
}

proptest! {
    /// Mesh routes are minimal (Manhattan distance) and wellformed for
    /// random mesh shapes and endpoints.
    #[test]
    fn mesh_routes_minimal(arity in 2u32..6, dims in 1u32..4, seed in 0u64..500) {
        use optimcast::topology::mesh::MeshNetwork;
        let net = MeshNetwork::new(arity, dims);
        let n = net.num_hosts();
        let a = HostId((seed % u64::from(n)) as u32);
        let b = HostId(((seed / 7) % u64::from(n)) as u32);
        let route = net.route(a, b);
        if a == b {
            prop_assert!(route.is_empty());
        } else {
            let ca = net.coords(a);
            let cb = net.coords(b);
            let dist: u32 = ca.iter().zip(&cb).map(|(&x, &y)| x.abs_diff(y)).sum();
            prop_assert_eq!(route.len(), dist as usize + 2);
        }
    }

    /// Snake orderings visit mesh neighbours consecutively for random
    /// shapes.
    #[test]
    fn snake_is_hamiltonian_neighbor_path(arity in 2u32..5, dims in 1u32..4) {
        use optimcast::topology::mesh::{snake_ordering, MeshNetwork};
        let net = MeshNetwork::new(arity, dims);
        let o = snake_ordering(&net);
        prop_assert_eq!(o.len(), net.num_hosts() as usize);
        for w in o.hosts().windows(2) {
            let ca = net.coords(w[0]);
            let cb = net.coords(w[1]);
            let dist: u32 = ca.iter().zip(&cb).map(|(&x, &y)| x.abs_diff(y)).sum();
            prop_assert_eq!(dist, 1);
        }
    }

    /// Scatter schedules respect the source bound and deliver everything,
    /// for random trees and policies.
    #[test]
    fn scatter_schedule_invariants(
        n in 2u32..80,
        k in 1u32..6,
        m in 1u32..6,
        deepest in proptest::bool::ANY,
    ) {
        use optimcast::collectives::{scatter_schedule, OrderPolicy};
        let policy = if deepest {
            OrderPolicy::DeepestFirst
        } else {
            OrderPolicy::OwnFirst
        };
        let tree = kbinomial_tree(n, k);
        let s = scatter_schedule(&tree, m, policy);
        prop_assert!(s.total_steps() >= s.source_bound());
        for r in 1..n {
            for p in 0..m {
                prop_assert!(s.arrival(Rank(r), p) >= 1);
            }
        }
    }

    /// Gather schedules are always feasible reversals with equal duration.
    #[test]
    fn gather_reversal_feasible(n in 2u32..50, k in 1u32..5, m in 1u32..4) {
        use optimcast::collectives::{gather_schedule, scatter_schedule, OrderPolicy};
        let tree = kbinomial_tree(n, k);
        let g = gather_schedule(&tree, m, OrderPolicy::DeepestFirst);
        prop_assert!(g.verify(&tree).is_ok());
        prop_assert_eq!(
            g.total_steps(),
            scatter_schedule(&tree, m, OrderPolicy::DeepestFirst).total_steps()
        );
    }

    /// The parameterized model reduces to the integer step model for random
    /// configurations.
    #[test]
    fn param_model_reduction(n in 2u32..100, k in 1u32..6, m in 1u32..8) {
        use optimcast::core::param_model::{param_schedule, ParamModel};
        use optimcast::core::schedule::ForwardingDiscipline;
        let p = SystemParams::paper_1997();
        let model = ParamModel::step_model(&p);
        let tree = kbinomial_tree(n, k);
        let ps = param_schedule(&tree, m, ForwardingDiscipline::Fpfs, &model);
        let is = fpfs_schedule(&tree, m);
        let expect = f64::from(is.total_steps()) * p.t_step();
        prop_assert!((ps.total_time() - expect).abs() < 1e-9);
    }

    /// FCFS optimum is never better than FPFS optimum, for random (n, m).
    #[test]
    fn fcfs_never_better(n in 2u32..100, m in 1u32..24) {
        use optimcast::core::optimal::{optimal_k, optimal_k_fcfs};
        let fc = optimal_k_fcfs(n, m);
        let fp = optimal_k(u64::from(n), m);
        prop_assert!(fc.steps >= fp.steps);
    }

    /// POC chains partition the hosts and each chain is contention-free,
    /// for random small irregular networks.
    #[test]
    fn poc_partition_invariants(seed in 0u64..30) {
        use optimcast::topology::contention::is_contention_free;
        use optimcast::topology::ordering::partial_ordered_chains;
        let net = IrregularNetwork::generate(
            IrregularConfig { switches: 5, ports: 5, hosts: 12 },
            seed,
        );
        let poc = partial_ordered_chains(&net);
        let mut all: Vec<HostId> = poc.chains().iter().flatten().copied().collect();
        prop_assert_eq!(all.len(), 12);
        all.sort();
        all.dedup();
        prop_assert_eq!(all.len(), 12);
        for chain in poc.chains() {
            prop_assert!(is_contention_free(&net, chain));
        }
    }
}
