//! Cross-validation: the discrete-event simulator must agree with the
//! analytic models of `optimcast-core` wherever the paper's assumptions
//! (no channel contention) hold — exactly, not approximately.

use optimcast::core::schedule::ForwardingDiscipline;
use optimcast::prelude::*;

fn params() -> SystemParams {
    SystemParams::paper_1997()
}

fn ideal(nic: NicKind) -> RunConfig {
    RunConfig {
        nic,
        contention: ContentionMode::Ideal,
        timing: NiTiming::Handshake,
    }
}

fn net64(seed: u64) -> IrregularNetwork {
    IrregularNetwork::generate(IrregularConfig::default(), seed)
}

fn binding(n: u32) -> Vec<HostId> {
    (0..n).map(HostId).collect()
}

#[test]
fn fpfs_sim_equals_schedule_on_irregular_networks() {
    let net = net64(17);
    for n in [4u32, 16, 33, 64] {
        for k in [1u32, 2, 3, 6] {
            for m in [1u32, 4, 9] {
                let tree = kbinomial_tree(n, k);
                let sched = fpfs_schedule(&tree, m);
                let out = run_multicast(
                    &net,
                    &tree,
                    &binding(n),
                    m,
                    &params(),
                    ideal(NicKind::Smart(ForwardingDiscipline::Fpfs)),
                )
                .unwrap();
                let analytic = smart_latency_us(&sched, &params());
                assert!(
                    (out.latency_us - analytic).abs() < 1e-6,
                    "n={n} k={k} m={m}: sim {} analytic {analytic}",
                    out.latency_us
                );
                // Every destination's NI timeline matches the schedule.
                for r in 1..n {
                    let expect = params().t_s
                        + f64::from(sched.message_completion(Rank(r))) * params().t_step();
                    assert!(
                        (out.ni_last_recv_us[r as usize] - expect).abs() < 1e-6,
                        "n={n} k={k} m={m} rank {r}"
                    );
                }
            }
        }
    }
}

#[test]
fn fcfs_sim_equals_schedule_on_irregular_networks() {
    let net = net64(18);
    for n in [5u32, 16, 48] {
        for m in [1u32, 3, 8] {
            let tree = binomial_tree(n);
            let sched = fcfs_schedule(&tree, m);
            let out = run_multicast(
                &net,
                &tree,
                &binding(n),
                m,
                &params(),
                ideal(NicKind::Smart(ForwardingDiscipline::Fcfs)),
            )
            .unwrap();
            assert!(
                (out.latency_us - smart_latency_us(&sched, &params())).abs() < 1e-6,
                "n={n} m={m}"
            );
        }
    }
}

#[test]
fn conventional_sim_equals_closed_form() {
    let net = net64(19);
    for n in [4u32, 8, 20, 64] {
        for m in [1u32, 2, 6] {
            for tree in [binomial_tree(n), linear_tree(n), kbinomial_tree(n, 2)] {
                let out = run_multicast(
                    &net,
                    &tree,
                    &binding(n),
                    m,
                    &params(),
                    ideal(NicKind::Conventional),
                )
                .unwrap();
                let analytic = conventional_latency_us(&tree, m, &params());
                assert!(
                    (out.latency_us - analytic).abs() < 1e-6,
                    "n={n} m={m}: sim {} analytic {analytic}",
                    out.latency_us
                );
            }
        }
    }
}

#[test]
fn theorem2_visible_in_simulation() {
    // Simulated latency grows linearly in m with slope bottleneck * t_step.
    let net = net64(20);
    for k in [1u32, 2, 4] {
        let tree = kbinomial_tree(32, k);
        let lat = |m: u32| {
            run_multicast(
                &net,
                &tree,
                &binding(32),
                m,
                &params(),
                ideal(NicKind::Smart(ForwardingDiscipline::Fpfs)),
            )
            .unwrap()
            .latency_us
        };
        let slope = lat(7) - lat(6);
        let expected = f64::from(tree.max_degree()) * params().t_step();
        assert!((slope - expected).abs() < 1e-6, "k={k}");
    }
}

#[test]
fn wormhole_contention_only_adds_latency() {
    for seed in 0..6u64 {
        let net = net64(seed);
        let ordering = optimcast::topology::ordering::cco(&net);
        let dests: Vec<HostId> = (1..48).map(HostId).collect();
        let chain = ordering.arrange(HostId(0), &dests);
        for m in [1u32, 8] {
            let tree = kbinomial_tree(48, optimal_k(48, m).k);
            let ideal_out = run_multicast(
                &net,
                &tree,
                &chain,
                m,
                &params(),
                ideal(NicKind::Smart(ForwardingDiscipline::Fpfs)),
            )
            .unwrap();
            let worm =
                run_multicast(&net, &tree, &chain, m, &params(), RunConfig::default()).unwrap();
            assert!(
                worm.latency_us >= ideal_out.latency_us - 1e-9,
                "seed {seed} m={m}"
            );
            // Contention delay is bounded by the total stall time observed.
            assert!(
                worm.latency_us - ideal_out.latency_us <= worm.channel_wait_us + 1e-9,
                "seed {seed} m={m}: delta {} vs wait {}",
                worm.latency_us - ideal_out.latency_us,
                worm.channel_wait_us
            );
        }
    }
}

#[test]
fn overlapped_timing_bounds() {
    // Overlapped release can only speed things up, and by at most
    // t_recv / t_step per step.
    let net = net64(21);
    let tree = binomial_tree(32);
    for m in [1u32, 6] {
        let hs = run_multicast(
            &net,
            &tree,
            &binding(32),
            m,
            &params(),
            ideal(NicKind::Smart(ForwardingDiscipline::Fpfs)),
        )
        .unwrap();
        let ov = run_multicast(
            &net,
            &tree,
            &binding(32),
            m,
            &params(),
            RunConfig {
                timing: NiTiming::Overlapped,
                contention: ContentionMode::Ideal,
                nic: NicKind::Smart(ForwardingDiscipline::Fpfs),
            },
        )
        .unwrap();
        assert!(ov.latency_us <= hs.latency_us + 1e-9, "m={m}");
        // Still bounded below by the critical path with t_send-spaced sends.
        let floor = params().t_s
            + params().t_r
            + f64::from(fpfs_schedule(&tree, m).total_steps()) * params().t_send;
        assert!(ov.latency_us >= floor - 1e-9, "m={m}");
    }
}
