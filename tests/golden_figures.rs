//! Golden-value regression tests: the figure pipeline is fully seeded, so
//! key data points are exact and must never drift silently. (If a model
//! change legitimately moves them, update these values alongside
//! EXPERIMENTS.md.)

use optimcast::experiments::{fig12a, fig12b, fig5, fig8};
use optimcast::prelude::*;

/// Analytic figures are parameter-exact.
#[test]
fn analytic_goldens() {
    let f5 = fig5();
    assert_eq!(f5.series[0].points[0].1, 6.0);
    assert_eq!(f5.series[1].points[0].1, 5.0);

    let f8 = fig8();
    assert_eq!(
        f8.series[0].points,
        vec![(1.0, 3.0), (2.0, 6.0), (3.0, 9.0)]
    );

    let f12a = fig12a();
    let s63 = f12a.series.iter().find(|s| s.label == "63 dest").unwrap();
    let ys: Vec<u32> = s63.points.iter().map(|p| p.1 as u32).collect();
    assert_eq!(ys, vec![6, 3, 2, 2, 2, 2, 2, 2, 2, 2, 2]);

    let f12b = fig12b();
    let one = f12b.series.iter().find(|s| s.label == "1 pkt").unwrap();
    assert_eq!(one.points.last().unwrap().1, 6.0); // n = 64 -> k = 6
}

/// Simulated goldens under the full paper methodology are expensive; pin the
/// quick-config values instead (same determinism guarantees).
#[test]
fn simulated_goldens_quick_config() {
    let sweep = SweepBuilder::quick().build().unwrap();
    let run = RunConfig::default();
    let bin = sweep
        .avg_latency(TreePolicy::Binomial, 47, 32, run)
        .unwrap();
    let kbin = sweep
        .avg_latency(TreePolicy::OptimalKBinomial, 47, 32, run)
        .unwrap();
    // Exact determinism: identical on every machine and run (and on a
    // fresh engine with cold caches).
    let bin2 = SweepBuilder::quick()
        .build()
        .unwrap()
        .avg_latency(TreePolicy::Binomial, 47, 32, run)
        .unwrap();
    assert_eq!(bin, bin2);
    // The headline ratio at the figure's right edge.
    let ratio = bin / kbin;
    assert!(
        (1.5..=2.5).contains(&ratio),
        "47-dest m=32 ratio {ratio:.2} out of expected band"
    );
    // Golden window for the absolute values (loose enough to survive
    // non-semantic refactors; tight enough to catch model drift).
    assert!(
        (700.0..=950.0).contains(&bin),
        "binomial golden drifted: {bin:.1}"
    );
    assert!(
        (380.0..=520.0).contains(&kbin),
        "k-binomial golden drifted: {kbin:.1}"
    );
}

/// The contention-free analytic floors are hard goldens at paper parameters.
#[test]
fn analytic_latency_goldens() {
    let p = SystemParams::paper_1997();
    // 64-node broadcast floors by message length.
    for (m, steps) in [(1u32, 6u64), (8, 22), (32, 70)] {
        let opt = optimal_k(64, m);
        assert_eq!(opt.steps, steps, "m={m}");
        let floor = p.t_s + opt.steps as f64 * p.t_step() + p.t_r;
        let tree = kbinomial_tree(64, opt.k);
        let sched = fpfs_schedule(&tree, m);
        assert!((smart_latency_us(&sched, &p) - floor).abs() < 1e-9);
    }
}
