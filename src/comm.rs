//! An MPI-flavoured facade over the whole stack: one object owning the
//! network, its base ordering, and the system parameters, with one method
//! per collective operation.
//!
//! This is the API a runtime system built on the paper's results would
//! expose: callers think in *bytes and roots*; tree selection (Theorem 3),
//! packetization, contention-free construction, and simulation happen
//! underneath.
//!
//! ```
//! use optimcast::comm::Communicator;
//! use optimcast::prelude::*;
//!
//! let comm = Communicator::irregular(IrregularConfig::default(), 7);
//! let bcast = comm.bcast(HostId(0), 512);
//! assert!(bcast.latency_us > 0.0);
//! ```

use crate::core::params::SystemParams;
use crate::netsim::{run_multicast, MulticastOutcome, RunConfig, WorkloadConfig};
use crate::topology::graph::HostId;
use crate::topology::irregular::{IrregularConfig, IrregularNetwork};
use crate::topology::ordering::{cco, Ordering};
use crate::topology::Network;
use optimcast_collectives::{
    allgather_latency_us, barrier_us, gather_schedule, reduce_latency_us, scatter, AllgatherAlgo,
    OrderPolicy,
};
use optimcast_core::builders::kbinomial_tree;
use optimcast_core::optimal::optimal_k;
use optimcast_core::param_model::ParamModel;

/// A communication context: network + ordering + parameters + run policy.
pub struct Communicator<N: Network> {
    net: N,
    ordering: Ordering,
    params: SystemParams,
    config: RunConfig,
}

/// Outcome of an analytic (non-simulated) collective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticOutcome {
    /// End-to-end latency (µs).
    pub latency_us: f64,
    /// NI-layer steps (where the operation is step-counted; 0 otherwise).
    pub steps: u32,
}

impl Communicator<IrregularNetwork> {
    /// A communicator over a random irregular network with CCO ordering and
    /// the paper's 1997 parameters.
    pub fn irregular(cfg: IrregularConfig, seed: u64) -> Self {
        let net = IrregularNetwork::generate(cfg, seed);
        let ordering = cco(&net);
        Communicator {
            net,
            ordering,
            params: SystemParams::paper_1997(),
            config: RunConfig::default(),
        }
    }
}

impl<N: Network> Communicator<N> {
    /// Wraps an explicit network/ordering pair.
    ///
    /// # Panics
    ///
    /// Panics if the ordering does not cover the network's hosts.
    pub fn new(net: N, ordering: Ordering, params: SystemParams, config: RunConfig) -> Self {
        assert_eq!(
            ordering.len(),
            net.num_hosts() as usize,
            "ordering must cover every host"
        );
        Communicator {
            net,
            ordering,
            params,
            config,
        }
    }

    /// Number of participants.
    pub fn size(&self) -> u32 {
        self.net.num_hosts()
    }

    /// The system parameters in force.
    pub fn params(&self) -> &SystemParams {
        &self.params
    }

    /// The underlying network.
    pub fn network(&self) -> &N {
        &self.net
    }

    /// The arranged chain (source first) for a multicast set.
    fn chain(&self, root: HostId, dests: &[HostId]) -> Vec<HostId> {
        self.ordering.arrange(root, dests)
    }

    /// Simulated broadcast of `bytes` from `root` to every other host.
    pub fn bcast(&self, root: HostId, bytes: u64) -> MulticastOutcome {
        let dests: Vec<HostId> = (0..self.size())
            .map(HostId)
            .filter(|&h| h != root)
            .collect();
        self.multicast(root, &dests, bytes)
    }

    /// Simulated multicast of `bytes` from `root` to `dests`, using the
    /// Theorem-3 optimal k-binomial tree on the base ordering.
    ///
    /// # Panics
    ///
    /// Panics if `dests` repeats a host or contains `root`.
    pub fn multicast(&self, root: HostId, dests: &[HostId], bytes: u64) -> MulticastOutcome {
        let m = self.params.packets_for(bytes);
        let chain = self.chain(root, dests);
        let n = chain.len() as u32;
        let tree = kbinomial_tree(n, optimal_k(u64::from(n), m).k);
        run_multicast(&self.net, &tree, &chain, m, &self.params, self.config)
            .expect("arranged chains form valid bindings")
    }

    /// Simulated scatter: `root` sends each other host its own
    /// `bytes_per_rank` block down the chain (deepest-first injection — the
    /// scatter-optimal tree is the linear chain; see
    /// `optimcast-collectives::scatter`).
    pub fn scatter(&self, root: HostId, bytes_per_rank: u64) -> MulticastOutcome {
        let m = self.params.packets_for(bytes_per_rank);
        let dests: Vec<HostId> = (0..self.size())
            .map(HostId)
            .filter(|&h| h != root)
            .collect();
        let chain = self.chain(root, &dests);
        let n = chain.len() as u32;
        let tree = optimcast_core::builders::linear_tree(n);
        scatter::simulate_scatter(
            &self.net,
            &tree,
            &chain,
            m,
            OrderPolicy::DeepestFirst,
            &self.params,
            WorkloadConfig {
                contention: self.config.contention,
                timing: self.config.timing,
                trace: false,
                ..WorkloadConfig::default()
            },
        )
    }

    /// Analytic gather of `bytes_per_rank` blocks to `root` (time-reversed
    /// scatter; see `optimcast-collectives::gather`).
    pub fn gather(&self, _root: HostId, bytes_per_rank: u64) -> AnalyticOutcome {
        let m = self.params.packets_for(bytes_per_rank);
        let n = self.size();
        let tree = optimcast_core::builders::linear_tree(n);
        let sched = gather_schedule(&tree, m, OrderPolicy::DeepestFirst);
        let steps = sched.total_steps();
        AnalyticOutcome {
            latency_us: self.params.t_s + f64::from(steps) * self.params.t_step() + self.params.t_r,
            steps,
        }
    }

    /// Analytic reduce of `bytes` with per-packet combine cost `gamma` (µs).
    pub fn reduce(&self, bytes: u64, gamma: f64) -> AnalyticOutcome {
        let m = self.params.packets_for(bytes);
        let n = self.size();
        let k = optimcast_collectives::optimal_reduce_k(n, m, gamma).k;
        AnalyticOutcome {
            latency_us: reduce_latency_us(n, m, k, gamma, &self.params),
            steps: optimcast_collectives::reduce_plan(n, m, k, gamma).steps,
        }
    }

    /// Analytic all-gather of `bytes_per_rank` blocks; picks the better of
    /// ring and recursive doubling (the latter only for power-of-two sizes).
    pub fn allgather(&self, bytes_per_rank: u64) -> AnalyticOutcome {
        let m = self.params.packets_for(bytes_per_rank);
        let n = self.size();
        let model = ParamModel::step_model(&self.params);
        let ring = allgather_latency_us(AllgatherAlgo::Ring, n, m, &model, &self.params);
        let best = if n.is_power_of_two() {
            ring.min(allgather_latency_us(
                AllgatherAlgo::RecursiveDoubling,
                n,
                m,
                &model,
                &self.params,
            ))
        } else {
            ring
        };
        AnalyticOutcome {
            latency_us: best,
            steps: 0,
        }
    }

    /// Analytic dissemination barrier.
    pub fn barrier(&self) -> AnalyticOutcome {
        AnalyticOutcome {
            latency_us: barrier_us(self.size(), &self.params),
            steps: optimcast_collectives::barrier_rounds(self.size()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comm() -> Communicator<IrregularNetwork> {
        Communicator::irregular(IrregularConfig::default(), 3)
    }

    #[test]
    fn bcast_reaches_everyone() {
        let c = comm();
        let out = c.bcast(HostId(0), 512);
        assert_eq!(out.host_done_us.len(), 64);
        assert!(out.host_done_us[1..].iter().all(|&t| t > 0.0));
    }

    #[test]
    fn multicast_subset() {
        let c = comm();
        let dests: Vec<HostId> = (10..20).map(HostId).collect();
        let out = c.multicast(HostId(5), &dests, 256);
        assert_eq!(out.host_done_us.len(), 11);
        assert!(out.latency_us > 0.0);
    }

    #[test]
    fn scatter_and_gather_mirror() {
        let c = comm();
        let s = c.scatter(HostId(0), 128);
        let g = c.gather(HostId(0), 128);
        // Scatter is simulated (contention possible); gather analytic —
        // scatter can only be slower or equal.
        assert!(s.latency_us >= g.latency_us - 1e-9);
        assert!(g.steps >= 2 * 63, "sink bound");
    }

    #[test]
    fn reduce_and_barrier_reasonable() {
        let c = comm();
        let r = c.reduce(512, 0.5);
        assert!(r.latency_us > 0.0 && r.steps > 0);
        let b = c.barrier();
        assert_eq!(b.steps, 6);
        assert!((b.latency_us - 55.0).abs() < 1e-9);
    }

    #[test]
    fn allgather_picks_a_winner() {
        let c = comm();
        let a = c.allgather(64);
        // 64 hosts, 1 packet per block: (n-1)*m steps * t_step + overheads.
        assert!((a.latency_us - (12.5 + 63.0 * 5.0 + 12.5)).abs() < 1e-9);
    }

    #[test]
    fn sizes_and_params() {
        let c = comm();
        assert_eq!(c.size(), 64);
        assert_eq!(c.params().packet_bytes, 64);
    }

    #[test]
    #[should_panic(expected = "duplicate participant")]
    fn multicast_rejects_root_in_dests() {
        let c = comm();
        c.multicast(HostId(1), &[HostId(1)], 64);
    }
}
