//! Regenerates every figure of the paper as text data tables (and optional
//! JSON sidecars for EXPERIMENTS.md).
//!
//! ```text
//! figures [--quick] [--threads N] [--json DIR] [--gnuplot DIR] [FIG ...]
//!   FIG ∈ {fig4, fig5, fig8, buffers, fig12a, fig12b,
//!          fig13a, fig13b, fig14a, fig14b, disciplines,
//!          chaos_outage, chaos_corrupt, chaos_buffer, all}     (default: all)
//!   --quick     2 topologies × 3 destination sets instead of the paper's 10 × 30
//!   --threads N run simulated figures on N workers (bit-identical for any N)
//!   --json D    also write <D>/<fig>.json
//! ```

use optimcast::prelude::*;
use optimcast::sweep::ToJson;
use std::io::Write as _;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut threads: usize = 1;
    let mut json_dir: Option<String> = None;
    let mut gnuplot_dir: Option<String> = None;
    let mut figs: Vec<FigureId> = Vec::new();
    let mut chaos_figs: Vec<ChaosFigureId> = Vec::new();
    let mut explicit = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--threads" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--threads requires a worker count");
                    std::process::exit(2);
                });
                threads = v.parse().unwrap_or_else(|e| {
                    eprintln!("--threads: {e}");
                    std::process::exit(2);
                });
            }
            "--json" => {
                json_dir = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--json requires a directory argument");
                    std::process::exit(2);
                }))
            }
            "--gnuplot" => {
                gnuplot_dir = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--gnuplot requires a directory argument");
                    std::process::exit(2);
                }))
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: figures [--quick] [--threads N] [--json DIR] [--gnuplot DIR] [FIG ...]\n\
                     FIG: fig4 fig5 fig8 buffers fig12a fig12b fig13a fig13b fig14a fig14b \
                     disciplines chaos_outage chaos_corrupt chaos_buffer all"
                );
                return;
            }
            "all" => {
                explicit = true;
                figs.extend(FigureId::ALL);
                chaos_figs.extend(ChaosFigureId::ALL);
            }
            other => {
                explicit = true;
                match other.parse::<FigureId>() {
                    Ok(id) => figs.push(id),
                    Err(_) => match other.parse::<ChaosFigureId>() {
                        Ok(id) => chaos_figs.push(id),
                        Err(e) => eprintln!("{e}, skipping"),
                    },
                }
            }
        }
    }
    if !explicit {
        figs = FigureId::ALL.to_vec();
        chaos_figs = ChaosFigureId::ALL.to_vec();
    }

    let builder = if quick {
        SweepBuilder::quick()
    } else {
        SweepBuilder::paper()
    };
    let sweep = builder.parallelism(threads).build().unwrap_or_else(|e| {
        eprintln!("invalid sweep configuration: {e}");
        std::process::exit(2);
    });
    let cfg = sweep.config();
    println!(
        "# optimcast figure regeneration ({} topologies x {} destination sets, {} worker(s))",
        cfg.topologies(),
        cfg.dest_sets(),
        cfg.threads()
    );
    println!("# network: 64 hosts, 16 switches x 8 ports; CCO ordering; FPFS smart NI\n");

    for fig in figs {
        let start = Instant::now();
        let figure = match sweep.figure(fig) {
            Ok(figure) => figure,
            Err(e) => {
                eprintln!("{fig}: {e}, skipping");
                continue;
            }
        };
        print_figure(&figure, start.elapsed().as_secs_f64());
        if let Some(dir) = &json_dir {
            write_json(dir, &figure);
        }
        if let Some(dir) = &gnuplot_dir {
            write_gnuplot(dir, &figure);
        }
    }

    // The chaos-axis figures (outage window, corruption rate, NI buffer
    // capacity) chart the fault extension on top of the paper's sampling
    // methodology: 31 destinations, 4-packet messages, matching the
    // `optimcast chaos` grid defaults.
    for fig in chaos_figs {
        let start = Instant::now();
        let figure = match sweep.chaos_figure(fig, 31, 4) {
            Ok(figure) => figure,
            Err(e) => {
                eprintln!("{fig}: {e}, skipping");
                continue;
            }
        };
        print_figure(&figure, start.elapsed().as_secs_f64());
        if let Some(dir) = &json_dir {
            write_json(dir, &figure);
        }
        if let Some(dir) = &gnuplot_dir {
            write_gnuplot(dir, &figure);
        }
    }
}

/// Writes `<fig>.dat` (x then one column per series) and `<fig>.gp` (a
/// ready-to-run gnuplot script reproducing the paper-style plot).
fn write_gnuplot(dir: &str, fig: &Figure) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {dir}: {e}");
        return;
    }
    let mut xs: Vec<f64> = Vec::new();
    for s in &fig.series {
        for &(x, _) in &s.points {
            if !xs.contains(&x) {
                xs.push(x);
            }
        }
    }
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let dat_path = format!("{dir}/{}.dat", fig.id);
    let mut dat = String::new();
    dat.push_str("# x");
    for s in &fig.series {
        dat.push_str(&format!("  \"{}\"", s.label));
    }
    dat.push('\n');
    for &x in &xs {
        dat.push_str(&format!("{x}"));
        for s in &fig.series {
            match s.points.iter().find(|&&(px, _)| px == x) {
                Some(&(_, y)) => dat.push_str(&format!(" {y}")),
                None => dat.push_str(" ?"),
            }
        }
        dat.push('\n');
    }
    if let Err(e) = std::fs::write(&dat_path, dat) {
        eprintln!("cannot write {dat_path}: {e}");
        return;
    }
    let gp_path = format!("{dir}/{}.gp", fig.id);
    let mut gp = String::new();
    gp.push_str(&format!(
        "set title \"{}\"\nset xlabel \"{}\"\nset ylabel \"{}\"\nset key left top\nset grid\n",
        fig.title, fig.x_label, fig.y_label
    ));
    gp.push_str(&format!(
        "set terminal pngcairo size 800,600\nset output \"{}.png\"\nset datafile missing \"?\"\nplot ",
        fig.id
    ));
    let plots: Vec<String> = fig
        .series
        .iter()
        .enumerate()
        .map(|(i, s)| {
            format!(
                "\"{}.dat\" using 1:{} with linespoints title \"{}\"",
                fig.id,
                i + 2,
                s.label
            )
        })
        .collect();
    gp.push_str(&plots.join(", \\\n     "));
    gp.push('\n');
    if let Err(e) = std::fs::write(&gp_path, gp) {
        eprintln!("cannot write {gp_path}: {e}");
    } else {
        println!("   wrote {dat_path} + {gp_path}\n");
    }
}

/// Prints a figure as an aligned table: one row per x value, one column per
/// series (the paper's gnuplot-style series).
fn print_figure(fig: &Figure, elapsed: f64) {
    println!("## {} — {}   [{elapsed:.2}s]", fig.id, fig.title);
    // Collect the x axis (union of all series' x values, in first-series order).
    let mut xs: Vec<f64> = Vec::new();
    for s in &fig.series {
        for &(x, _) in &s.points {
            if !xs.contains(&x) {
                xs.push(x);
            }
        }
    }
    print!("{:>24}", fig.x_label);
    for s in &fig.series {
        print!("{:>16}", s.label);
    }
    println!();
    for &x in &xs {
        // Fractional axes (e.g. corruption rate) keep two decimals;
        // integral axes (packets, dests) stay as before.
        if x.fract() == 0.0 {
            print!("{x:>24.0}");
        } else {
            print!("{x:>24.2}");
        }
        for s in &fig.series {
            match s.points.iter().find(|&&(px, _)| px == x) {
                Some(&(_, y)) => print!("{y:>16.2}"),
                None => print!("{:>16}", "-"),
            }
        }
        println!();
    }
    println!("   ({})\n", fig.y_label);
}

fn write_json(dir: &str, fig: &Figure) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {dir}: {e}");
        return;
    }
    let path = format!("{dir}/{}.json", fig.id);
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            let body = fig.to_json().to_string_pretty();
            if let Err(e) = f.write_all(body.as_bytes()) {
                eprintln!("cannot write {path}: {e}");
            } else {
                println!("   wrote {path}\n");
            }
        }
        Err(e) => eprintln!("cannot create {path}: {e}"),
    }
}
