//! `optimcast` — command-line front end to the library.
//!
//! ```text
//! optimcast topo     [--switches S] [--ports P] [--hosts H] [--seed N] [--dot]
//! optimcast route    [--seed N] <FROM> <TO>
//! optimcast tree     --n N [--k K | --m M] [--render] [--dot] [--diagram]
//! optimcast optimal  --n N --m M            # Theorem-3 optimal k
//! optimcast table    --max-n N --max-m M    # the §4.3.1 lookup table
//! optimcast simulate [--seed N] [--dests D] [--m M] [--nic conv|fcfs|fpfs]
//!                    [--ordering cco|poc|random] [--ideal] [--trace] [--json]
//!                    [--drop-rate R] [--corrupt-rate R] [--crashes C]
//!                    [--crash-at US] [--live-repair] [--fault-seed N]
//!                    [--window W] [--send-units S] [--deadline US]
//! optimcast bench-sweep [--threads N] [--smoke] [--out PATH]
//! optimcast bench-sim [--quick] [--out PATH]
//!                     [--mega [--hosts N] [--shards S] [--shard-threads T]
//!                      [--digest PATH] [--plots DIR]]
//! optimcast bench-compare [--sim PATH] [--sweep PATH] [--mega PATH]
//!                     [--threshold F] [--threads N]
//! optimcast chaos    [--quick] [--seed N] [--threads N] [--dests D] [--m M]
//!                    [--live-repair] [--crash-at US] [--out PATH]
//!                    [--arq] [--window W] [--send-units S] [--plots DIR]
//! optimcast jobs     [--quick] [--seed N] [--threads N] [--m M] [--json]
//!                    [--out PATH] [--plots DIR]
//! optimcast stream   [--quick] [--seed N] [--threads N] [--dests D]
//!                    [--frame-bytes B] [--mtu B] [--frames F]
//!                    [--out PATH] [--plots DIR]
//! optimcast wire     [--role demo|source|sink] --n N [--k K] [--m M]
//!                    [--rank R] [--port-base P] [--payload B] [--mtu M]
//!                    [--timeout-ms T]
//! ```

use optimcast::core::schedule::ForwardingDiscipline;
use optimcast::jsonout::{Json, ToJson};
use optimcast::netsim::{
    JobPayload, MulticastJob, NiModel, SimRun, TraceKind, Transport, WorkloadConfig,
    WorkloadOutcome,
};
use optimcast::prelude::*;
use optimcast::sweep::{bench_mega, bench_regressions, bench_sim, bench_sweep};
use optimcast::topology::ordering::{cco, poc};
use optimcast::transport_udp::{
    loopback_demo, run_sink, run_source, UdpTransport, WirePlan, DEFAULT_MTU, HEADER_LEN,
};
use std::collections::HashMap;

/// Every allocation in the CLI is counted so `bench-sim` can report
/// allocations-per-event; two relaxed atomic adds per allocation are noise
/// next to the allocation itself.
#[global_allocator]
static ALLOC: optimcast::netsim::CountingAlloc = optimcast::netsim::CountingAlloc::new();

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        return;
    }
    let cmd = args.remove(0);
    let (flags, positional) = parse_flags(args);
    match cmd.as_str() {
        "topo" => cmd_topo(&flags),
        "route" => cmd_route(&flags, &positional),
        "tree" => cmd_tree(&flags),
        "optimal" => cmd_optimal(&flags),
        "table" => cmd_table(&flags),
        "simulate" => cmd_simulate(&flags),
        "bench-sweep" => cmd_bench_sweep(&flags),
        "bench-sim" => cmd_bench_sim(&flags),
        "bench-compare" => cmd_bench_compare(&flags),
        "chaos" => cmd_chaos(&flags),
        "jobs" => cmd_jobs(&flags),
        "stream" => cmd_stream(&flags),
        "wire" => cmd_wire(&flags),
        "--help" | "-h" | "help" => usage(),
        other => {
            eprintln!("unknown command '{other}'");
            usage();
            std::process::exit(2);
        }
    }
}

fn usage() {
    eprintln!(
        "optimcast — k-binomial multicast toolkit (Kesavan & Panda, ICPP 1997)\n\
         commands:\n\
         \u{20}  topo     [--switches S] [--ports P] [--hosts H] [--seed N]\n\
         \u{20}  route    [--seed N] <FROM> <TO>\n\
         \u{20}  tree     --n N [--k K | --m M] [--render]\n\
         \u{20}  optimal  --n N --m M\n\
         \u{20}  table    [--max-n N] [--max-m M]\n\
         \u{20}  simulate [--seed N] [--dests D] [--m M] [--nic conv|fcfs|fpfs]\n\
         \u{20}           [--ordering cco|poc|random] [--ideal] [--trace] [--json]\n\
         \u{20}           [--drop-rate R] [--corrupt-rate R] [--crashes C]\n\
         \u{20}           [--crash-at US] [--live-repair] [--fault-seed N]\n\
         \u{20}           [--window W] [--send-units S] [--deadline US]\n\
         \u{20}  bench-sweep [--threads N] [--smoke] [--out PATH]\n\
         \u{20}  bench-sim [--quick] [--out PATH] [--mega [--hosts N] [--shards S]\n\
         \u{20}           [--shard-threads T] [--digest PATH] [--plots DIR]]\n\
         \u{20}  bench-compare [--sim PATH] [--sweep PATH] [--mega PATH]\n\
         \u{20}           [--threshold F] [--threads N]\n\
         \u{20}  chaos    [--quick] [--seed N] [--threads N] [--dests D] [--m M]\n\
         \u{20}           [--live-repair] [--crash-at US] [--out PATH]\n\
         \u{20}           [--arq] [--window W] [--send-units S] [--plots DIR]\n\
         \u{20}  jobs     [--quick] [--seed N] [--threads N] [--m M] [--json] [--out PATH]\n\
         \u{20}           [--plots DIR]\n\
         \u{20}  stream   [--quick] [--seed N] [--threads N] [--dests D] [--frame-bytes B]\n\
         \u{20}           [--mtu B] [--frames F] [--out PATH] [--plots DIR]\n\
         \u{20}  wire     [--role demo|source|sink] --n N [--k K] [--m M] [--rank R]\n\
         \u{20}           [--port-base P] [--payload B] [--mtu M] [--timeout-ms T]"
    );
}

fn parse_flags(args: Vec<String>) -> (HashMap<String, String>, Vec<String>) {
    let mut flags = HashMap::new();
    let mut positional = Vec::new();
    let mut it = args.into_iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().unwrap(),
                _ => "true".to_string(),
            };
            flags.insert(name.to_string(), value);
        } else {
            positional.push(a);
        }
    }
    (flags, positional)
}

fn get<T: std::str::FromStr>(flags: &HashMap<String, String>, name: &str, default: T) -> T
where
    T::Err: std::fmt::Display,
{
    match flags.get(name) {
        Some(v) => v.parse().unwrap_or_else(|e| {
            eprintln!("--{name}: {e}");
            std::process::exit(2);
        }),
        None => default,
    }
}

fn build_net(flags: &HashMap<String, String>) -> IrregularNetwork {
    let cfg = IrregularConfig {
        switches: get(flags, "switches", 16),
        ports: get(flags, "ports", 8),
        hosts: get(flags, "hosts", 64),
    };
    IrregularNetwork::generate(cfg, get(flags, "seed", 0u64))
}

fn cmd_topo(flags: &HashMap<String, String>) {
    let net = build_net(flags);
    let t = net.topology();
    if flags.contains_key("dot") {
        print!("{}", t.to_dot());
        return;
    }
    println!("{}", net.describe());
    println!(
        "links: {} ({} switch-switch)",
        t.num_links(),
        t.link_pairs().len()
    );
    println!("up*/down* root: {}", net.routing().root());
    for s in 0..t.num_switches() {
        let sid = SwitchId(s);
        let nbrs: Vec<String> = t
            .switch_neighbors(sid)
            .iter()
            .map(|(_, n)| n.to_string())
            .collect();
        println!(
            "  {sid}: level {}, {} hosts, links to [{}]",
            net.routing().level(sid),
            t.switch_hosts(sid).len(),
            nbrs.join(", ")
        );
    }
}

fn cmd_route(flags: &HashMap<String, String>, positional: &[String]) {
    if positional.len() != 2 {
        eprintln!("route needs <FROM> <TO>");
        std::process::exit(2);
    }
    let net = build_net(flags);
    let from = HostId(positional[0].parse().expect("FROM must be a host id"));
    let to = HostId(positional[1].parse().expect("TO must be a host id"));
    let route = net.route(from, to);
    println!("{from} -> {to}: {} channels", route.len());
    let t = net.topology();
    for c in route {
        let (a, b) = t.channel_endpoints(c);
        println!("  {a} -> {b}");
    }
}

fn cmd_tree(flags: &HashMap<String, String>) {
    let n: u32 = get(flags, "n", 16);
    let k = match flags.get("k") {
        Some(v) => v.parse().expect("--k must be a number"),
        None => {
            let m: u32 = get(flags, "m", 1);
            let opt = optimal_k(u64::from(n), m);
            println!(
                "optimal k for n={n}, m={m}: {} ({} steps)",
                opt.k, opt.steps
            );
            opt.k
        }
    };
    let tree = kbinomial_tree(n, k);
    let m: u32 = get(flags, "m", 1);
    let sched = fpfs_schedule(&tree, m);
    println!(
        "{k}-binomial tree over {n}: depth {}, root degree {}, {m}-packet FPFS completes in {} steps",
        tree.depth(),
        tree.root_degree(),
        sched.total_steps()
    );
    if flags.contains_key("render") {
        print!("{}", tree.render());
    }
    if flags.contains_key("dot") {
        print!("{}", tree.to_dot());
    }
    if flags.contains_key("diagram") {
        print!("{}", sched.step_diagram(&tree));
    }
}

fn cmd_optimal(flags: &HashMap<String, String>) {
    let n: u64 = get(flags, "n", 64);
    let m: u32 = get(flags, "m", 8);
    let opt = optimal_k(n, m);
    println!("n={n} m={m}: optimal k = {}, {} steps", opt.k, opt.steps);
    let p = SystemParams::paper_1997();
    println!(
        "contention-free latency: {:.2} us (t_s + steps*t_step + t_r)",
        p.t_s + opt.steps as f64 * p.t_step() + p.t_r
    );
}

fn cmd_table(flags: &HashMap<String, String>) {
    let max_n: u64 = get(flags, "max-n", 64);
    let max_m: u32 = get(flags, "max-m", 16);
    let table = OptimalKTable::build(max_n, max_m);
    println!(
        "optimal-k table, n in 2..={max_n} (rows), m in 1..={max_m} (cols), {} bytes:",
        table.memory_bytes()
    );
    print!("{:>5}", "n\\m");
    for m in 1..=max_m {
        print!("{m:>3}");
    }
    println!();
    for n in 2..=max_n {
        print!("{n:>5}");
        for m in 1..=max_m {
            print!("{:>3}", table.lookup(n, m).unwrap());
        }
        println!();
    }
}

fn cmd_simulate(flags: &HashMap<String, String>) {
    let net = build_net(flags);
    let dests: u32 = get(flags, "dests", 31);
    let m: u32 = get(flags, "m", 8);
    let n_hosts = net.num_hosts();
    if dests >= n_hosts {
        eprintln!(
            "simulate: --dests {dests} requires at least {} hosts, but the network has {n_hosts} \
             (raise --hosts/--switches)",
            dests + 1
        );
        std::process::exit(1);
    }
    if m == 0 {
        eprintln!("simulate: --m must be at least 1 packet");
        std::process::exit(1);
    }
    let ordering = match flags.get("ordering").map(String::as_str) {
        None | Some("cco") => cco(&net),
        Some("poc") => poc(&net),
        Some("random") => Ordering::random(net.num_hosts(), get(flags, "seed", 0u64) + 1),
        Some(o) => {
            eprintln!("unknown ordering '{o}'");
            std::process::exit(2);
        }
    };
    let nic = match flags.get("nic").map(String::as_str) {
        None | Some("fpfs") => NicKind::Smart(ForwardingDiscipline::Fpfs),
        Some("fcfs") => NicKind::Smart(ForwardingDiscipline::Fcfs),
        Some("conv") => NicKind::Conventional,
        Some(o) => {
            eprintln!("unknown nic '{o}'");
            std::process::exit(2);
        }
    };
    let contention = if flags.contains_key("ideal") {
        ContentionMode::Ideal
    } else {
        ContentionMode::Wormhole
    };
    let params = SystemParams::paper_1997();
    let dest_hosts: Vec<HostId> = (1..=dests).map(HostId).collect();
    let chain = ordering.arrange(HostId(0), &dest_hosts);
    let n = chain.len() as u32;
    let opt = optimal_k(u64::from(n), m);
    let tree = kbinomial_tree(n, opt.k);
    let live_repair = flags.contains_key("live-repair");
    let crash_count: u32 = get(flags, "crashes", 0);
    let window: u32 = get(flags, "window", 1);
    let send_units: u32 = get(flags, "send-units", 1);
    let deadline_us: Option<f64> = flags
        .contains_key("deadline")
        .then(|| get(flags, "deadline", 0.0));
    let spec = FaultPlanSpec {
        seed: get(flags, "fault-seed", 1997u64),
        drop_rate: get(flags, "drop-rate", 0.0),
        corrupt_rate: get(flags, "corrupt-rate", 0.0),
        crashes: crash_count,
        crash_at_us: get(flags, "crash-at", if live_repair { 5.0 } else { 0.0 }),
        live_repair,
        window,
        deadline_us,
        send_units,
        ..FaultPlanSpec::default()
    };
    if crash_count as usize >= chain.len() {
        eprintln!(
            "simulate: --crashes {crash_count} must leave at least the source and one \
             destination out of {} participants",
            chain.len()
        );
        std::process::exit(1);
    }
    let jobs = [MulticastJob {
        tree: tree.into(),
        binding: chain.clone(),
        packets: m,
        start_us: 0.0,
        nic,
        payload: JobPayload::Replicated,
    }];
    let config = WorkloadConfig {
        contention,
        timing: NiTiming::Handshake,
        trace: flags.contains_key("trace"),
        ni: NiModel {
            send_units,
            queue_capacity: None,
        },
        ..WorkloadConfig::default()
    };
    let wl = if !spec.is_trivial() {
        // The crashed hosts are the deepest in the ordering: the last
        // `--crashes` destinations of the arranged chain.
        let crashes: Vec<HostCrash> = chain
            .iter()
            .rev()
            .take(crash_count as usize)
            .map(|&host| HostCrash {
                host,
                at_us: spec.crash_at_us,
            })
            .collect();
        SimRun::new(&net, &jobs, &params, config)
            .faults(&spec.plan(0, crashes))
            .run()
    } else {
        SimRun::new(&net, &jobs, &params, config).run()
    }
    .unwrap_or_else(|e| {
        eprintln!("simulate: {e}");
        std::process::exit(1);
    });
    let out = &wl.jobs[0];
    let c = &wl.counters;
    if flags.contains_key("json") {
        print!(
            "{}",
            simulate_json(&wl, opt.k, opt.steps).to_string_pretty()
        );
        return;
    }
    println!("{}", net.describe());
    println!(
        "multicast: {dests} dests, {m} packets, optimal k = {} -> {} predicted steps",
        opt.k, opt.steps
    );
    println!(
        "latency {:.2} us | {} sends, {} blocked, {:.1} us stalled | max fwd buffer {} pkts",
        out.latency_us,
        out.total_sends,
        out.blocked_sends,
        out.channel_wait_us,
        out.max_ni_buffer[1..].iter().max().copied().unwrap_or(0)
    );
    println!(
        "counters: {} forwarded | {} recv-unit waits ({:.1} us) | send queue depth <= {} | {} events",
        c.packets_forwarded,
        c.recv_unit_waits,
        c.recv_unit_wait_us,
        c.max_send_queue,
        c.events
    );
    if c.packets_dropped + c.packets_corrupted + c.retransmits + c.repairs > 0 {
        println!(
            "faults: {} dropped, {} corrupted, {} retransmits, {} abandoned ({:.1} us recovering) \
             | {} repair epoch(s), {} reissued ({:.1} us repairing)",
            c.packets_dropped,
            c.packets_corrupted,
            c.retransmits,
            c.deliveries_abandoned,
            c.recovery_wait_us,
            c.repairs,
            c.reissued_packets,
            c.repair_wait_us
        );
    }
    if c.resend_requests + c.nack_ranges_sent + c.late_acks + c.duplicate_acks > 0
        || c.window_stalls_us > 0.0
        || c.deadline_writeoffs > 0
    {
        println!(
            "arq: {} resend requests, {} nack ranges, {} late acks, {} duplicate acks, \
             {:.1} us window-stalled, {} deadline write-off(s)",
            c.resend_requests,
            c.nack_ranges_sent,
            c.late_acks,
            c.duplicate_acks,
            c.window_stalls_us,
            c.deadline_writeoffs
        );
    }
    if !wl.unreached.is_empty() {
        let ranks: Vec<String> = wl
            .unreached
            .iter()
            .map(|(job, rank)| format!("job {job} rank {}", rank.0))
            .collect();
        println!("unreached (written off): {}", ranks.join(", "));
    }
    let histo: Vec<String> = c
        .buffer_occupancy
        .iter()
        .enumerate()
        .skip(1)
        .filter(|(_, &n)| n > 0)
        .map(|(depth, n)| format!("{depth}:{n}"))
        .collect();
    if !histo.is_empty() {
        println!(
            "buffer occupancy (pkts:times grown to): {}",
            histo.join(" ")
        );
    }
    if flags.contains_key("trace") {
        println!("timeline ({} records):", wl.trace.len());
        for r in &wl.trace {
            match r.kind {
                TraceKind::SendStart {
                    from,
                    to,
                    packet,
                    stalled_us,
                } => {
                    print!("  {:9.2} us  send  {from} -> {to}  pkt {packet}", r.t_us);
                    if stalled_us > 0.0 {
                        print!("  (stalled {stalled_us:.1} us)");
                    }
                    println!();
                }
                TraceKind::RecvDone { at, packet } => {
                    println!("  {:9.2} us  recv  {at}  pkt {packet}", r.t_us);
                }
                TraceKind::HostDone { rank } => {
                    println!("  {:9.2} us  done  {rank}", r.t_us);
                }
                TraceKind::Dropped {
                    from,
                    to,
                    packet,
                    kind,
                } => {
                    println!(
                        "  {:9.2} us  drop  {from} -> {to}  pkt {packet}  ({kind:?})",
                        r.t_us
                    );
                }
                TraceKind::Retransmit {
                    from,
                    to,
                    packet,
                    attempt,
                } => {
                    println!(
                        "  {:9.2} us  retry {from} -> {to}  pkt {packet}  attempt {attempt}",
                        r.t_us
                    );
                }
                TraceKind::Abandoned {
                    from,
                    to,
                    packet,
                    attempts,
                } => {
                    println!(
                        "  {:9.2} us  abandon {from} -> {to}  pkt {packet}  after {attempts} attempts",
                        r.t_us
                    );
                }
                TraceKind::RepairTriggered {
                    epoch,
                    failed,
                    reattached,
                } => {
                    println!(
                        "  {:9.2} us  repair epoch {epoch}  ({failed} failed, {reattached} reattached)",
                        r.t_us
                    );
                }
                TraceKind::Reissued { to, packet } => {
                    println!("  {:9.2} us  reissue -> {to}  pkt {packet}", r.t_us);
                }
            }
        }
    }
}

fn cmd_bench_sweep(flags: &HashMap<String, String>) {
    let default_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads: usize = get(flags, "threads", default_threads);
    let smoke = flags.contains_key("smoke");
    let base = if smoke {
        SweepBuilder::quick()
    } else {
        SweepBuilder::paper()
    };
    let label = if smoke {
        "smoke (2×3)"
    } else {
        "paper (10×30)"
    };
    eprintln!("bench-sweep: {label} methodology, serial vs {threads} worker(s)...");
    let report = bench_sweep(&base, threads).unwrap_or_else(|e| {
        eprintln!("bench-sweep: {e}");
        std::process::exit(1);
    });
    let default_out = "BENCH_sweep.json".to_string();
    let out_path = flags.get("out").unwrap_or(&default_out);
    if let Err(e) = std::fs::write(out_path, report.to_json().to_string_pretty()) {
        eprintln!("bench-sweep: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!(
        "cells: {} | serial {:.3} s ({:.1} cells/s) | {} workers {:.3} s ({:.1} cells/s) | speedup {:.2}x",
        report.cells,
        report.serial_seconds,
        report.serial_cells_per_sec(),
        report.threads,
        report.parallel_seconds,
        report.parallel_cells_per_sec(),
        report.speedup()
    );
    println!(
        "cache: {} hits / {} misses ({:.1}% hit rate) | parallel output identical to serial: {}",
        report.cache.hits,
        report.cache.misses,
        100.0 * report.cache.hit_rate(),
        report.identical
    );
    println!(
        "routes: {} hits / {} misses ({:.1}% hit rate) | {} events, peak queue {}",
        report.cache.route_hits,
        report.cache.route_misses,
        100.0 * report.cache.route_hit_rate(),
        report.effort.events_processed,
        report.effort.peak_queue_len
    );
    println!("report written to {out_path}");
    if !report.identical {
        eprintln!("bench-sweep: DETERMINISM VIOLATION — parallel figures diverged from serial");
        std::process::exit(1);
    }
}

/// The `bench-sim` subcommand: simulator-core throughput (event-queue
/// churn, `run_multicast` events/sec, allocations-per-event via the
/// counting global allocator registered above), written as
/// `BENCH_sim.json`.
fn cmd_bench_sim(flags: &HashMap<String, String>) {
    if flags.contains_key("mega") {
        cmd_bench_mega(flags);
        return;
    }
    let quick = flags.contains_key("quick");
    let label = if quick { "quick" } else { "full" };
    eprintln!("bench-sim: {label} sizing...");
    let report = bench_sim(quick).unwrap_or_else(|e| {
        eprintln!("bench-sim: {e}");
        std::process::exit(1);
    });
    println!(
        "event queue: {:.2} M schedule+pop pairs/s ({} ops)",
        report.queue_ops_per_sec / 1e6,
        report.queue_ops
    );
    println!(
        "run_multicast: {:.2} M events/s over {} runs ({} dests, {} packets, \
         {} events/run, peak queue {})",
        report.events_per_sec / 1e6,
        report.runs,
        report.dests,
        report.m,
        report.events_per_run,
        report.peak_queue_len
    );
    if report.alloc_counting {
        println!(
            "allocations: {:.4} per event (incl. per-run setup)",
            report.allocations_per_event
        );
    } else {
        println!("allocations: not measured (no counting allocator registered)");
    }
    let default_out = "BENCH_sim.json".to_string();
    let out_path = flags.get("out").unwrap_or(&default_out);
    if let Err(e) = std::fs::write(out_path, report.to_json().to_string_pretty()) {
        eprintln!("bench-sim: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("report written to {out_path}");
}

/// The `bench-sim --mega` variant: one end-to-end optimal-k multicast
/// (m = 16) per fat-tree size, with setup time, setup peak-allocation
/// bytes, events/s, and a shard-identity cross-check per point. Writes
/// `BENCH_mega.json` plus, on the full sizing, the committed
/// `results/fig_megascale.json` figure and its plot files; `--digest PATH`
/// additionally writes a timing-free outcome digest CI can `cmp` across
/// shard counts.
fn cmd_bench_mega(flags: &HashMap<String, String>) {
    let quick = flags.contains_key("quick");
    let hosts: Option<u32> = flags
        .contains_key("hosts")
        .then(|| get(flags, "hosts", 0u32));
    let shards: u16 = get(flags, "shards", 0);
    let threads: u16 = get(flags, "shard-threads", 0);
    let label = if quick { "quick" } else { "full" };
    eprintln!("bench-sim --mega: {label} sizing...");
    let report = bench_mega(quick, hosts, shards, threads).unwrap_or_else(|e| {
        eprintln!("bench-sim: {e}");
        std::process::exit(1);
    });
    for p in &report.points {
        println!(
            "n={:>6} (k={} fat-tree, {} switches, tree k={}): setup {:.3} s{} | \
             {:.2} M events/s ({} events, makespan {:.1} us, {:.3} s) | shards 1/4 identical: {}",
            p.hosts,
            p.fat_tree_k,
            p.switches,
            p.tree_k,
            p.setup_seconds,
            if report.alloc_counting {
                format!(
                    ", peak {:.1} MiB{}",
                    p.setup_peak_bytes as f64 / (1024.0 * 1024.0),
                    if p.within_budget { "" } else { " OVER BUDGET" }
                )
            } else {
                String::new()
            },
            p.events_per_sec / 1e6,
            p.events,
            p.makespan_us,
            p.sim_seconds,
            p.sharded_identical
        );
    }
    let default_out = "BENCH_mega.json".to_string();
    let out_path = flags.get("out").unwrap_or(&default_out);
    if let Err(e) = std::fs::write(out_path, report.to_json().to_string_pretty()) {
        eprintln!("bench-sim: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("report written to {out_path}");
    if let Some(digest_path) = flags.get("digest") {
        if let Err(e) = std::fs::write(digest_path, report.digest_json().to_string_pretty()) {
            eprintln!("bench-sim: cannot write {digest_path}: {e}");
            std::process::exit(1);
        }
        println!("digest written to {digest_path}");
    }
    // The committed figure charts the full size axis; quick smoke runs and
    // single-size overrides must not overwrite it.
    if !quick && hosts.is_none() {
        let fig = report.figure();
        let fig_path = "results/fig_megascale.json";
        if let Err(e) = std::fs::write(fig_path, fig.to_json().to_string_pretty()) {
            eprintln!("bench-sim: cannot write {fig_path}: {e}");
            std::process::exit(1);
        }
        println!("figure written to {fig_path}");
        let plot_dir = flags.get("plots").map(String::as_str).unwrap_or("plots");
        write_figure_plots("bench-sim", plot_dir, &fig);
    }
    if !report.all_ok() {
        eprintln!(
            "bench-sim --mega: FAILED — shard-identity violation or setup memory over \
             the {} MiB budget",
            report.budget_bytes / (1024 * 1024)
        );
        std::process::exit(1);
    }
}

/// The `bench-compare` subcommand: replays a fresh `--quick` measurement
/// of each committed bench artifact and fails on a rate regression beyond
/// `--threshold` (default 0.30). Only sizing-insensitive rates are
/// compared, so the quick fresh run is a fair check against committed
/// full-sizing artifacts.
fn cmd_bench_compare(flags: &HashMap<String, String>) {
    let threshold: f64 = get(flags, "threshold", 0.30);
    if !(0.0..1.0).contains(&threshold) {
        eprintln!("bench-compare: --threshold must be in [0, 1)");
        std::process::exit(2);
    }
    let threads: usize = get(flags, "threads", 1);
    let load = |path: &str| -> Json {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench-compare: cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        Json::parse(&text).unwrap_or_else(|e| {
            eprintln!("bench-compare: {path} is not valid JSON: {e}");
            std::process::exit(1);
        })
    };
    let mut checks = Vec::new();
    let mut compare = |label: &str, path: &str, committed: &Json, fresh: Json| {
        let found = bench_regressions(committed, &fresh);
        if found.is_empty() {
            eprintln!("bench-compare: no comparable rates in {path}");
            std::process::exit(1);
        }
        eprintln!("bench-compare: {label} ({path}): {} rate(s)", found.len());
        checks.extend(found);
    };

    let sim_path = flags
        .get("sim")
        .cloned()
        .unwrap_or_else(|| "BENCH_sim.json".to_string());
    let committed_sim = load(&sim_path);
    eprintln!("bench-compare: fresh quick bench-sim...");
    let fresh_sim = bench_sim(true).unwrap_or_else(|e| {
        eprintln!("bench-compare: {e}");
        std::process::exit(1);
    });
    compare("bench-sim", &sim_path, &committed_sim, fresh_sim.to_json());

    let sweep_path = flags
        .get("sweep")
        .cloned()
        .unwrap_or_else(|| "BENCH_sweep.json".to_string());
    let committed_sweep = load(&sweep_path);
    // The sweep's events/s amortizes per-cell setup over the sample count,
    // so it is only comparable at the committed artifact's own
    // (topologies × dest_sets) methodology — reconstruct it from the meta.
    let meta_u32 = |doc: &Json, key: &str, default: u32| -> u32 {
        doc.get("meta")
            .and_then(|m| m.get(key))
            .and_then(Json::as_f64)
            .map(|v| v as u32)
            .unwrap_or(default)
    };
    let base = SweepBuilder::quick()
        .topologies(meta_u32(&committed_sweep, "topologies", 2))
        .dest_sets(meta_u32(&committed_sweep, "dest_sets", 3));
    eprintln!(
        "bench-compare: fresh bench-sweep at the committed {}x{} methodology \
         ({threads} worker(s))...",
        meta_u32(&committed_sweep, "topologies", 2),
        meta_u32(&committed_sweep, "dest_sets", 3)
    );
    let fresh_sweep = bench_sweep(&base, threads).unwrap_or_else(|e| {
        eprintln!("bench-compare: {e}");
        std::process::exit(1);
    });
    compare(
        "bench-sweep",
        &sweep_path,
        &committed_sweep,
        fresh_sweep.to_json(),
    );

    if let Some(mega_path) = flags.get("mega") {
        let committed_mega = load(mega_path);
        eprintln!("bench-compare: fresh quick bench-sim --mega...");
        let fresh_mega = bench_mega(true, None, 0, 0).unwrap_or_else(|e| {
            eprintln!("bench-compare: {e}");
            std::process::exit(1);
        });
        compare(
            "bench-mega",
            mega_path,
            &committed_mega,
            fresh_mega.to_json(),
        );
    }

    let mut regressed = false;
    for c in &checks {
        let bad = c.regressed(threshold);
        regressed |= bad;
        println!(
            "{:>22}: committed {:>14.1} | fresh {:>14.1} | ratio {:.2}{}",
            c.metric,
            c.committed,
            c.fresh,
            c.ratio(),
            if bad { "  REGRESSION" } else { "" }
        );
    }
    if regressed {
        eprintln!(
            "bench-compare: FAILED — at least one rate regressed more than {:.0}%",
            threshold * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "bench-compare: all {} rate(s) within {:.0}% of committed",
        checks.len(),
        threshold * 100.0
    );
}

/// The `chaos` subcommand: the robustness grid (drop rate × crash count)
/// over the paper's sampling methodology, reported as a table plus the
/// unified figure JSON. The JSON records no thread count and is
/// byte-identical for every `--threads` value — CI runs it twice and diffs.
fn cmd_chaos(flags: &HashMap<String, String>) {
    if flags.contains_key("arq") {
        cmd_chaos_arq(flags);
        return;
    }
    let default_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads: usize = get(flags, "threads", default_threads);
    let quick = flags.contains_key("quick");
    let seed: u64 = get(flags, "seed", 1997);
    let dests: u32 = get(flags, "dests", 31);
    let m: u32 = get(flags, "m", 4);
    let live_repair = flags.contains_key("live-repair");
    // With live repair the drawn hosts crash mid-run (default 5 µs: before
    // the first send completes, so every crash exercises the repair path);
    // without it they are repaired around before the run, at time zero.
    let crash_at_us: f64 = get(flags, "crash-at", if live_repair { 5.0 } else { 0.0 });
    let spec = FaultPlanSpec {
        seed,
        live_repair,
        crash_at_us,
        ..FaultPlanSpec::default()
    };
    let (base, drops, crashes, label) = if quick {
        (
            SweepBuilder::quick(),
            vec![0.0, 0.05, 0.1],
            vec![0u32, 1, 2],
            "quick (2x3)",
        )
    } else {
        (
            SweepBuilder::paper(),
            vec![0.0, 0.01, 0.02, 0.05, 0.1, 0.2],
            vec![0u32, 1, 2, 4, 8],
            "paper (10x30)",
        )
    };
    eprintln!(
        "chaos: {label} methodology, {}x{} grid, {threads} worker(s)...",
        drops.len(),
        crashes.len()
    );
    let sweep = base
        .parallelism(threads)
        .fault(spec)
        .build()
        .unwrap_or_else(|e| {
            eprintln!("chaos: {e}");
            std::process::exit(2);
        });
    let report = sweep.chaos(&drops, &crashes, dests, m).unwrap_or_else(|e| {
        eprintln!("chaos: {e}");
        std::process::exit(1);
    });
    println!(
        "chaos grid: {dests} dests, {m} packets, fault seed {seed}, {} samples/cell{}",
        sweep.config().samples(),
        if live_repair { ", live repair on" } else { "" }
    );
    print!(
        "{:>6} {:>7} {:>9} {:>6} {:>9} {:>12} {:>11} {:>10}",
        "drop",
        "crashes",
        "delivered",
        "failed",
        "unreached",
        "latency(us)",
        "retransmits",
        "reattached"
    );
    if live_repair {
        print!(" {:>7} {:>8} {:>11}", "repairs", "reissued", "written-off");
    }
    println!();
    for d in 0..report.drop_rates.len() {
        for c in 0..report.crash_counts.len() {
            let cell = report.cell(d, c);
            print!(
                "{:>6.2} {:>7} {:>9} {:>6} {:>9} {:>12.2} {:>11} {:>10}",
                cell.drop_rate,
                cell.crashes,
                cell.delivered,
                cell.failed,
                cell.unreached,
                cell.mean_latency_us,
                cell.retransmits,
                cell.reattached
            );
            if live_repair {
                print!(
                    " {:>7} {:>8} {:>11}",
                    cell.repairs, cell.reissued_packets, cell.unreachable_crashed
                );
            }
            println!();
        }
    }
    if report.all_reached() {
        println!("all-reached invariant holds: every run reached every surviving destination");
    } else {
        let failed: u32 = report.cells.iter().map(|c| c.failed).sum();
        let unreached: u64 = report.cells.iter().map(|c| c.unreached).sum();
        println!(
            "WARNING: {failed} run(s) exhausted the retransmission budget; \
             {unreached} surviving destination(s) unreached"
        );
    }
    // Engine effort is stdout-only context: the JSON report stays
    // byte-identical across hosts and thread counts.
    let effort = sweep.sim_effort();
    let cache = sweep.cache_stats();
    println!(
        "engine: {} events processed, peak queue {}, tree cache {}/{} hits, \
         route cache {}/{} hits",
        effort.events_processed,
        effort.peak_queue_len,
        cache.hits,
        cache.hits + cache.misses,
        cache.route_hits,
        cache.route_hits + cache.route_misses
    );
    let default_out = if live_repair {
        "results/chaos_repair.json".to_string()
    } else {
        "results/chaos.json".to_string()
    };
    let out_path = flags.get("out").unwrap_or(&default_out);
    if let Err(e) = std::fs::write(out_path, report.to_json().to_string_pretty()) {
        eprintln!("chaos: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("report written to {out_path}");
}

/// The `chaos --arq` variant: the recovery-latency grid — stop-and-wait
/// against windowed selective-repeat at every swept drop rate, charting
/// each mode's added latency over its own lossless baseline. The JSON
/// records no thread count and is byte-identical for every `--threads`
/// value — CI runs it twice and diffs.
fn cmd_chaos_arq(flags: &HashMap<String, String>) {
    let default_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads: usize = get(flags, "threads", default_threads);
    let quick = flags.contains_key("quick");
    let seed: u64 = get(flags, "seed", 1997);
    let dests: u32 = get(flags, "dests", 31);
    let m: u32 = get(flags, "m", 4);
    let window: u32 = get(flags, "window", 8);
    let send_units: u32 = get(flags, "send-units", 2);
    let (base, drops, label) = if quick {
        (
            SweepBuilder::quick(),
            vec![0.0, 0.02, 0.05, 0.1],
            "quick (2x3)",
        )
    } else {
        (
            SweepBuilder::paper(),
            vec![0.0, 0.01, 0.02, 0.05, 0.1, 0.2],
            "paper (10x30)",
        )
    };
    eprintln!(
        "chaos --arq: {label} methodology, {} drop rate(s) x 2 modes, {threads} worker(s)...",
        drops.len()
    );
    let sweep = base
        .parallelism(threads)
        .fault(FaultPlanSpec {
            seed,
            ..FaultPlanSpec::default()
        })
        .build()
        .unwrap_or_else(|e| {
            eprintln!("chaos: {e}");
            std::process::exit(2);
        });
    let report = sweep
        .chaos_arq(&drops, dests, m, window, send_units)
        .unwrap_or_else(|e| {
            eprintln!("chaos: {e}");
            std::process::exit(1);
        });
    println!(
        "arq grid: {dests} dests, {m} packets, fault seed {seed}, window {window}, \
         {send_units} send unit(s), {} samples/cell",
        sweep.config().samples()
    );
    println!(
        "{:>13} {:>6} {:>9} {:>6} {:>12} {:>13} {:>11} {:>6} {:>10}",
        "mode",
        "drop",
        "delivered",
        "failed",
        "latency(us)",
        "recovery(us)",
        "retransmits",
        "nacks",
        "stall(us)"
    );
    for cell in &report.cells {
        println!(
            "{:>13} {:>6.2} {:>9} {:>6} {:>12.2} {:>13.2} {:>11} {:>6} {:>10.1}",
            if cell.windowed {
                "windowed"
            } else {
                "stop-and-wait"
            },
            cell.drop_rate,
            cell.delivered,
            cell.failed,
            cell.mean_latency_us,
            cell.recovery_latency_us,
            cell.retransmits,
            cell.nack_ranges_sent,
            cell.window_stalls_us
        );
    }
    if report.all_reached() {
        println!("all-reached invariant holds: every run recovered every destination");
    } else {
        let failed: u32 = report.cells.iter().map(|c| c.failed).sum();
        let unreached: u64 = report.cells.iter().map(|c| c.unreached).sum();
        println!(
            "WARNING: {failed} run(s) exhausted the retransmission budget; \
             {unreached} destination(s) unreached"
        );
    }
    let effort = sweep.sim_effort();
    println!(
        "engine: {} events processed, peak queue {}",
        effort.events_processed, effort.peak_queue_len
    );
    let default_out = "results/chaos_arq.json".to_string();
    let out_path = flags.get("out").unwrap_or(&default_out);
    if let Err(e) = std::fs::write(out_path, report.to_json().to_string_pretty()) {
        eprintln!("chaos: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("report written to {out_path}");
    // The committed plots chart the full paper grid; quick smoke runs
    // (CI's determinism check) must not overwrite them.
    if !quick {
        let plot_dir = flags.get("plots").map(String::as_str).unwrap_or("plots");
        write_figure_plots("chaos", plot_dir, &report.figure());
    }
}

/// The `stream` subcommand: the streaming grid — churn rate × offered
/// load × buffer depth, each cell streaming frames through bounded
/// drop-oldest buffers to a churning group on the optimal k-binomial
/// tree. The JSON records no thread count and is byte-identical for
/// every `--threads` value — CI runs it twice and diffs.
fn cmd_stream(flags: &HashMap<String, String>) {
    let default_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads: usize = get(flags, "threads", default_threads);
    let quick = flags.contains_key("quick");
    let seed: u64 = get(flags, "seed", 1997);
    let (base, mut grid, label) = if quick {
        (SweepBuilder::quick(), StreamGrid::quick(), "quick (2x3)")
    } else {
        (SweepBuilder::paper(), StreamGrid::paper(), "paper (10x30)")
    };
    grid.dests = get(flags, "dests", grid.dests);
    grid.frame_bytes = get(flags, "frame-bytes", grid.frame_bytes);
    grid.mtu_bytes = get(flags, "mtu", grid.mtu_bytes);
    grid.frames = get(flags, "frames", grid.frames);
    eprintln!(
        "stream: {label} methodology, {} churn x {} load x {} buffer cell(s), {threads} worker(s)...",
        grid.churn_levels.len(),
        grid.loads.len(),
        grid.buffer_depths.len()
    );
    let sweep = base
        .parallelism(threads)
        .base_seed(seed)
        .build()
        .unwrap_or_else(|e| {
            eprintln!("stream: {e}");
            std::process::exit(2);
        });
    let report = sweep.streaming(&grid).unwrap_or_else(|e| {
        eprintln!("stream: {e}");
        std::process::exit(1);
    });
    println!(
        "stream grid: {} dests, {}-byte frames at {}-byte MTU ({} packets), {} frames/stream, \
         {} samples/cell",
        grid.dests,
        grid.frame_bytes,
        grid.mtu_bytes,
        grid.frame_bytes.div_ceil(grid.mtu_bytes),
        grid.frames,
        sweep.config().samples()
    );
    println!(
        "{:>6} {:>5} {:>6} {:>8} {:>8} {:>9} {:>14} {:>14} {:>13}",
        "churn",
        "load",
        "buf",
        "served",
        "dropped",
        "droprate",
        "goodput(Mb/s)",
        "stale(us)",
        "maxstale(us)"
    );
    for cell in &report.cells {
        println!(
            "{:>6} {:>5.2} {:>6} {:>8} {:>8} {:>9.4} {:>14.3} {:>14.2} {:>13.2}",
            cell.churn_events,
            cell.load,
            if cell.buffer_frames == 0 {
                "inf".to_string()
            } else {
                cell.buffer_frames.to_string()
            },
            cell.served,
            cell.dropped,
            cell.drop_rate,
            cell.mean_goodput_mbps,
            cell.mean_staleness_us,
            cell.max_staleness_us
        );
    }
    let effort = sweep.sim_effort();
    println!(
        "engine: {} events processed, peak queue {}",
        effort.events_processed, effort.peak_queue_len
    );
    let default_out = "results/streaming.json".to_string();
    let out_path = flags.get("out").unwrap_or(&default_out);
    if let Err(e) = std::fs::write(out_path, report.to_json().to_string_pretty()) {
        eprintln!("stream: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("report written to {out_path}");
    // The committed plots chart the full paper grid; quick smoke runs
    // (CI's determinism check) must not overwrite them.
    if !quick {
        let plot_dir = flags.get("plots").map(String::as_str).unwrap_or("plots");
        write_figure_plots("stream", plot_dir, &report.figure());
    }
}

/// The `jobs` subcommand: the multi-tenant admission grid (concurrent job
/// count × mean inter-arrival × group size), every cell scheduled under
/// both FIFO and contention-aware admission on identical sampled job sets.
/// The JSON records no thread count and is byte-identical for every
/// `--threads` value — CI runs it twice and diffs.
fn cmd_jobs(flags: &HashMap<String, String>) {
    let default_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads: usize = get(flags, "threads", default_threads);
    let quick = flags.contains_key("quick");
    let seed: u64 = get(flags, "seed", 1997);
    let (base, job_counts, interarrivals, groups, m, label) = if quick {
        (
            SweepBuilder::quick(),
            vec![1u32, 2, 4],
            vec![25.0],
            vec![8u32],
            get(flags, "m", 2),
            "quick (2x3)",
        )
    } else {
        // Multi-tenant cells pool `samples × jobs` completions each, so a
        // 3×5 methodology already gives the percentiles hundreds of
        // observations at the larger job counts — the full 10×30 sampling
        // would add minutes for no visible change in the figure.
        (
            SweepBuilder::paper().topologies(3).dest_sets(5),
            vec![1u32, 2, 4, 8, 16],
            vec![25.0, 100.0],
            vec![8u32, 16],
            get(flags, "m", 4),
            "tenant (3x5)",
        )
    };
    eprintln!(
        "jobs: {label} methodology, {}x{}x{} grid, {threads} worker(s)...",
        job_counts.len(),
        interarrivals.len(),
        groups.len()
    );
    let sweep = base
        .base_seed(seed)
        .parallelism(threads)
        .build()
        .unwrap_or_else(|e| {
            eprintln!("jobs: {e}");
            std::process::exit(2);
        });
    let report = sweep
        .multi_tenant(&job_counts, &interarrivals, &groups, m)
        .unwrap_or_else(|e| {
            eprintln!("jobs: {e}");
            std::process::exit(1);
        });
    if flags.contains_key("json") {
        print!("{}", report.to_json().to_string_pretty());
        return;
    }
    println!(
        "multi-tenant grid: {m} packets/job, base seed {seed}, {} samples/cell, \
         channel load bound {}",
        sweep.config().samples(),
        report.max_channel_load
    );
    println!(
        "{:>5} {:>8} {:>6} | {:>10} {:>10} {:>8} | {:>10} {:>10} {:>8} {:>9}",
        "jobs",
        "gap(us)",
        "group",
        "fifo p50",
        "fifo p99",
        "defer",
        "shaped p50",
        "shaped p99",
        "defer",
        "queue(us)"
    );
    for cell in &report.cells {
        println!(
            "{:>5} {:>8.0} {:>6} | {:>10.2} {:>10.2} {:>8} | {:>10.2} {:>10.2} {:>8} {:>9.2}",
            cell.jobs,
            cell.mean_interarrival_us,
            cell.group,
            cell.fifo.p50_completion_us,
            cell.fifo.p99_completion_us,
            cell.fifo.deferred,
            cell.shaped.p50_completion_us,
            cell.shaped.p99_completion_us,
            cell.shaped.deferred,
            cell.shaped.mean_queue_us
        );
    }
    let effort = sweep.sim_effort();
    println!(
        "engine: {} events processed, peak queue {}, {} cells x {} samples x 2 policies",
        effort.events_processed,
        effort.peak_queue_len,
        report.cells.len(),
        sweep.config().samples()
    );
    let default_out = "results/multi_tenant.json".to_string();
    let out_path = flags.get("out").unwrap_or(&default_out);
    if let Err(e) = std::fs::write(out_path, report.to_json().to_string_pretty()) {
        eprintln!("jobs: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("report written to {out_path}");
    // The committed plots chart the full tenant grid; quick smoke runs
    // (CI's determinism check) must not overwrite them with the 3-cell
    // quick figure.
    if !quick {
        let plot_dir = flags.get("plots").map(String::as_str).unwrap_or("plots");
        write_figure_plots("jobs", plot_dir, &report.figure());
    }
}

/// Writes `<dir>/<figure id>.dat` + `.gp` in the same gnuplot format the
/// `figures` binary uses for every other committed plot: a `# x "label"…`
/// header, one column per series with `?` for missing points, and a
/// pngcairo script. `cmd` labels error messages with the calling
/// subcommand.
fn write_figure_plots(cmd: &str, dir: &str, fig: &optimcast::sweep::Figure) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("{cmd}: cannot create {dir}: {e}");
        return;
    }
    let mut xs: Vec<f64> = Vec::new();
    for s in &fig.series {
        for &(x, _) in &s.points {
            if !xs.contains(&x) {
                xs.push(x);
            }
        }
    }
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let dat_path = format!("{dir}/{}.dat", fig.id);
    let mut dat = String::new();
    dat.push_str("# x");
    for s in &fig.series {
        dat.push_str(&format!("  \"{}\"", s.label));
    }
    dat.push('\n');
    for &x in &xs {
        dat.push_str(&format!("{x}"));
        for s in &fig.series {
            match s.points.iter().find(|&&(px, _)| px == x) {
                Some(&(_, y)) => dat.push_str(&format!(" {y}")),
                None => dat.push_str(" ?"),
            }
        }
        dat.push('\n');
    }
    if let Err(e) = std::fs::write(&dat_path, dat) {
        eprintln!("{cmd}: cannot write {dat_path}: {e}");
        return;
    }
    let gp_path = format!("{dir}/{}.gp", fig.id);
    let mut gp = String::new();
    gp.push_str(&format!(
        "set title \"{}\"\nset xlabel \"{}\"\nset ylabel \"{}\"\nset key left top\nset grid\n",
        fig.title, fig.x_label, fig.y_label
    ));
    gp.push_str(&format!(
        "set terminal pngcairo size 800,600\nset output \"{}.png\"\nset datafile missing \"?\"\nplot ",
        fig.id
    ));
    let plots: Vec<String> = fig
        .series
        .iter()
        .enumerate()
        .map(|(i, s)| {
            format!(
                "\"{}.dat\" using 1:{} with linespoints title \"{}\"",
                fig.id,
                i + 2,
                s.label
            )
        })
        .collect();
    gp.push_str(&plots.join(", \\\n     "));
    gp.push('\n');
    if let Err(e) = std::fs::write(&gp_path, gp) {
        eprintln!("{cmd}: cannot write {gp_path}: {e}");
        return;
    }
    println!("plots written to {dat_path} and {gp_path}");
}

/// The `wire` subcommand: the same k-binomial tree and FPFS schedule the
/// simulator executes, driven over real `std::net::UdpSocket` datagrams.
///
/// * `--role demo` (default): single-process loopback demo — one socket per
///   rank, sinks on threads, the source on the caller's thread. Prints one
///   JSON line per sink and exits non-zero unless every sink reached parity
///   with [`optimcast::core::schedule::Schedule::arrival_order`].
/// * `--role source` / `--role sink --rank R`: multi-process mode. Every
///   process binds `127.0.0.1:(port-base + rank)` and reconstructs the same
///   deterministic plan from `(n, k, m)`, so no coordination channel is
///   needed; start the sinks first, then the source.
fn cmd_wire(flags: &HashMap<String, String>) {
    let n: u32 = get(flags, "n", 8);
    let m: u32 = get(flags, "m", 4);
    if n < 2 {
        eprintln!("wire: --n must be at least 2 (source plus one destination)");
        std::process::exit(2);
    }
    if m == 0 {
        eprintln!("wire: --m must be at least 1 packet");
        std::process::exit(2);
    }
    let k: u32 = match flags.get("k") {
        Some(v) => v.parse().unwrap_or_else(|e| {
            eprintln!("--k: {e}");
            std::process::exit(2);
        }),
        None => optimal_k(u64::from(n), m).k,
    };
    let payload: usize = get(flags, "payload", 4096);
    let mtu: usize = get(flags, "mtu", DEFAULT_MTU);
    if mtu <= HEADER_LEN {
        eprintln!("wire: --mtu must exceed the {HEADER_LEN}-byte frame header");
        std::process::exit(2);
    }
    let timeout = std::time::Duration::from_millis(get(flags, "timeout-ms", 10_000u64));
    let role = flags.get("role").map(String::as_str).unwrap_or("demo");
    match role {
        "demo" => {
            let reports = loopback_demo(n, k, m, payload, mtu, timeout).unwrap_or_else(|e| {
                eprintln!("wire: {e}");
                std::process::exit(1);
            });
            let mut ok = true;
            for r in &reports {
                println!("{}", r.to_json_line());
                ok &= r.parity();
            }
            if ok {
                eprintln!(
                    "wire demo: {} sink(s) all at parity with the predicted delivery order \
                     (n={n}, k={k}, m={m})",
                    reports.len()
                );
            } else {
                eprintln!("wire demo: PARITY VIOLATION — wire order diverged from the schedule");
                std::process::exit(1);
            }
        }
        "source" | "sink" => {
            let port_base: u32 = get(flags, "port-base", 47_000u32);
            let rank: u32 = if role == "source" {
                0
            } else {
                get(flags, "rank", 0)
            };
            if role == "sink" && (rank == 0 || rank >= n) {
                eprintln!("wire: --role sink needs --rank R with 1 <= R < n");
                std::process::exit(2);
            }
            if port_base + n > u32::from(u16::MAX) {
                eprintln!("wire: --port-base {port_base} leaves no room for {n} ranks");
                std::process::exit(2);
            }
            let plan = WirePlan::new(n, k, m, payload, mtu);
            let fail = |e: optimcast::netsim::TransportError| -> ! {
                eprintln!("wire: {e}");
                std::process::exit(1);
            };
            let mut t = UdpTransport::bind(("127.0.0.1", (port_base + rank) as u16))
                .unwrap_or_else(|e| fail(e));
            t.set_peers(
                (0..n)
                    .map(|r| std::net::SocketAddr::from(([127, 0, 0, 1], (port_base + r) as u16)))
                    .collect(),
            );
            t.set_mtu(mtu);
            if role == "source" {
                let sent = run_source(&plan, &mut t).unwrap_or_else(|e| fail(e));
                t.close().unwrap_or_else(|e| fail(e));
                println!(
                    "wire source: {sent} send(s) across {} schedule steps (n={n}, k={k}, m={m})",
                    plan.schedule.total_steps()
                );
            } else {
                let report =
                    run_sink(&plan, Rank(rank), &mut t, timeout).unwrap_or_else(|e| fail(e));
                println!("{}", report.to_json_line());
                if !report.parity() {
                    std::process::exit(1);
                }
            }
        }
        other => {
            eprintln!("wire: unknown role '{other}' (demo, source, or sink)");
            std::process::exit(2);
        }
    }
}

/// The `simulate --json` document: headline metrics plus the structured
/// counters, machine-readable for scripting around the CLI.
fn simulate_json(wl: &WorkloadOutcome, k: u32, steps: u64) -> Json {
    let out = &wl.jobs[0];
    let c = &wl.counters;
    Json::obj(vec![
        ("optimal_k", Json::from(u64::from(k))),
        ("predicted_steps", Json::from(steps)),
        ("latency_us", Json::from(out.latency_us)),
        ("makespan_us", Json::from(wl.makespan_us)),
        (
            "counters",
            Json::obj(vec![
                ("total_sends", Json::from(c.total_sends)),
                ("blocked_sends", Json::from(c.blocked_sends)),
                ("packets_forwarded", Json::from(c.packets_forwarded)),
                ("channel_stall_us", Json::from(c.channel_stall_us)),
                ("recv_unit_waits", Json::from(c.recv_unit_waits)),
                ("recv_unit_wait_us", Json::from(c.recv_unit_wait_us)),
                ("max_send_queue", Json::from(c.max_send_queue as u64)),
                (
                    "buffer_occupancy",
                    Json::Arr(c.buffer_occupancy.iter().map(|&n| Json::from(n)).collect()),
                ),
                ("events", Json::from(c.events)),
                ("packets_dropped", Json::from(c.packets_dropped)),
                ("packets_corrupted", Json::from(c.packets_corrupted)),
                ("retransmits", Json::from(c.retransmits)),
                ("deliveries_abandoned", Json::from(c.deliveries_abandoned)),
                ("faults_triggered", Json::from(c.faults_triggered)),
                ("recovery_wait_us", Json::from(c.recovery_wait_us)),
                ("repairs", Json::from(c.repairs)),
                ("reissued_packets", Json::from(c.reissued_packets)),
                ("repair_wait_us", Json::from(c.repair_wait_us)),
                ("resend_requests", Json::from(c.resend_requests)),
                ("nack_ranges_sent", Json::from(c.nack_ranges_sent)),
                ("late_acks", Json::from(c.late_acks)),
                ("duplicate_acks", Json::from(c.duplicate_acks)),
                ("window_stalls_us", Json::from(c.window_stalls_us)),
                ("deadline_writeoffs", Json::from(c.deadline_writeoffs)),
            ]),
        ),
        (
            "max_ni_buffer",
            Json::from(u64::from(
                out.max_ni_buffer[1..].iter().max().copied().unwrap_or(0),
            )),
        ),
        (
            "unreached",
            Json::Arr(
                wl.unreached
                    .iter()
                    .map(|&(job, rank)| {
                        Json::obj(vec![
                            ("job", Json::from(u64::from(job))),
                            ("rank", Json::from(u64::from(rank.0))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}
