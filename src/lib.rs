//! # optimcast
//!
//! A full reproduction of *"Optimal Multicast with Packetization and Network
//! Interface Support"* (Ram Kesavan and Dhabaleswar K. Panda, ICPP 1997):
//! k-binomial multicast trees, smart network-interface forwarding (FCFS and
//! FPFS), contention-free tree construction on node orderings, and the
//! simulation apparatus — irregular switch networks with up\*/down\* routing,
//! CCO orderings, and a wormhole discrete-event simulator — that regenerates
//! every figure of the paper's evaluation.
//!
//! The workspace is layered:
//!
//! * `optimcast_core` (re-exported as [`core`](mod@crate::core)) — trees,
//!   schedules, the optimal-`k` solver, analytic latency and buffer models;
//! * `optimcast_topology` (re-exported as [`topology`]) — networks,
//!   routing, orderings, contention analysis;
//! * `optimcast_netsim` (re-exported as [`netsim`]) — the discrete-event
//!   simulator, and the object-safe `Transport` trait every packet-motion
//!   decision flows through;
//! * `optimcast_transport_udp` (re-exported as [`transport_udp`]) — the
//!   real-wire backend: the same trees and FPFS schedules driven over
//!   `std::net::UdpSocket` datagrams (`optimcast wire`);
//! * `optimcast_sweep` (re-exported as [`sweep`]) — the deterministic
//!   parallel sweep engine: the validated [`SweepBuilder`](prelude::SweepBuilder)
//!   API, memoized topology/tree construction, figure regeneration, and the
//!   unified figure JSON schema;
//! * this crate — the experiment facade ([`experiments`]), the static
//!   schedule/route contention analysis ([`analysis`]), and the `figures`
//!   binary that prints every paper figure as a data table.
//!
//! ## Regenerating figures
//!
//! ```
//! use optimcast::prelude::*;
//!
//! // 2 topologies × 3 destination sets on 2 workers; results are
//! // bit-identical for every thread count.
//! let sweep = SweepBuilder::quick().parallelism(2).build().unwrap();
//! let fig = sweep.figure(FigureId::Fig13a).unwrap();
//! assert_eq!(fig.series[0].label, "15 dest");
//! ```
//!
//! ## Quickstart
//!
//! ```
//! use optimcast::prelude::*;
//!
//! // The paper's platform: 64 hosts on 16 eight-port switches.
//! let net = IrregularNetwork::generate(IrregularConfig::default(), 42);
//! let ordering = cco(&net);
//!
//! // Multicast a 512-byte message (8 packets of 64 B) from host 0 to 31
//! // destinations.
//! let params = SystemParams::paper_1997();
//! let dests: Vec<HostId> = (1..32).map(HostId).collect();
//! let chain = ordering.arrange(HostId(0), &dests);
//! let m = params.packets_for(512);
//!
//! // Optimal k-binomial tree (Theorem 3), built contention-free on the
//! // chain (Fig. 11 construction).
//! let opt = optimal_k(chain.len() as u64, m);
//! let tree = kbinomial_tree(chain.len() as u32, opt.k);
//!
//! let out = run_multicast(&net, &tree, &chain, m, &params, RunConfig::default()).unwrap();
//! assert!(out.latency_us > 0.0);
//! ```

pub use optimcast_collectives as collectives;
pub use optimcast_core as core;
pub use optimcast_netsim as netsim;
pub use optimcast_sweep as sweep;
pub use optimcast_topology as topology;
pub use optimcast_transport_udp as transport_udp;

pub mod analysis;
pub mod comm;
pub mod experiments;
pub mod jsonout;

/// One-stop imports for applications.
pub mod prelude {
    pub use optimcast_core::prelude::*;
    pub use optimcast_netsim::{
        run_multicast, run_multicast_shared, run_multicast_with_faults, ContentionAware,
        ContentionMode, FaultKind, FaultPlan, FaultPlanSpec, FifoAdmission, HostCrash,
        JobScheduler, LinkFailure, MulticastJob, MulticastOutcome, NiTiming, NicKind, RunConfig,
        ScheduledOutcome, ScheduledRun, SimError, SimRun, WorkloadConfig,
    };
    pub use optimcast_sweep::{
        ChaosCell, ChaosFigureId, ChaosReport, Figure, FigureId, Series, StreamCell, StreamGrid,
        StreamReport, Sweep, SweepBuilder, SweepError, TenantCell, TenantPolicyStats, TenantReport,
        TreePolicy,
    };
    pub use optimcast_topology::cube::CubeNetwork;
    pub use optimcast_topology::graph::{ChannelId, HostId, LinkId, SwitchId};
    pub use optimcast_topology::irregular::{IrregularConfig, IrregularNetwork};
    pub use optimcast_topology::ordering::{cco, dimension_ordered, Ordering};
    pub use optimcast_topology::Network;

    pub use crate::analysis::schedule_conflicts;
    pub use crate::comm::Communicator;
}
