//! End-to-end experiment pipeline — now a facade over the
//! [`optimcast_sweep`] engine crate.
//!
//! The sweep engine owns the evaluation methodology (§5.2): validated
//! configuration via [`SweepBuilder`], deterministic parallel execution via
//! [`Sweep`], memoized topology/tree construction, and the figure
//! vocabulary ([`Figure`]/[`Series`]/[`FigureId`]). This module re-exports
//! that API under its historic path and keeps the pre-redesign
//! [`EvalConfig`] entry points compiling as deprecated shims for one
//! release.
//!
//! Migration map:
//!
//! | pre-redesign                         | replacement                                  |
//! |--------------------------------------|----------------------------------------------|
//! | `EvalConfig::paper()` + field edits  | [`SweepBuilder::paper()`] + validated setters |
//! | `fig13a(&cfg)` … `fig14b(&cfg)`      | [`Sweep::figure`] with a [`FigureId`]        |
//! | `avg_latency(&cfg, …)`               | [`Sweep::avg_latency`]                       |
//! | `latency_stats(&cfg, …)`             | [`Sweep::latency_stats`]                     |
//! | `improvement_factor(&cfg, …)`        | [`Sweep::improvement_factor`]                |
//! | `sample_instance(&cfg, …)`           | [`Sweep::topology`] + [`sample_chain`]       |

pub use optimcast_sweep::{
    bench_sweep, buffer_figure, fig12a, fig12b, fig4, fig5, fig8, fig_disciplines,
    k_search_interval, m_axis, sample_chain, BenchReport, CacheStats, Figure, FigureId, Instance,
    LatencyStats, PointSpec, Series, Sweep, SweepBuilder, SweepConfig, SweepError, TopologyEntry,
    TreePolicy, DEST_COUNTS, M_SWEEP, N_SWEEP, PACKET_COUNTS,
};

use optimcast_core::params::SystemParams;
use optimcast_netsim::RunConfig;
use optimcast_topology::irregular::IrregularConfig;

/// Pre-redesign evaluation configuration with free-form public fields.
///
/// Superseded by [`SweepBuilder`], which validates at build time and adds
/// `.parallelism(n)`. The fields stay public so struct-update call sites
/// (`EvalConfig { topologies: 2, ..EvalConfig::paper() }`) keep compiling
/// during the migration.
#[deprecated(since = "0.2.0", note = "use SweepBuilder::paper()/quick() instead")]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalConfig {
    /// System timing/sizing parameters.
    pub params: SystemParams,
    /// Shape of the random irregular networks.
    pub net: IrregularConfig,
    /// Number of random topologies averaged per point (paper: 10).
    pub topologies: u32,
    /// Number of random destination sets per topology (paper: 30).
    pub dest_sets: u32,
    /// Base RNG seed; every sample seed derives deterministically from it.
    pub base_seed: u64,
}

#[allow(deprecated)]
impl EvalConfig {
    /// The paper's full methodology: 10 topologies × 30 destination sets.
    pub fn paper() -> Self {
        Self::from_builder(SweepBuilder::paper())
    }

    /// A reduced methodology for tests and smoke runs
    /// (2 topologies × 3 destination sets).
    pub fn quick() -> Self {
        Self::from_builder(SweepBuilder::quick())
    }

    fn from_builder(b: SweepBuilder) -> Self {
        let cfg = b.config().expect("presets are valid");
        EvalConfig {
            params: *cfg.params(),
            net: cfg.net(),
            topologies: cfg.topologies(),
            dest_sets: cfg.dest_sets(),
            base_seed: cfg.base_seed(),
        }
    }

    /// The equivalent validated builder (single-threaded, like the historic
    /// serial runner).
    pub fn builder(&self) -> SweepBuilder {
        SweepBuilder::paper()
            .params(self.params)
            .network(self.net)
            .topologies(self.topologies)
            .dest_sets(self.dest_sets)
            .base_seed(self.base_seed)
            .parallelism(1)
    }

    fn sweep(&self) -> Sweep {
        self.builder().build().expect("legacy EvalConfig is valid")
    }
}

#[allow(deprecated)]
impl From<EvalConfig> for SweepBuilder {
    fn from(cfg: EvalConfig) -> SweepBuilder {
        cfg.builder()
    }
}

/// Pre-redesign sampling entry point.
#[deprecated(since = "0.2.0", note = "use Sweep::topology + sample_chain instead")]
#[allow(deprecated)]
pub fn sample_instance(cfg: &EvalConfig, topo_idx: u32, set_idx: u32, dests: u32) -> Instance {
    optimcast_sweep::sample_instance(
        &cfg.builder().config().expect("legacy EvalConfig is valid"),
        topo_idx,
        set_idx,
        dests,
    )
}

/// Pre-redesign point evaluation.
#[deprecated(since = "0.2.0", note = "use Sweep::avg_latency instead")]
#[allow(deprecated)]
pub fn avg_latency(
    cfg: &EvalConfig,
    policy: TreePolicy,
    dests: u32,
    m: u32,
    run: RunConfig,
) -> f64 {
    cfg.sweep()
        .avg_latency(policy, dests, m, run)
        .expect("legacy avg_latency callers pass valid points")
}

/// Pre-redesign per-sample statistics.
#[deprecated(since = "0.2.0", note = "use Sweep::latency_stats instead")]
#[allow(deprecated)]
pub fn latency_stats(
    cfg: &EvalConfig,
    policy: TreePolicy,
    dests: u32,
    m: u32,
    run: RunConfig,
) -> LatencyStats {
    cfg.sweep()
        .latency_stats(policy, dests, m, run)
        .expect("legacy latency_stats callers pass valid points")
}

/// Pre-redesign improvement-factor sweep.
#[deprecated(since = "0.2.0", note = "use Sweep::improvement_factor instead")]
#[allow(deprecated)]
pub fn improvement_factor(cfg: &EvalConfig, dests: u32) -> f64 {
    cfg.sweep()
        .improvement_factor(dests)
        .expect("legacy improvement_factor callers pass valid dests")
}

macro_rules! legacy_figure {
    ($(#[$doc:meta])* $name:ident, $id:expr) => {
        $(#[$doc])*
        #[deprecated(since = "0.2.0", note = "use Sweep::figure instead")]
        #[allow(deprecated)]
        pub fn $name(cfg: &EvalConfig) -> Figure {
            cfg.sweep()
                .figure($id)
                .expect("legacy figure configs are valid")
        }
    };
}

legacy_figure!(
    /// Fig. 13(a) under the historic serial runner.
    fig13a,
    FigureId::Fig13a
);
legacy_figure!(
    /// Fig. 13(b) under the historic serial runner.
    fig13b,
    FigureId::Fig13b
);
legacy_figure!(
    /// Fig. 14(a) under the historic serial runner.
    fig14a,
    FigureId::Fig14a
);
legacy_figure!(
    /// Fig. 14(b) under the historic serial runner.
    fig14b,
    FigureId::Fig14b
);

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    #[test]
    fn shim_presets_match_builder_presets() {
        let legacy = EvalConfig::paper();
        assert_eq!(legacy.topologies, 10);
        assert_eq!(legacy.dest_sets, 30);
        assert_eq!(legacy.base_seed, 1997);
        let quick = EvalConfig::quick();
        assert_eq!((quick.topologies, quick.dest_sets), (2, 3));
        // Struct-update call sites keep working and round-trip through the
        // builder unchanged.
        let tweaked = EvalConfig {
            topologies: 3,
            ..EvalConfig::paper()
        };
        let cfg = SweepBuilder::from(tweaked).config().unwrap();
        assert_eq!(cfg.topologies(), 3);
        assert_eq!(cfg.dest_sets(), 30);
        assert_eq!(cfg.threads(), 1);
    }

    #[test]
    fn shim_avg_latency_matches_engine() {
        let legacy = avg_latency(
            &EvalConfig::quick(),
            TreePolicy::Binomial,
            15,
            2,
            RunConfig::default(),
        );
        let engine = SweepBuilder::quick()
            .build()
            .unwrap()
            .avg_latency(TreePolicy::Binomial, 15, 2, RunConfig::default())
            .unwrap();
        assert_eq!(legacy.to_bits(), engine.to_bits());
    }
}
