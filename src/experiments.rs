//! The paper's evaluation pipeline (§5): workload generation, parameter
//! sweeps, baselines, and the data series behind every figure.
//!
//! Methodology reproduced from §5.2: for each data point the multicast
//! latency is averaged over `dest_sets` random destination sets on each of
//! `topologies` random irregular switch topologies (paper: 30 × 10), using
//! CCO as the base ordering, on a 64-host/16-switch/8-port network with
//! `t_s = t_r = 12.5 µs`, 64-byte packets, `t_send = 3 µs`, `t_recv = 2 µs`.
//!
//! Every figure of the paper has a function here returning a [`Figure`]
//! (labelled data series); the `figures` binary prints them and the
//! Criterion benches in `crates/bench` measure the underlying computations.

use optimcast_core::buffer::BufferAnalysis;
use optimcast_core::builders::{binomial_tree, kbinomial_tree, linear_tree};
use optimcast_core::coverage::ceil_log2;
use optimcast_core::latency::{conventional_latency_us, smart_latency_us};
use optimcast_core::optimal::{optimal_k, optimal_k_fcfs};
use optimcast_core::params::SystemParams;
use optimcast_core::schedule::fpfs_schedule;
use optimcast_core::tree::MulticastTree;
use optimcast_netsim::{run_multicast, RunConfig};
use optimcast_rng::{ChaCha8Rng, SliceRandom};
use optimcast_topology::graph::HostId;
use optimcast_topology::irregular::{IrregularConfig, IrregularNetwork};
use optimcast_topology::ordering::{cco, Ordering};

/// Evaluation methodology parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalConfig {
    /// System timing/sizing parameters.
    pub params: SystemParams,
    /// Shape of the random irregular networks.
    pub net: IrregularConfig,
    /// Number of random topologies averaged per point (paper: 10).
    pub topologies: u32,
    /// Number of random destination sets per topology (paper: 30).
    pub dest_sets: u32,
    /// Base RNG seed; every sample seed derives deterministically from it.
    pub base_seed: u64,
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self::paper()
    }
}

impl EvalConfig {
    /// The paper's full methodology: 10 topologies × 30 destination sets.
    pub fn paper() -> Self {
        EvalConfig {
            params: SystemParams::paper_1997(),
            net: IrregularConfig::default(),
            topologies: 10,
            dest_sets: 30,
            base_seed: 1997,
        }
    }

    /// A reduced configuration for tests and smoke runs
    /// (2 topologies × 3 destination sets).
    pub fn quick() -> Self {
        EvalConfig {
            topologies: 2,
            dest_sets: 3,
            ..Self::paper()
        }
    }

    fn topology_seed(&self, t: u32) -> u64 {
        self.base_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(t))
    }

    fn set_seed(&self, t: u32, s: u32) -> u64 {
        self.topology_seed(t)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            .wrapping_add(u64::from(s))
    }
}

/// Which multicast tree a run uses (the paper's comparison axes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TreePolicy {
    /// Chain tree (`k = 1`).
    Linear,
    /// Conventional binomial tree — the baseline the paper beats.
    Binomial,
    /// k-binomial tree with the Theorem-3 optimal `k` for `(n, m)`.
    OptimalKBinomial,
    /// k-binomial tree with a fixed `k`.
    FixedK(u32),
}

impl TreePolicy {
    /// Builds the policy's tree for `n` participants and `m` packets.
    pub fn tree(self, n: u32, m: u32) -> MulticastTree {
        match self {
            TreePolicy::Linear => linear_tree(n),
            TreePolicy::Binomial => binomial_tree(n),
            TreePolicy::OptimalKBinomial => kbinomial_tree(n, optimal_k(u64::from(n), m).k),
            TreePolicy::FixedK(k) => kbinomial_tree(n, k),
        }
    }

    /// Display label used in figure series.
    pub fn label(self) -> String {
        match self {
            TreePolicy::Linear => "linear".into(),
            TreePolicy::Binomial => "bin".into(),
            TreePolicy::OptimalKBinomial => "kbin".into(),
            TreePolicy::FixedK(k) => format!("{k}-bin"),
        }
    }
}

/// One labelled data series of a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label (e.g. "47 dest kbin").
    pub label: String,
    /// `(x, y)` points in sweep order.
    pub points: Vec<(f64, f64)>,
}

/// A reproduced figure: labelled series plus axis metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Paper artifact id, e.g. "fig14a".
    pub id: String,
    /// Human title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series, in legend order.
    pub series: Vec<Series>,
}

/// A sampled multicast instance on one topology.
pub struct Instance {
    /// The network (owns topology + routing).
    pub net: IrregularNetwork,
    /// The arranged participant chain (source first) — the rank binding.
    pub chain: Vec<HostId>,
}

/// Samples the paper's workload: a random source and `dests` random
/// destinations on the topology generated from `(cfg, topo_idx)`, arranged
/// on the CCO ordering.
///
/// # Panics
///
/// Panics if `dests + 1` exceeds the host count.
pub fn sample_instance(cfg: &EvalConfig, topo_idx: u32, set_idx: u32, dests: u32) -> Instance {
    let net = IrregularNetwork::generate(cfg.net, cfg.topology_seed(topo_idx));
    let ordering = cco(&net);
    let chain = sample_chain(&net, &ordering, cfg.set_seed(topo_idx, set_idx), dests);
    Instance { net, chain }
}

/// Draws `dests + 1` distinct random hosts and arranges them on `ordering`
/// (source first).
pub fn sample_chain(
    net: &IrregularNetwork,
    ordering: &Ordering,
    seed: u64,
    dests: u32,
) -> Vec<HostId> {
    use optimcast_topology::Network as _;
    let n_hosts = net.num_hosts();
    assert!(
        dests < n_hosts,
        "multicast set of {} exceeds {n_hosts} hosts",
        dests + 1
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut hosts: Vec<HostId> = (0..n_hosts).map(HostId).collect();
    hosts.shuffle(&mut rng);
    let source = hosts[0];
    let dests = &hosts[1..=dests as usize];
    ordering.arrange(source, dests)
}

/// Average simulated multicast latency (µs) for `dests` destinations and an
/// `m`-packet message under `policy`, following the §5.2 averaging
/// methodology. Topologies are evaluated in parallel.
pub fn avg_latency(
    cfg: &EvalConfig,
    policy: TreePolicy,
    dests: u32,
    m: u32,
    run: RunConfig,
) -> f64 {
    let per_topology: Vec<f64> = parallel_map(cfg.topologies, |t| {
        let net = IrregularNetwork::generate(cfg.net, cfg.topology_seed(t));
        let ordering = cco(&net);
        let mut sum = 0.0;
        for s in 0..cfg.dest_sets {
            let chain = sample_chain(&net, &ordering, cfg.set_seed(t, s), dests);
            let tree = policy.tree(chain.len() as u32, m);
            let out = run_multicast(&net, &tree, &chain, m, &cfg.params, run)
                .expect("sampled chains form valid bindings");
            sum += out.latency_us;
        }
        sum / f64::from(cfg.dest_sets)
    });
    per_topology.iter().sum::<f64>() / per_topology.len() as f64
}

/// Maps `f` over `0..n` on scoped threads (one per index), preserving order.
fn parallel_map<T: Send>(n: u32, f: impl Fn(u32) -> T + Sync) -> Vec<T> {
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (t, slot) in out.iter_mut().enumerate() {
            let f = &f;
            scope.spawn(move || {
                *slot = Some(f(t as u32));
            });
        }
    });
    out.into_iter()
        .map(|s| s.expect("worker filled slot"))
        .collect()
}

/// The destination counts the paper sweeps in Figs. 12(a)/13(a).
pub const DEST_COUNTS: [u32; 4] = [15, 31, 47, 63];
/// The packet counts the paper sweeps in Figs. 12(b)/13(b).
pub const PACKET_COUNTS: [u32; 4] = [1, 2, 4, 8];
/// The m-axis of Figs. 12(a)/13(a)/14(a): 1..32 packets.
pub const M_SWEEP: [u32; 10] = [1, 2, 4, 6, 8, 12, 16, 20, 24, 28];
/// The n-axis (multicast set size) of Figs. 12(b)/13(b)/14(b).
pub const N_SWEEP: [u32; 9] = [4, 8, 12, 16, 24, 32, 40, 48, 64];

/// Extended m-axis including the figure's right edge (m = 32).
pub fn m_axis() -> Vec<u32> {
    let mut v = M_SWEEP.to_vec();
    v.push(32);
    v
}

/// Fig. 4: conventional vs smart NI, single-packet multicast to 3
/// destinations over the binomial tree (analytic; latency in µs).
pub fn fig4(params: &SystemParams) -> Figure {
    let tree = binomial_tree(4);
    let sched = fpfs_schedule(&tree, 1);
    Figure {
        id: "fig4".into(),
        title: "Conventional vs smart NI (binomial, 3 dest, 1 packet)".into(),
        x_label: "NI architecture".into(),
        y_label: "latency (us)".into(),
        series: vec![
            Series {
                label: "conventional".into(),
                points: vec![(0.0, conventional_latency_us(&tree, 1, params))],
            },
            Series {
                label: "smart".into(),
                points: vec![(1.0, smart_latency_us(&sched, params))],
            },
        ],
    }
}

/// Fig. 5: steps to multicast 3 packets to 3 destinations over the binomial
/// vs the linear tree (6 vs 5 steps) — the motivating counterexample.
pub fn fig5() -> Figure {
    let steps = |tree: &MulticastTree| f64::from(fpfs_schedule(tree, 3).total_steps());
    Figure {
        id: "fig5".into(),
        title: "Binomial vs linear tree, 3 packets to 3 destinations".into(),
        x_label: "tree".into(),
        y_label: "steps".into(),
        series: vec![
            Series {
                label: "binomial".into(),
                points: vec![(0.0, steps(&binomial_tree(4)))],
            },
            Series {
                label: "linear".into(),
                points: vec![(1.0, steps(&linear_tree(4)))],
            },
        ],
    }
}

/// Fig. 8: per-packet completion steps of a 3-packet multicast to 7
/// destinations over the binomial tree (pipelining with lag `k_T = 3`).
pub fn fig8() -> Figure {
    let sched = fpfs_schedule(&binomial_tree(8), 3);
    Figure {
        id: "fig8".into(),
        title: "Pipelined packet completions (binomial, 7 dest, 3 packets)".into(),
        x_label: "packet".into(),
        y_label: "completion step".into(),
        series: vec![Series {
            label: "completion".into(),
            points: (0..3)
                .map(|p| (f64::from(p + 1), f64::from(sched.packet_completion(p))))
                .collect(),
        }],
    }
}

/// §3.3.2: FCFS vs FPFS per-packet buffer residency (in `t_sq` units) as the
/// message length grows, for an intermediate node with `k` children.
pub fn buffer_figure(k: u32) -> Figure {
    let mut fcfs = Vec::new();
    let mut fpfs = Vec::new();
    for m in m_axis() {
        let a = BufferAnalysis::new(k, m);
        fcfs.push((f64::from(m), a.fcfs_residency as f64));
        fpfs.push((f64::from(m), a.fpfs_residency as f64));
    }
    Figure {
        id: "buffers".into(),
        title: format!("Buffer residency per packet, k = {k} children (t_sq units)"),
        x_label: "packets (m)".into(),
        y_label: "residency (t_sq)".into(),
        series: vec![
            Series {
                label: "FCFS".into(),
                points: fcfs,
            },
            Series {
                label: "FPFS".into(),
                points: fpfs,
            },
        ],
    }
}

/// Fig. 12(a): optimal `k` vs number of packets, for 15/31/47/63
/// destinations (analytic).
pub fn fig12a() -> Figure {
    let series = DEST_COUNTS
        .iter()
        .map(|&d| Series {
            label: format!("{d} dest"),
            points: m_axis()
                .into_iter()
                .map(|m| (f64::from(m), f64::from(optimal_k(u64::from(d) + 1, m).k)))
                .collect(),
        })
        .collect();
    Figure {
        id: "fig12a".into(),
        title: "Optimal k value for k-binomial tree (fixed n, varying m)".into(),
        x_label: "Number of packets (m)".into(),
        y_label: "Optimal k".into(),
        series,
    }
}

/// Fig. 12(b): optimal `k` vs multicast set size, for 1/2/4/8 packets
/// (analytic).
pub fn fig12b() -> Figure {
    let series = PACKET_COUNTS
        .iter()
        .map(|&m| Series {
            label: format!("{m} pkt{}", if m == 1 { "" } else { "s" }),
            points: (2..=64)
                .map(|n: u64| (n as f64, f64::from(optimal_k(n, m).k)))
                .collect(),
        })
        .collect();
    Figure {
        id: "fig12b".into(),
        title: "Optimal k value for k-binomial tree (fixed m, varying n)".into(),
        x_label: "Multicast set size (n)".into(),
        y_label: "Optimal k".into(),
        series,
    }
}

/// Fig. 13(a): simulated k-binomial multicast latency vs packets, for
/// 15/31/47/63 destinations.
pub fn fig13a(cfg: &EvalConfig) -> Figure {
    let series = DEST_COUNTS
        .iter()
        .map(|&d| Series {
            label: format!("{d} dest"),
            points: m_axis()
                .into_iter()
                .map(|m| {
                    (
                        f64::from(m),
                        avg_latency(
                            cfg,
                            TreePolicy::OptimalKBinomial,
                            d,
                            m,
                            RunConfig::default(),
                        ),
                    )
                })
                .collect(),
        })
        .collect();
    Figure {
        id: "fig13a".into(),
        title: "Multicast latency using k-binomial tree (fixed n, varying m)".into(),
        x_label: "Number of packets (m)".into(),
        y_label: "latency (us)".into(),
        series,
    }
}

/// Fig. 13(b): simulated k-binomial multicast latency vs multicast set size,
/// for 1/2/4/8 packets.
pub fn fig13b(cfg: &EvalConfig) -> Figure {
    let series = PACKET_COUNTS
        .iter()
        .rev() // paper legend lists 8 pkts first
        .map(|&m| Series {
            label: format!("{m} pkt{}", if m == 1 { "" } else { "s" }),
            points: N_SWEEP
                .iter()
                .map(|&n| {
                    (
                        f64::from(n),
                        avg_latency(
                            cfg,
                            TreePolicy::OptimalKBinomial,
                            n - 1,
                            m,
                            RunConfig::default(),
                        ),
                    )
                })
                .collect(),
        })
        .collect();
    Figure {
        id: "fig13b".into(),
        title: "Multicast latency using k-binomial tree (fixed m, varying n)".into(),
        x_label: "Multicast set size (n)".into(),
        y_label: "latency (us)".into(),
        series,
    }
}

/// Fig. 14(a): binomial vs optimal k-binomial latency vs packets, for 15 and
/// 47 destinations.
pub fn fig14a(cfg: &EvalConfig) -> Figure {
    let mut series = Vec::new();
    for &d in &[47u32, 15] {
        for policy in [TreePolicy::Binomial, TreePolicy::OptimalKBinomial] {
            series.push(Series {
                label: format!("{d} dest {}", policy.label()),
                points: m_axis()
                    .into_iter()
                    .map(|m| {
                        (
                            f64::from(m),
                            avg_latency(cfg, policy, d, m, RunConfig::default()),
                        )
                    })
                    .collect(),
            });
        }
    }
    Figure {
        id: "fig14a".into(),
        title: "Binomial vs k-binomial latency (fixed n, varying m)".into(),
        x_label: "Number of packets (m)".into(),
        y_label: "latency (us)".into(),
        series,
    }
}

/// Fig. 14(b): binomial vs optimal k-binomial latency vs multicast set size,
/// for 2 and 8 packets.
pub fn fig14b(cfg: &EvalConfig) -> Figure {
    let mut series = Vec::new();
    for &m in &[8u32, 2] {
        for policy in [TreePolicy::Binomial, TreePolicy::OptimalKBinomial] {
            series.push(Series {
                label: format!("{m} pkts {}", policy.label()),
                points: N_SWEEP
                    .iter()
                    .map(|&n| {
                        (
                            f64::from(n),
                            avg_latency(cfg, policy, n - 1, m, RunConfig::default()),
                        )
                    })
                    .collect(),
            });
        }
    }
    Figure {
        id: "fig14b".into(),
        title: "Binomial vs k-binomial latency (fixed m, varying n)".into(),
        x_label: "Multicast set size (n)".into(),
        y_label: "latency (us)".into(),
        series,
    }
}

/// Extension figure: total steps at the per-discipline optimal `k` for
/// FPFS vs FCFS smart NIs across message lengths (the paper proves
/// optimality only under FPFS; this quantifies what FCFS leaves on the
/// table and where its optimum retreats to the chain).
pub fn fig_disciplines(n: u32) -> Figure {
    let mut fpfs = Vec::new();
    let mut fcfs = Vec::new();
    for m in m_axis() {
        fpfs.push((f64::from(m), optimal_k(u64::from(n), m).steps as f64));
        fcfs.push((f64::from(m), optimal_k_fcfs(n, m).steps as f64));
    }
    Figure {
        id: "disciplines".into(),
        title: format!("Optimal-tree steps, FPFS vs FCFS (n = {n})"),
        x_label: "Number of packets (m)".into(),
        y_label: "steps at optimal k".into(),
        series: vec![
            Series {
                label: "FPFS".into(),
                points: fpfs,
            },
            Series {
                label: "FCFS".into(),
                points: fcfs,
            },
        ],
    }
}

/// Summary statistics of a latency sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Mean latency (µs).
    pub mean: f64,
    /// Sample standard deviation (µs); 0 for a single sample.
    pub std: f64,
    /// Fastest observed run (µs).
    pub min: f64,
    /// Slowest observed run (µs).
    pub max: f64,
    /// Number of samples (topologies × destination sets).
    pub samples: u32,
}

/// As [`avg_latency`], but returning the full per-sample statistics —
/// useful for judging whether a figure's differences exceed sampling noise.
pub fn latency_stats(
    cfg: &EvalConfig,
    policy: TreePolicy,
    dests: u32,
    m: u32,
    run: RunConfig,
) -> LatencyStats {
    let per_topology: Vec<Vec<f64>> = parallel_map(cfg.topologies, |t| {
        let net = IrregularNetwork::generate(cfg.net, cfg.topology_seed(t));
        let ordering = cco(&net);
        (0..cfg.dest_sets)
            .map(|s| {
                let chain = sample_chain(&net, &ordering, cfg.set_seed(t, s), dests);
                let tree = policy.tree(chain.len() as u32, m);
                run_multicast(&net, &tree, &chain, m, &cfg.params, run)
                    .expect("sampled chains form valid bindings")
                    .latency_us
            })
            .collect()
    });
    let all: Vec<f64> = per_topology.into_iter().flatten().collect();
    let nsamp = all.len() as f64;
    let mean = all.iter().sum::<f64>() / nsamp;
    let var = if all.len() > 1 {
        all.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (nsamp - 1.0)
    } else {
        0.0
    };
    LatencyStats {
        mean,
        std: var.sqrt(),
        min: all.iter().copied().fold(f64::INFINITY, f64::min),
        max: all.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        samples: all.len() as u32,
    }
}

/// Sanity bound used by tests and the figures binary: the largest
/// improvement factor of the optimal k-binomial tree over the binomial tree
/// across an m sweep at `dests` destinations.
pub fn improvement_factor(cfg: &EvalConfig, dests: u32) -> f64 {
    m_axis()
        .into_iter()
        .map(|m| {
            let bin = avg_latency(cfg, TreePolicy::Binomial, dests, m, RunConfig::default());
            let kbin = avg_latency(
                cfg,
                TreePolicy::OptimalKBinomial,
                dests,
                m,
                RunConfig::default(),
            );
            bin / kbin
        })
        .fold(0.0, f64::max)
}

/// Upper bound of the optimal-k search interval, exposed for the benches.
pub fn k_search_interval(n: u64) -> u32 {
    ceil_log2(n).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_distinct() {
        let cfg = EvalConfig::quick();
        assert_ne!(cfg.topology_seed(0), cfg.topology_seed(1));
        assert_ne!(cfg.set_seed(0, 0), cfg.set_seed(0, 1));
        assert_ne!(cfg.set_seed(0, 1), cfg.set_seed(1, 0));
    }

    #[test]
    fn sample_chain_is_deterministic_and_valid() {
        let net = IrregularNetwork::generate(IrregularConfig::default(), 1);
        let ordering = cco(&net);
        let a = sample_chain(&net, &ordering, 99, 15);
        let b = sample_chain(&net, &ordering, 99, 15);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        let mut dedup = a.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 16, "participants must be distinct");
    }

    #[test]
    fn fig12a_matches_paper_claims() {
        let f = fig12a();
        assert_eq!(f.series.len(), 4);
        for s in &f.series {
            // m = 1 point: optimal k = ceil(log2 n) (binomial).
            let d: u32 = s.label.split_whitespace().next().unwrap().parse().unwrap();
            assert_eq!(
                s.points[0].1 as u32,
                ceil_log2(u64::from(d) + 1),
                "{}",
                s.label
            );
            // k is non-increasing along m.
            for w in s.points.windows(2) {
                assert!(w[1].1 <= w[0].1, "{} rose with m", s.label);
            }
        }
        // 15 dest reaches k = 1 within the sweep (paper: crossover to linear).
        let s15 = f.series.iter().find(|s| s.label == "15 dest").unwrap();
        assert_eq!(s15.points.last().unwrap().1, 1.0);
    }

    #[test]
    fn fig12b_converges_to_2() {
        let f = fig12b();
        for s in &f.series {
            if s.label.starts_with('4') || s.label.starts_with('8') {
                let last = s.points.last().unwrap();
                assert_eq!(last.1, 2.0, "{} at n=64", s.label);
            }
        }
    }

    #[test]
    fn parallel_map_preserves_order() {
        let v = parallel_map(8, |i| i * 10);
        assert_eq!(v, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn avg_latency_sane_and_deterministic() {
        let cfg = EvalConfig::quick();
        let a = avg_latency(&cfg, TreePolicy::Binomial, 15, 2, RunConfig::default());
        let b = avg_latency(&cfg, TreePolicy::Binomial, 15, 2, RunConfig::default());
        assert_eq!(a, b, "averaging must be deterministic");
        // At least the contention-free analytic floor: t_s + steps*t_step + t_r.
        let floor = 12.5 + f64::from(4 + 4) * 5.0 + 12.5;
        assert!(a >= floor - 1e-9, "avg {a} below analytic floor {floor}");
        assert!(a < 1000.0, "avg {a} implausibly large");
    }

    #[test]
    fn kbin_beats_bin_for_long_messages() {
        let cfg = EvalConfig::quick();
        let bin = avg_latency(&cfg, TreePolicy::Binomial, 47, 16, RunConfig::default());
        let kbin = avg_latency(
            &cfg,
            TreePolicy::OptimalKBinomial,
            47,
            16,
            RunConfig::default(),
        );
        assert!(
            kbin < bin,
            "k-binomial ({kbin}) should beat binomial ({bin}) at m=16"
        );
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;

    #[test]
    fn stats_bracket_the_mean() {
        let cfg = EvalConfig::quick();
        let s = latency_stats(&cfg, TreePolicy::Binomial, 15, 2, RunConfig::default());
        assert_eq!(s.samples, cfg.topologies * cfg.dest_sets);
        assert!(s.min <= s.mean && s.mean <= s.max);
        assert!(s.std >= 0.0);
        let a = avg_latency(&cfg, TreePolicy::Binomial, 15, 2, RunConfig::default());
        // avg_latency averages per-topology means of equal sample counts, so
        // it equals the grand mean.
        assert!((a - s.mean).abs() < 1e-9);
    }

    #[test]
    fn discipline_figure_shapes() {
        let f = fig_disciplines(64);
        let fpfs = &f.series[0].points;
        let fcfs = &f.series[1].points;
        for (a, b) in fpfs.iter().zip(fcfs) {
            assert!(b.1 >= a.1, "FCFS cannot beat FPFS at m={}", a.0);
        }
        // m = 1: identical.
        assert_eq!(fpfs[0].1, fcfs[0].1);
    }
}
