//! End-to-end experiment pipeline — a pure re-export facade over the
//! [`optimcast_sweep`] engine crate.
//!
//! The sweep engine owns the evaluation methodology (§5.2): validated
//! configuration via [`SweepBuilder`], deterministic parallel execution via
//! [`Sweep`], memoized topology/tree construction, and the figure
//! vocabulary ([`Figure`]/[`Series`]/[`FigureId`]). This module re-exports
//! that API under its historic path; the pre-redesign free-form config
//! struct and its deprecated shims have been removed.
//!
//! Migration map (historic name → replacement):
//!
//! | pre-redesign                        | replacement                                   |
//! |-------------------------------------|-----------------------------------------------|
//! | free-form config + field edits      | [`SweepBuilder::paper()`] + validated setters |
//! | `fig13a(&cfg)` … `fig14b(&cfg)`     | [`Sweep::figure`] with a [`FigureId`]         |
//! | `avg_latency(&cfg, …)`              | [`Sweep::avg_latency`]                        |
//! | `latency_stats(&cfg, …)`            | [`Sweep::latency_stats`]                      |
//! | `improvement_factor(&cfg, …)`       | [`Sweep::improvement_factor`]                 |
//! | `sample_instance(&cfg, …)`          | [`sample_instance`] with a [`SweepConfig`]    |

pub use optimcast_sweep::{
    bench_sweep, buffer_figure, fig12a, fig12b, fig4, fig5, fig8, fig_disciplines,
    k_search_interval, m_axis, sample_chain, sample_instance, BenchReport, CacheStats, Figure,
    FigureId, Instance, LatencyStats, PointSpec, Series, Sweep, SweepBuilder, SweepConfig,
    SweepError, TenantCell, TenantPolicyStats, TenantReport, TopologyEntry, TreePolicy,
    DEST_COUNTS, M_SWEEP, N_SWEEP, PACKET_COUNTS,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_reaches_the_engine() {
        let sweep = SweepBuilder::quick().build().unwrap();
        let fig = sweep.figure(FigureId::Fig4).unwrap();
        assert_eq!(fig.id, "fig4");
        assert!(!fig.series.is_empty());
    }
}
