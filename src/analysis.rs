//! Static contention analysis of multicast schedules on routed networks.
//!
//! Bridges the analytic step schedules of `optimcast-core` with the channel
//! model of `optimcast-topology`: for every step of a schedule, count pairs
//! of simultaneously active transmissions whose routes share a directed
//! channel. A *depth contention-free* tree embedding (paper §4.3.2) has zero
//! such pairs; the count quantifies how far an ordering/tree combination
//! falls short, independent of the event-driven simulator.

use optimcast_core::schedule::Schedule;
use optimcast_topology::contention::share_channel;
use optimcast_topology::graph::HostId;
use optimcast_topology::Network;

/// Per-step and aggregate conflict counts for a schedule embedding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictReport {
    /// Conflicting transmission pairs per step (index 0 = step 1).
    pub per_step: Vec<u64>,
    /// Total conflicting pairs over all steps.
    pub total: u64,
    /// Steps with at least one conflict.
    pub dirty_steps: u32,
}

impl ConflictReport {
    /// True if the embedding is depth contention-free.
    pub fn is_contention_free(&self) -> bool {
        self.total == 0
    }
}

/// Counts channel conflicts between same-step sends of `schedule`, with tree
/// ranks bound to hosts by `binding` (rank `i` runs on `binding[i]`).
///
/// # Panics
///
/// Panics if the binding is shorter than the schedule's participant count.
pub fn schedule_conflicts<N: Network>(
    net: &N,
    schedule: &Schedule,
    binding: &[HostId],
) -> ConflictReport {
    assert!(
        binding.len() >= schedule.participants(),
        "binding must cover every participant"
    );
    let total_steps = schedule.total_steps() as usize;
    let mut per_step = vec![0u64; total_steps];
    let events = schedule.events();
    let mut i = 0;
    while i < events.len() {
        let step = events[i].step;
        let mut j = i;
        while j < events.len() && events[j].step == step {
            j += 1;
        }
        let routes: Vec<Vec<_>> = events[i..j]
            .iter()
            .map(|e| net.route(binding[e.from.index()], binding[e.to.index()]))
            .collect();
        let mut conflicts = 0u64;
        for a in 0..routes.len() {
            for b in a + 1..routes.len() {
                if share_channel(&routes[a], &routes[b]) {
                    conflicts += 1;
                }
            }
        }
        per_step[(step - 1) as usize] = conflicts;
        i = j;
    }
    let total = per_step.iter().sum();
    let dirty_steps = per_step.iter().filter(|&&c| c > 0).count() as u32;
    ConflictReport {
        per_step,
        total,
        dirty_steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimcast_core::builders::binomial_tree;
    use optimcast_core::schedule::fpfs_schedule;
    use optimcast_topology::cube::CubeNetwork;
    use optimcast_topology::irregular::{IrregularConfig, IrregularNetwork};
    use optimcast_topology::ordering::{cco, Ordering};

    #[test]
    fn hypercube_binomial_is_contention_free() {
        // The classic TPDS'94 embedding: binomial tree on the id-ordered
        // hypercube with e-cube routing never shares a channel in a step.
        let net = CubeNetwork::new(2, 4);
        let tree = binomial_tree(16);
        let binding: Vec<HostId> = (0..16).map(HostId).collect();
        for m in [1u32, 4] {
            let report = schedule_conflicts(&net, &fpfs_schedule(&tree, m), &binding);
            assert!(report.is_contention_free(), "m={m}: {report:?}");
        }
    }

    #[test]
    fn cco_no_worse_than_random_on_irregular() {
        let mut cco_total = 0u64;
        let mut rnd_total = 0u64;
        for seed in 0..5u64 {
            let net = IrregularNetwork::generate(IrregularConfig::default(), seed);
            let tree = binomial_tree(64);
            let sched = fpfs_schedule(&tree, 4);
            let c = cco(&net);
            cco_total += schedule_conflicts(&net, &sched, c.hosts()).total;
            let r = Ordering::random(64, seed + 1000);
            rnd_total += schedule_conflicts(&net, &sched, r.hosts()).total;
        }
        assert!(
            cco_total <= rnd_total,
            "CCO {cco_total} conflicts vs random {rnd_total}"
        );
    }

    #[test]
    fn per_step_sums_to_total() {
        let net = IrregularNetwork::generate(IrregularConfig::default(), 3);
        let tree = binomial_tree(64);
        let sched = fpfs_schedule(&tree, 2);
        let binding: Vec<HostId> = (0..64).map(HostId).collect();
        let report = schedule_conflicts(&net, &sched, &binding);
        assert_eq!(report.per_step.iter().sum::<u64>(), report.total);
        assert_eq!(report.per_step.len(), sched.total_steps() as usize);
        assert_eq!(
            report.per_step.iter().filter(|&&c| c > 0).count() as u32,
            report.dirty_steps
        );
    }
}
