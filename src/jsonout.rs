//! Minimal JSON emission for CLI/figure output.
//!
//! The build environment cannot fetch `serde_json`, and the workspace only
//! ever *writes* JSON (figure sidecars, `optimcast simulate --json`), so a
//! tiny value tree plus a pretty-printer covers the need without the
//! dependency.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Finite numbers only; non-finite values print as `null`.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key/value pairs in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object members.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Serializes with two-space indentation and a trailing newline,
    /// matching `serde_json::to_string_pretty` closely enough for diffs.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let inner = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if *n == n.trunc() && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&inner);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    out.push_str(&inner);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < members.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Types that render themselves as a [`Json`] value.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

impl ToJson for crate::experiments::Series {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("label", Json::Str(self.label.clone())),
            (
                "points",
                Json::Arr(
                    self.points
                        .iter()
                        .map(|&(x, y)| Json::Arr(vec![Json::Num(x), Json::Num(y)]))
                        .collect(),
                ),
            ),
        ])
    }
}

impl ToJson for crate::experiments::Figure {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::Str(self.id.clone())),
            ("title", Json::Str(self.title.clone())),
            ("x_label", Json::Str(self.x_label.clone())),
            ("y_label", Json::Str(self.y_label.clone())),
            (
                "series",
                Json::Arr(self.series.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_structure() {
        let v = Json::obj(vec![
            ("name", Json::from("fig\"4\"")),
            ("n", Json::Num(3.0)),
            ("frac", Json::Num(2.5)),
            ("items", Json::Arr(vec![Json::Num(1.0), Json::Null])),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = v.to_string_pretty();
        assert!(s.contains("\"name\": \"fig\\\"4\\\"\""));
        assert!(s.contains("\"n\": 3,"));
        assert!(s.contains("\"frac\": 2.5,"));
        assert!(s.contains("\"empty\": []"));
        // Integral floats print as integers; arrays indent their items.
        assert!(s.contains("[\n    1,\n    null\n  ]"));
    }

    #[test]
    fn figure_round_trips_to_json_text() {
        let fig = crate::experiments::Figure {
            id: "t".into(),
            title: "T".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![crate::experiments::Series {
                label: "s1".into(),
                points: vec![(1.0, 2.0)],
            }],
        };
        let s = fig.to_json().to_string_pretty();
        assert!(s.contains("\"id\": \"t\""));
        assert!(s.contains("\"label\": \"s1\""));
    }
}
