//! JSON emission and parsing — re-exported from the sweep engine crate,
//! which owns the schema shared by the committed `results/*.json` goldens,
//! the CLI `--json` paths, and `BENCH_sweep.json`.

pub use optimcast_sweep::{Json, JsonError, ToJson};
