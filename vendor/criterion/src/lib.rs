//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, `black_box`, and
//! the `criterion_group!`/`criterion_main!` macros — as a small wall-clock
//! timing harness. It reports median per-iteration time to stdout; it does
//! not do criterion's statistical analysis, HTML reports, or regression
//! detection. Swap back to the crates.io dependency to regain those.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(self, &id, f);
        self
    }
}

/// A named collection of benchmarks sharing the driver's configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_bench(self.criterion, &id, f);
        self
    }

    /// Ends the group (formatting separator only).
    pub fn finish(self) {
        println!();
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(c: &Criterion, id: &str, mut f: F) {
    // Warm-up: discover a per-sample iteration count that fits the budget.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_secs(1);
    while warm_start.elapsed() < c.warm_up_time {
        f(&mut b);
        per_iter = b.elapsed.max(Duration::from_nanos(1)) / b.iters as u32;
        if per_iter >= c.warm_up_time {
            break;
        }
    }
    let budget_per_sample = c.measurement_time / c.sample_size as u32;
    let iters = (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1))
        .clamp(1, u128::from(u64::MAX)) as u64;

    let mut samples: Vec<Duration> = Vec::with_capacity(c.sample_size);
    for _ in 0..c.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed / iters as u32);
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], *samples.last().unwrap());
    println!(
        "{id:<56} median {} (min {}, max {}, {} samples x {iters} iters)",
        fmt_duration(median),
        fmt_duration(lo),
        fmt_duration(hi),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.bench_function("sum", |b| b.iter(|| (0u64..100).sum::<u64>()));
        g.finish();
        c.bench_function("ungrouped", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn harness_runs_to_completion() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        tiny_bench(&mut c);
    }

    criterion_group! {
        name = benches;
        config = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2));
        targets = tiny_bench
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }
}
