//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! The build environment for this repository has no access to crates.io, so
//! this vendored crate reimplements exactly the subset of proptest's API the
//! workspace uses — the [`proptest!`] test macro, `prop_assert!` /
//! `prop_assert_eq!`, integer-range strategies, and `proptest::bool::ANY` —
//! on top of the workspace's own deterministic [`optimcast_rng`] generator.
//!
//! Semantics: each `proptest!` test runs [`CASES`] deterministic cases drawn
//! from a seed derived from the test's module path and name. A failing case
//! panics with the drawn inputs (no shrinking — cases are small enough here
//! that raw inputs are directly debuggable). If the real proptest becomes
//! installable, deleting this crate and restoring the crates.io dependency
//! is a drop-in swap.

use optimcast_rng::{ChaCha8Rng, Rng};

/// Number of random cases each property runs.
pub const CASES: u32 = 96;

/// The RNG handed to strategies, seeded per test.
pub struct TestRunnerRng(ChaCha8Rng);

impl TestRunnerRng {
    /// Deterministic per-test RNG: the seed is an FNV-1a hash of the test's
    /// fully qualified name.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunnerRng(ChaCha8Rng::seed_from_u64(h))
    }

    /// Uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.0.bounded_u64(bound)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRunnerRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRunnerRng) -> $t {
                let lo = self.start as u64;
                let hi = self.end as u64;
                assert!(lo < hi, "empty strategy range");
                (lo + rng.below(hi - lo)) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRunnerRng) -> $t {
                let lo = *self.start() as u64;
                let hi = *self.end() as u64;
                assert!(lo <= hi, "empty strategy range");
                (lo + rng.below(hi - lo + 1)) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRunnerRng};

    /// Uniform `true` / `false`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = ::core::primitive::bool;
        fn sample(&self, rng: &mut TestRunnerRng) -> ::core::primitive::bool {
            rng.below(2) == 1
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Defines property tests: `proptest! { #[test] fn name(x in strategy, ..) { body } }`.
///
/// Each listed function becomes a `#[test]` running [`CASES`](crate::CASES)
/// deterministic cases. `prop_assert*` failures abort the case with the
/// drawn inputs in the panic message.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::TestRunnerRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        let inputs: ::std::vec::Vec<::std::string::String> = ::std::vec![
                            $(::std::format!("{} = {:?}", stringify!($arg), $arg)),+
                        ];
                        ::std::panic!(
                            "property failed at case {}/{}: {}\n  inputs: {}",
                            case + 1,
                            $crate::CASES,
                            msg,
                            inputs.join(", ")
                        );
                    }
                }
            }
        )+
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "format", args..)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// `prop_assert_eq!(a, b)` with an optional trailing format message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($a), stringify!($b), lhs, rhs
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err(::std::format!(
                "{} ({:?} vs {:?})", ::std::format!($($fmt)+), lhs, rhs
            ));
        }
    }};
}

/// `prop_assert_ne!(a, b)` with an optional trailing format message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($a), stringify!($b), lhs
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return ::std::result::Result::Err(::std::format!(
                "{} (both {:?})", ::std::format!($($fmt)+), lhs
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    proptest! {
        /// The harness draws in-range values and runs every case.
        #[test]
        fn ranges_respected(a in 3u32..10, b in 0u64..=4, flip in crate::bool::ANY) {
            prop_assert!((3..10).contains(&a));
            prop_assert!(b <= 4);
            prop_assert!(u8::from(flip) <= 1);
        }
    }

    proptest! {
        /// prop_assert_eq compares by value.
        #[test]
        fn eq_macros(x in 1usize..50) {
            prop_assert_eq!(x + 1, 1 + x);
            prop_assert_ne!(x, x + 1);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_inputs() {
        proptest! {
            fn always_fails(v in 0u32..4) {
                prop_assert!(v > 100, "v was {}", v);
            }
        }
        always_fails();
    }
}
