//! E5/E6 — Figs. 12(a)/12(b): the optimal-k solver and its precomputed
//! table (§4.3.1). Benches the Theorem-3 search across the paper's sweep
//! ranges and the table build/lookup path an NI firmware would use.

mod common;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use optimcast::core::optimal::{optimal_k, OptimalKTable};
use optimcast::experiments::{fig12a, fig12b};

fn bench_optimal_k(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12/optimal_k");
    g.bench_function("single_query_n64_m8", |b| {
        b.iter(|| optimal_k(black_box(64), black_box(8)))
    });
    g.bench_function("fig12a_full_sweep", |b| b.iter(|| black_box(fig12a())));
    g.bench_function("fig12b_full_sweep", |b| b.iter(|| black_box(fig12b())));
    g.finish();
}

fn bench_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12/table");
    g.bench_function("build_64x32", |b| {
        b.iter(|| OptimalKTable::build(black_box(64), black_box(32)))
    });
    let table = OptimalKTable::build(64, 32);
    g.bench_function("lookup", |b| {
        b.iter(|| table.lookup(black_box(48), black_box(8)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = common::config();
    targets = bench_optimal_k, bench_table
}
criterion_main!(benches);
