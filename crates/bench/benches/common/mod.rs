//! Shared bench configuration: short, stable Criterion settings so the full
//! `cargo bench` pass (one target per paper experiment) completes quickly.

use criterion::Criterion;
use std::time::Duration;

/// Criterion tuned for many small benches: 10 samples, 1s measurement.
pub fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300))
}
