//! Extension bench — multiple simultaneous multicasts (node contention,
//! after the authors' ICPP'96 companion paper): workload-engine throughput
//! and the interference cost as concurrency rises.

mod common;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use optimcast::netsim::{MulticastJob, SimRun, WorkloadConfig};
use optimcast::prelude::*;
use optimcast_rng::{ChaCha8Rng, SliceRandom};

fn make_jobs(net: &IrregularNetwork, jobs: usize, m: u32) -> Vec<MulticastJob> {
    let ordering = cco(net);
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    (0..jobs)
        .map(|_| {
            let mut hosts: Vec<HostId> = (0..64).map(HostId).collect();
            hosts.shuffle(&mut rng);
            let chain = ordering.arrange(hosts[0], &hosts[1..=31]);
            let n = chain.len() as u32;
            let k = optimal_k(u64::from(n), m).k;
            MulticastJob::fpfs(kbinomial_tree(n, k), chain, m)
        })
        .collect()
}

fn bench_workloads(c: &mut Criterion) {
    let net = IrregularNetwork::generate(IrregularConfig::default(), 77);
    let params = SystemParams::paper_1997();
    let mut g = c.benchmark_group("multi_multicast");
    for jobs in [1usize, 2, 4, 8] {
        let job_list = make_jobs(&net, jobs, 8);
        let wl = SimRun::new(&net, &job_list, &params, WorkloadConfig::default())
            .run()
            .unwrap();
        let avg = wl.jobs.iter().map(|o| o.latency_us).sum::<f64>() / jobs as f64;
        println!(
            "[multi] {jobs} jobs: avg latency {avg:.1} us, makespan {:.1} us, stall {:.1} us",
            wl.makespan_us, wl.channel_wait_us
        );
        g.bench_function(format!("jobs{jobs}_m8"), |b| {
            b.iter(|| {
                SimRun::new(
                    &net,
                    black_box(&job_list),
                    &params,
                    WorkloadConfig::default(),
                )
                .run()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = common::config();
    targets = bench_workloads
}
criterion_main!(benches);
