//! Simulator-core hot-path microbenchmarks: steady-state event-queue churn
//! (the innermost data structure of every run) and full `run_multicast`
//! calls with and without an interned route table.

mod common;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use optimcast::netsim::engine::EventQueue;
use optimcast::netsim::{run_multicast_prerouted, run_multicast_shared, JobRoutes, RunConfig};
use optimcast::prelude::*;
use optimcast::sweep::sample_chain;
use std::sync::Arc;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/event_queue");
    // Steady-state churn at a resident population typical of a 64-host
    // multicast: pop one, schedule one.
    for resident in [32usize, 512] {
        g.bench_function(format!("churn_resident{resident}"), |b| {
            let mut q: EventQueue<u64> = EventQueue::new();
            for i in 0..resident {
                q.schedule_in(1.0 + i as f64, i as u64);
            }
            let mut i = resident as u64;
            b.iter(|| {
                let (_, payload) = q.pop().expect("population stays resident");
                i += 1;
                q.schedule_in(1.0 + (payload % 97) as f64, black_box(i));
            });
        });
    }
    // Tie-heavy churn: many events at identical times exercises the
    // (time, seq) tie-break comparison path.
    g.bench_function("churn_all_ties", |b| {
        let mut q: EventQueue<u64> = EventQueue::new();
        for i in 0..256u64 {
            q.schedule_in(1.0, i);
        }
        b.iter(|| {
            let (_, payload) = q.pop().expect("population stays resident");
            q.schedule_in(1.0, black_box(payload));
        });
    });
    g.finish();
}

fn bench_run_multicast(c: &mut Criterion) {
    let sweep = SweepBuilder::quick().build().unwrap();
    let cfg = *sweep.config();
    let topo = sweep.topology(0);
    let chain = sample_chain(&topo.net, &topo.ordering, cfg.set_seed(0, 0), 31);
    let tree = sweep.tree(TreePolicy::OptimalKBinomial, chain.len() as u32, 8);
    let routes = Arc::new(JobRoutes::build(&topo.net, &tree, &chain));
    let mut g = c.benchmark_group("sim/run_multicast_31d_8m");
    g.bench_function("prerouted", |b| {
        b.iter(|| {
            run_multicast_prerouted(
                &topo.net,
                Arc::clone(&tree),
                black_box(&chain),
                Arc::clone(&routes),
                8,
                cfg.params(),
                RunConfig::default(),
            )
            .unwrap()
            .latency_us
        })
    });
    g.bench_function("routing_inline", |b| {
        b.iter(|| {
            run_multicast_shared(
                &topo.net,
                Arc::clone(&tree),
                black_box(&chain),
                8,
                cfg.params(),
                RunConfig::default(),
            )
            .unwrap()
            .latency_us
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = common::config();
    targets = bench_event_queue, bench_run_multicast
}
criterion_main!(benches);
