//! Extension benches — the paper's §7 future work implemented: collective
//! operations (broadcast, scatter, gather, all-gather, reduce, barrier)
//! under packetization and smart NI support.

mod common;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use optimcast::collectives::{
    allgather_recursive_doubling_us, allgather_ring_us, barrier_us, broadcast, gather_schedule,
    reduce_latency_us, scatter_schedule, OrderPolicy,
};
use optimcast::prelude::*;

fn bench_broadcast(c: &mut Criterion) {
    let net = IrregularNetwork::generate(IrregularConfig::default(), 51);
    let ordering = cco(&net);
    let params = SystemParams::paper_1997();
    c.benchmark_group("collectives/broadcast")
        .bench_function("irregular64_m8", |b| {
            b.iter(|| {
                broadcast(
                    &net,
                    black_box(&ordering),
                    HostId(0),
                    8,
                    &params,
                    RunConfig::default(),
                )
            })
        });
}

fn bench_scatter_gather(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives/scatter_gather");
    for (name, tree) in [
        ("chain64", linear_tree(64)),
        ("kbin64", kbinomial_tree(64, 2)),
    ] {
        g.bench_function(format!("scatter_{name}_m8"), |b| {
            b.iter(|| scatter_schedule(black_box(&tree), 8, OrderPolicy::DeepestFirst))
        });
        g.bench_function(format!("gather_{name}_m8"), |b| {
            b.iter(|| gather_schedule(black_box(&tree), 8, OrderPolicy::DeepestFirst))
        });
    }
    g.finish();

    // The inversion finding, printed with the measurements.
    let chain = scatter_schedule(&linear_tree(64), 8, OrderPolicy::DeepestFirst);
    let kbin = scatter_schedule(&kbinomial_tree(64, 2), 8, OrderPolicy::DeepestFirst);
    println!(
        "[scatter] chain {} steps (bound {}) vs kbin {} steps — the chain wins scatter",
        chain.total_steps(),
        chain.source_bound(),
        kbin.total_steps()
    );
}

fn bench_analytic_collectives(c: &mut Criterion) {
    let params = SystemParams::paper_1997();
    let model = optimcast::core::param_model::ParamModel::step_model(&params);
    let mut g = c.benchmark_group("collectives/analytic");
    g.bench_function("allgather_ring_n64_m8", |b| {
        b.iter(|| allgather_ring_us(black_box(64), 8, &model))
    });
    g.bench_function("allgather_rd_n64_m8", |b| {
        b.iter(|| allgather_recursive_doubling_us(black_box(64), 8, &model))
    });
    g.bench_function("reduce_n64_m8", |b| {
        b.iter(|| reduce_latency_us(black_box(64), 8, 2, 0.5, &params))
    });
    g.bench_function("barrier_n64", |b| {
        b.iter(|| barrier_us(black_box(64), &params))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = common::config();
    targets = bench_broadcast, bench_scatter_gather, bench_analytic_collectives
}
criterion_main!(benches);
