//! E4 — §3.3.2: buffer requirement of FCFS vs FPFS smart-NI forwarding.
//! Benches the closed-form analysis sweep and the trace-driven occupancy
//! extraction from exact schedules, and prints the comparison table.

mod common;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use optimcast::core::buffer::BufferAnalysis;
use optimcast::core::schedule::{fcfs_schedule, fpfs_schedule};
use optimcast::prelude::*;

fn bench_closed_forms(c: &mut Criterion) {
    c.benchmark_group("buffers/closed_form")
        .bench_function("sweep_k1to8_m1to64", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for k in 1..=8u32 {
                    for m in 1..=64u32 {
                        let a = BufferAnalysis::new(k, m);
                        acc += a.fcfs_residency + a.fpfs_residency;
                    }
                }
                black_box(acc)
            })
        });
}

fn bench_trace_occupancy(c: &mut Criterion) {
    let tree = binomial_tree(64);
    let inner = tree.root_children()[0];
    let mut g = c.benchmark_group("buffers/trace");
    for m in [8u32, 32] {
        let fp = fpfs_schedule(&tree, m);
        let fc = fcfs_schedule(&tree, m);
        g.bench_function(format!("fpfs_m{m}"), |b| {
            b.iter(|| black_box(fp.max_buffered(inner)))
        });
        g.bench_function(format!("fcfs_m{m}"), |b| {
            b.iter(|| black_box(fc.max_buffered(inner)))
        });
    }
    g.finish();

    // Table: paper's qualitative claim, printed alongside the measurements.
    println!("[buffers] intermediate node with 5 children (binomial/64 first child):");
    for m in [1u32, 8, 32] {
        let fp = fpfs_schedule(&tree, m).max_buffered(inner);
        let fc = fcfs_schedule(&tree, m).max_buffered(inner);
        println!("[buffers]   m={m:>2}: FPFS holds {fp} pkts, FCFS holds {fc} pkts");
    }
}

criterion_group! {
    name = benches;
    config = common::config();
    targets = bench_closed_forms, bench_trace_occupancy
}
criterion_main!(benches);
