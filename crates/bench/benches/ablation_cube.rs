//! A4 — extension (paper §4.3.2/§7): k-binomial multicast on regular k-ary
//! n-cubes with dimension-ordered chains, versus the irregular network.
//! The hypercube embedding is contention-free for single packets; the bench
//! prints the residual multi-packet nesting contention (see EXPERIMENTS.md).

mod common;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use optimcast::prelude::*;

fn bench_cubes(c: &mut Criterion) {
    let params = SystemParams::paper_1997();
    let m = 8;
    let mut g = c.benchmark_group("ablation/cube");
    for (arity, dims) in [(2u32, 6u32), (4, 3), (8, 2)] {
        let net = CubeNetwork::new(arity, dims);
        let n = net.num_hosts();
        let chain: Vec<HostId> = (0..n).map(HostId).collect();
        let tree = kbinomial_tree(n, optimal_k(u64::from(n), m).k);
        let out = run_multicast(&net, &tree, &chain, m, &params, RunConfig::default()).unwrap();
        println!(
            "[cube] {}: latency {:.1} us, {} blocked sends",
            net.describe(),
            out.latency_us,
            out.blocked_sends
        );
        g.bench_function(format!("{arity}ary{dims}cube_broadcast_m{m}"), |b| {
            b.iter(|| {
                run_multicast(
                    &net,
                    &tree,
                    black_box(&chain),
                    m,
                    &params,
                    RunConfig::default(),
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = common::config();
    targets = bench_cubes
}
criterion_main!(benches);
