//! Sweep-engine microbenchmarks: memoized vs direct construction of the
//! per-cell inputs, and a full quick-methodology figure grid at one and two
//! workers (on a multi-core host the second shows the parallel speedup; on
//! any host both produce bit-identical figures).

mod common;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use optimcast::prelude::*;
use optimcast::sweep::PointSpec;

fn bench_memoized_lookups(c: &mut Criterion) {
    let sweep = SweepBuilder::quick().build().unwrap();
    // Warm the caches once; the bench then measures pure lookup cost.
    let _ = sweep.topology(0);
    let _ = sweep.tree(TreePolicy::OptimalKBinomial, 48, 8);
    let mut g = c.benchmark_group("sweep/memo");
    g.bench_function("topology_hit", |b| b.iter(|| sweep.topology(black_box(0))));
    g.bench_function("tree_hit", |b| {
        b.iter(|| sweep.tree(TreePolicy::OptimalKBinomial, black_box(48), black_box(8)))
    });
    g.bench_function("tree_build_direct", |b| {
        b.iter(|| TreePolicy::OptimalKBinomial.tree(black_box(48), black_box(8)))
    });
    g.finish();
}

fn bench_grid_by_workers(c: &mut Criterion) {
    let specs: Vec<PointSpec> = [1u32, 8, 32]
        .into_iter()
        .map(|m| PointSpec::new(TreePolicy::OptimalKBinomial, 47, m))
        .collect();
    let mut g = c.benchmark_group("sweep/grid_quick_3pts");
    for workers in [1usize, 2] {
        g.bench_function(format!("workers{workers}"), |b| {
            b.iter(|| {
                let sweep = SweepBuilder::quick().parallelism(workers).build().unwrap();
                sweep.grid(black_box(&specs)).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = common::config();
    targets = bench_memoized_lookups, bench_grid_by_workers
}
criterion_main!(benches);
