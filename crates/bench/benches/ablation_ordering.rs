//! A1 — ablation: base ordering choice. The paper builds trees on CCO;
//! this ablation swaps in a random permutation and a switch-grouped
//! ordering, measuring the simulated latency impact of residual wormhole
//! contention on the same tree/workload.

mod common;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use optimcast::prelude::*;
use optimcast::topology::ordering::{cco, poc, switch_grouped};

fn chains(net: &IrregularNetwork) -> Vec<(&'static str, Vec<HostId>)> {
    let dests: Vec<HostId> = (1..48).map(HostId).collect();
    vec![
        ("cco", cco(net).arrange(HostId(0), &dests)),
        ("poc", poc(net).arrange(HostId(0), &dests)),
        (
            "switch_grouped",
            switch_grouped(net.topology()).arrange(HostId(0), &dests),
        ),
        (
            "random",
            Ordering::random(64, 777).arrange(HostId(0), &dests),
        ),
    ]
}

fn bench_orderings(c: &mut Criterion) {
    let net = IrregularNetwork::generate(IrregularConfig::default(), 13);
    let params = SystemParams::paper_1997();
    let m = 8;
    let mut g = c.benchmark_group("ablation/ordering");
    for (name, chain) in chains(&net) {
        let n = chain.len() as u32;
        let tree = kbinomial_tree(n, optimal_k(u64::from(n), m).k);
        let out = run_multicast(&net, &tree, &chain, m, &params, RunConfig::default()).unwrap();
        println!(
            "[ordering] {name:>14}: latency {:.1} us, {} blocked sends, {:.1} us total stall",
            out.latency_us, out.blocked_sends, out.channel_wait_us
        );
        g.bench_function(name, |b| {
            b.iter(|| {
                run_multicast(
                    &net,
                    &tree,
                    black_box(&chain),
                    m,
                    &params,
                    RunConfig::default(),
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = common::config();
    targets = bench_orderings
}
criterion_main!(benches);
