//! Infrastructure throughput: tree construction (Fig. 11), topology
//! generation, up*/down* routing-table computation, CCO extraction, and the
//! static contention checker — the costs a runtime system would pay at
//! multicast-group setup time.

mod common;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use optimcast::analysis::schedule_conflicts;
use optimcast::prelude::*;
use optimcast::topology::contention::ordering_violations;
use optimcast::topology::ordering::cco;

fn bench_tree_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("construction/tree");
    for n in [64u32, 1024, 16384] {
        g.bench_function(format!("kbinomial_n{n}_k2"), |b| {
            b.iter(|| kbinomial_tree(black_box(n), 2))
        });
        g.bench_function(format!("binomial_n{n}"), |b| {
            b.iter(|| binomial_tree(black_box(n)))
        });
    }
    g.finish();
}

fn bench_topology(c: &mut Criterion) {
    let mut g = c.benchmark_group("construction/topology");
    g.bench_function("irregular_64h_16s_with_routing", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            IrregularNetwork::generate(IrregularConfig::default(), black_box(seed))
        })
    });
    let net = IrregularNetwork::generate(IrregularConfig::default(), 3);
    g.bench_function("cco_ordering", |b| b.iter(|| cco(black_box(&net))));
    g.bench_function("route_query", |b| {
        b.iter(|| net.route(black_box(HostId(3)), black_box(HostId(60))))
    });
    g.finish();
}

fn bench_contention_analysis(c: &mut Criterion) {
    let net = IrregularNetwork::generate(IrregularConfig::default(), 3);
    let ordering = cco(&net);
    let chain: Vec<HostId> = ordering.hosts()[..24].to_vec();
    let mut g = c.benchmark_group("construction/contention");
    g.bench_function("ordering_violations_24hosts", |b| {
        b.iter(|| ordering_violations(&net, black_box(&chain), u64::MAX))
    });
    let tree = binomial_tree(64);
    let sched = fpfs_schedule(&tree, 4);
    g.bench_function("schedule_conflicts_n64_m4", |b| {
        b.iter(|| schedule_conflicts(&net, black_box(&sched), ordering.hosts()))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = common::config();
    targets = bench_tree_construction, bench_topology, bench_contention_analysis
}
criterion_main!(benches);
