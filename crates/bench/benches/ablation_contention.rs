//! A3 — ablation: contention model. Compares the ideal (infinite-capacity)
//! step model against the wormhole path-reservation model on the same
//! workloads, quantifying how much of the paper's measured latency is pure
//! pipeline (Theorem 2) versus network contention.

mod common;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use optimcast::prelude::*;
use optimcast::topology::ordering::cco;

fn bench_contention_modes(c: &mut Criterion) {
    let net = IrregularNetwork::generate(IrregularConfig::default(), 31);
    let params = SystemParams::paper_1997();
    let dests: Vec<HostId> = (1..64).map(HostId).collect();
    let chain = cco(&net).arrange(HostId(0), &dests);
    let n = chain.len() as u32;
    let m = 16;
    let tree = kbinomial_tree(n, optimal_k(u64::from(n), m).k);

    let mut g = c.benchmark_group("ablation/contention");
    for (name, mode) in [
        ("ideal", ContentionMode::Ideal),
        ("wormhole", ContentionMode::Wormhole),
    ] {
        let cfgr = RunConfig {
            contention: mode,
            ..RunConfig::default()
        };
        let out = run_multicast(&net, &tree, &chain, m, &params, cfgr).unwrap();
        println!(
            "[contention] {name:>8}: latency {:.1} us ({} blocked, {:.1} us stalled)",
            out.latency_us, out.blocked_sends, out.channel_wait_us
        );
        g.bench_function(name, |b| {
            b.iter(|| run_multicast(&net, &tree, black_box(&chain), m, &params, cfgr))
        });
    }
    g.finish();

    // Analytic floor for reference.
    let analytic = smart_latency_us(&fpfs_schedule(&tree, m), &params);
    println!("[contention] analytic contention-free floor: {analytic:.1} us");
}

criterion_group! {
    name = benches;
    config = common::config();
    targets = bench_contention_modes
}
criterion_main!(benches);
