//! Extension bench — the parameterized (LogGP-style) communication model:
//! continuous-time schedule generation and the generalised optimal-k
//! search, with the step-model reduction printed as a sanity line.

mod common;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use optimcast::core::param_model::{optimal_k_param, param_schedule, ParamModel};
use optimcast::core::schedule::ForwardingDiscipline;
use optimcast::prelude::*;

fn bench_param_schedules(c: &mut Criterion) {
    let params = SystemParams::paper_1997();
    let step = ParamModel::step_model(&params);
    let tree = kbinomial_tree(64, 2);
    let mut g = c.benchmark_group("param_model");
    g.bench_function("schedule_n64_m8", |b| {
        b.iter(|| param_schedule(black_box(&tree), 8, ForwardingDiscipline::Fpfs, &step))
    });
    g.bench_function("optimal_k_param_n64_m8", |b| {
        b.iter(|| optimal_k_param(black_box(64), 8, &step))
    });
    g.finish();

    let ov = ParamModel::overlapped(&params);
    println!(
        "[param] n=64 m=8: step-model optimal k = {}, overlapped optimal k = {}",
        optimal_k_param(64, 8, &step).k,
        optimal_k_param(64, 8, &ov).k
    );
}

criterion_group! {
    name = benches;
    config = common::config();
    targets = bench_param_schedules
}
criterion_main!(benches);
