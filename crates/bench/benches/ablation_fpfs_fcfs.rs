//! A2 — ablation: FPFS vs FCFS smart-NI forwarding end to end (§3.3).
//! Latency is comparable on the paper's trees; the buffer requirement is
//! where FPFS wins — both are printed alongside the measurements.

mod common;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use optimcast::core::schedule::ForwardingDiscipline;
use optimcast::prelude::*;
use optimcast::topology::ordering::cco;

fn bench_disciplines(c: &mut Criterion) {
    let net = IrregularNetwork::generate(IrregularConfig::default(), 29);
    let params = SystemParams::paper_1997();
    let dests: Vec<HostId> = (1..48).map(HostId).collect();
    let chain = cco(&net).arrange(HostId(0), &dests);
    let n = chain.len() as u32;
    let m = 16;
    let tree = binomial_tree(n);

    let mut g = c.benchmark_group("ablation/discipline");
    for disc in [ForwardingDiscipline::Fpfs, ForwardingDiscipline::Fcfs] {
        let cfgr = RunConfig {
            nic: NicKind::Smart(disc),
            ..RunConfig::default()
        };
        let out = run_multicast(&net, &tree, &chain, m, &params, cfgr).unwrap();
        let max_fwd_buf = out.max_ni_buffer[1..].iter().copied().max().unwrap_or(0);
        println!(
            "[discipline] {disc:?}: latency {:.1} us, max forwarding buffer {} pkts",
            out.latency_us, max_fwd_buf
        );
        g.bench_function(format!("{disc:?}"), |b| {
            b.iter(|| run_multicast(&net, &tree, black_box(&chain), m, &params, cfgr))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = common::config();
    targets = bench_disciplines
}
criterion_main!(benches);
