//! E9/E10 — Figs. 14(a)/14(b): binomial vs optimal k-binomial, the paper's
//! headline comparison. Each bench runs the full simulation for one policy
//! at a figure corner point, so `cargo bench` output shows the k-binomial
//! advantage directly in wall time of the modelled workload sweep.

mod common;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use optimcast::prelude::*;
use optimcast::sweep::sample_instance;

fn bench_bin_vs_kbin(c: &mut Criterion) {
    let cfg = SweepBuilder::paper().config().unwrap();
    let mut g = c.benchmark_group("fig14/bin_vs_kbin");
    for (dests, m) in [(15u32, 8u32), (47, 8), (47, 32)] {
        let inst = sample_instance(&cfg, 1, 1, dests);
        let n = inst.chain.len() as u32;
        for policy in [TreePolicy::Binomial, TreePolicy::OptimalKBinomial] {
            let tree = policy.tree(n, m);
            g.bench_function(format!("dests{dests}_m{m}_{}", policy.label()), |b| {
                b.iter(|| {
                    run_multicast(
                        &inst.net,
                        &tree,
                        black_box(&inst.chain),
                        m,
                        cfg.params(),
                        RunConfig::default(),
                    )
                    .unwrap()
                })
            });
        }
    }
    g.finish();
}

/// Prints the modelled latencies as a side effect so bench logs double as a
/// figure sanity check (who wins, by what factor).
fn report_modelled_latencies(c: &mut Criterion) {
    let cfg = SweepBuilder::paper().config().unwrap();
    let inst = sample_instance(&cfg, 1, 1, 47);
    let n = inst.chain.len() as u32;
    for m in [8u32, 32] {
        let bin = run_multicast(
            &inst.net,
            &TreePolicy::Binomial.tree(n, m),
            &inst.chain,
            m,
            cfg.params(),
            RunConfig::default(),
        )
        .unwrap()
        .latency_us;
        let kbin = run_multicast(
            &inst.net,
            &TreePolicy::OptimalKBinomial.tree(n, m),
            &inst.chain,
            m,
            cfg.params(),
            RunConfig::default(),
        )
        .unwrap()
        .latency_us;
        println!(
            "[fig14] 47 dest, m={m}: bin {bin:.1} us vs kbin {kbin:.1} us ({:.2}x)",
            bin / kbin
        );
    }
    // Keep criterion happy with a trivial measurement.
    c.bench_function("fig14/report", |b| b.iter(|| black_box(0)));
}

criterion_group! {
    name = benches;
    config = common::config();
    targets = bench_bin_vs_kbin, report_modelled_latencies
}
criterion_main!(benches);
