//! E1/E2/E3 — Figs. 4, 5, 8: conventional vs smart NI and the exact step
//! schedules. Benches the analytic latency models and schedule generation
//! that those figures are built from.

mod common;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use optimcast::core::schedule::{build_schedule, ForwardingDiscipline};
use optimcast::prelude::*;

fn bench_analytic_models(c: &mut Criterion) {
    let params = SystemParams::paper_1997();
    let tree = binomial_tree(64);
    let mut g = c.benchmark_group("nic/analytic");
    g.bench_function("conventional_latency_n64_m8", |b| {
        b.iter(|| conventional_latency_us(black_box(&tree), black_box(8), &params))
    });
    let sched = fpfs_schedule(&tree, 8);
    g.bench_function("smart_latency_n64_m8", |b| {
        b.iter(|| smart_latency_us(black_box(&sched), &params))
    });
    g.finish();
}

fn bench_schedule_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("nic/schedules");
    for (n, m) in [(8u32, 3u32), (64, 8), (64, 32)] {
        let tree = binomial_tree(n);
        for disc in [ForwardingDiscipline::Fpfs, ForwardingDiscipline::Fcfs] {
            g.bench_function(format!("{disc:?}_n{n}_m{m}"), |b| {
                b.iter(|| build_schedule(black_box(&tree), m, disc))
            });
        }
    }
    g.finish();

    // Fig. 4/5/8 values, printed for the log.
    let params = SystemParams::paper_1997();
    let t4 = binomial_tree(4);
    println!(
        "[fig4] conventional {:.1} us vs smart {:.1} us (3 dest, 1 pkt)",
        conventional_latency_us(&t4, 1, &params),
        smart_latency_us(&fpfs_schedule(&t4, 1), &params)
    );
    println!(
        "[fig5] binomial {} steps vs linear {} steps (3 dest, 3 pkts)",
        fpfs_schedule(&binomial_tree(4), 3).total_steps(),
        fpfs_schedule(&linear_tree(4), 3).total_steps()
    );
    let s8 = fpfs_schedule(&binomial_tree(8), 3);
    println!(
        "[fig8] completions at steps {}, {}, {} (lag = k_T = 3)",
        s8.packet_completion(0),
        s8.packet_completion(1),
        s8.packet_completion(2)
    );
}

criterion_group! {
    name = benches;
    config = common::config();
    targets = bench_analytic_models, bench_schedule_generation
}
criterion_main!(benches);
