//! E7/E8 — Figs. 13(a)/13(b): simulated multicast latency of the optimal
//! k-binomial tree on the 64-node irregular network. Benches single
//! simulation runs at the figure's corner points and one averaged data
//! point with the §5.2 methodology (reduced sampling).

mod common;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use optimcast::prelude::*;
use optimcast::sweep::sample_instance;

fn bench_single_runs(c: &mut Criterion) {
    let cfg = SweepBuilder::paper().config().unwrap();
    let mut g = c.benchmark_group("fig13/single_run");
    for (dests, m) in [(15u32, 1u32), (15, 32), (63, 8), (63, 32)] {
        let inst = sample_instance(&cfg, 0, 0, dests);
        let n = inst.chain.len() as u32;
        let tree = TreePolicy::OptimalKBinomial.tree(n, m);
        g.bench_function(format!("dests{dests}_m{m}"), |b| {
            b.iter(|| {
                run_multicast(
                    &inst.net,
                    &tree,
                    black_box(&inst.chain),
                    m,
                    cfg.params(),
                    RunConfig::default(),
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_averaged_point(c: &mut Criterion) {
    let sweep = SweepBuilder::quick().build().unwrap();
    c.benchmark_group("fig13/averaged_point")
        .bench_function("dests47_m8_2x3", |b| {
            b.iter(|| {
                sweep
                    .avg_latency(
                        TreePolicy::OptimalKBinomial,
                        black_box(47),
                        black_box(8),
                        RunConfig::default(),
                    )
                    .unwrap()
            })
        });
}

criterion_group! {
    name = benches;
    config = common::config();
    targets = bench_single_runs, bench_averaged_point
}
criterion_main!(benches);
