//! # optimcast-bench
//!
//! Criterion benchmark harness regenerating every table and figure of the
//! paper's evaluation. The content lives in the `benches/` targets, which
//! drive the experiment sweeps exported by the umbrella `optimcast` crate.
