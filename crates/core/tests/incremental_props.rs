//! Property battery for the incremental membership operations
//! ([`MulticastTree::add_rank`] / [`MulticastTree::remove_rank`] and the
//! [`Membership`] layer composing them). For random k-binomial trees and
//! random join/leave sequences —
//!
//! * every splice keeps the fan-out within the bound `k` and keeps the
//!   tree a valid spanning tree of exactly the current membership;
//! * `remove_rank(r)` equals the batch `repair(&[r])` exactly (tree, maps,
//!   and reattachment log);
//! * `add_rank` preserves every existing edge and send order, with
//!   identity rank maps;
//! * after any operation sequence the group is *equivalent to a
//!   from-scratch rebuild*: the member set matches an independently
//!   maintained model set, and the spliced tree admits a complete FPFS
//!   schedule (every member reached, `m·(len−1)` sends) just like a fresh
//!   k-binomial tree over the same membership;
//! * `leave ∘ join` of the same member is a membership identity.
//!
//! Random sequences are driven from plain integer draws (the vendored
//! proptest supports integer-range strategies): a `u64` op stream is
//! consumed 8 bits per step to pick a member, and the toggle direction
//! (join vs leave) follows from current membership — so every generated
//! sequence is valid by construction.

use optimcast_core::prelude::*;
use proptest::prelude::*;
use std::collections::HashSet;

/// Full-width `u64` strategy (the vendored proptest has no `num` module).
const ANY_U64: std::ops::Range<u64> = 0..u64::MAX;

/// A fresh group: members `0..n` on a k-binomial tree over `n` ranks in a
/// universe of `universe` ids.
fn group(n: u32, universe: u32, k: u32) -> Membership {
    let members: Vec<u32> = (0..n).collect();
    Membership::new(kbinomial_tree(n, k), &members, universe, k).unwrap()
}

/// Applies `steps` toggles drawn from `opstream` (8 bits each) to `g`,
/// mirroring them into `model`. Leaves that would empty the group (only
/// the source left) are skipped, like a stream's churn guard.
fn drive(g: &mut Membership, model: &mut HashSet<u32>, opstream: u64, steps: u32) {
    let universe = g.universe();
    for i in 0..steps {
        let byte = (opstream >> ((i % 8) * 8)) & 0xFF;
        let member = 1 + ((byte + u64::from(i)) % u64::from(universe - 1)) as u32;
        if g.is_member(member) {
            if g.len() > 2 {
                g.leave(member).unwrap();
                model.remove(&member);
            }
        } else {
            g.join(member).unwrap();
            model.insert(member);
        }
    }
}

/// The membership invariants: maps mutually inverse, tree spans exactly
/// the members, fan-out within bound.
fn assert_group_invariants(g: &Membership) -> Result<(), String> {
    g.tree()
        .validate()
        .map_err(|e| format!("invalid tree after splice: {e}"))?;
    prop_assert_eq!(g.tree().len(), g.len());
    for (r, &u) in g.members().iter().enumerate() {
        prop_assert_eq!(g.rank_of(u), Some(Rank(r as u32)));
        prop_assert_eq!(g.member_of(Rank(r as u32)), u);
    }
    let bound = g.fan_out().max(1);
    prop_assert!(
        g.tree().max_degree() <= bound,
        "fan-out {} exceeds bound {}",
        g.tree().max_degree(),
        bound
    );
    Ok(())
}

proptest! {
    /// `add_rank` keeps every old edge and send order, attaches exactly one
    /// new leaf within the bound, and returns identity maps.
    #[test]
    fn add_rank_preserves_structure_and_bound(n in 1u32..48, k in 1u32..6) {
        let tree = kbinomial_tree(n, k);
        let bound = tree.max_degree().max(k).max(1);
        let rep = tree.add_rank(k);
        rep.tree.validate().expect("spliced tree invalid");
        prop_assert_eq!(rep.tree.len(), tree.len() + 1);
        prop_assert!(rep.tree.max_degree() <= bound);
        // Identity maps; one recorded attachment for the new rank.
        for r in 0..n {
            prop_assert_eq!(rep.old_to_new[r as usize], Some(Rank(r)));
            prop_assert_eq!(rep.new_to_old[r as usize], Rank(r));
        }
        prop_assert_eq!(rep.reattached.len(), 1);
        let (joined, parent) = rep.reattached[0];
        prop_assert_eq!(joined, Rank(n));
        prop_assert_eq!(rep.tree.parent(joined), Some(parent));
        // Every original parent's child list is a prefix-preserved copy.
        for r in 0..n {
            let old: Vec<Rank> = tree.children(Rank(r)).to_vec();
            let new: Vec<Rank> = rep
                .tree
                .children(Rank(r))
                .iter()
                .copied()
                .filter(|&c| c != joined)
                .collect();
            prop_assert_eq!(old, new, "send order of r{} changed", r);
        }
    }

    /// `remove_rank` is exactly the single-failure batch repair: same tree,
    /// same rank maps, same reattachment log.
    #[test]
    fn remove_rank_equals_batch_repair(n in 2u32..64, k in 1u32..6, pick in 0u64..1 << 32) {
        let tree = kbinomial_tree(n, k);
        let r = Rank(1 + (pick % u64::from(n - 1)) as u32);
        let inc = tree.remove_rank(r).expect("valid rank rejected");
        let batch = tree.repair(&[r]).expect("valid rank rejected");
        prop_assert_eq!(inc, batch);
    }

    /// Random join/leave sequences keep the maps inverse, the tree spanning
    /// the current membership, and the fan-out within bound, at every step.
    #[test]
    fn op_sequences_keep_invariants(
        n in 2u32..16,
        extra in 1u32..16,
        k in 1u32..5,
        opstream in ANY_U64,
        steps in 1u32..24,
    ) {
        let universe = n + extra;
        let mut g = group(n, universe, k);
        let mut model: HashSet<u32> = (0..n).collect();
        let per_step = steps.min(8);
        for chunk in 0..steps.div_ceil(per_step) {
            drive(&mut g, &mut model, opstream.rotate_left(chunk * 13), per_step);
            assert_group_invariants(&g)?;
        }
    }

    /// After any operation sequence the group is equivalent to a rebuild:
    /// the member set matches the model set, and the spliced tree admits
    /// the same complete FPFS schedule shape a from-scratch k-binomial
    /// tree over that membership does (every member reached, one send per
    /// edge per packet).
    #[test]
    fn op_sequences_are_equivalent_to_rebuild(
        n in 2u32..16,
        extra in 1u32..16,
        k in 1u32..5,
        opstream in ANY_U64,
        steps in 1u32..32,
        m in 1u32..5,
    ) {
        let universe = n + extra;
        let mut g = group(n, universe, k);
        let mut model: HashSet<u32> = (0..n).collect();
        drive(&mut g, &mut model, opstream, steps);

        // Same member set as the model (what a rebuild would span).
        let members: HashSet<u32> = g.members().iter().copied().collect();
        prop_assert_eq!(&members, &model);
        prop_assert_eq!(g.members().len(), members.len(), "duplicate members");

        // Both trees admit complete m-packet FPFS schedules over the same
        // participant count: every rank completes, m·(len−1) sends total.
        let rebuilt = kbinomial_tree(g.len() as u32, k);
        for tree in [g.tree(), &rebuilt] {
            let sched = fpfs_schedule(tree, m);
            prop_assert_eq!(sched.events().len(), (m as usize) * (tree.len() - 1));
            for r in 1..tree.len() {
                prop_assert!(sched.message_completion(Rank(r as u32)) > 0);
            }
        }
        // The spliced tree obeys the same fan-out bound the rebuild does.
        prop_assert!(g.tree().max_degree() <= rebuilt.max_degree().max(k));
    }

    /// `leave ∘ join` of the same member is a membership identity: the
    /// member set (and every member's presence) is exactly as before.
    #[test]
    fn leave_after_join_is_membership_identity(
        n in 2u32..24,
        extra in 1u32..8,
        k in 1u32..5,
        pick in ANY_U64,
    ) {
        let universe = n + extra;
        let mut g = group(n, universe, k);
        let newcomer = n + (pick % u64::from(extra)) as u32;
        let before: HashSet<u32> = g.members().iter().copied().collect();

        g.join(newcomer).unwrap();
        prop_assert!(g.is_member(newcomer));
        g.leave(newcomer).unwrap();

        let after: HashSet<u32> = g.members().iter().copied().collect();
        prop_assert_eq!(before, after);
        assert_group_invariants(&g)?;

        // And the other composition order on an existing member: leave
        // then re-join restores the same member set too.
        let resident = 1 + (pick % u64::from(n - 1)) as u32;
        let before: HashSet<u32> = g.members().iter().copied().collect();
        g.leave(resident).unwrap();
        prop_assert!(!g.is_member(resident));
        g.join(resident).unwrap();
        let after: HashSet<u32> = g.members().iter().copied().collect();
        prop_assert_eq!(before, after);
    }

    /// Misuse is a typed error and never corrupts the group.
    #[test]
    fn invalid_operations_are_typed_errors(n in 2u32..16, k in 1u32..5) {
        let mut g = group(n, n + 4, k);
        prop_assert_eq!(g.join(0), Err(MembershipError::AlreadyMember(0)));
        prop_assert_eq!(g.join(n + 4), Err(MembershipError::UnknownMember(n + 4)));
        prop_assert_eq!(g.leave(0), Err(MembershipError::SourceImmutable));
        prop_assert_eq!(g.leave(n), Err(MembershipError::NotMember(n)));
        prop_assert_eq!(g.leave(n + 9), Err(MembershipError::UnknownMember(n + 9)));
        assert_group_invariants(&g)?;
        // The underlying incremental op rejects the same misuse.
        prop_assert_eq!(
            g.tree().remove_rank(Rank::SOURCE),
            Err(RepairError::SourceFailed)
        );
        prop_assert_eq!(
            g.tree().remove_rank(Rank(n)),
            Err(RepairError::UnknownRank(Rank(n)))
        );
    }
}
