//! Property battery for [`MulticastTree::repair`] / `repair_partial`: the
//! invariants live mid-run repair leans on. For random k-binomial trees and
//! random crash sets —
//!
//! * the repaired tree's fan-out never exceeds the original `k`;
//! * every survivor stays reachable from the source (the repaired tree is a
//!   valid spanning tree of exactly the survivors);
//! * `new_to_old` / `old_to_new` are inverse bijections between the new
//!   rank space and the surviving old ranks;
//! * repairing with an empty failure set is the identity;
//! * `repair_partial` additionally excludes already-delivered ranks without
//!   treating them as failures.
//!
//! Random sets are drawn as bitmasks (the vendored proptest supports
//! integer-range strategies): bit `r` of the mask selects rank `r`, so the
//! source (bit 0 is ignored) can never be drawn into a crash set.

use optimcast_core::prelude::*;
use proptest::prelude::*;
use std::collections::HashSet;

/// The destination ranks selected by `mask` (bit `r` ⇒ rank `r`; the source
/// is never included).
fn subset(mask: u64, n: u32) -> Vec<Rank> {
    (1..n).filter(|&r| (mask >> r) & 1 == 1).map(Rank).collect()
}

/// Every rank of `tree` must be reachable from the source.
fn assert_spanning(tree: &MulticastTree) -> Result<(), String> {
    tree.validate()
        .map_err(|e| format!("repaired tree invalid: {e:?}"))?;
    let reached: HashSet<Rank> = tree.dfs_preorder().into_iter().collect();
    prop_assert_eq!(reached.len(), tree.len(), "orphaned survivors remain");
    Ok(())
}

proptest! {
    #[test]
    fn repair_preserves_fanout_and_reachability(
        n in 2u32..48,
        k in 1u32..6,
        fmask in 0u64..(1 << 48),
    ) {
        let tree = kbinomial_tree(n, k);
        let failed = subset(fmask, n);
        let bound = tree.max_degree().max(1) as usize;
        let rep = tree.repair(&failed).expect("valid crash set rejected");
        prop_assert_eq!(rep.tree.len(), tree.len() - failed.len());
        assert_spanning(&rep.tree)?;
        for r in rep.tree.dfs_preorder() {
            prop_assert!(
                rep.tree.children(r).len() <= bound,
                "rank {} exceeds the fan-out bound k = {}",
                r,
                bound
            );
        }
    }

    #[test]
    fn rank_maps_are_inverse_bijections(
        n in 2u32..48,
        k in 1u32..6,
        fmask in 0u64..(1 << 48),
    ) {
        let tree = kbinomial_tree(n, k);
        let failed = subset(fmask, n);
        let rep = tree.repair(&failed).expect("valid crash set rejected");
        prop_assert_eq!(rep.new_to_old.len(), rep.tree.len());
        prop_assert_eq!(rep.old_to_new.len(), tree.len());
        // new → old → new round-trips.
        for (new, &old) in rep.new_to_old.iter().enumerate() {
            prop_assert_eq!(rep.old_to_new[old.index()], Some(Rank(new as u32)));
        }
        // old → new → old round-trips; exactly the failed ranks map to None.
        let mut images = HashSet::new();
        for (old, slot) in rep.old_to_new.iter().enumerate() {
            let old = Rank(old as u32);
            match slot {
                Some(new) => {
                    prop_assert_eq!(rep.new_to_old[new.index()], old);
                    prop_assert!(images.insert(*new), "{} mapped twice", new);
                    prop_assert!(!failed.contains(&old));
                }
                None => prop_assert!(failed.contains(&old)),
            }
        }
        prop_assert_eq!(images.len(), rep.new_to_old.len());
    }

    #[test]
    fn empty_failure_set_is_identity(n in 2u32..48, k in 1u32..6) {
        let tree = kbinomial_tree(n, k);
        let rep = tree.repair(&[]).expect("empty failure set rejected");
        prop_assert_eq!(&rep.tree, &tree);
        prop_assert!(rep.reattached.is_empty());
        for r in 0..tree.len() {
            let r = Rank(r as u32);
            prop_assert_eq!(rep.new_to_old[r.index()], r);
            prop_assert_eq!(rep.old_to_new[r.index()], Some(r));
        }
    }

    #[test]
    fn partial_repair_spans_exactly_the_undelivered_survivors(
        n in 2u32..48,
        k in 1u32..6,
        fmask in 0u64..(1 << 48),
        dmask in 0u64..(1 << 48),
    ) {
        let tree = kbinomial_tree(n, k);
        let failed = subset(fmask, n);
        let delivered: Vec<Rank> = subset(dmask, n)
            .into_iter()
            .filter(|r| !failed.contains(r))
            .collect();
        let bound = tree.max_degree().max(1) as usize;
        let rep = tree
            .repair_partial(&failed, &delivered)
            .expect("valid exclusion sets rejected");
        prop_assert_eq!(
            rep.tree.len(),
            tree.len() - failed.len() - delivered.len()
        );
        assert_spanning(&rep.tree)?;
        for (old, slot) in rep.old_to_new.iter().enumerate() {
            let old = Rank(old as u32);
            let excluded = failed.contains(&old) || delivered.contains(&old);
            prop_assert_eq!(slot.is_none(), excluded, "rank {}", old);
        }
        for r in rep.tree.dfs_preorder() {
            prop_assert!(rep.tree.children(r).len() <= bound);
        }
    }

    #[test]
    fn bad_failure_sets_are_typed_errors(n in 2u32..48, k in 1u32..6) {
        let tree = kbinomial_tree(n, k);
        prop_assert_eq!(
            tree.repair(&[Rank::SOURCE]),
            Err(RepairError::SourceFailed)
        );
        prop_assert_eq!(
            tree.repair(&[Rank(n)]),
            Err(RepairError::UnknownRank(Rank(n)))
        );
        // A delivered source is a no-op, not an error: the source always
        // holds the data.
        let rep = tree.repair_partial(&[], &[Rank::SOURCE]).unwrap();
        prop_assert_eq!(&rep.tree, &tree);
    }
}
