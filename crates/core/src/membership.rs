//! Dynamic multicast group membership over incremental tree splices.
//!
//! A long-running stream multicasts to a group whose members join and
//! leave mid-stream. The tree layer's ranks are *dense* (`0..n`, source at
//! 0) and get renumbered by every removal, so a stream needs a stable
//! identity space on top: [`Membership`] names every potential participant
//! by a **member id** in a fixed universe `0..universe` (member 0 is the
//! source) and maintains the member↔rank correspondence across
//! [`MulticastTree::add_rank`] / [`MulticastTree::remove_rank`] splices.
//!
//! Every splice preserves the configured fan-out bound `k` and the send
//! order of surviving edges; the [`TreeRepair`] bookkeeping each operation
//! returns is composed into the maps here, so after any join/leave
//! sequence `rank_of`/`member_of` are mutually inverse over the current
//! members — the invariants `crates/core/tests/incremental_props.rs` pins.

use crate::tree::{MulticastTree, Rank, TreeRepair};
use std::fmt;

/// A multicast group with stable member ids over a churning rank space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Membership {
    tree: MulticastTree,
    k: u32,
    /// `member_of[rank] = member id` for the current dense ranks.
    member_of: Vec<u32>,
    /// `rank_of[member] = Some(rank)` for current members, dense over the
    /// universe.
    rank_of: Vec<Option<Rank>>,
}

/// Why a membership operation was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipError {
    /// The member id is outside the declared universe.
    UnknownMember(u32),
    /// A join for a member already in the group.
    AlreadyMember(u32),
    /// A leave for a member not in the group.
    NotMember(u32),
    /// Member 0 (the source) cannot leave.
    SourceImmutable,
    /// Construction: the initial tree does not span the initial members.
    WrongSpan {
        /// Ranks in the supplied tree.
        tree: usize,
        /// Initial member count.
        members: usize,
    },
    /// Construction: the initial member list repeats an id, omits the
    /// source at position 0, or exceeds the universe.
    BadInitialMembers(&'static str),
}

impl fmt::Display for MembershipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MembershipError::UnknownMember(u) => write!(f, "member {u} is outside the universe"),
            MembershipError::AlreadyMember(u) => write!(f, "member {u} is already in the group"),
            MembershipError::NotMember(u) => write!(f, "member {u} is not in the group"),
            MembershipError::SourceImmutable => write!(f, "the source (member 0) cannot leave"),
            MembershipError::WrongSpan { tree, members } => {
                write!(
                    f,
                    "tree spans {tree} ranks but {members} members were listed"
                )
            }
            MembershipError::BadInitialMembers(why) => write!(f, "bad initial members: {why}"),
        }
    }
}

impl std::error::Error for MembershipError {}

impl Membership {
    /// Wraps an initial tree whose rank `i` is bound to `members[i]`.
    /// `members[0]` must be 0 (the source), ids must be distinct and below
    /// `universe`, and the tree must span exactly `members.len()` ranks.
    /// `k` is the fan-out bound every later splice preserves (at least 1;
    /// a smaller bound than the tree's current maximum degree is accepted
    /// but splices then use the tree's own `max_degree` via the repair
    /// policy — pass the tree's construction `k` for exact behaviour).
    ///
    /// # Errors
    ///
    /// [`MembershipError::WrongSpan`] or
    /// [`MembershipError::BadInitialMembers`].
    pub fn new(
        tree: MulticastTree,
        members: &[u32],
        universe: u32,
        k: u32,
    ) -> Result<Self, MembershipError> {
        if tree.len() != members.len() {
            return Err(MembershipError::WrongSpan {
                tree: tree.len(),
                members: members.len(),
            });
        }
        if members.first() != Some(&0) {
            return Err(MembershipError::BadInitialMembers(
                "rank 0 must be member 0 (the source)",
            ));
        }
        let mut rank_of: Vec<Option<Rank>> = vec![None; universe as usize];
        for (r, &u) in members.iter().enumerate() {
            if u >= universe {
                return Err(MembershipError::BadInitialMembers(
                    "a member id exceeds the universe",
                ));
            }
            if rank_of[u as usize].is_some() {
                return Err(MembershipError::BadInitialMembers("duplicate member id"));
            }
            rank_of[u as usize] = Some(Rank(r as u32));
        }
        Ok(Membership {
            tree,
            k: k.max(1),
            member_of: members.to_vec(),
            rank_of,
        })
    }

    /// The current multicast tree (rank 0 = source).
    pub fn tree(&self) -> &MulticastTree {
        &self.tree
    }

    /// The fan-out bound splices preserve.
    pub fn fan_out(&self) -> u32 {
        self.k
    }

    /// Number of potential participants (member-id space).
    pub fn universe(&self) -> u32 {
        self.rank_of.len() as u32
    }

    /// Current group size (source included).
    pub fn len(&self) -> usize {
        self.member_of.len()
    }

    /// True when only the source remains.
    pub fn is_empty(&self) -> bool {
        self.len() == 1
    }

    /// Whether `member` is currently in the group.
    pub fn is_member(&self, member: u32) -> bool {
        self.rank_of
            .get(member as usize)
            .is_some_and(|r| r.is_some())
    }

    /// The current rank of `member`, if in the group.
    pub fn rank_of(&self, member: u32) -> Option<Rank> {
        self.rank_of.get(member as usize).copied().flatten()
    }

    /// The member bound to the current rank `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range for the current tree.
    pub fn member_of(&self, r: Rank) -> u32 {
        self.member_of[r.index()]
    }

    /// Current member ids in rank order (source first).
    pub fn members(&self) -> &[u32] {
        &self.member_of
    }

    /// Splices `member` into the group via [`MulticastTree::add_rank`];
    /// the new member becomes the highest rank. Returns the splice's
    /// [`TreeRepair`] bookkeeping (identity maps plus the one attachment).
    ///
    /// # Errors
    ///
    /// [`MembershipError::UnknownMember`] or
    /// [`MembershipError::AlreadyMember`].
    pub fn join(&mut self, member: u32) -> Result<TreeRepair, MembershipError> {
        if member as usize >= self.rank_of.len() {
            return Err(MembershipError::UnknownMember(member));
        }
        if self.rank_of[member as usize].is_some() {
            return Err(MembershipError::AlreadyMember(member));
        }
        let rep = self.tree.add_rank(self.k);
        self.rank_of[member as usize] = Some(Rank(self.member_of.len() as u32));
        self.member_of.push(member);
        self.tree = rep.tree.clone();
        Ok(rep)
    }

    /// Splices `member` out of the group via
    /// [`MulticastTree::remove_rank`], remapping every surviving member's
    /// rank through the repair's `old_to_new`. Returns the splice's
    /// [`TreeRepair`] bookkeeping.
    ///
    /// # Errors
    ///
    /// [`MembershipError::UnknownMember`],
    /// [`MembershipError::SourceImmutable`], or
    /// [`MembershipError::NotMember`].
    pub fn leave(&mut self, member: u32) -> Result<TreeRepair, MembershipError> {
        if member as usize >= self.rank_of.len() {
            return Err(MembershipError::UnknownMember(member));
        }
        if member == 0 {
            return Err(MembershipError::SourceImmutable);
        }
        let Some(rank) = self.rank_of[member as usize] else {
            return Err(MembershipError::NotMember(member));
        };
        let rep = self
            .tree
            .remove_rank(rank)
            .expect("a tracked member rank is a valid non-source rank");
        self.rank_of[member as usize] = None;
        self.member_of = rep
            .new_to_old
            .iter()
            .map(|&old| self.member_of[old.index()])
            .collect();
        for (new, &u) in self.member_of.iter().enumerate() {
            self.rank_of[u as usize] = Some(Rank(new as u32));
        }
        self.tree = rep.tree.clone();
        Ok(rep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::kbinomial_tree;

    fn group(n: u32, universe: u32, k: u32) -> Membership {
        let members: Vec<u32> = (0..n).collect();
        Membership::new(kbinomial_tree(n, k), &members, universe, k).unwrap()
    }

    #[test]
    fn construction_validates_members() {
        let t = kbinomial_tree(4, 2);
        assert_eq!(
            Membership::new(t.clone(), &[0, 1, 2], 8, 2),
            Err(MembershipError::WrongSpan {
                tree: 4,
                members: 3
            })
        );
        assert!(matches!(
            Membership::new(t.clone(), &[1, 0, 2, 3], 8, 2),
            Err(MembershipError::BadInitialMembers(_))
        ));
        assert!(matches!(
            Membership::new(t.clone(), &[0, 1, 2, 9], 8, 2),
            Err(MembershipError::BadInitialMembers(_))
        ));
        assert!(matches!(
            Membership::new(t, &[0, 1, 2, 2], 8, 2),
            Err(MembershipError::BadInitialMembers(_))
        ));
    }

    #[test]
    fn join_then_leave_round_trips_membership() {
        let mut g = group(4, 8, 2);
        assert!(!g.is_member(6));
        let rep = g.join(6).unwrap();
        assert_eq!(rep.reattached.len(), 1);
        assert_eq!(g.len(), 5);
        assert_eq!(g.rank_of(6), Some(Rank(4)));
        assert_eq!(g.member_of(Rank(4)), 6);
        g.tree().validate().unwrap();

        g.leave(6).unwrap();
        assert_eq!(g.len(), 4);
        assert!(!g.is_member(6));
        assert_eq!(g.members(), &[0, 1, 2, 3]);
        g.tree().validate().unwrap();
    }

    #[test]
    fn leave_remaps_surviving_ranks() {
        let mut g = group(6, 6, 2);
        g.leave(2).unwrap();
        assert_eq!(g.members(), &[0, 1, 3, 4, 5]);
        for (r, &u) in g.members().iter().enumerate() {
            assert_eq!(g.rank_of(u), Some(Rank(r as u32)));
        }
        assert!(g.tree().max_degree() <= 2.max(g.fan_out()));
    }

    #[test]
    fn errors_are_typed() {
        let mut g = group(3, 5, 2);
        assert_eq!(g.join(1), Err(MembershipError::AlreadyMember(1)));
        assert_eq!(g.join(5), Err(MembershipError::UnknownMember(5)));
        assert_eq!(g.leave(0), Err(MembershipError::SourceImmutable));
        assert_eq!(g.leave(4), Err(MembershipError::NotMember(4)));
        assert_eq!(g.leave(9), Err(MembershipError::UnknownMember(9)));
    }
}
