//! # optimcast-core
//!
//! Core algorithms from *"Optimal Multicast with Packetization and Network
//! Interface Support"* (Ram Kesavan and Dhabaleswar K. Panda, ICPP 1997).
//!
//! Modern networks packetize long messages and provide a programmable
//! network interface (NI) at every node. With *smart* NI support the NI
//! coprocessor — not the host — forwards multicast packet replicas, and a
//! packet can be forwarded as soon as it arrives, independent of the rest of
//! the message. Under the *First-Packet-First-Served* (FPFS) forwarding
//! discipline the completion time of an `m`-packet multicast over a tree `T`
//! is
//!
//! ```text
//! T_total = t1(T) + (m - 1) * k_T        (steps)
//! ```
//!
//! where `t1` is the single-packet completion step count and `k_T` the number
//! of children of the root (paper Theorems 1 and 2). The tree minimising this
//! is the **k-binomial tree** — a recursively doubling tree in which every
//! vertex has at most `k` children — for the best `k ∈ [1, ⌈log₂ n⌉]`
//! (Theorem 3).
//!
//! This crate provides:
//!
//! * [`coverage`] — the coverage function `N(s, k)` (Lemma 1) and its
//!   inverse, the minimum step count `t1(n, k)`;
//! * [`optimal`] — the optimal-`k` solver and the precomputed
//!   [`optimal::OptimalKTable`] of §4.3.1;
//! * [`tree`] — the multicast-tree arena used everywhere else;
//! * [`builders`] — linear, binomial, and k-binomial tree construction on a
//!   (contention-free) ordering of the participants, per the paper's Fig. 11;
//! * [`schedule`] — exact per-step send schedules for FPFS and FCFS smart-NI
//!   forwarding, from which the paper's Figs. 5 and 8 are regenerated;
//! * [`latency`] — analytic latency in microseconds for conventional and
//!   smart network interfaces;
//! * [`buffer`] — the §3.3.2 buffer-occupancy comparison of FCFS vs. FPFS;
//! * [`params`] — the system parameters used throughout the paper's §5.
//!
//! ## Quick example
//!
//! ```
//! use optimcast_core::prelude::*;
//!
//! // 64 participants (1 source + 63 destinations), 8-packet message.
//! let opt = optimal_k(64, 8);
//! assert_eq!(opt.k, 2);                      // paper Fig. 12(b)
//! let tree = kbinomial_tree(64, opt.k);
//! let sched = fpfs_schedule(&tree, 8);
//! assert_eq!(u64::from(sched.total_steps()), opt.steps);
//! ```

pub mod buffer;
pub mod builders;
pub mod coverage;
pub mod latency;
pub mod membership;
pub mod optimal;
pub mod param_model;
pub mod params;
pub mod schedule;
pub mod tree;

/// Convenient re-exports of the most used items.
pub mod prelude {
    pub use crate::buffer::{fcfs_buffer_steps, fpfs_buffer_steps, BufferAnalysis};
    pub use crate::builders::{binomial_tree, kbinomial_tree, linear_tree, TreeKind};
    pub use crate::coverage::{coverage, min_steps, MAX_K};
    pub use crate::latency::{
        conventional_latency_us, degraded_smart_latency_us, smart_latency_us, LatencyModel,
    };
    pub use crate::membership::{Membership, MembershipError};
    pub use crate::optimal::{optimal_k, total_steps, OptimalK, OptimalKTable};
    pub use crate::param_model::{optimal_k_param, param_schedule, ParamModel, ParamOptimal};
    pub use crate::params::SystemParams;
    pub use crate::schedule::{
        fcfs_schedule, fpfs_schedule, ForwardingDiscipline, Schedule, SendEvent,
    };
    pub use crate::tree::{MulticastTree, Rank, RepairError, TreeRepair};
}

pub use prelude::*;
