//! A parameterized (LogGP-style) communication model generalising the
//! paper's integer step model.
//!
//! The paper counts NI-layer time in unit *steps* (`t_step = t_send +
//! t_recv`): one packet transmission per NI per step. Related work (Park et
//! al., ICPP'96 — "Construction of Optimal Multicast Trees Based on the
//! Parameterized Communication Model") argues tree shape should follow the
//! machine's real parameters. This module provides that generalisation:
//!
//! * `send_overhead` (`o_s`) — sender NI occupancy per packet copy;
//! * `recv_overhead` (`o_r`) — receiver NI occupancy per packet;
//! * `latency` (`L`) — wire time, sender release to receiver start;
//! * `gap` (`g`) — minimum interval between consecutive sends by one NI
//!   (`g = o_s + o_r` models the paper's synchronous handshake; `g = o_s`
//!   models fully overlapped injection).
//!
//! [`param_schedule`] produces exact continuous-time schedules under either
//! forwarding discipline, and [`optimal_k_param`] re-runs the Theorem-3
//! search under the generalised cost — reducing *exactly* to the paper's
//! optimum when the parameters encode the step model (tested).

use crate::coverage::ceil_log2;
use crate::params::SystemParams;
use crate::schedule::ForwardingDiscipline;
use crate::tree::{MulticastTree, Rank};

/// Machine parameters of the generalised model (all µs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParamModel {
    /// Sender NI occupancy per packet copy (`o_s`).
    pub send_overhead: f64,
    /// Receiver NI occupancy per packet (`o_r`).
    pub recv_overhead: f64,
    /// Wire latency between the NIs (`L`).
    pub latency: f64,
    /// Minimum interval between consecutive sends by one NI (`g`).
    pub gap: f64,
}

impl ParamModel {
    /// The paper's synchronous step model: `g = o_s + o_r`, `L = t_prop` —
    /// one send per step, steps of `t_step`.
    pub fn step_model(p: &SystemParams) -> Self {
        ParamModel {
            send_overhead: p.t_send,
            recv_overhead: p.t_recv,
            latency: p.t_prop,
            gap: p.t_send + p.t_prop + p.t_recv,
        }
    }

    /// Overlapped injection: the NI can start the next copy as soon as the
    /// previous one left (`g = o_s`).
    pub fn overlapped(p: &SystemParams) -> Self {
        ParamModel {
            send_overhead: p.t_send,
            recv_overhead: p.t_recv,
            latency: p.t_prop,
            gap: p.t_send,
        }
    }

    /// Effective inter-send spacing: a send occupies the NI for at least
    /// `max(g, o_s)`.
    fn spacing(&self) -> f64 {
        self.gap.max(self.send_overhead)
    }

    /// Validates parameter sanity.
    ///
    /// # Panics
    ///
    /// Panics on negative or NaN parameters.
    pub fn validate(&self) {
        for (name, v) in [
            ("send_overhead", self.send_overhead),
            ("recv_overhead", self.recv_overhead),
            ("latency", self.latency),
            ("gap", self.gap),
        ] {
            assert!(
                v.is_finite() && v >= 0.0,
                "{name} must be finite and >= 0, got {v}"
            );
        }
    }
}

/// A continuous-time multicast schedule under the parameterized model.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSchedule {
    /// `recv[rank][packet]`: time the packet is fully received at the NI
    /// (0 for the source).
    recv: Vec<Vec<f64>>,
    packets: u32,
}

impl ParamSchedule {
    /// Time `rank` has fully received `packet` (µs from NI-layer start).
    pub fn receive_time(&self, rank: Rank, packet: u32) -> f64 {
        self.recv[rank.index()][packet as usize]
    }

    /// Time `rank` has the whole message.
    pub fn message_completion(&self, rank: Rank) -> f64 {
        *self.recv[rank.index()].last().expect("m >= 1")
    }

    /// NI-layer completion of the whole multicast.
    pub fn total_time(&self) -> f64 {
        self.recv
            .iter()
            .map(|r| *r.last().expect("m >= 1"))
            .fold(0.0, f64::max)
    }

    /// End-to-end latency including host overheads.
    pub fn latency_us(&self, p: &SystemParams) -> f64 {
        p.t_s + self.total_time() + p.t_r
    }
}

/// Builds the continuous-time schedule of an `m`-packet multicast over
/// `tree` under `model` and the given forwarding discipline.
///
/// Semantics: the source's packets are available at time 0 (NI layer); a
/// node may forward a packet once fully received; consecutive sends by one
/// NI are at least `max(g, o_s)` apart; a packet sent at `t` is fully
/// received at `t + o_s + L + o_r`.
///
/// # Panics
///
/// Panics if `m == 0` or the model is invalid.
pub fn param_schedule(
    tree: &MulticastTree,
    m: u32,
    discipline: ForwardingDiscipline,
    model: &ParamModel,
) -> ParamSchedule {
    assert!(m >= 1, "a message has at least one packet");
    model.validate();
    let n = tree.len();
    let mu = m as usize;
    let hop = model.send_overhead + model.latency + model.recv_overhead;
    let spacing = model.spacing();
    let mut recv = vec![vec![f64::INFINITY; mu]; n];
    recv[0] = vec![0.0; mu];
    for u in tree.dfs_preorder() {
        let kids = tree.children(u);
        if kids.is_empty() {
            continue;
        }
        let arr = recv[u.index()].clone();
        let mut next_free = f64::NEG_INFINITY;
        let mut emit = |packet: u32, child: Rank, next_free: &mut f64| {
            let start = (*next_free).max(arr[packet as usize]);
            *next_free = start + spacing;
            recv[child.index()][packet as usize] = start + hop;
        };
        match discipline {
            ForwardingDiscipline::Fpfs => {
                for p in 0..m {
                    for &c in kids {
                        emit(p, c, &mut next_free);
                    }
                }
            }
            ForwardingDiscipline::Fcfs => {
                for &c in kids {
                    for p in 0..m {
                        emit(p, c, &mut next_free);
                    }
                }
            }
        }
    }
    ParamSchedule { recv, packets: m }
}

/// Result of the generalised optimal-k search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParamOptimal {
    /// The minimising child cap.
    pub k: u32,
    /// NI-layer completion time achieved (µs).
    pub total_us: f64,
}

/// Finds the `k ∈ [1, ⌈log₂ n⌉]` whose k-binomial tree minimises the
/// FPFS completion time under `model` (ties to larger `k`, as in
/// [`crate::optimal::optimal_k`]).
///
/// # Panics
///
/// Panics if `n == 0` or `m == 0`.
pub fn optimal_k_param(n: u32, m: u32, model: &ParamModel) -> ParamOptimal {
    assert!(n >= 1, "a multicast set has at least the source");
    assert!(m >= 1, "a message has at least one packet");
    if n == 1 {
        return ParamOptimal {
            k: 1,
            total_us: 0.0,
        };
    }
    let hi = ceil_log2(u64::from(n)).max(1);
    let mut best = ParamOptimal {
        k: 1,
        total_us: f64::INFINITY,
    };
    for k in 1..=hi {
        let tree = crate::builders::kbinomial_tree(n, k);
        let total = param_schedule(&tree, m, ForwardingDiscipline::Fpfs, model).total_time();
        if total <= best.total_us {
            best = ParamOptimal { k, total_us: total };
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{binomial_tree, kbinomial_tree, linear_tree};
    use crate::optimal::optimal_k;
    use crate::schedule::fpfs_schedule;

    fn step() -> ParamModel {
        ParamModel::step_model(&SystemParams::paper_1997())
    }

    #[test]
    fn reduces_to_step_model_exactly() {
        // With g = o_s + o_r and L = 0, the continuous schedule is the
        // integer schedule scaled by t_step.
        for n in [2u32, 7, 16, 48] {
            for k in [1u32, 2, 4] {
                for m in [1u32, 3, 8] {
                    let tree = kbinomial_tree(n, k);
                    let ps = param_schedule(&tree, m, ForwardingDiscipline::Fpfs, &step());
                    let is = fpfs_schedule(&tree, m);
                    for r in 0..n {
                        for p in 0..m {
                            let expect = f64::from(is.receive_step(Rank(r), p)) * 5.0;
                            let got = ps.receive_time(Rank(r), p);
                            assert!(
                                (got - expect).abs() < 1e-9,
                                "n={n} k={k} m={m} r={r} p={p}: {got} vs {expect}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn optimal_k_matches_paper_under_step_model() {
        for n in [4u32, 16, 31, 48, 64] {
            for m in [1u32, 2, 4, 8, 16, 32] {
                assert_eq!(
                    optimal_k_param(n, m, &step()).k,
                    optimal_k(u64::from(n), m).k,
                    "n={n} m={m}"
                );
            }
        }
    }

    #[test]
    fn latency_includes_host_overheads() {
        let p = SystemParams::paper_1997();
        let tree = binomial_tree(8);
        let ps = param_schedule(&tree, 1, ForwardingDiscipline::Fpfs, &step());
        assert!((ps.latency_us(&p) - (12.5 + 15.0 + 12.5)).abs() < 1e-9);
    }

    #[test]
    fn overlapped_model_prefers_wider_trees() {
        // With g = o_s < t_step, replication at one node is cheaper, so the
        // optimal k under the overlapped model is never smaller than under
        // the step model (and strictly larger somewhere).
        let p = SystemParams::paper_1997();
        let ov = ParamModel::overlapped(&p);
        let st = step();
        let mut strictly = false;
        for n in [16u32, 32, 64] {
            for m in [2u32, 4, 8, 16] {
                let ko = optimal_k_param(n, m, &ov).k;
                let ks = optimal_k_param(n, m, &st).k;
                assert!(ko >= ks, "n={n} m={m}: overlapped {ko} < step {ks}");
                strictly |= ko > ks;
            }
        }
        assert!(strictly, "overlapped should widen the optimum somewhere");
    }

    #[test]
    fn wire_latency_does_not_change_pipelining_rate() {
        // Adding pure wire latency L shifts completions but the marginal
        // cost per extra packet stays gap * k (pipeline rate).
        let mut m1 = step();
        m1.latency = 50.0;
        let tree = kbinomial_tree(32, 2);
        let t4 = param_schedule(&tree, 4, ForwardingDiscipline::Fpfs, &m1).total_time();
        let t5 = param_schedule(&tree, 5, ForwardingDiscipline::Fpfs, &m1).total_time();
        assert!((t5 - t4 - 2.0 * 5.0).abs() < 1e-9);
    }

    #[test]
    fn huge_gap_makes_linear_tree_win_early() {
        // When the gap dominates, every extra child of the root costs a full
        // gap per packet, so the linear tree wins for shorter messages than
        // under the step model.
        let model = ParamModel {
            send_overhead: 1.0,
            recv_overhead: 1.0,
            latency: 0.0,
            gap: 40.0,
        };
        let st = step();
        let n = 16;
        let first_linear =
            |mdl: &ParamModel| (1u32..64).find(|&m| optimal_k_param(n, m, mdl).k == 1);
        let g = first_linear(&model).expect("gap model crosses to linear");
        let s = first_linear(&st).expect("step model crosses to linear");
        assert!(g <= s, "gap-dominated crossover {g} should not exceed {s}");
    }

    #[test]
    fn fcfs_no_faster_than_fpfs_param() {
        for n in [8u32, 16, 48] {
            for m in [2u32, 6] {
                let tree = kbinomial_tree(n, 3);
                let fp = param_schedule(&tree, m, ForwardingDiscipline::Fpfs, &step());
                let fc = param_schedule(&tree, m, ForwardingDiscipline::Fcfs, &step());
                assert!(fp.total_time() <= fc.total_time() + 1e-9, "n={n} m={m}");
            }
        }
    }

    #[test]
    fn linear_tree_completion_formula() {
        // Chain pipeline: under the step model (spacing == hop) the last
        // node finishes at (n - 1 + m - 1) * t_step.
        let tree = linear_tree(10);
        let ps = param_schedule(&tree, 4, ForwardingDiscipline::Fpfs, &step());
        assert!((ps.total_time() - f64::from(9 + 3) * 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "finite and >= 0")]
    fn negative_gap_rejected() {
        let mut m = step();
        m.gap = -1.0;
        m.validate();
    }

    #[test]
    fn singleton_tree() {
        let t = crate::tree::MulticastTree::singleton();
        let ps = param_schedule(&t, 3, ForwardingDiscipline::Fpfs, &step());
        assert_eq!(ps.total_time(), 0.0);
        assert_eq!(optimal_k_param(1, 5, &step()).total_us, 0.0);
    }
}
