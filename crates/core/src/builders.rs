//! Tree builders: linear, binomial, and k-binomial trees on an ordered chain
//! of participants (paper §4.2 and Fig. 11).
//!
//! All builders work on the *ordering* of the participants: rank 0 is the
//! source and ranks increase to the right along the chain. When the ordering
//! is contention-free (paper §4.3.2), the recursive construction below yields
//! a contention-free tree, because simultaneous messages always span disjoint
//! or nested chain segments.
//!
//! The construction (Fig. 11): with `s = t1(n, k)` total steps, the source
//! sends its first packet to the node `N(s-1, k)` places from the *right* end
//! of the chain; that node covers the suffix segment recursively with budget
//! `s - 1`. The second child is `N(s-2, k)` places from the previous
//! recipient, and so on for up to `k` children; segment sizes are capped by
//! the number of nodes actually remaining.

use crate::coverage::{ceil_log2, coverage, min_steps, MAX_K};
use crate::tree::{MulticastTree, Rank};

/// The tree families the paper compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TreeKind {
    /// Chain: every vertex has one child (`k = 1`).
    Linear,
    /// Conventional binomial tree (`k = ⌈log₂ n⌉`, i.e. unrestricted).
    Binomial,
    /// k-binomial tree with the given `k` (Definition 1).
    KBinomial(u32),
}

impl TreeKind {
    /// Builds this kind of tree over `n` participants.
    pub fn build(self, n: u32) -> MulticastTree {
        match self {
            TreeKind::Linear => linear_tree(n),
            TreeKind::Binomial => binomial_tree(n),
            TreeKind::KBinomial(k) => kbinomial_tree(n, k),
        }
    }

    /// The child cap `k` this kind uses for `n` participants.
    pub fn k_for(self, n: u32) -> u32 {
        match self {
            TreeKind::Linear => 1,
            TreeKind::Binomial => ceil_log2(u64::from(n)).max(1),
            TreeKind::KBinomial(k) => k,
        }
    }
}

/// Builds the linear (chain) tree over `n` participants: rank `i` forwards to
/// rank `i + 1`. Equivalent to `kbinomial_tree(n, 1)`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn linear_tree(n: u32) -> MulticastTree {
    assert!(n >= 1, "a multicast spans at least the source");
    let mut tree = MulticastTree::with_capacity(n);
    for i in 1..n {
        tree.attach(Rank(i - 1), Rank(i));
    }
    debug_assert!(tree.validate().is_ok());
    tree
}

/// Builds the conventional binomial tree over `n` participants on the chain
/// ordering — the recursive-doubling tree with unrestricted fan-out,
/// identical to `kbinomial_tree(n, ⌈log₂ n⌉)`.
pub fn binomial_tree(n: u32) -> MulticastTree {
    assert!(n >= 1, "a multicast spans at least the source");
    if n == 1 {
        return MulticastTree::singleton();
    }
    kbinomial_tree(n, ceil_log2(u64::from(n)))
}

/// Builds the k-binomial tree over `n` participants on the chain ordering,
/// per the paper's Fig. 11 construction.
///
/// The resulting tree completes a single-packet multicast in
/// [`min_steps`]`(n, k)` steps and has root degree `min(k, t1)`; every vertex
/// has at most `k` children.
///
/// # Panics
///
/// Panics if `n == 0` or `k == 0`.
///
/// # Examples
///
/// ```
/// use optimcast_core::builders::kbinomial_tree;
/// let t = kbinomial_tree(16, 3);
/// assert_eq!(t.len(), 16);
/// assert!(t.max_degree() <= 3);
/// ```
pub fn kbinomial_tree(n: u32, k: u32) -> MulticastTree {
    assert!(n >= 1, "a multicast spans at least the source");
    assert!(k >= 1, "k-binomial trees require k >= 1");
    let k = k.min(MAX_K);
    let mut tree = MulticastTree::with_capacity(n);
    let s = min_steps(u64::from(n), k);
    build_segment(&mut tree, 0, n - 1, s, k);
    debug_assert!(tree.validate().is_ok());
    tree
}

/// Covers chain segment `[root_idx, hi]` (inclusive), rooted at `root_idx`,
/// within `s` steps, fan-out capped at `k`.
///
/// Children are carved off the *right* end of the segment with capacities
/// `N(s-1, k), N(s-2, k), …` as in Fig. 11, capped by the nodes remaining.
///
/// Iterative with an explicit segment stack: the recursive formulation
/// nests O(n) deep at `k = 1` (one frame per chain vertex), which overflows
/// the stack long before mega scale. Processing order differs from the
/// recursion only across *different* parents; each parent still attaches
/// its children in the same left-to-right order, so the resulting tree is
/// identical.
fn build_segment(tree: &mut MulticastTree, root_idx: u32, hi: u32, s: u32, k: u32) {
    debug_assert!(hi >= root_idx);
    let mut stack = vec![(root_idx, hi, s)];
    while let Some((root_idx, hi, s)) = stack.pop() {
        let mut right_end = hi;
        let mut step = 1u32;
        while right_end > root_idx {
            debug_assert!(
                step <= s,
                "budget exhausted: segment [{root_idx}, {hi}] s={s} k={k}"
            );
            let remaining = u128::from(right_end - root_idx);
            let cap = if step <= k {
                coverage(s - step, k)
            } else {
                // More than k children would violate Definition 1; the step
                // budget guarantees this branch is never taken (see tests).
                unreachable!("k-binomial construction exceeded {k} children")
            };
            let take = cap.min(remaining) as u32;
            let child = right_end - take + 1;
            tree.attach(Rank(root_idx), Rank(child));
            if take > 1 {
                stack.push((child, right_end, s - step));
            }
            right_end = child - 1;
            step += 1;
        }
    }
}

/// Lists the per-root-child segment capacities `N(s-1,k) … N(s-k,k)` used by
/// the Fig. 11 construction for an `n`-participant, `k`-binomial tree.
/// Useful for visualising the construction (see the `figures` binary).
pub fn segment_capacities(n: u32, k: u32) -> Vec<u128> {
    let s = min_steps(u64::from(n), k.min(MAX_K));
    (1..=k.min(s).max(1))
        .map(|i| coverage(s.saturating_sub(i), k))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::min_steps;
    use crate::schedule::fpfs_schedule;

    #[test]
    fn linear_is_chain() {
        let t = linear_tree(6);
        t.validate().unwrap();
        assert_eq!(t.max_degree(), 1);
        assert_eq!(t.depth(), 5);
    }

    #[test]
    fn k1_equals_linear() {
        for n in 1..40 {
            assert_eq!(kbinomial_tree(n, 1), linear_tree(n));
        }
    }

    #[test]
    fn binomial_power_of_two_shape() {
        // Classic binomial tree on 2^d nodes: root degree d, depth d.
        for d in 0..7u32 {
            let n = 1u32 << d;
            let t = binomial_tree(n);
            t.validate().unwrap();
            assert_eq!(t.len(), n as usize);
            assert_eq!(t.root_degree(), d);
            assert_eq!(t.depth(), d);
            // Root subtree sizes are powers of two: 2^(d-1), ..., 2, 1.
            let sizes = t.subtree_sizes();
            let got: Vec<u32> = t.root_children().iter().map(|c| sizes[c.index()]).collect();
            let want: Vec<u32> = (0..d).rev().map(|i| 1 << i).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn kbinomial_respects_degree_cap() {
        for n in 1..=130 {
            for k in 1..=7 {
                let t = kbinomial_tree(n, k);
                t.validate().unwrap();
                assert!(
                    t.max_degree() <= k,
                    "n={n} k={k} max_degree={}",
                    t.max_degree()
                );
            }
        }
    }

    #[test]
    fn kbinomial_completes_in_min_steps() {
        // The single-packet FPFS completion time of the constructed tree must
        // equal the analytic minimum t1(n, k) — the construction is optimal.
        for n in 1..=130u32 {
            for k in 1..=7 {
                let t = kbinomial_tree(n, k);
                let sched = fpfs_schedule(&t, 1);
                assert_eq!(
                    sched.total_steps(),
                    min_steps(u64::from(n), k),
                    "n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn root_degree_is_min_of_k_and_steps() {
        for n in 2..=130u32 {
            for k in 1..=7 {
                let t = kbinomial_tree(n, k);
                let s = min_steps(u64::from(n), k);
                assert!(t.root_degree() <= k.min(s), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn full_kbinomial_root_subtree_sizes_match_lemma1() {
        // When n = N(s, k) exactly, the i-th root subtree has exactly
        // N(s - i, k) nodes (Fig. 10).
        for k in 2..=4u32 {
            for s in k + 1..=k + 4 {
                let n = coverage(s, k) as u32;
                let t = kbinomial_tree(n, k);
                let sizes = t.subtree_sizes();
                let got: Vec<u128> = t
                    .root_children()
                    .iter()
                    .map(|c| u128::from(sizes[c.index()]))
                    .collect();
                let want: Vec<u128> = (1..=k).map(|i| coverage(s - i, k)).collect();
                assert_eq!(got, want, "s={s} k={k} n={n}");
            }
        }
    }

    #[test]
    fn fig9_examples_16_nodes() {
        // Paper Fig. 9: 3-binomial and 4-binomial trees on 16 nodes complete
        // in 5 and 4 steps respectively.
        let t3 = kbinomial_tree(16, 3);
        assert_eq!(fpfs_schedule(&t3, 1).total_steps(), 5);
        assert!(t3.max_degree() <= 3);
        let t4 = kbinomial_tree(16, 4);
        assert_eq!(fpfs_schedule(&t4, 1).total_steps(), 4);
        assert_eq!(t4, binomial_tree(16));
    }

    #[test]
    fn children_point_right_and_segments_nest() {
        // Every child sits to the right of its parent in the ordering, and
        // each subtree occupies a contiguous chain segment — the property the
        // contention-free construction relies on.
        for n in [7u32, 16, 23, 48, 64, 100] {
            for k in 1..=6 {
                let t = kbinomial_tree(n, k);
                let sizes = t.subtree_sizes();
                for (p, c) in t.edges() {
                    assert!(c.0 > p.0, "child {c} left of parent {p}");
                }
                // Contiguity: subtree of rank r covers [r, r + size - 1].
                for r in t.dfs_preorder() {
                    let size = sizes[r.index()];
                    for &c in t.children(r) {
                        let csz = sizes[c.index()];
                        assert!(c.0 + csz <= r.0 + size, "subtree escapes segment");
                    }
                }
            }
        }
    }

    #[test]
    fn tree_kind_dispatch() {
        assert_eq!(TreeKind::Linear.build(9), linear_tree(9));
        assert_eq!(TreeKind::Binomial.build(9), binomial_tree(9));
        assert_eq!(TreeKind::KBinomial(2).build(9), kbinomial_tree(9, 2));
        assert_eq!(TreeKind::Linear.k_for(9), 1);
        assert_eq!(TreeKind::Binomial.k_for(9), 4);
        assert_eq!(TreeKind::KBinomial(2).k_for(9), 2);
    }

    #[test]
    fn oversized_k_behaves_like_binomial() {
        for n in 2..=64 {
            let a = kbinomial_tree(n, 40);
            let b = binomial_tree(n);
            // Coverage-equivalent: same completion steps.
            assert_eq!(
                fpfs_schedule(&a, 1).total_steps(),
                fpfs_schedule(&b, 1).total_steps()
            );
        }
    }

    #[test]
    fn segment_capacities_shape() {
        let caps = segment_capacities(16, 4);
        assert_eq!(caps, vec![8, 4, 2, 1]);
        let caps = segment_capacities(16, 3); // s = 5
        assert_eq!(caps, vec![coverage(4, 3), coverage(3, 3), coverage(2, 3)]);
    }
}
