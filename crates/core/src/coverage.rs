//! The coverage function `N(s, k)` of a k-binomial tree (paper Lemma 1)
//! and its inverse `t1(n, k)`.
//!
//! `N(s, k)` is the number of nodes (source included) covered in `s` steps by
//! a k-binomial multicast tree under single-packet FPFS forwarding:
//!
//! ```text
//! N(0, k) = 1
//! N(s, k) = 1 + Σ_{i=1..min(s,k)} N(s - i, k)
//! ```
//!
//! For `s ≤ k` this collapses to the binomial value `2^s` (the cap on the
//! number of children is not yet binding). For `k = 1` it is the linear chain
//! `N(s, 1) = s + 1`; for general `k` the sequence is the "k-step
//! Fibonacci-plus-one" family.

/// Largest meaningful `k`: a k-binomial tree with `k = 63` already covers
/// `2^63` nodes in 63 steps, far beyond any representable multicast set.
pub const MAX_K: u32 = 63;

/// Number of nodes covered in `s` steps by a k-binomial tree (Lemma 1).
///
/// Saturates at `u128::MAX` instead of overflowing, so callers can compare
/// against any `u64` node count safely.
///
/// # Panics
///
/// Panics if `k == 0` (a tree in which no vertex may have children covers
/// nothing; the paper's domain is `k ≥ 1`).
///
/// # Examples
///
/// ```
/// use optimcast_core::coverage::coverage;
/// assert_eq!(coverage(3, 3), 8);            // binomial while s ≤ k
/// assert_eq!(coverage(5, 1), 6);            // linear chain
/// assert_eq!(coverage(8, 2), 88);           // paper §4: N(s,2) Fibonacci-like
/// ```
pub fn coverage(s: u32, k: u32) -> u128 {
    assert!(k >= 1, "k-binomial trees require k >= 1, got k = 0");
    let k = k.min(MAX_K);
    if s <= k {
        // Binomial regime: N(s, k) = 2^s. s <= k <= 63 so this cannot overflow.
        return 1u128 << s;
    }
    // Rolling window of the previous k values of N(·, k).
    let k = k as usize;
    let mut window: Vec<u128> = (0..=k as u32).map(|i| 1u128 << i).collect();
    // window currently holds N(0..=k, k); slide up to s.
    for _ in (k as u32 + 1)..=s {
        // N(s, k) = 1 + Σ_{i=1..k} N(s - i, k); window[1..=k] holds those terms.
        let next = window[1..=k]
            .iter()
            .fold(1u128, |acc, &v| acc.saturating_add(v));
        debug_assert!(next >= window[k]);
        window.rotate_left(1);
        window[k] = next;
    }
    window[k]
}

/// Minimum number of steps `t1` for a k-binomial tree to cover `n` nodes,
/// i.e. the least `s` with `N(s, k) ≥ n`. This is the single-packet multicast
/// completion time of the k-binomial tree on `n` participants.
///
/// # Panics
///
/// Panics if `n == 0` or `k == 0`.
///
/// # Examples
///
/// ```
/// use optimcast_core::coverage::min_steps;
/// assert_eq!(min_steps(1, 3), 0);
/// assert_eq!(min_steps(64, 6), 6);   // binomial
/// assert_eq!(min_steps(64, 2), 8);   // N(8,2) = 88 >= 64, N(7,2) = 54 < 64
/// assert_eq!(min_steps(64, 1), 63);  // linear chain
/// ```
pub fn min_steps(n: u64, k: u32) -> u32 {
    assert!(n >= 1, "a multicast set has at least the source");
    assert!(k >= 1, "k-binomial trees require k >= 1");
    let n = u128::from(n);
    let k = k.min(MAX_K);
    if n == 1 {
        return 0;
    }
    // Binomial regime first: smallest s with 2^s >= n, if that s <= k.
    let log2 = 128 - (n - 1).leading_zeros(); // ceil(log2 n)
    if log2 <= k {
        return log2;
    }
    // Slide the recurrence window until coverage reaches n.
    let ku = k as usize;
    let mut window: Vec<u128> = (0..=k).map(|i| 1u128 << i).collect();
    let mut s = k;
    loop {
        let sum_last_k = window[1..=ku]
            .iter()
            .fold(0u128, |acc, &v| acc.saturating_add(v));
        let next = sum_last_k.saturating_add(1);
        s += 1;
        if next >= n {
            return s;
        }
        window.rotate_left(1);
        window[ku] = next;
    }
}

/// Ceiling of `log2(n)` for `n ≥ 1`: the step count of the (unrestricted)
/// binomial tree, and the upper end of the paper's optimal-`k` search
/// interval `[1, ⌈log₂ n⌉]`.
pub fn ceil_log2(n: u64) -> u32 {
    assert!(n >= 1);
    if n == 1 {
        0
    } else {
        64 - (n - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct recursive reference implementation of Lemma 1.
    fn coverage_ref(s: u32, k: u32) -> u128 {
        if s == 0 {
            return 1;
        }
        let mut total = 1u128;
        for i in 1..=k.min(s) {
            total = total.saturating_add(coverage_ref(s - i, k));
        }
        total
    }

    #[test]
    fn matches_reference_small() {
        for k in 1..=8 {
            for s in 0..=20 {
                assert_eq!(coverage(s, k), coverage_ref(s, k), "s={s} k={k}");
            }
        }
    }

    #[test]
    fn binomial_regime_is_power_of_two() {
        for k in 1..=20 {
            for s in 0..=k {
                assert_eq!(coverage(s, k), 1u128 << s);
            }
        }
    }

    #[test]
    fn linear_chain() {
        for s in 0..200 {
            assert_eq!(coverage(s, 1), u128::from(s) + 1);
        }
    }

    #[test]
    fn k2_sequence_from_paper() {
        // N(s,2): 1, 2, 4, 7, 12, 20, 33, 54, 88 (Fibonacci-like + 1)
        let expect = [1u128, 2, 4, 7, 12, 20, 33, 54, 88, 143];
        for (s, &e) in expect.iter().enumerate() {
            assert_eq!(coverage(s as u32, 2), e);
        }
    }

    #[test]
    fn k3_sequence() {
        // N(s,3): 1, 2, 4, 8, 15, 28, 52, 96
        let expect = [1u128, 2, 4, 8, 15, 28, 52, 96];
        for (s, &e) in expect.iter().enumerate() {
            assert_eq!(coverage(s as u32, 3), e);
        }
    }

    #[test]
    fn monotone_in_s_and_k() {
        for k in 1..=6 {
            for s in 0..=24 {
                assert!(coverage(s + 1, k) > coverage(s, k));
                assert!(coverage(s, k + 1) >= coverage(s, k));
            }
        }
    }

    #[test]
    fn min_steps_is_inverse_of_coverage() {
        for k in 1..=6 {
            for n in 1..=2000u64 {
                let s = min_steps(n, k);
                assert!(coverage(s, k) >= u128::from(n), "n={n} k={k} s={s}");
                if s > 0 {
                    assert!(coverage(s - 1, k) < u128::from(n), "n={n} k={k} s={s}");
                }
            }
        }
    }

    #[test]
    fn min_steps_examples() {
        assert_eq!(min_steps(2, 1), 1);
        assert_eq!(min_steps(4, 2), 2);
        assert_eq!(min_steps(16, 4), 4);
        assert_eq!(min_steps(48, 3), 6); // N(6,3) = 52 >= 48
        assert_eq!(min_steps(48, 2), 7); // N(7,2) = 54 >= 48
    }

    #[test]
    fn saturation_does_not_panic() {
        // Huge s with small k must not overflow.
        let v = coverage(4000, 2);
        assert!(v > 0);
        let v = coverage(300, 50);
        assert!(v > 0);
    }

    #[test]
    fn large_k_clamped() {
        assert_eq!(min_steps(u64::MAX, MAX_K + 100), 64);
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(64), 6);
        assert_eq!(ceil_log2(65), 7);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_panics() {
        coverage(3, 0);
    }

    #[test]
    #[should_panic(expected = "at least the source")]
    fn zero_n_panics() {
        min_steps(0, 2);
    }
}
