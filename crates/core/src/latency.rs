//! Analytic multicast latency models (paper §2.3–§2.6 and Fig. 4).
//!
//! * **Smart NI** (§2.5): host software overheads are paid once — `t_s` at
//!   the source, `t_r` at each destination — and the tree is executed
//!   entirely by NI coprocessors, so
//!   `L = t_s + steps · t_step + t_r`
//!   where `steps` comes from a [`Schedule`](crate::schedule::Schedule)
//!   (Theorem 2 gives `steps = t1 + (m-1)·k_T` under FPFS).
//!
//! * **Conventional NI** (§2.3): every intermediate host receives the whole
//!   message (`t_r`), then performs a full software send (`t_s` + per-packet
//!   NI transmission) for *each* child, serially. For a single-packet
//!   binomial multicast this yields the paper's
//!   `⌈log₂ n⌉ · (t_s + t_step + t_r)` (Fig. 4(a)).

use crate::params::SystemParams;
use crate::schedule::Schedule;
use crate::tree::{MulticastTree, Rank};

/// Which network-interface architecture executes the multicast tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LatencyModel {
    /// Host processors forward every copy (conventional NI, §2.3).
    ConventionalNi,
    /// NI coprocessors forward packet replicas (smart NI, §2.4).
    SmartNi,
}

/// Latency in microseconds of a multicast whose smart-NI schedule completes
/// in `steps` steps: `t_s + steps · t_step + t_r`.
pub fn smart_latency_from_steps(steps: u32, p: &SystemParams) -> f64 {
    p.t_s + f64::from(steps) * p.t_step() + p.t_r
}

/// Latency in microseconds of an `m`-packet multicast over `tree` with smart
/// NI support, using the exact step schedule `sched`.
pub fn smart_latency_us(sched: &Schedule, p: &SystemParams) -> f64 {
    smart_latency_from_steps(sched.total_steps(), p)
}

/// Latency in microseconds of an `m`-packet multicast over `tree` with
/// *conventional* NI support (host-forwarded).
///
/// Model: the host at a node owns the complete message at time `T`. It then
/// issues one software send per child, serially; the `i`-th child's host owns
/// the message at
/// `T + i·(t_s + m·t_step) + t_r`.
/// The multicast latency is the maximum over all destinations. With `m = 1`
/// and a binomial tree this reduces to the paper's
/// `⌈log₂ n⌉ · (t_s + t_step + t_r)`.
pub fn conventional_latency_us(tree: &MulticastTree, m: u32, p: &SystemParams) -> f64 {
    assert!(m >= 1, "a message has at least one packet");
    let send_cost = p.t_s + f64::from(m) * p.t_step();
    let mut own = vec![0.0f64; tree.len()];
    let mut latest = 0.0f64;
    for u in tree.dfs_preorder() {
        let base = own[u.index()];
        for (i, &c) in tree.children(u).iter().enumerate() {
            let t = base + (i as f64 + 1.0) * send_cost + p.t_r;
            own[c.index()] = t;
            latest = latest.max(t);
        }
    }
    if tree.is_empty() {
        0.0
    } else {
        latest
    }
}

/// Latency of a multicast under the requested NI model; smart-NI latency is
/// derived from the supplied schedule, conventional from the tree directly.
pub fn latency_us(
    model: LatencyModel,
    tree: &MulticastTree,
    sched: &Schedule,
    p: &SystemParams,
) -> f64 {
    match model {
        LatencyModel::SmartNi => smart_latency_us(sched, p),
        LatencyModel::ConventionalNi => conventional_latency_us(tree, sched.packets(), p),
    }
}

/// Analytic estimate of smart-NI multicast latency when each transmission
/// is independently lost with probability `drop_rate` and recovered by a
/// stop-and-wait retransmission after `ack_timeout_us`.
///
/// Each scheduled step is a transmission; a geometric number of extra
/// attempts (`d / (1 - d)` expected per step) each costs one timeout wait
/// plus a repeated step, stretching the critical path to
/// `L ≈ t_s + steps · (1 + d/(1-d) · (ack_timeout + t_step)/t_step) · t_step + t_r`.
/// At `d = 0` this is exactly [`smart_latency_from_steps`]; it grows
/// monotonically (and without bound) as `d → 1`. A first-order estimate for
/// sizing chaos sweeps, not a substitute for simulation: it ignores backoff
/// doubling and the partial overlap of independent subtree recoveries.
///
/// # Panics
///
/// Panics unless `0 ≤ drop_rate < 1` and `ack_timeout_us ≥ 0`.
pub fn degraded_smart_latency_us(
    sched: &Schedule,
    p: &SystemParams,
    drop_rate: f64,
    ack_timeout_us: f64,
) -> f64 {
    assert!(
        (0.0..1.0).contains(&drop_rate),
        "drop_rate must lie in [0, 1)"
    );
    assert!(ack_timeout_us >= 0.0, "ack_timeout_us must be non-negative");
    let base = smart_latency_from_steps(sched.total_steps(), p);
    let retries_per_step = drop_rate / (1.0 - drop_rate);
    base + f64::from(sched.total_steps()) * retries_per_step * (ack_timeout_us + p.t_step())
}

/// The source-side view: time at which `rank`'s *host* has the whole message
/// under smart NI (NI receive of last packet plus the host receive overhead).
pub fn smart_host_completion_us(sched: &Schedule, rank: Rank, p: &SystemParams) -> f64 {
    if rank == Rank::SOURCE {
        return 0.0;
    }
    p.t_s + f64::from(sched.message_completion(rank)) * p.t_step() + p.t_r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{binomial_tree, kbinomial_tree, linear_tree};
    use crate::schedule::{fcfs_schedule, fpfs_schedule};

    fn p() -> SystemParams {
        SystemParams::paper_1997()
    }

    /// Paper Fig. 4: single-packet multicast to 3 destinations (binomial).
    /// Conventional: 2(t_s + t_step + t_r); smart: t_s + 2 t_step + t_r.
    #[test]
    fn fig4_three_destinations() {
        let t = binomial_tree(4);
        let s = fpfs_schedule(&t, 1);
        let conv = conventional_latency_us(&t, 1, &p());
        let smart = smart_latency_us(&s, &p());
        let ts = 12.5;
        let tr = 12.5;
        let tstep = 5.0;
        assert!((conv - 2.0 * (ts + tstep + tr)).abs() < 1e-9, "conv={conv}");
        assert!(
            (smart - (ts + 2.0 * tstep + tr)).abs() < 1e-9,
            "smart={smart}"
        );
        assert!(smart < conv);
    }

    /// Paper §2.5: for n participants, conventional = ⌈log₂n⌉(t_s+t_step+t_r),
    /// smart = t_s + ⌈log₂n⌉ t_step + t_r (single packet, binomial tree).
    #[test]
    fn single_packet_binomial_formulas() {
        for n in [2u32, 4, 8, 16, 32, 64] {
            let d = f64::from(crate::coverage::ceil_log2(u64::from(n)));
            let t = binomial_tree(n);
            let s = fpfs_schedule(&t, 1);
            let conv = conventional_latency_us(&t, 1, &p());
            let smart = smart_latency_us(&s, &p());
            assert!((conv - d * (12.5 + 5.0 + 12.5)).abs() < 1e-9, "n={n}");
            assert!((smart - (12.5 + d * 5.0 + 12.5)).abs() < 1e-9, "n={n}");
        }
    }

    /// Paper Fig. 5 latencies: binomial t_s + 6 t_step + t_r vs linear
    /// t_s + 5 t_step + t_r for m = 3, 3 destinations.
    #[test]
    fn fig5_latencies() {
        let bin = smart_latency_us(&fpfs_schedule(&binomial_tree(4), 3), &p());
        let lin = smart_latency_us(&fpfs_schedule(&linear_tree(4), 3), &p());
        assert!((bin - (12.5 + 6.0 * 5.0 + 12.5)).abs() < 1e-9);
        assert!((lin - (12.5 + 5.0 * 5.0 + 12.5)).abs() < 1e-9);
        assert!(lin < bin);
    }

    /// Smart NI always beats conventional NI for trees with intermediate
    /// forwarding (depth > 1) — the paper's motivating claim.
    #[test]
    fn smart_dominates_conventional() {
        for n in [4u32, 8, 16, 48, 64] {
            for k in 1..=5 {
                for m in [1u32, 2, 8] {
                    let t = kbinomial_tree(n, k);
                    let s = fpfs_schedule(&t, m);
                    assert!(
                        smart_latency_us(&s, &p()) < conventional_latency_us(&t, m, &p()),
                        "n={n} k={k} m={m}"
                    );
                }
            }
        }
    }

    /// Conventional latency grows linearly in m on every edge (no
    /// packet-level pipelining across hops).
    #[test]
    fn conventional_linear_in_m() {
        let t = binomial_tree(16);
        let l1 = conventional_latency_us(&t, 1, &p());
        let l2 = conventional_latency_us(&t, 2, &p());
        let l3 = conventional_latency_us(&t, 3, &p());
        assert!((l3 - l2 - (l2 - l1)).abs() < 1e-9, "constant increments");
        assert!(l2 > l1);
    }

    /// Smart latency under FPFS grows with slope `bottleneck · t_step` in m
    /// (the bottleneck is the tree's max fan-out; see schedule.rs Theorem 1
    /// tests for why that is the right reading of the paper's `k_T`).
    #[test]
    fn smart_slope_is_bottleneck_degree() {
        for k in 1..=4u32 {
            let t = kbinomial_tree(32, k);
            let l4 = smart_latency_us(&fpfs_schedule(&t, 4), &p());
            let l5 = smart_latency_us(&fpfs_schedule(&t, 5), &p());
            let slope = l5 - l4;
            assert!(
                (slope - f64::from(t.max_degree()) * 5.0).abs() < 1e-9,
                "k={k} slope={slope}"
            );
        }
    }

    #[test]
    fn host_completion_bounds_latency() {
        let t = kbinomial_tree(16, 2);
        let s = fpfs_schedule(&t, 4);
        let total = smart_latency_us(&s, &p());
        let max_host = (1..16)
            .map(|r| smart_host_completion_us(&s, Rank(r), &p()))
            .fold(0.0f64, f64::max);
        assert!((max_host - total).abs() < 1e-9);
    }

    #[test]
    fn latency_model_dispatch() {
        let t = binomial_tree(8);
        let s = fcfs_schedule(&t, 2);
        assert_eq!(
            latency_us(LatencyModel::SmartNi, &t, &s, &p()),
            smart_latency_us(&s, &p())
        );
        assert_eq!(
            latency_us(LatencyModel::ConventionalNi, &t, &s, &p()),
            conventional_latency_us(&t, 2, &p())
        );
    }

    /// At zero drop rate the degraded estimate collapses to the exact
    /// fault-free latency; it is monotone in the drop rate.
    #[test]
    fn degraded_latency_anchors_and_grows() {
        let t = kbinomial_tree(16, 2);
        let s = fpfs_schedule(&t, 4);
        let base = smart_latency_us(&s, &p());
        assert_eq!(degraded_smart_latency_us(&s, &p(), 0.0, 60.0), base);
        let mut prev = base;
        for d in [0.01, 0.05, 0.1, 0.25, 0.5, 0.9] {
            let est = degraded_smart_latency_us(&s, &p(), d, 60.0);
            assert!(est > prev, "d={d}: {est} <= {prev}");
            prev = est;
        }
        // A longer timeout costs more per recovery.
        assert!(
            degraded_smart_latency_us(&s, &p(), 0.1, 120.0)
                > degraded_smart_latency_us(&s, &p(), 0.1, 60.0)
        );
    }

    #[test]
    fn singleton_latency_is_overheads_only() {
        let t = crate::tree::MulticastTree::singleton();
        let s = fpfs_schedule(&t, 2);
        assert!((smart_latency_us(&s, &p()) - 25.0).abs() < 1e-9);
        assert_eq!(conventional_latency_us(&t, 2, &p()), 0.0);
    }
}
