//! Buffer-requirement analysis of FCFS vs FPFS smart-NI forwarding
//! (paper §3.3.2).
//!
//! Consider an intermediate node with `k` children forwarding an `m`-packet
//! multicast, with `t_sq` the time to push one packet copy from the NI queue
//! to the network adaptor, and best-case zero delay between incoming packets.
//!
//! * Under **FCFS** the `j`-th packet (1-based) must stay buffered until the
//!   first child has received packets `j..=m` (that is `m − j + 1` sends),
//!   the middle `k − 2` children have received all `m` packets, and the last
//!   child has received packets `1..=j`:
//!
//!   ```text
//!   c_c(j) = ((m − j + 1) + (k − 2)·m + j) · t_sq = ((k − 1)·m + 1) · t_sq
//!   ```
//!
//!   — independent of `j`, and linear in the *message* length.
//!
//! * Under **FPFS** a packet leaves the buffer as soon as its `k` copies are
//!   out: `c_f = k · t_sq`, independent of the message length.
//!
//! Hence `c_f ≤ c_c` always (equality only for `m = 1`), which is the paper's
//! argument for FPFS being the practical implementation. The functions below
//! expose both the closed forms and a worst-case *capacity* estimate (how
//! many packets must be resident simultaneously), and
//! [`BufferAnalysis`] packages the comparison for sweeps.

/// FCFS residency time of any one packet at an intermediate node with `k`
/// children and an `m`-packet message, in units of `t_sq`
/// (`c_c = (k−1)·m + 1`). For `k = 1` this degenerates to a single copy's
/// residency of 1, matching FPFS.
///
/// # Panics
///
/// Panics if `k == 0` or `m == 0`.
pub fn fcfs_buffer_steps(k: u32, m: u32) -> u64 {
    assert!(k >= 1, "an intermediate node has at least one child");
    assert!(m >= 1, "a message has at least one packet");
    u64::from(k - 1) * u64::from(m) + 1
}

/// FPFS residency time of any one packet at an intermediate node with `k`
/// children, in units of `t_sq` (`c_f = k`), independent of message length.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn fpfs_buffer_steps(k: u32, _m: u32) -> u64 {
    assert!(k >= 1, "an intermediate node has at least one child");
    u64::from(k)
}

/// Worst-case number of packets simultaneously resident at the NI of an
/// intermediate node (zero inter-arrival delay, arrivals one per `t_sq`).
///
/// A packet arriving at time `j` (in `t_sq` units) leaves at `j + c`, where
/// `c` is the residency time; with one arrival per unit, the steady-state
/// occupancy is `min(c, m)` packets.
pub fn resident_packets(residency: u64, m: u32) -> u64 {
    residency.min(u64::from(m))
}

/// Side-by-side buffer comparison for one `(k, m)` configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferAnalysis {
    /// Children of the intermediate node.
    pub k: u32,
    /// Packets in the message.
    pub m: u32,
    /// FCFS per-packet residency (`t_sq` units).
    pub fcfs_residency: u64,
    /// FPFS per-packet residency (`t_sq` units).
    pub fpfs_residency: u64,
    /// FCFS worst-case resident packets.
    pub fcfs_capacity: u64,
    /// FPFS worst-case resident packets.
    pub fpfs_capacity: u64,
}

impl BufferAnalysis {
    /// Computes the §3.3.2 comparison for an intermediate node with `k`
    /// children and an `m`-packet message.
    pub fn new(k: u32, m: u32) -> Self {
        let cc = fcfs_buffer_steps(k, m);
        let cf = fpfs_buffer_steps(k, m);
        BufferAnalysis {
            k,
            m,
            fcfs_residency: cc,
            fpfs_residency: cf,
            fcfs_capacity: resident_packets(cc, m),
            fpfs_capacity: resident_packets(cf, m),
        }
    }

    /// Ratio of FCFS to FPFS residency; ≥ 1 always (paper's conclusion).
    pub fn residency_ratio(&self) -> f64 {
        self.fcfs_residency as f64 / self.fpfs_residency as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fcfs_formula_independent_of_packet_index() {
        // Derivation check: (m - j + 1) + (k - 2) m + j == (k-1) m + 1 for all j.
        for k in 2..=8u64 {
            for m in 1..=32u64 {
                for j in 1..=m {
                    let per_packet = (m - j + 1) + (k - 2) * m + j;
                    assert_eq!(per_packet, (k - 1) * m + 1);
                    assert_eq!(fcfs_buffer_steps(k as u32, m as u32), (k - 1) * m + 1);
                }
            }
        }
    }

    #[test]
    fn fpfs_never_exceeds_fcfs() {
        for k in 1..=10 {
            for m in 1..=64 {
                assert!(
                    fpfs_buffer_steps(k, m) <= fcfs_buffer_steps(k, m),
                    "k={k} m={m}"
                );
            }
        }
    }

    #[test]
    fn equality_only_at_single_packet_single_child() {
        // c_f = k, c_c = (k-1)m + 1: equal iff k = (k-1)m + 1 iff m = 1 or k = 1.
        for k in 1..=10 {
            for m in 1..=32 {
                let eq = fpfs_buffer_steps(k, m) == fcfs_buffer_steps(k, m);
                assert_eq!(eq, m == 1 || k == 1, "k={k} m={m}");
            }
        }
    }

    #[test]
    fn fpfs_residency_independent_of_m() {
        for k in 1..=8 {
            let r1 = fpfs_buffer_steps(k, 1);
            for m in 2..=64 {
                assert_eq!(fpfs_buffer_steps(k, m), r1);
            }
        }
    }

    #[test]
    fn fcfs_residency_linear_in_m() {
        for k in 2..=8u32 {
            let d1 = fcfs_buffer_steps(k, 2) - fcfs_buffer_steps(k, 1);
            for m in 2..=20 {
                assert_eq!(fcfs_buffer_steps(k, m + 1) - fcfs_buffer_steps(k, m), d1);
            }
            assert_eq!(d1, u64::from(k) - 1);
        }
    }

    #[test]
    fn capacity_bounded_by_message() {
        for k in 1..=8 {
            for m in 1..=32 {
                let a = BufferAnalysis::new(k, m);
                assert!(a.fcfs_capacity <= u64::from(m));
                assert!(a.fpfs_capacity <= u64::from(m));
                assert!(a.fpfs_capacity <= a.fcfs_capacity);
            }
        }
    }

    #[test]
    fn ratio_grows_with_m() {
        let k = 4;
        let mut prev = 0.0;
        for m in 1..=32 {
            let r = BufferAnalysis::new(k, m).residency_ratio();
            assert!(r >= prev, "m={m}");
            prev = r;
        }
        assert!(prev > 5.0, "FCFS should need much more buffering at m=32");
    }

    #[test]
    #[should_panic(expected = "at least one child")]
    fn zero_children_panics() {
        fcfs_buffer_steps(0, 4);
    }

    #[test]
    #[should_panic(expected = "at least one packet")]
    fn zero_packets_panics() {
        fcfs_buffer_steps(2, 0);
    }
}
