//! System and technological parameters (paper §5.2).
//!
//! The paper evaluates with parameters "representing the current trend in
//! technology" (1997): host software start-up `t_s = 12.5 µs`, host receive
//! overhead `t_r = 12.5 µs`, 64-byte packets, NI send overhead
//! `t_send = 3.0 µs` and NI receive overhead `t_recv = 2.0 µs`. One *step* —
//! the transmission of a packet from one NI to another — therefore costs
//! `t_step = t_send + t_prop + t_recv`, with propagation folded into the
//! constants (wormhole networks make it distance-insensitive).

/// Timing and sizing parameters of the modelled system.
///
/// All times are in microseconds. The [`Default`] instance is the paper's
/// §5.2 configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemParams {
    /// Software start-up overhead at the source host processor (`t_s`), µs.
    pub t_s: f64,
    /// Software receive overhead at each destination host processor (`t_r`), µs.
    pub t_r: f64,
    /// Overhead at the network interface for sending one packet (`t_send`), µs.
    pub t_send: f64,
    /// Overhead at the network interface for receiving one packet (`t_recv`), µs.
    pub t_recv: f64,
    /// Wire/propagation time per packet, µs. The paper folds this into
    /// `t_step`; we keep it explicit (default 0) so the simulator can model
    /// per-hop costs.
    pub t_prop: f64,
    /// Maximum packet payload size in bytes (the fixed packet size the
    /// network dictates).
    pub packet_bytes: u32,
}

impl Default for SystemParams {
    fn default() -> Self {
        Self::paper_1997()
    }
}

impl SystemParams {
    /// The exact parameter set of the paper's §5.2.
    pub const fn paper_1997() -> Self {
        SystemParams {
            t_s: 12.5,
            t_r: 12.5,
            t_send: 3.0,
            t_recv: 2.0,
            t_prop: 0.0,
            packet_bytes: 64,
        }
    }

    /// The cost of one *step*: NI-to-NI transmission of a single packet
    /// (`t_send + t_prop + t_recv`), µs.
    pub fn t_step(&self) -> f64 {
        self.t_send + self.t_prop + self.t_recv
    }

    /// Number of fixed-size packets needed for a `message_bytes`-byte
    /// message (at least 1: a zero-byte multicast still sends a header).
    pub fn packets_for(&self, message_bytes: u64) -> u32 {
        debug_assert!(self.packet_bytes > 0, "packet size must be positive");
        let per = u64::from(self.packet_bytes);
        let n = message_bytes.div_ceil(per).max(1);
        u32::try_from(n).expect("message produces more than u32::MAX packets")
    }

    /// Message size in bytes corresponding to exactly `m` full packets.
    pub fn bytes_for_packets(&self, m: u32) -> u64 {
        u64::from(m) * u64::from(self.packet_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let p = SystemParams::default();
        assert_eq!(p.t_s, 12.5);
        assert_eq!(p.t_r, 12.5);
        assert_eq!(p.t_send, 3.0);
        assert_eq!(p.t_recv, 2.0);
        assert_eq!(p.packet_bytes, 64);
        assert!((p.t_step() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn packetization_rounds_up() {
        let p = SystemParams::default();
        assert_eq!(p.packets_for(0), 1, "empty message is one header packet");
        assert_eq!(p.packets_for(1), 1);
        assert_eq!(p.packets_for(64), 1);
        assert_eq!(p.packets_for(65), 2);
        assert_eq!(p.packets_for(128), 2);
        assert_eq!(p.packets_for(129), 3);
        assert_eq!(p.packets_for(64 * 32), 32);
    }

    #[test]
    fn bytes_for_packets_roundtrip() {
        let p = SystemParams::default();
        for m in 1..=64 {
            assert_eq!(p.packets_for(p.bytes_for_packets(m)), m);
        }
    }

    #[test]
    fn t_step_includes_propagation() {
        let p = SystemParams {
            t_prop: 1.5,
            ..SystemParams::default()
        };
        assert!((p.t_step() - 6.5).abs() < 1e-12);
    }
}
