//! The optimal-`k` solver (paper Theorem 3 and §4.3.1, §5.1).
//!
//! For a multicast set of `n` nodes and an `m`-packet message under FPFS, the
//! completion step count of the k-binomial tree is
//!
//! ```text
//! T(n, m, k) = t1(n, k) + (m − 1) · k
//! ```
//!
//! (Theorems 2 and 3; `t1` from [`crate::coverage::min_steps`]). There is no
//! closed form for the minimising `k`, but the search interval is only
//! `[1, ⌈log₂ n⌉]` — below 1 is meaningless and above `⌈log₂ n⌉` both terms
//! are non-improving — so the optimum is found by direct evaluation, and the
//! paper proposes precomputing it into a table of less than `O(n · log n)`
//! entries ([`OptimalKTable`]).
//!
//! Tie-breaking: several `k` can achieve the same step count (always for
//! `m = 1`, where the `(m−1)k` term vanishes and e.g. `t1(48, k) = 6` for all
//! `k ∈ {3..6}`). We resolve ties toward the **largest** `k`, which matches
//! the paper's §5.1 observation that "for m = 1 the optimal value of
//! k = ⌈log₂ n⌉" (the conventional binomial tree).

use crate::coverage::{ceil_log2, min_steps};

/// Result of an optimal-`k` query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OptimalK {
    /// The optimal child cap.
    pub k: u32,
    /// The FPFS completion steps achieved: `t1(n, k) + (m−1)·k`.
    pub steps: u64,
}

/// FPFS completion steps of the k-binomial tree: `t1(n,k) + (m−1)·k`
/// (Theorem 2 applied to the k-binomial tree family).
///
/// # Panics
///
/// Panics if `n == 0`, `m == 0`, or `k == 0`.
pub fn total_steps(n: u64, m: u32, k: u32) -> u64 {
    assert!(m >= 1, "a message has at least one packet");
    u64::from(min_steps(n, k)) + u64::from(m - 1) * u64::from(k)
}

/// The optimal `k` for an `n`-node multicast of an `m`-packet message
/// (Theorem 3): minimises [`total_steps`] over `k ∈ [1, ⌈log₂ n⌉]`,
/// ties broken toward larger `k`.
///
/// # Panics
///
/// Panics if `n == 0` or `m == 0`.
///
/// # Examples
///
/// ```
/// use optimcast_core::optimal::optimal_k;
/// assert_eq!(optimal_k(64, 1).k, 6);   // single packet: binomial
/// assert_eq!(optimal_k(64, 8).k, 2);   // paper Fig. 12(b)
/// assert_eq!(optimal_k(16, 16).k, 1);  // long message, small set: linear
/// ```
pub fn optimal_k(n: u64, m: u32) -> OptimalK {
    assert!(n >= 1, "a multicast set has at least the source");
    assert!(m >= 1, "a message has at least one packet");
    if n == 1 {
        return OptimalK { k: 1, steps: 0 };
    }
    let hi = ceil_log2(n).max(1);
    let mut best = OptimalK {
        k: 1,
        steps: total_steps(n, m, 1),
    };
    for k in 2..=hi {
        let steps = total_steps(n, m, k);
        if steps <= best.steps {
            best = OptimalK { k, steps };
        }
    }
    best
}

/// The crossover message length at which the linear tree becomes optimal for
/// an `n`-node multicast: the least `m` with `optimal_k(n, m).k == 1`, if it
/// occurs within `max_m`. (Paper §5.1 discusses this crossover: the smaller
/// `n`, the earlier it happens.)
pub fn linear_crossover(n: u64, max_m: u32) -> Option<u32> {
    (1..=max_m).find(|&m| optimal_k(n, m).k == 1)
}

/// Precomputed optimal-`k` table for all `(n, m)` in
/// `[2, max_n] × [1, max_m]` (paper §4.3.1: the NI firmware looks the value
/// up rather than searching at multicast time).
///
/// Rows are indexed by `n`, columns by `m`. Memory is
/// `(max_n − 1) · max_m` bytes (one `u8` per entry, since
/// `k ≤ ⌈log₂ n⌉ ≤ 63`), consistent with the paper's "less than
/// `O(n · log n)` memory" feasibility argument — the optimal `k` is constant
/// over long runs of `m` and converges to a small constant as `m` grows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptimalKTable {
    max_n: u64,
    max_m: u32,
    /// Entry `(n, m)` at `(n - 2) * max_m + (m - 1)`.
    entries: Vec<u8>,
}

impl OptimalKTable {
    /// Precomputes the table. Cost is `O(max_n · max_m · log max_n)` time,
    /// done once at system initialisation.
    ///
    /// # Panics
    ///
    /// Panics if `max_n < 2` or `max_m < 1`.
    pub fn build(max_n: u64, max_m: u32) -> Self {
        assert!(max_n >= 2, "table needs at least n = 2");
        assert!(max_m >= 1, "table needs at least m = 1");
        let rows = usize::try_from(max_n - 1).expect("table too large");
        let cols = max_m as usize;
        let mut entries = Vec::with_capacity(rows * cols);
        for n in 2..=max_n {
            for m in 1..=max_m {
                let k = optimal_k(n, m).k;
                debug_assert!(k <= u32::from(u8::MAX));
                entries.push(k as u8);
            }
        }
        OptimalKTable {
            max_n,
            max_m,
            entries,
        }
    }

    /// Largest multicast set size covered.
    pub fn max_n(&self) -> u64 {
        self.max_n
    }

    /// Largest packet count covered.
    pub fn max_m(&self) -> u32 {
        self.max_m
    }

    /// Looks up the optimal `k`. `m` larger than the table clamps to the last
    /// column (the optimal `k` is non-increasing in `m` and has converged by
    /// then for any practically sized table). Returns `None` if `n` is out of
    /// range.
    pub fn lookup(&self, n: u64, m: u32) -> Option<u32> {
        if n < 2 || n > self.max_n || m == 0 {
            return if n == 1 { Some(1) } else { None };
        }
        let m = m.min(self.max_m);
        let idx = usize::try_from(n - 2).unwrap() * self.max_m as usize + (m as usize - 1);
        Some(u32::from(self.entries[idx]))
    }

    /// Memory footprint of the table in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::coverage;

    #[test]
    fn single_packet_is_binomial() {
        // §5.1: for m = 1, optimal k = ⌈log₂ n⌉.
        for n in 2..=256u64 {
            assert_eq!(optimal_k(n, 1).k, ceil_log2(n), "n={n}");
        }
    }

    #[test]
    fn paper_fig12b_convergence_to_2() {
        // §5.1: for m = 4 or 8 packets, optimal k converges to 2 as n grows.
        for n in [32u64, 48, 64] {
            assert_eq!(optimal_k(n, 4).k, 2, "n={n} m=4");
            assert_eq!(optimal_k(n, 8).k, 2, "n={n} m=8");
        }
    }

    #[test]
    fn small_sets_go_linear_before_large_sets() {
        // §5.1: the smaller n, the smaller the m at which k = 1 is optimal.
        let c16 = linear_crossover(16, 64).expect("16 crosses over");
        let c32 = linear_crossover(32, 64).expect("32 crosses over");
        assert!(c16 < c32, "n=16 crossover {c16} !< n=32 crossover {c32}");
    }

    #[test]
    fn exhaustive_optimality_check() {
        // The returned steps really are the minimum over the full interval,
        // and the tie-break picks the largest minimiser.
        for n in 2..=128u64 {
            for m in 1..=24u32 {
                let got = optimal_k(n, m);
                let hi = ceil_log2(n).max(1);
                let all: Vec<(u32, u64)> = (1..=hi).map(|k| (k, total_steps(n, m, k))).collect();
                let min = all.iter().map(|&(_, s)| s).min().unwrap();
                assert_eq!(got.steps, min, "n={n} m={m}");
                let largest_min = all
                    .iter()
                    .filter(|&&(_, s)| s == min)
                    .map(|&(k, _)| k)
                    .max()
                    .unwrap();
                assert_eq!(got.k, largest_min, "n={n} m={m}");
            }
        }
    }

    #[test]
    fn steps_formula_spot_checks() {
        // n=64, m=32: k=2 gives 8 + 31*2 = 70; binomial gives 6 + 31*6 = 192.
        assert_eq!(total_steps(64, 32, 2), 70);
        assert_eq!(total_steps(64, 32, 6), 192);
        assert_eq!(optimal_k(64, 32).k, 2);
        // Linear: (n-1) + (m-1).
        assert_eq!(total_steps(10, 5, 1), 9 + 4);
    }

    #[test]
    fn optimal_k_nonincreasing_in_m() {
        for n in [8u64, 16, 31, 48, 64, 100] {
            let mut prev = u32::MAX;
            for m in 1..=64 {
                let k = optimal_k(n, m).k;
                assert!(k <= prev, "n={n} m={m}: k={k} rose above {prev}");
                prev = k;
            }
        }
    }

    #[test]
    fn optimal_steps_nondecreasing_in_n() {
        for m in [1u32, 2, 4, 8, 16] {
            let mut prev = 0;
            for n in 2..=128 {
                let s = optimal_k(n, m).steps;
                assert!(s >= prev, "n={n} m={m}");
                prev = s;
            }
        }
    }

    #[test]
    fn beats_or_matches_binomial_and_linear() {
        for n in 2..=128u64 {
            for m in 1..=32u32 {
                let opt = optimal_k(n, m).steps;
                let bin = total_steps(n, m, ceil_log2(n).max(1));
                let lin = total_steps(n, m, 1);
                assert!(opt <= bin && opt <= lin, "n={n} m={m}");
            }
        }
    }

    #[test]
    fn improvement_factor_reaches_2x() {
        // The headline result: k-binomial up to ~2x better than binomial.
        let mut best = 0.0f64;
        for m in 1..=32u32 {
            let bin = total_steps(64, m, 6) as f64;
            let opt = optimal_k(64, m).steps as f64;
            best = best.max(bin / opt);
        }
        assert!(best >= 2.0, "max improvement {best:.2} < 2x");
    }

    #[test]
    fn n1_degenerate() {
        assert_eq!(optimal_k(1, 5), OptimalK { k: 1, steps: 0 });
    }

    #[test]
    fn table_matches_direct_search() {
        let t = OptimalKTable::build(64, 16);
        for n in 2..=64u64 {
            for m in 1..=16u32 {
                assert_eq!(t.lookup(n, m), Some(optimal_k(n, m).k), "n={n} m={m}");
            }
        }
        assert_eq!(t.memory_bytes(), 63 * 16);
    }

    #[test]
    fn table_clamps_m_and_rejects_bad_n() {
        let t = OptimalKTable::build(64, 16);
        // m beyond the table: clamped column — k has converged there.
        assert_eq!(t.lookup(64, 1000), Some(t.lookup(64, 16).unwrap()));
        assert_eq!(t.lookup(1, 4), Some(1));
        assert_eq!(t.lookup(65, 4), None);
        assert_eq!(t.lookup(0, 4), None);
    }

    #[test]
    fn search_interval_upper_bound_justified() {
        // k above ⌈log₂ n⌉ can never improve: t1 is already minimal at
        // ⌈log₂ n⌉ (binomial) and the (m−1)k term only grows.
        for n in [5u64, 16, 48, 64] {
            let hi = ceil_log2(n);
            for m in 2..=8 {
                let at_hi = total_steps(n, m, hi);
                for k in hi + 1..hi + 6 {
                    assert!(total_steps(n, m, k) >= at_hi, "n={n} m={m} k={k}");
                }
            }
        }
    }

    /// The analytic `t1 + (m−1)·k` is an upper bound on the simulated FPFS
    /// completion of the constructed tree for every k, and *exact* at the
    /// analytic optimum — so `optimal_k` returns the true achievable optimum.
    /// (If the construction realized max degree d < k, the analytic value at
    /// k = d would already be smaller, contradicting optimality of k*.)
    #[test]
    fn analytic_optimum_is_achieved_by_construction() {
        use crate::builders::kbinomial_tree;
        use crate::schedule::fpfs_schedule;
        for n in [4u64, 9, 16, 23, 31, 48, 64, 97] {
            for m in [1u32, 2, 3, 4, 8, 16, 32] {
                let opt = optimal_k(n, m);
                // Upper bound at every k.
                for k in 1..=ceil_log2(n) {
                    let t = kbinomial_tree(n as u32, k);
                    let sim = u64::from(fpfs_schedule(&t, m).total_steps());
                    assert!(sim <= total_steps(n, m, k), "n={n} m={m} k={k}");
                    assert!(sim >= opt.steps, "construction beat the optimum?!");
                }
                // Exact at the optimum.
                let t = kbinomial_tree(n as u32, opt.k);
                let sim = u64::from(fpfs_schedule(&t, m).total_steps());
                assert_eq!(sim, opt.steps, "n={n} m={m} k*={}", opt.k);
            }
        }
    }

    #[test]
    fn tie_structure_at_m1_example() {
        // t1(48, k) = 6 for k in {3,4,5,6}: the documented m=1 tie.
        for k in 3..=6 {
            assert_eq!(min_steps(48, k), 6, "k={k}");
            assert!(coverage(6, k) >= 48);
        }
        assert_eq!(optimal_k(48, 1).k, 6);
    }
}

/// The optimal `k` under the **FCFS** discipline, found by exhaustively
/// scheduling each candidate k-binomial tree (no closed form exists: FCFS
/// completion depends on the whole tree shape, not just `t1` and `k_T`).
///
/// The paper only proves optimality of the k-binomial family under FPFS;
/// this search answers the natural follow-up of how the optimum shifts when
/// the NI forwards child-by-child instead. Ties break toward larger `k`,
/// matching [`optimal_k`].
///
/// # Panics
///
/// Panics if `n == 0` or `m == 0`.
pub fn optimal_k_fcfs(n: u32, m: u32) -> OptimalK {
    use crate::builders::kbinomial_tree;
    use crate::schedule::fcfs_schedule;
    assert!(n >= 1, "a multicast set has at least the source");
    assert!(m >= 1, "a message has at least one packet");
    if n == 1 {
        return OptimalK { k: 1, steps: 0 };
    }
    let hi = ceil_log2(u64::from(n)).max(1);
    let mut best = OptimalK {
        k: 1,
        steps: u64::MAX,
    };
    for k in 1..=hi {
        let tree = kbinomial_tree(n, k);
        let steps = u64::from(fcfs_schedule(&tree, m).total_steps());
        if steps <= best.steps {
            best = OptimalK { k, steps };
        }
    }
    best
}

#[cfg(test)]
mod fcfs_tests {
    use super::*;
    use crate::builders::kbinomial_tree;
    use crate::schedule::{fcfs_schedule, fpfs_schedule};

    /// Single packet: FCFS and FPFS schedules coincide, so the optima do.
    #[test]
    fn single_packet_fcfs_equals_fpfs() {
        for n in [2u32, 7, 16, 48, 64] {
            let fc = optimal_k_fcfs(n, 1);
            let fp = optimal_k(u64::from(n), 1);
            assert_eq!(fc.k, fp.k, "n={n}");
            assert_eq!(fc.steps, fp.steps, "n={n}");
        }
    }

    /// FCFS never completes sooner than FPFS at the respective optima.
    #[test]
    fn fcfs_optimum_never_beats_fpfs_optimum() {
        for n in [8u32, 16, 31, 48, 64] {
            for m in [2u32, 4, 8, 16, 32] {
                let fc = optimal_k_fcfs(n, m);
                let fp = optimal_k(u64::from(n), m);
                assert!(fc.steps >= fp.steps, "n={n} m={m}: {fc:?} vs {fp:?}");
            }
        }
    }

    /// The FCFS optimum is *not* simply narrower or wider than the FPFS
    /// one: ties can resolve wider (n=16, m=2: k ∈ {2,3,4} all take 8 FCFS
    /// steps), while for longer messages FCFS abandons fan-out sooner
    /// (n=16, m=8: FCFS picks the chain while FPFS still prefers k=2).
    #[test]
    fn fcfs_optimum_shape_witnesses() {
        use crate::schedule::fcfs_schedule;
        // Tie plateau at n=16, m=2.
        for k in 2..=4 {
            assert_eq!(fcfs_schedule(&kbinomial_tree(16, k), 2).total_steps(), 8);
        }
        assert_eq!(optimal_k_fcfs(16, 2).k, 4, "tie resolves to largest k");
        // Earlier retreat to the chain under FCFS.
        assert_eq!(optimal_k_fcfs(16, 8).k, 1);
        assert_eq!(optimal_k(16, 8).k, 2);
    }

    /// If the chain is FPFS-optimal it is FCFS-optimal too (chains schedule
    /// identically under both disciplines and every other tree is no faster
    /// under FCFS), so the FCFS crossover to linear never comes later.
    #[test]
    fn fcfs_crossover_no_later_than_fpfs() {
        for n in [8u32, 16, 31, 48] {
            let cross = |f: &dyn Fn(u32) -> u32| (1u32..=64).find(|&m| f(m) == 1);
            let fc = cross(&|m| optimal_k_fcfs(n, m).k);
            let fp = cross(&|m| optimal_k(u64::from(n), m).k);
            if let (Some(fc), Some(fp)) = (fc, fp) {
                assert!(fc <= fp, "n={n}: FCFS crossover {fc} > FPFS {fp}");
            }
        }
    }

    /// The reported steps really are achieved and minimal over the interval.
    #[test]
    fn fcfs_search_is_exact() {
        for n in [5u32, 16, 40] {
            for m in [1u32, 3, 9] {
                let got = optimal_k_fcfs(n, m);
                let hi = ceil_log2(u64::from(n)).max(1);
                let min = (1..=hi)
                    .map(|k| u64::from(fcfs_schedule(&kbinomial_tree(n, k), m).total_steps()))
                    .min()
                    .unwrap();
                assert_eq!(got.steps, min, "n={n} m={m}");
                assert_eq!(
                    u64::from(fcfs_schedule(&kbinomial_tree(n, got.k), m).total_steps()),
                    got.steps
                );
            }
        }
    }

    /// For long messages the linear tree dominates under FCFS too (both
    /// disciplines agree on chains).
    #[test]
    fn long_messages_go_linear_under_both() {
        let fc = optimal_k_fcfs(16, 32);
        let fp = optimal_k(16, 32);
        assert_eq!(fc.k, 1);
        assert_eq!(fp.k, 1);
        assert_eq!(fc.steps, fp.steps);
        assert_eq!(
            u64::from(fpfs_schedule(&kbinomial_tree(16, 1), 32).total_steps()),
            fc.steps
        );
    }
}
