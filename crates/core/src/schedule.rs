//! Exact per-step send schedules for smart-NI multicast forwarding
//! (paper §3, §4.1, Figs. 5 and 8).
//!
//! Time advances in integer *steps*; transmitting one packet from one NI to
//! another occupies the sending NI for exactly one step, and the packet is
//! available at the receiver from the following step. An NI performs at most
//! one send per step; receives are passive (the model's NIs are full-duplex,
//! as in the paper's step counting).
//!
//! Two forwarding disciplines are modelled:
//!
//! * **FPFS** (First-Packet-First-Served): each arriving packet is
//!   immediately forwarded to *all* children, in child order, before the next
//!   packet's copies — the per-packet loop is outermost at the sender
//!   (paper Fig. 7).
//! * **FCFS** (First-Child-First-Served): the *whole message* is forwarded to
//!   the first child (packet by packet, as packets arrive), then to the
//!   second child, and so on (paper Fig. 6).
//!
//! The returned [`Schedule`] carries every send event plus per-rank,
//! per-packet receive steps, from which the paper's Theorems 1 and 2 and its
//! Figs. 5/8 step diagrams are checked and regenerated.
//!
//! ### Scope of Theorem 1
//!
//! Theorem 1 (successive packets complete exactly `k_T` steps apart, `k_T` =
//! root degree) holds for every tree family the paper considers — linear,
//! binomial, k-binomial — because in those trees per-vertex fan-out never
//! increases from the root towards the leaves, so the root is the pipeline
//! bottleneck. For arbitrary trees that *increase* fan-out down a path the
//! inter-completion gap is governed by the largest fan-out en route instead;
//! `tests::theorem1_boundary_counterexample` documents this boundary.

use crate::tree::{MulticastTree, Rank};

/// Smart-NI forwarding discipline (paper §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ForwardingDiscipline {
    /// First-Packet-First-Served: forward each packet to all children as it
    /// arrives.
    Fpfs,
    /// First-Child-First-Served: forward the whole message child by child.
    Fcfs,
}

/// One packet transmission: `from`'s NI spends step `step` sending packet
/// `packet` (0-based) to `to`'s NI; `to` holds it from step `step + 1` on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendEvent {
    /// 1-based step index occupied by this transmission.
    pub step: u32,
    /// Sending participant.
    pub from: Rank,
    /// Receiving participant.
    pub to: Rank,
    /// 0-based packet index within the message.
    pub packet: u32,
}

/// A complete step-timed schedule of an `m`-packet multicast over a tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    discipline: ForwardingDiscipline,
    packets: u32,
    root_degree: u32,
    events: Vec<SendEvent>,
    /// `recv[rank][packet]`: step at which the packet is fully received
    /// (0 for the source, whose packets are available before step 1).
    recv: Vec<Vec<u32>>,
}

impl Schedule {
    /// The discipline this schedule was generated under.
    pub fn discipline(&self) -> ForwardingDiscipline {
        self.discipline
    }

    /// Number of packets `m` in the message.
    pub fn packets(&self) -> u32 {
        self.packets
    }

    /// Number of participants.
    pub fn participants(&self) -> usize {
        self.recv.len()
    }

    /// `k_T`, the root degree of the tree the schedule was built on.
    pub fn root_degree(&self) -> u32 {
        self.root_degree
    }

    /// All send events, sorted by `(step, from)`.
    pub fn events(&self) -> &[SendEvent] {
        &self.events
    }

    /// The step at which `rank` has fully received `packet` (0 for the
    /// source: its packets are available before the first step).
    ///
    /// # Panics
    ///
    /// Panics if `rank` or `packet` is out of range.
    pub fn receive_step(&self, rank: Rank, packet: u32) -> u32 {
        self.recv[rank.index()][packet as usize]
    }

    /// Step at which every participant has received `packet` — the paper's
    /// `t_{j+1}` (completion of the multicast of one packet).
    pub fn packet_completion(&self, packet: u32) -> u32 {
        let p = packet as usize;
        self.recv.iter().map(|r| r[p]).max().unwrap_or(0)
    }

    /// Total steps to complete the whole multicast: `max_j t_j`. This is the
    /// quantity Theorem 2 predicts as `t1 + (m - 1) * k_T` under FPFS on the
    /// paper's tree families.
    pub fn total_steps(&self) -> u32 {
        self.packet_completion(self.packets - 1)
    }

    /// Step at which `rank` has received the *whole message*.
    pub fn message_completion(&self, rank: Rank) -> u32 {
        *self.recv[rank.index()].last().expect("m >= 1")
    }

    /// Sends performed by `rank`, in step order.
    pub fn sends_from(&self, rank: Rank) -> Vec<SendEvent> {
        self.sends_from_iter(rank).collect()
    }

    /// Sends performed by `rank`, in step order, without allocating — the
    /// schedule iteration a real transport drives directly: each yielded
    /// event is one packet to put on the wire, in exactly the order the
    /// step model prescribes, decoupled from any notion of simulated time.
    pub fn sends_from_iter(&self, rank: Rank) -> impl Iterator<Item = SendEvent> + '_ {
        self.events.iter().copied().filter(move |e| e.from == rank)
    }

    /// The packet indices in the order `rank` receives them under this
    /// schedule (ties in receive step broken by packet index, matching the
    /// senders' emission order). This is the *predicted delivery order* a
    /// real transport is measured against in the sim-vs-wire parity test:
    /// on a clean link, packets must complete reassembly at `rank` in
    /// exactly this sequence.
    pub fn arrival_order(&self, rank: Rank) -> Vec<u32> {
        let mut order: Vec<u32> = (0..self.packets).collect();
        order.sort_by_key(|&p| self.receive_step(rank, p));
        order
    }

    /// For each step `1..=total_steps()`, the number of packets buffered at
    /// `rank`'s NI during that step. A packet occupies the NI buffer from the
    /// step after it is received until the step in which its last copy has
    /// been sent (inclusive); at a leaf it is counted for the single step
    /// after receipt (handoff to host DMA).
    ///
    /// This is the trace-driven counterpart of the §3.3.2 analytic buffer
    /// comparison: FCFS holds packets much longer than FPFS.
    pub fn buffer_occupancy(&self, rank: Rank) -> Vec<u32> {
        let total = self.total_steps() as usize;
        let mut occ = vec![0u32; total + 1]; // 1-based steps
        let is_source = rank == Rank::SOURCE;
        for p in 0..self.packets {
            let arr = self.receive_step(rank, p);
            let last_send = self
                .events
                .iter()
                .filter(|e| e.from == rank && e.packet == p)
                .map(|e| e.step)
                .max();
            let (from_step, to_step) = match last_send {
                Some(last) => {
                    // Source packets materialise in the buffer only when the
                    // host has DMAed them; model that as "from its first
                    // send" for the source, "from arrival + 1" elsewhere.
                    let start = if is_source {
                        last.min(arr + 1)
                    } else {
                        arr + 1
                    };
                    (start, last)
                }
                None => (arr + 1, arr + 1), // leaf: one step of residence
            };
            for s in from_step..=to_step.min(total as u32) {
                occ[s as usize] += 1;
            }
        }
        occ.remove(0);
        occ
    }

    /// Maximum number of packets simultaneously buffered at `rank`'s NI.
    pub fn max_buffered(&self, rank: Rank) -> u32 {
        self.buffer_occupancy(rank).into_iter().max().unwrap_or(0)
    }
}

/// Builds the FPFS schedule for an `m`-packet multicast over `tree`.
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn fpfs_schedule(tree: &MulticastTree, m: u32) -> Schedule {
    build_schedule(tree, m, ForwardingDiscipline::Fpfs)
}

/// Builds the FCFS schedule for an `m`-packet multicast over `tree`.
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn fcfs_schedule(tree: &MulticastTree, m: u32) -> Schedule {
    build_schedule(tree, m, ForwardingDiscipline::Fcfs)
}

/// Builds the schedule for either discipline.
pub fn build_schedule(tree: &MulticastTree, m: u32, discipline: ForwardingDiscipline) -> Schedule {
    assert!(m >= 1, "a message has at least one packet");
    let n = tree.len();
    let mu = m as usize;
    let mut recv = vec![vec![u32::MAX; mu]; n];
    recv[Rank::SOURCE.index()] = vec![0; mu]; // available before step 1
    let mut events: Vec<SendEvent> = Vec::new();

    // Parents are always scheduled before their children in preorder, so a
    // single pass suffices: by the time `u` is visited, recv[u] is final.
    for u in tree.dfs_preorder() {
        let kids = tree.children(u);
        if kids.is_empty() {
            continue;
        }
        let arr = recv[u.index()].clone();
        debug_assert!(
            arr.iter().all(|&t| t != u32::MAX),
            "node {u} scheduled before its packets arrived"
        );
        let mut ni_free_from = 0u32; // last step the NI spent sending
        let mut emit = |packet: u32, child: Rank, ni_free_from: &mut u32| {
            let t = (*ni_free_from + 1).max(arr[packet as usize] + 1);
            *ni_free_from = t;
            events.push(SendEvent {
                step: t,
                from: u,
                to: child,
                packet,
            });
            recv[child.index()][packet as usize] = t;
        };
        match discipline {
            ForwardingDiscipline::Fpfs => {
                for p in 0..m {
                    for &c in kids {
                        emit(p, c, &mut ni_free_from);
                    }
                }
            }
            ForwardingDiscipline::Fcfs => {
                for &c in kids {
                    for p in 0..m {
                        emit(p, c, &mut ni_free_from);
                    }
                }
            }
        }
    }

    events.sort_by_key(|e| (e.step, e.from.0, e.to.0));
    Schedule {
        discipline,
        packets: m,
        root_degree: tree.root_degree(),
        events,
        recv,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{binomial_tree, kbinomial_tree, linear_tree};
    use crate::coverage::min_steps;
    use crate::tree::MulticastTree;

    /// Paper Fig. 5: 3-packet message to 3 destinations. Binomial tree takes
    /// 6 steps, linear tree takes 5 — the motivating counterexample to
    /// binomial optimality.
    #[test]
    fn fig5_binomial_6_linear_5() {
        let bin = binomial_tree(4);
        let lin = linear_tree(4);
        for build in [fpfs_schedule, fcfs_schedule] {
            assert_eq!(build(&bin, 3).total_steps(), 6);
            assert_eq!(build(&lin, 3).total_steps(), 5);
        }
    }

    /// Paper Fig. 5(a) exact step diagram under FCFS: edge r→A carries
    /// packets at steps [1][2][3], A→C at [2][3][4], r→B at [4][5][6].
    #[test]
    fn fig5a_exact_fcfs_steps() {
        let bin = binomial_tree(4); // root r0; children r2 (with child r3), r1
        let s = fcfs_schedule(&bin, 3);
        let first_child = bin.root_children()[0];
        let second_child = bin.root_children()[1];
        let grandchild = bin.children(first_child)[0];
        for p in 0..3u32 {
            assert_eq!(s.receive_step(first_child, p), p + 1);
            assert_eq!(s.receive_step(grandchild, p), p + 2);
            assert_eq!(s.receive_step(second_child, p), p + 4);
        }
    }

    /// Paper Fig. 5(b): linear chain, each hop lags one step.
    #[test]
    fn fig5b_exact_linear_steps() {
        let lin = linear_tree(4);
        let s = fpfs_schedule(&lin, 3);
        for hop in 1..=3u32 {
            for p in 0..3u32 {
                assert_eq!(s.receive_step(Rank(hop), p), hop + p);
            }
        }
    }

    /// Paper Fig. 8: 3-packet multicast to 7 destinations over the binomial
    /// tree decomposes into three pipelined single-packet multicasts, each
    /// lagging the previous by exactly 3 steps; total 9 steps.
    #[test]
    fn fig8_pipelined_binomial_8_nodes() {
        let t = binomial_tree(8);
        let s = fpfs_schedule(&t, 3);
        assert_eq!(s.root_degree(), 3);
        assert_eq!(s.packet_completion(0), 3);
        assert_eq!(s.packet_completion(1), 6);
        assert_eq!(s.packet_completion(2), 9);
        assert_eq!(s.total_steps(), 9);
    }

    /// Theorem 1: on the paper's tree families, consecutive packet
    /// completions are exactly the bottleneck fan-out apart under FPFS.
    ///
    /// The paper states the interval as `k_T` (the root degree); for *full*
    /// k-binomial trees (`n = N(s, k)`) the root attains the maximum degree
    /// and the two coincide. When `n < N(s, k)` the Fig. 11 right-end
    /// construction can leave the root with fewer children (the first
    /// subtree absorbs the whole chain), and the pipelining interval is then
    /// the tree's maximum fan-out — never more than `k`, so Theorem 2's
    /// bound still holds (see `theorem2_total_steps`).
    #[test]
    fn theorem1_constant_lag() {
        for n in [2u32, 3, 4, 7, 8, 16, 23, 48, 64] {
            for k in 1..=6u32 {
                let t = kbinomial_tree(n, k);
                let m = 6;
                let s = fpfs_schedule(&t, m);
                let bottleneck = t.max_degree();
                assert!(bottleneck <= k);
                for p in 1..m {
                    assert_eq!(
                        s.packet_completion(p) - s.packet_completion(p - 1),
                        bottleneck,
                        "n={n} k={k} p={p}"
                    );
                }
            }
        }
    }

    /// Theorem 1, literal paper statement: on full k-binomial trees
    /// (`n = N(s, k)`) the lag is exactly the root degree `k_T`.
    #[test]
    fn theorem1_full_trees_root_degree() {
        use crate::coverage::coverage;
        for k in 1..=4u32 {
            for s in 1..=k + 3 {
                let n = coverage(s, k) as u32;
                let t = kbinomial_tree(n, k);
                assert_eq!(t.root_degree(), k.min(s), "root degree on full tree");
                assert_eq!(t.max_degree(), k.min(s));
                let m = 5;
                let sch = fpfs_schedule(&t, m);
                for p in 1..m {
                    assert_eq!(
                        sch.packet_completion(p) - sch.packet_completion(p - 1),
                        t.root_degree(),
                        "k={k} s={s}"
                    );
                }
            }
        }
    }

    /// Theorem 2: total steps = t1 + (m-1) * bottleneck under FPFS, and the
    /// analytic `t1 + (m-1)·k` is always an upper bound.
    #[test]
    fn theorem2_total_steps() {
        for n in [2u32, 5, 16, 31, 48, 64, 100] {
            for k in 1..=6u32 {
                let t = kbinomial_tree(n, k);
                let t1 = fpfs_schedule(&t, 1).total_steps();
                assert_eq!(t1, min_steps(u64::from(n), k));
                for m in [1u32, 2, 4, 8, 17] {
                    let s = fpfs_schedule(&t, m);
                    let bottleneck = if n == 1 { 0 } else { t.max_degree() };
                    assert_eq!(
                        s.total_steps(),
                        t1 + (m - 1) * bottleneck,
                        "n={n} k={k} m={m}"
                    );
                    assert!(s.total_steps() <= t1 + (m - 1) * k);
                }
            }
        }
    }

    /// The boundary of Theorem 1: a tree whose fan-out *grows* away from the
    /// root pipelines at the bottleneck fan-out, not the root degree. The
    /// paper's trees never have this shape.
    #[test]
    fn theorem1_boundary_counterexample() {
        // root -> a; a -> {b, c, d}
        let mut t = MulticastTree::with_capacity(5);
        t.attach(Rank(0), Rank(1));
        t.attach(Rank(1), Rank(2));
        t.attach(Rank(1), Rank(3));
        t.attach(Rank(1), Rank(4));
        t.validate().unwrap();
        let s = fpfs_schedule(&t, 3);
        assert_eq!(s.root_degree(), 1);
        let lag = s.packet_completion(1) - s.packet_completion(0);
        assert_eq!(lag, 3, "bottleneck fan-out, not k_T, governs the lag here");
    }

    /// FCFS and FPFS agree on chains (one child everywhere).
    #[test]
    fn disciplines_agree_on_chains() {
        for n in 2..20 {
            for m in 1..6 {
                let t = linear_tree(n);
                assert_eq!(
                    fpfs_schedule(&t, m).total_steps(),
                    fcfs_schedule(&t, m).total_steps()
                );
            }
        }
    }

    /// FPFS never completes later than FCFS on the paper's families.
    #[test]
    fn fpfs_no_worse_than_fcfs() {
        for n in [4u32, 8, 16, 31, 48] {
            for k in 1..=5 {
                for m in [1u32, 2, 4, 8] {
                    let t = kbinomial_tree(n, k);
                    assert!(
                        fpfs_schedule(&t, m).total_steps() <= fcfs_schedule(&t, m).total_steps(),
                        "n={n} k={k} m={m}"
                    );
                }
            }
        }
    }

    /// Every send respects causality (packet forwarded only after receipt)
    /// and NI serialization (one send per node per step); every participant
    /// gets every packet exactly once.
    #[test]
    fn schedule_wellformedness() {
        for disc in [ForwardingDiscipline::Fpfs, ForwardingDiscipline::Fcfs] {
            for n in [2u32, 7, 16, 48] {
                for k in [1u32, 2, 4] {
                    let t = kbinomial_tree(n, k);
                    let m = 5;
                    let s = build_schedule(&t, m, disc);
                    // One send per (from, step).
                    let mut busy = std::collections::HashSet::new();
                    for e in s.events() {
                        assert!(busy.insert((e.from, e.step)), "NI double-booked");
                        // Causality.
                        assert!(e.step > s.receive_step(e.from, e.packet));
                        // The receive table matches the event.
                        assert_eq!(s.receive_step(e.to, e.packet), e.step);
                    }
                    // Exactly (n-1) * m receives.
                    assert_eq!(s.events().len(), ((n - 1) * m) as usize);
                }
            }
        }
    }

    /// Buffer traces: FPFS residency at an intermediate node is bounded by a
    /// couple of packets; FCFS holds up to the whole message.
    #[test]
    fn buffer_trace_fpfs_vs_fcfs() {
        let t = binomial_tree(16); // root degree 4, first child has 3 children
        let m = 8;
        let inner = t.root_children()[0];
        let fp = fpfs_schedule(&t, m).max_buffered(inner);
        let fc = fcfs_schedule(&t, m).max_buffered(inner);
        assert!(fp <= 2, "FPFS buffered {fp} packets");
        assert_eq!(fc, m, "FCFS must hold the whole message");
        assert!(fc > fp);
    }

    #[test]
    fn message_completion_monotone_with_depth() {
        let t = kbinomial_tree(32, 2);
        let s = fpfs_schedule(&t, 4);
        for (p, c) in t.edges() {
            assert!(s.message_completion(c) > s.message_completion(p) || p == Rank::SOURCE);
        }
    }

    #[test]
    fn sends_from_source_count() {
        let t = binomial_tree(16);
        let s = fpfs_schedule(&t, 3);
        assert_eq!(s.sends_from(Rank::SOURCE).len(), 4 * 3);
    }

    /// The allocation-free iterator yields exactly the `sends_from` events,
    /// in the same (step) order.
    #[test]
    fn sends_from_iter_matches_vec() {
        for disc in [ForwardingDiscipline::Fpfs, ForwardingDiscipline::Fcfs] {
            let t = kbinomial_tree(23, 3);
            let s = build_schedule(&t, 4, disc);
            for r in 0..t.len() as u32 {
                let rank = Rank(r);
                let collected: Vec<SendEvent> = s.sends_from_iter(rank).collect();
                assert_eq!(collected, s.sends_from(rank));
                assert!(collected.windows(2).all(|w| w[0].step <= w[1].step));
            }
        }
    }

    /// FPFS delivers packets in index order everywhere; FCFS does too (the
    /// whole message goes child by child, packets in order within a child) —
    /// and the order is always a permutation of `0..m` consistent with the
    /// receive table.
    #[test]
    fn arrival_order_is_receive_step_sorted() {
        for disc in [ForwardingDiscipline::Fpfs, ForwardingDiscipline::Fcfs] {
            let t = kbinomial_tree(16, 2);
            let m = 5;
            let s = build_schedule(&t, m, disc);
            for r in 0..t.len() as u32 {
                let rank = Rank(r);
                let order = s.arrival_order(rank);
                let mut sorted = order.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..m).collect::<Vec<_>>(), "permutation of 0..m");
                assert!(order
                    .windows(2)
                    .all(|w| s.receive_step(rank, w[0]) <= s.receive_step(rank, w[1])));
                // On the paper's disciplines a node never receives packet
                // p+1 before packet p from the same parent pipeline.
                assert_eq!(order, (0..m).collect::<Vec<_>>(), "{disc:?} rank {r}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one packet")]
    fn zero_packets_panics() {
        fpfs_schedule(&binomial_tree(4), 0);
    }

    #[test]
    fn singleton_tree_completes_instantly() {
        let t = MulticastTree::singleton();
        let s = fpfs_schedule(&t, 3);
        assert_eq!(s.total_steps(), 0);
        assert!(s.events().is_empty());
    }
}

impl Schedule {
    /// Renders the paper's bracketed step diagram (Figs. 5 and 8): one line
    /// per tree edge in preorder, listing `[step]` and the 1-based packet
    /// subscript for every transmission on that edge.
    ///
    /// ```
    /// use optimcast_core::builders::linear_tree;
    /// use optimcast_core::schedule::fpfs_schedule;
    /// let tree = linear_tree(3);
    /// let d = fpfs_schedule(&tree, 2).step_diagram(&tree);
    /// assert!(d.contains("r0 -> r1: [1]1 [2]2"));
    /// assert!(d.contains("r1 -> r2: [2]1 [3]2"));
    /// ```
    pub fn step_diagram(&self, tree: &crate::tree::MulticastTree) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (p, c) in tree.edges() {
            let _ = write!(out, "{p} -> {c}:");
            let mut sends: Vec<&SendEvent> = self
                .events
                .iter()
                .filter(|e| e.from == p && e.to == c)
                .collect();
            sends.sort_by_key(|e| e.step);
            for e in sends {
                let _ = write!(out, " [{}]{}", e.step, e.packet + 1);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod diagram_tests {
    use super::*;
    use crate::builders::{binomial_tree, linear_tree};

    /// Paper Fig. 5(a): FCFS binomial over 3 destinations, 3 packets —
    /// [1][2][3] on the first-child edge, [2][3][4] below it, [4][5][6] to
    /// the second child.
    #[test]
    fn fig5a_diagram_matches_paper() {
        let tree = binomial_tree(4);
        let d = fcfs_schedule(&tree, 3).step_diagram(&tree);
        assert!(d.contains("r0 -> r2: [1]1 [2]2 [3]3"), "{d}");
        assert!(d.contains("r2 -> r3: [2]1 [3]2 [4]3"), "{d}");
        assert!(d.contains("r0 -> r1: [4]1 [5]2 [6]3"), "{d}");
    }

    /// Paper Fig. 5(b): the linear tree finishes in 5 steps.
    #[test]
    fn fig5b_diagram_matches_paper() {
        let tree = linear_tree(4);
        let d = fpfs_schedule(&tree, 3).step_diagram(&tree);
        assert!(d.contains("r0 -> r1: [1]1 [2]2 [3]3"), "{d}");
        assert!(d.contains("r1 -> r2: [2]1 [3]2 [4]3"), "{d}");
        assert!(d.contains("r2 -> r3: [3]1 [4]2 [5]3"), "{d}");
    }

    /// Every edge of a bigger schedule appears with m entries.
    #[test]
    fn diagram_covers_every_edge() {
        let tree = binomial_tree(16);
        let m = 4;
        let d = fpfs_schedule(&tree, m).step_diagram(&tree);
        assert_eq!(d.lines().count(), 15);
        for line in d.lines() {
            assert_eq!(line.matches('[').count(), m as usize, "{line}");
        }
    }
}
