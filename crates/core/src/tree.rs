//! Multicast tree representation.
//!
//! A multicast tree spans the *participants* of a multicast: the source plus
//! every destination. Participants are identified by [`Rank`] — their
//! position in the (contention-free) ordering used to build the tree, with
//! the source at rank 0. Binding ranks to physical hosts is the topology
//! layer's job; the core algorithms are purely rank-based, exactly as in the
//! paper where trees are built on an ordered chain of nodes.
//!
//! Children are stored **in send order**: under both FCFS and FPFS the NI
//! forwards to `children[0]` first, then `children[1]`, and so on. The send
//! order is what the paper's Fig. 11 construction pins down, so it is part of
//! the tree's identity, not a presentation detail.

use std::fmt;

/// A participant's index in the multicast ordering; the source is rank 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Rank(pub u32);

impl Rank {
    /// The multicast source.
    pub const SOURCE: Rank = Rank(0);

    /// Rank as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u32> for Rank {
    fn from(v: u32) -> Self {
        Rank(v)
    }
}

/// Sentinel for "no rank" in the intrusive child chains.
const NONE: u32 = u32::MAX;

/// Child lists packed into compressed-sparse-row arrays: children of `r`
/// are `dat[off[r]..off[r + 1]]`, in send order. Derived lazily from the
/// chain links so tree *construction* stays O(1) per attach and O(n) total
/// — the former `Vec<Vec<Rank>>` layout cost one allocation per rank, which
/// dominated setup at n = 65,536.
#[derive(Debug)]
struct PackedChildren {
    off: Vec<u32>,
    dat: Vec<Rank>,
}

/// A rooted multicast tree over ranks `0..n`, rank 0 at the root.
///
/// Stored as parent pointers plus intrusive first-child/next-sibling
/// chains, indexed directly by rank (the arena has exactly one slot per
/// participant). [`Self::children`] serves contiguous slices from a CSR
/// index packed on first use and invalidated by [`Self::attach`]; steady
/// state callers should [`Self::pack`] once after construction so later
/// queries are allocation-free.
pub struct MulticastTree {
    parent: Vec<Option<Rank>>,
    /// First child of each rank (send order head), `NONE` if childless.
    first_child: Vec<u32>,
    /// Last child of each rank (send order tail), for O(1) append.
    last_child: Vec<u32>,
    /// Next sibling in the parent's send order, `NONE` at the tail.
    next_sibling: Vec<u32>,
    /// Number of children per rank.
    child_count: Vec<u32>,
    /// Lazy CSR view of the chains.
    packed: std::sync::OnceLock<PackedChildren>,
}

impl fmt::Debug for MulticastTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let children: Vec<Vec<Rank>> = (0..self.len())
            .map(|r| self.children_iter(Rank(r as u32)).collect())
            .collect();
        f.debug_struct("MulticastTree")
            .field("parent", &self.parent)
            .field("children", &children)
            .finish()
    }
}

impl Clone for MulticastTree {
    fn clone(&self) -> Self {
        // The packed CSR is derived state; the clone rebuilds it on demand.
        MulticastTree {
            parent: self.parent.clone(),
            first_child: self.first_child.clone(),
            last_child: self.last_child.clone(),
            next_sibling: self.next_sibling.clone(),
            child_count: self.child_count.clone(),
            packed: std::sync::OnceLock::new(),
        }
    }
}

impl PartialEq for MulticastTree {
    fn eq(&self, other: &Self) -> bool {
        // parent + chain links fully determine the per-parent send orders;
        // everything else is derived.
        self.parent == other.parent
            && self.first_child == other.first_child
            && self.next_sibling == other.next_sibling
    }
}

impl Eq for MulticastTree {}

impl MulticastTree {
    /// A tree containing only the source.
    pub fn singleton() -> Self {
        Self::with_capacity(1)
    }

    /// Creates an edgeless forest over `n` participants; callers then attach
    /// every non-source rank exactly once via [`MulticastTree::attach`].
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_capacity(n: u32) -> Self {
        assert!(n >= 1, "a multicast tree spans at least the source");
        MulticastTree {
            parent: vec![None; n as usize],
            first_child: vec![NONE; n as usize],
            last_child: vec![NONE; n as usize],
            next_sibling: vec![NONE; n as usize],
            child_count: vec![0; n as usize],
            packed: std::sync::OnceLock::new(),
        }
    }

    /// Attaches `child` as the next (last-so-far) child of `parent`. O(1).
    ///
    /// # Panics
    ///
    /// Panics if either rank is out of range, if `child` is the source, if
    /// `child` already has a parent, or on a self-loop.
    pub fn attach(&mut self, parent: Rank, child: Rank) {
        assert!(parent.index() < self.len(), "parent {parent} out of range");
        assert!(child.index() < self.len(), "child {child} out of range");
        assert_ne!(child, Rank::SOURCE, "the source cannot be attached");
        assert_ne!(parent, child, "self-loop at {parent}");
        assert!(
            self.parent[child.index()].is_none(),
            "{child} already has a parent"
        );
        self.parent[child.index()] = Some(parent);
        let p = parent.index();
        let tail = self.last_child[p];
        if tail == NONE {
            self.first_child[p] = child.0;
        } else {
            self.next_sibling[tail as usize] = child.0;
        }
        self.last_child[p] = child.0;
        self.child_count[p] += 1;
        self.packed.take();
    }

    /// The packed CSR child lists, built on first use in one O(n) pass.
    fn packed(&self) -> &PackedChildren {
        self.packed.get_or_init(|| {
            let n = self.len();
            let mut off = Vec::with_capacity(n + 1);
            let mut dat = Vec::with_capacity(n.saturating_sub(1));
            off.push(0u32);
            for r in 0..n {
                let mut c = self.first_child[r];
                while c != NONE {
                    dat.push(Rank(c));
                    c = self.next_sibling[c as usize];
                }
                off.push(dat.len() as u32);
            }
            PackedChildren { off, dat }
        })
    }

    /// Forces the packed CSR child index now. The simulator calls this
    /// during setup so that [`Self::children`] stays allocation-free in the
    /// zero-alloc steady state.
    pub fn pack(&self) {
        let _ = self.packed();
    }

    /// Number of participants (source included).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the tree is just the source.
    pub fn is_empty(&self) -> bool {
        self.len() == 1
    }

    /// The root's children, in send order.
    pub fn root_children(&self) -> &[Rank] {
        self.children(Rank::SOURCE)
    }

    /// `k_T`: the number of children of the root — the pipelining interval of
    /// the FPFS model (Theorem 1).
    pub fn root_degree(&self) -> u32 {
        self.child_count[0]
    }

    /// Children of `r`, in send order.
    pub fn children(&self, r: Rank) -> &[Rank] {
        let packed = self.packed();
        &packed.dat[packed.off[r.index()] as usize..packed.off[r.index() + 1] as usize]
    }

    /// Children of `r` in send order, walked over the intrusive chain
    /// without touching the packed index — use while the tree is still
    /// being mutated (each [`Self::attach`] invalidates the pack, so mixing
    /// mutation with [`Self::children`] would repack per query).
    pub fn children_iter(&self, r: Rank) -> impl Iterator<Item = Rank> + '_ {
        let mut cur = self.first_child[r.index()];
        std::iter::from_fn(move || {
            if cur == NONE {
                None
            } else {
                let out = Rank(cur);
                cur = self.next_sibling[cur as usize];
                Some(out)
            }
        })
    }

    /// Number of children of `r`. O(1).
    pub fn child_count(&self, r: Rank) -> u32 {
        self.child_count[r.index()]
    }

    /// Parent of `r` (`None` for the source).
    pub fn parent(&self, r: Rank) -> Option<Rank> {
        self.parent[r.index()]
    }

    /// Maximum number of children over all vertices — the `k` for which this
    /// is (at most) a k-binomial tree.
    pub fn max_degree(&self) -> u32 {
        self.child_count.iter().copied().max().unwrap_or(0)
    }

    /// Tree depth in edges (0 for a singleton).
    pub fn depth(&self) -> u32 {
        let mut depth = vec![0u32; self.len()];
        let mut max = 0;
        for r in self.dfs_preorder() {
            if let Some(p) = self.parent(r) {
                depth[r.index()] = depth[p.index()] + 1;
                max = max.max(depth[r.index()]);
            }
        }
        max
    }

    /// Size of the subtree rooted at each rank (itself included).
    pub fn subtree_sizes(&self) -> Vec<u32> {
        let mut sizes = vec![1u32; self.len()];
        // Children always have a higher DFS finish time; accumulate reversed
        // preorder so every child is folded before its parent.
        let order = self.dfs_preorder();
        for &r in order.iter().rev() {
            if let Some(p) = self.parent(r) {
                sizes[p.index()] += sizes[r.index()];
            }
        }
        sizes
    }

    /// Preorder traversal from the root, children visited in send order.
    pub fn dfs_preorder(&self) -> Vec<Rank> {
        let mut out = Vec::with_capacity(self.len());
        let mut stack = vec![Rank::SOURCE];
        while let Some(r) = stack.pop() {
            out.push(r);
            // Reverse so children pop in send order.
            for &c in self.children(r).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Edges as `(parent, child)` pairs in preorder, children in send order.
    pub fn edges(&self) -> Vec<(Rank, Rank)> {
        self.dfs_preorder()
            .into_iter()
            .filter_map(|r| self.parent(r).map(|p| (p, r)))
            .collect()
    }

    /// Checks structural invariants: every non-source rank attached exactly
    /// once, parent/child tables mutually consistent, and the graph is a
    /// single tree rooted at the source (connected and acyclic).
    ///
    /// Builders call this in debug builds; tests call it unconditionally.
    pub fn validate(&self) -> Result<(), TreeError> {
        if self.parent.len() != self.first_child.len() {
            return Err(TreeError::Inconsistent("table length mismatch".into()));
        }
        if self.parent[0].is_some() {
            return Err(TreeError::Inconsistent("source has a parent".into()));
        }
        for (i, p) in self.parent.iter().enumerate().skip(1) {
            let Some(p) = p else {
                return Err(TreeError::Unattached(Rank(i as u32)));
            };
            if !self.children_iter(*p).any(|c| c == Rank(i as u32)) {
                return Err(TreeError::Inconsistent(format!(
                    "r{i} has parent {p} but is not among its children"
                )));
            }
        }
        for i in 0..self.len() {
            for c in self.children_iter(Rank(i as u32)) {
                if self.parent[c.index()] != Some(Rank(i as u32)) {
                    return Err(TreeError::Inconsistent(format!(
                        "{c} listed as child of r{i} but has a different parent"
                    )));
                }
            }
        }
        let visited = self.dfs_preorder();
        if visited.len() != self.len() {
            return Err(TreeError::Disconnected {
                reached: visited.len(),
                total: self.len(),
            });
        }
        Ok(())
    }

    /// Renders the tree as an ASCII outline (for examples and debugging).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(Rank::SOURCE, 0, &mut out);
        out
    }

    fn render_into(&self, r: Rank, indent: usize, out: &mut String) {
        use fmt::Write as _;
        let _ = writeln!(out, "{}{}", "  ".repeat(indent), r);
        for &c in self.children(r) {
            self.render_into(c, indent + 1, out);
        }
    }
}

/// Structural defects reported by [`MulticastTree::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// A non-source rank was never attached.
    Unattached(Rank),
    /// Parent/child tables disagree.
    Inconsistent(String),
    /// Not all ranks reachable from the source.
    Disconnected { reached: usize, total: usize },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::Unattached(r) => write!(f, "rank {r} is not attached to the tree"),
            TreeError::Inconsistent(msg) => write!(f, "inconsistent tree tables: {msg}"),
            TreeError::Disconnected { reached, total } => {
                write!(f, "tree reaches {reached} of {total} ranks")
            }
        }
    }
}

impl std::error::Error for TreeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: u32) -> MulticastTree {
        let mut t = MulticastTree::with_capacity(n);
        for i in 1..n {
            t.attach(Rank(i - 1), Rank(i));
        }
        t
    }

    #[test]
    fn singleton_properties() {
        let t = MulticastTree::singleton();
        assert_eq!(t.len(), 1);
        assert!(t.is_empty());
        assert_eq!(t.root_degree(), 0);
        assert_eq!(t.depth(), 0);
        assert_eq!(t.max_degree(), 0);
        t.validate().unwrap();
    }

    #[test]
    fn chain_properties() {
        let t = chain(5);
        t.validate().unwrap();
        assert_eq!(t.len(), 5);
        assert_eq!(t.root_degree(), 1);
        assert_eq!(t.depth(), 4);
        assert_eq!(t.max_degree(), 1);
        assert_eq!(t.subtree_sizes(), vec![5, 4, 3, 2, 1]);
        assert_eq!(t.dfs_preorder(), (0..5).map(Rank).collect::<Vec<_>>());
    }

    #[test]
    fn star_properties() {
        let mut t = MulticastTree::with_capacity(6);
        for i in 1..6 {
            t.attach(Rank::SOURCE, Rank(i));
        }
        t.validate().unwrap();
        assert_eq!(t.root_degree(), 5);
        assert_eq!(t.depth(), 1);
        assert_eq!(
            t.root_children(),
            &[Rank(1), Rank(2), Rank(3), Rank(4), Rank(5)]
        );
    }

    #[test]
    fn children_keep_send_order() {
        let mut t = MulticastTree::with_capacity(4);
        t.attach(Rank::SOURCE, Rank(3));
        t.attach(Rank::SOURCE, Rank(1));
        t.attach(Rank(1), Rank(2));
        assert_eq!(t.root_children(), &[Rank(3), Rank(1)]);
        t.validate().unwrap();
    }

    #[test]
    fn edges_in_preorder() {
        let mut t = MulticastTree::with_capacity(4);
        t.attach(Rank::SOURCE, Rank(2));
        t.attach(Rank(2), Rank(3));
        t.attach(Rank::SOURCE, Rank(1));
        assert_eq!(
            t.edges(),
            vec![(Rank(0), Rank(2)), (Rank(2), Rank(3)), (Rank(0), Rank(1))]
        );
    }

    #[test]
    fn validate_catches_unattached() {
        let t = MulticastTree::with_capacity(3);
        assert!(matches!(t.validate(), Err(TreeError::Unattached(_))));
    }

    #[test]
    #[should_panic(expected = "already has a parent")]
    fn double_attach_panics() {
        let mut t = MulticastTree::with_capacity(3);
        t.attach(Rank(0), Rank(1));
        t.attach(Rank(2), Rank(1));
    }

    #[test]
    #[should_panic(expected = "source cannot be attached")]
    fn attach_source_panics() {
        let mut t = MulticastTree::with_capacity(2);
        t.attach(Rank(1), Rank(0));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let mut t = MulticastTree::with_capacity(2);
        t.attach(Rank(1), Rank(1));
    }

    #[test]
    fn render_is_indented() {
        let t = chain(3);
        assert_eq!(t.render(), "r0\n  r1\n    r2\n");
    }
}

impl MulticastTree {
    /// Renders the tree as a Graphviz `dot` digraph. Edge labels carry the
    /// child's send position (1-based), i.e. the single-packet step offset
    /// at which the parent contacts that child.
    ///
    /// ```
    /// use optimcast_core::builders::binomial_tree;
    /// let dot = binomial_tree(4).to_dot();
    /// assert!(dot.starts_with("digraph multicast"));
    /// assert!(dot.contains("r0 -> r2"));
    /// ```
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph multicast {\n  rankdir=TB;\n  node [shape=circle];\n");
        for r in self.dfs_preorder() {
            for (i, &c) in self.children(r).iter().enumerate() {
                let _ = writeln!(out, "  r{} -> r{} [label=\"{}\"];", r.0, c.0, i + 1);
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Result of [`MulticastTree::repair`]: a tree over the surviving ranks
/// (renumbered densely, old-rank order) plus the rank correspondence and the
/// list of re-attachments performed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeRepair {
    /// The repaired tree over `survivors` ranks; rank 0 is still the source.
    pub tree: MulticastTree,
    /// `new_to_old[new.index()]` = the surviving participant's original rank.
    pub new_to_old: Vec<Rank>,
    /// `old_to_new[old.index()]` = the participant's rank in the repaired
    /// tree, or `None` if it failed.
    pub old_to_new: Vec<Option<Rank>>,
    /// Each orphaned subtree root and the surviving node it was re-attached
    /// to, both as *original* ranks, in re-attachment order.
    pub reattached: Vec<(Rank, Rank)>,
}

/// Why [`MulticastTree::repair`] rejected a failure set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairError {
    /// The source failed: there is no multicast to repair.
    SourceFailed,
    /// A failed rank is outside the tree.
    UnknownRank(Rank),
}

impl fmt::Display for RepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairError::SourceFailed => write!(f, "the multicast source failed"),
            RepairError::UnknownRank(r) => write!(f, "failed rank {r} is not in the tree"),
        }
    }
}

impl std::error::Error for RepairError {}

impl MulticastTree {
    /// Rebuilds the tree after the given ranks fail, re-attaching every
    /// orphaned subtree to a surviving node while preserving the fan-out
    /// bound `k = max_degree()` (so a repaired k-binomial tree is still at
    /// most k-ary).
    ///
    /// Surviving edges keep their send order; each orphaned subtree root is
    /// re-attached to its nearest surviving original ancestor with spare
    /// fan-out, falling back to the closest-to-root surviving node with
    /// spare fan-out (breadth-first). Survivors are renumbered densely in
    /// original-rank order, so a fault-free repair is the identity.
    ///
    /// # Errors
    ///
    /// [`RepairError::SourceFailed`] if rank 0 is in `failed`;
    /// [`RepairError::UnknownRank`] for an out-of-range rank.
    pub fn repair(&self, failed: &[Rank]) -> Result<TreeRepair, RepairError> {
        self.repair_partial(failed, &[])
    }

    /// [`Self::repair`] with partial-delivery state: ranks in `delivered`
    /// already hold the message, so live mid-run repair must not re-bind
    /// them. They are excluded from the repaired tree exactly like failed
    /// ranks — the result spans the source plus the *undelivered survivors*
    /// only — but excluding them is not a failure: listing the source as
    /// delivered is a no-op (it always holds the data) and does not error.
    ///
    /// # Errors
    ///
    /// [`RepairError::SourceFailed`] if rank 0 is in `failed`;
    /// [`RepairError::UnknownRank`] for an out-of-range rank in either set.
    pub fn repair_partial(
        &self,
        failed: &[Rank],
        delivered: &[Rank],
    ) -> Result<TreeRepair, RepairError> {
        let n = self.len();
        let mut dead = vec![false; n];
        for &r in failed {
            if r.index() >= n {
                return Err(RepairError::UnknownRank(r));
            }
            if r == Rank::SOURCE {
                return Err(RepairError::SourceFailed);
            }
            dead[r.index()] = true;
        }
        for &r in delivered {
            if r.index() >= n {
                return Err(RepairError::UnknownRank(r));
            }
            if r != Rank::SOURCE {
                dead[r.index()] = true;
            }
        }

        // Dense renumbering, original-rank order (source stays rank 0).
        let mut old_to_new: Vec<Option<Rank>> = vec![None; n];
        let mut new_to_old = Vec::new();
        for old in 0..n {
            if !dead[old] {
                old_to_new[old] = Some(Rank(new_to_old.len() as u32));
                new_to_old.push(Rank(old as u32));
            }
        }
        let survivors = new_to_old.len();
        let mut tree = MulticastTree::with_capacity(survivors as u32);

        // Fan-out budget: a repaired tree must stay within the original k
        // (a leaf-only tree still permits single children).
        let k = self.max_degree().max(1) as usize;

        // Pass 1 — keep every surviving edge, in preorder, so each parent's
        // surviving children retain their original send order.
        for r in self.dfs_preorder() {
            if dead[r.index()] {
                continue;
            }
            if let Some(p) = self.parent(r) {
                if !dead[p.index()] {
                    tree.attach(
                        old_to_new[p.index()].unwrap(),
                        old_to_new[r.index()].unwrap(),
                    );
                }
            }
        }

        // Which new ranks are currently reachable from the source.
        let mut connected = vec![false; survivors];
        // The repaired tree is still being attached to, so walk the chain
        // links (children_iter / child_count) rather than children(): every
        // attach invalidates the packed index, and repacking per query
        // would make this pass quadratic.
        let mark_component = |tree: &MulticastTree, connected: &mut Vec<bool>, start: Rank| {
            let mut stack = vec![start];
            while let Some(u) = stack.pop() {
                if std::mem::replace(&mut connected[u.index()], true) {
                    continue;
                }
                stack.extend(tree.children_iter(u));
            }
        };
        mark_component(&tree, &mut connected, Rank::SOURCE);

        // Pass 2 — re-attach each orphaned subtree root (original-rank
        // order): nearest surviving *connected* original ancestor with spare
        // fan-out, else the closest-to-root connected node with spare
        // fan-out. Attaching only to connected targets keeps the structure
        // acyclic by construction.
        let mut reattached = Vec::new();
        for old in 1..n {
            if dead[old] {
                continue;
            }
            let new_r = old_to_new[old].unwrap();
            if connected[new_r.index()] {
                continue; // still rooted (directly or via pass-1 edges)
            }
            let old_parent = self.parent(Rank(old as u32)).expect("non-source rank");
            if !dead[old_parent.index()] {
                continue; // inside an orphaned subtree; its root re-attaches
            }
            let mut target = None;
            let mut anc = Some(old_parent);
            while let Some(a) = anc {
                if !dead[a.index()] {
                    let na = old_to_new[a.index()].unwrap();
                    if connected[na.index()] && (tree.child_count(na) as usize) < k {
                        target = Some(na);
                        break;
                    }
                }
                anc = self.parent(a);
            }
            let target = target.unwrap_or_else(|| {
                // Breadth-first from the source: the shallowest connected
                // node with spare fan-out (always exists — leaves have
                // degree 0 < k).
                let mut queue = std::collections::VecDeque::from([Rank::SOURCE]);
                while let Some(u) = queue.pop_front() {
                    if (tree.child_count(u) as usize) < k {
                        return u;
                    }
                    queue.extend(tree.children_iter(u).filter(|c| connected[c.index()]));
                }
                unreachable!("a connected component always has a node with spare fan-out")
            });
            tree.attach(target, new_r);
            mark_component(&tree, &mut connected, new_r);
            reattached.push((Rank(old as u32), new_to_old[target.index()]));
        }

        debug_assert!(tree.validate().is_ok());
        Ok(TreeRepair {
            tree,
            new_to_old,
            old_to_new,
            reattached,
        })
    }
}

/// Incremental membership operations — the single-rank generalisation of
/// [`MulticastTree::repair_partial`]. Where repair rebuilds after a batch of
/// failures, [`MulticastTree::add_rank`] / [`MulticastTree::remove_rank`]
/// splice one participant in or out while preserving the ≤ `k` fan-out
/// bound and every surviving parent's send order, and return the same
/// rank-map/reattachment bookkeeping as [`TreeRepair`] so callers (live
/// streams with membership churn) can track identities across splices
/// without a from-scratch rebuild.
impl MulticastTree {
    /// Splices a new participant into the tree as rank `n` (one past the
    /// current highest), attached to the shallowest node with fewer than
    /// `k` children — breadth-first from the source, children visited in
    /// send order, so repeated joins fill the tree level by level exactly
    /// like the repair fallback of [`Self::repair`].
    ///
    /// Every existing edge (and send order) is preserved; the returned
    /// maps are identities over the old ranks and `reattached` records the
    /// single new attachment `(new rank, chosen parent)`.
    pub fn add_rank(&self, k: u32) -> TreeRepair {
        let n = self.len();
        let k = (k.max(1)) as usize;
        let mut tree = MulticastTree::with_capacity(n as u32 + 1);
        for r in self.dfs_preorder() {
            if let Some(p) = self.parent(r) {
                tree.attach(p, r);
            }
        }
        // Shallowest spare slot, BFS in send order. The new rank is not yet
        // attached, so every queued node is part of the original tree and
        // the walk terminates (leaves always have 0 < k children).
        let mut target = Rank::SOURCE;
        let mut queue = std::collections::VecDeque::from([Rank::SOURCE]);
        while let Some(u) = queue.pop_front() {
            if (tree.child_count(u) as usize) < k {
                target = u;
                break;
            }
            queue.extend(tree.children_iter(u));
        }
        let joined = Rank(n as u32);
        tree.attach(target, joined);
        debug_assert!(tree.validate().is_ok());
        TreeRepair {
            tree,
            new_to_old: (0..=n as u32).map(Rank).collect(),
            old_to_new: (0..n as u32).map(|r| Some(Rank(r))).collect(),
            reattached: vec![(joined, target)],
        }
    }

    /// Splices one participant out of the tree: the single-rank
    /// specialisation of [`Self::repair`], implemented as an incremental
    /// O(n) pass rather than the general dead-set machinery, but with the
    /// identical reattachment policy — each of `r`'s children (in original
    /// rank order) re-attaches to the nearest surviving connected ancestor
    /// with spare fan-out, falling back to the shallowest connected node
    /// with spare fan-out. `remove_rank(r)` therefore equals
    /// `repair(&[r])` exactly (a property the test battery pins).
    ///
    /// # Errors
    ///
    /// [`RepairError::SourceFailed`] if `r` is the source;
    /// [`RepairError::UnknownRank`] if `r` is out of range.
    pub fn remove_rank(&self, r: Rank) -> Result<TreeRepair, RepairError> {
        let n = self.len();
        if r.index() >= n {
            return Err(RepairError::UnknownRank(r));
        }
        if r == Rank::SOURCE {
            return Err(RepairError::SourceFailed);
        }
        // Dense renumbering: ranks below `r` keep their index, ranks above
        // shift down by one.
        let shift = |old: Rank| {
            if old.index() > r.index() {
                Rank(old.0 - 1)
            } else {
                old
            }
        };
        let old_to_new: Vec<Option<Rank>> = (0..n as u32)
            .map(|old| (old != r.0).then(|| shift(Rank(old))))
            .collect();
        let new_to_old: Vec<Rank> = (0..n as u32).filter(|&old| old != r.0).map(Rank).collect();
        let k = self.max_degree().max(1) as usize;

        // Pass 1 — every edge not incident to `r`, in preorder.
        let mut tree = MulticastTree::with_capacity(n as u32 - 1);
        for v in self.dfs_preorder() {
            if v == r {
                continue;
            }
            if let Some(p) = self.parent(v) {
                if p != r {
                    tree.attach(shift(p), shift(v));
                }
            }
        }

        // Only the subtrees hanging off `r`'s children are disconnected.
        let mut connected = vec![false; n - 1];
        let mark_component = |tree: &MulticastTree, connected: &mut Vec<bool>, start: Rank| {
            let mut stack = vec![start];
            while let Some(u) = stack.pop() {
                if std::mem::replace(&mut connected[u.index()], true) {
                    continue;
                }
                stack.extend(tree.children_iter(u));
            }
        };
        mark_component(&tree, &mut connected, Rank::SOURCE);

        // Pass 2 — re-attach `r`'s children in original-rank order (the
        // order repair's pass 2 visits orphan roots in).
        let parent_of_r = self.parent(r).expect("non-source rank");
        let mut orphans: Vec<Rank> = self.children_iter(r).collect();
        orphans.sort_unstable();
        let mut reattached = Vec::with_capacity(orphans.len());
        for c in orphans {
            // Nearest surviving ancestor with spare fan-out: the walk
            // starts at `r`'s parent (every ancestor survives and is
            // connected — the root path above `r` is intact).
            let mut target = None;
            let mut anc = Some(parent_of_r);
            while let Some(a) = anc {
                let na = shift(a);
                if (tree.child_count(na) as usize) < k {
                    target = Some(na);
                    break;
                }
                anc = self.parent(a);
            }
            let target = target.unwrap_or_else(|| {
                // Shallowest connected node with spare fan-out.
                let mut queue = std::collections::VecDeque::from([Rank::SOURCE]);
                while let Some(u) = queue.pop_front() {
                    if (tree.child_count(u) as usize) < k {
                        return u;
                    }
                    queue.extend(tree.children_iter(u).filter(|c| connected[c.index()]));
                }
                unreachable!("a connected component always has a node with spare fan-out")
            });
            tree.attach(target, shift(c));
            mark_component(&tree, &mut connected, shift(c));
            reattached.push((c, new_to_old[target.index()]));
        }

        debug_assert!(tree.validate().is_ok());
        Ok(TreeRepair {
            tree,
            new_to_old,
            old_to_new,
            reattached,
        })
    }
}

#[cfg(test)]
mod repair_tests {
    use super::*;
    use crate::builders::{binomial_tree, kbinomial_tree, linear_tree};

    #[test]
    fn no_failures_is_identity() {
        let t = kbinomial_tree(16, 2);
        let rep = t.repair(&[]).unwrap();
        assert_eq!(rep.tree, t);
        assert!(rep.reattached.is_empty());
        assert_eq!(rep.new_to_old, (0..16).map(Rank).collect::<Vec<_>>());
    }

    #[test]
    fn source_failure_is_rejected() {
        let t = binomial_tree(8);
        assert_eq!(t.repair(&[Rank(0)]), Err(RepairError::SourceFailed));
        assert_eq!(t.repair(&[Rank(9)]), Err(RepairError::UnknownRank(Rank(9))));
    }

    #[test]
    fn orphans_reattach_to_nearest_ancestor() {
        // Chain 0-1-2-3: killing 1 orphans {2,3}; 2's nearest surviving
        // ancestor is the source, 3 stays under 2.
        let t = linear_tree(4);
        let rep = t.repair(&[Rank(1)]).unwrap();
        rep.tree.validate().unwrap();
        assert_eq!(rep.tree.len(), 3);
        assert_eq!(rep.reattached, vec![(Rank(2), Rank(0))]);
        // New ranks: 0->0, 2->1, 3->2.
        assert_eq!(rep.tree.parent(Rank(1)), Some(Rank(0)));
        assert_eq!(rep.tree.parent(Rank(2)), Some(Rank(1)));
        assert_eq!(rep.tree.max_degree(), 1, "chain fan-out preserved");
    }

    #[test]
    fn fan_out_bound_is_preserved() {
        for k in 1..=4u32 {
            let t = kbinomial_tree(32, k);
            // Kill every child of the root: all grandchild subtrees must
            // re-attach without exceeding k anywhere.
            let failed: Vec<Rank> = t.root_children().to_vec();
            let rep = t.repair(&failed).unwrap();
            rep.tree.validate().unwrap();
            assert_eq!(rep.tree.len(), 32 - failed.len());
            assert!(
                rep.tree.max_degree() <= t.max_degree().max(1),
                "k={k}: repaired degree {} exceeds bound",
                rep.tree.max_degree()
            );
        }
    }

    #[test]
    fn every_survivor_is_reached_exactly_once() {
        let t = kbinomial_tree(24, 3);
        let failed = [Rank(1), Rank(5), Rank(11), Rank(17)];
        let rep = t.repair(&failed).unwrap();
        rep.tree.validate().unwrap(); // attached exactly once + connected
        assert_eq!(rep.tree.len(), 20);
        // The rank maps are mutually inverse over survivors.
        for (new, &old) in rep.new_to_old.iter().enumerate() {
            assert_eq!(rep.old_to_new[old.index()], Some(Rank(new as u32)));
        }
        for &f in &failed {
            assert_eq!(rep.old_to_new[f.index()], None);
        }
    }

    #[test]
    fn partial_repair_excludes_delivered_ranks() {
        let t = kbinomial_tree(16, 2);
        let failed = [Rank(1)];
        let delivered = [Rank(2), Rank(3), Rank::SOURCE];
        let rep = t.repair_partial(&failed, &delivered).unwrap();
        rep.tree.validate().unwrap();
        // Source + 16 - 1 source - 1 failed - 2 delivered = 13 ranks remain.
        assert_eq!(rep.tree.len(), 13);
        assert_eq!(rep.old_to_new[1], None);
        assert_eq!(rep.old_to_new[2], None);
        assert_eq!(rep.old_to_new[3], None);
        assert_eq!(rep.old_to_new[0], Some(Rank::SOURCE));
        // Delivered ranks are excluded, not failures.
        assert_eq!(
            t.repair_partial(&[Rank(0)], &[]),
            Err(RepairError::SourceFailed)
        );
        assert_eq!(
            t.repair_partial(&[], &[Rank(99)]),
            Err(RepairError::UnknownRank(Rank(99)))
        );
        // An empty delivered set reduces to plain repair.
        assert_eq!(t.repair_partial(&failed, &[]), t.repair(&failed));
    }

    /// Regression (static-rank-universe seam audit): a rank listed in both
    /// `failed` and `delivered` is excluded exactly once — the dead-set
    /// flagging is idempotent, so the overlap behaves like plain failure
    /// and never double-counts, shifts the dense renumbering, or panics.
    #[test]
    fn overlapping_failed_and_delivered_sets_are_idempotent() {
        let t = kbinomial_tree(16, 2);
        let overlap = [Rank(3), Rank(7)];
        let rep = t.repair_partial(&overlap, &overlap).unwrap();
        assert_eq!(rep, t.repair(&overlap).unwrap());
        assert_eq!(rep.tree.len(), 14);
        // Disjoint-plus-overlap mixes reduce to the union of the sets.
        let rep2 = t
            .repair_partial(&[Rank(3), Rank(7)], &[Rank(7), Rank(9)])
            .unwrap();
        assert_eq!(
            rep2,
            t.repair_partial(&[Rank(3), Rank(7)], &[Rank(9)]).unwrap()
        );
        // The source in `failed` stays an error even when also delivered
        // (failure is checked first; delivery never legitimises a dead
        // source).
        assert_eq!(
            t.repair_partial(&[Rank::SOURCE], &[Rank::SOURCE]),
            Err(RepairError::SourceFailed)
        );
        // Duplicates within one set are equally idempotent.
        assert_eq!(
            t.repair_partial(&[Rank(5), Rank(5)], &[]),
            t.repair(&[Rank(5)])
        );
    }
}

#[cfg(test)]
mod incremental_tests {
    use super::*;
    use crate::builders::{kbinomial_tree, linear_tree};

    #[test]
    fn add_rank_attaches_at_the_shallowest_spare_slot() {
        // Full 2-binomial levels: the next join lands under the shallowest
        // node with spare fan-out, breadth-first in send order.
        let t = kbinomial_tree(4, 2); // root -> {2, 1}, 2 -> {3}
        let rep = t.add_rank(2);
        rep.tree.validate().unwrap();
        assert_eq!(rep.tree.len(), 5);
        // Root is full (2 children); rank 2, first in send order, has one
        // child -> the spare slot.
        assert_eq!(rep.reattached, vec![(Rank(4), Rank(2))]);
        assert_eq!(rep.tree.parent(Rank(4)), Some(Rank(2)));
        assert!(rep.tree.max_degree() <= 2);
        // Identity maps over the old ranks.
        assert_eq!(
            rep.old_to_new,
            (0..4).map(|r| Some(Rank(r))).collect::<Vec<_>>()
        );
        assert_eq!(rep.new_to_old, (0..5).map(Rank).collect::<Vec<_>>());
        // Existing edges and send orders are untouched.
        assert_eq!(rep.tree.root_children(), t.root_children());
    }

    #[test]
    fn add_rank_on_a_chain_extends_the_chain() {
        let t = linear_tree(3);
        let rep = t.add_rank(1);
        rep.tree.validate().unwrap();
        assert_eq!(rep.tree.parent(Rank(3)), Some(Rank(2)));
        assert_eq!(rep.tree.max_degree(), 1);
    }

    #[test]
    fn remove_rank_equals_single_failure_repair() {
        for k in 1..=4u32 {
            let t = kbinomial_tree(24, k);
            for r in 1..24u32 {
                let inc = t.remove_rank(Rank(r)).unwrap();
                let rep = t.repair(&[Rank(r)]).unwrap();
                assert_eq!(inc, rep, "k={k} r={r} diverged from repair");
            }
        }
    }

    #[test]
    fn remove_rank_rejects_bad_ranks() {
        let t = kbinomial_tree(8, 2);
        assert_eq!(t.remove_rank(Rank::SOURCE), Err(RepairError::SourceFailed));
        assert_eq!(
            t.remove_rank(Rank(8)),
            Err(RepairError::UnknownRank(Rank(8)))
        );
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;

    #[test]
    fn dot_lists_every_edge_once() {
        let mut t = MulticastTree::with_capacity(4);
        t.attach(Rank(0), Rank(2));
        t.attach(Rank(2), Rank(3));
        t.attach(Rank(0), Rank(1));
        let dot = t.to_dot();
        assert_eq!(dot.matches(" -> ").count(), 3);
        assert!(dot.contains("r0 -> r2 [label=\"1\"]"));
        assert!(dot.contains("r0 -> r1 [label=\"2\"]"));
        assert!(dot.contains("r2 -> r3 [label=\"1\"]"));
    }

    #[test]
    fn singleton_dot_has_no_edges() {
        let dot = MulticastTree::singleton().to_dot();
        assert!(!dot.contains("->"));
    }
}
