//! Seeded random irregular switch-based networks (paper §5.2).
//!
//! The paper's evaluation platform is "an irregular switch-based network
//! with 64 processors connected by 16 eight-port switches", averaged over 10
//! different random switch interconnection topologies. This module generates
//! such networks reproducibly: hosts are spread evenly over the switches and
//! the switches' remaining ports are wired by a random connected graph
//! (random spanning tree for connectivity, then random extra links until the
//! ports run out).

use crate::graph::{HostId, SwitchId, Topology};
use crate::updown::UpDownRouting;
use crate::Network;
use optimcast_rng::{ChaCha8Rng, Rng, SliceRandom};

/// Shape of a random irregular network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IrregularConfig {
    /// Number of switches.
    pub switches: u32,
    /// Ports per switch (hosts + switch links must fit).
    pub ports: u32,
    /// Number of hosts, spread as evenly as possible over the switches.
    pub hosts: u32,
}

impl Default for IrregularConfig {
    /// The paper's platform: 64 processors, 16 eight-port switches.
    fn default() -> Self {
        IrregularConfig {
            switches: 16,
            ports: 8,
            hosts: 64,
        }
    }
}

impl IrregularConfig {
    /// Hosts attached to switch `s` under even distribution (first switches
    /// absorb the remainder).
    fn hosts_on(&self, s: u32) -> u32 {
        let base = self.hosts / self.switches;
        let extra = u32::from(s < self.hosts % self.switches);
        base + extra
    }

    /// Validates that the shape is realisable: every switch can hold its
    /// hosts with at least one port to spare for the spanning tree (when
    /// there are ≥ 2 switches).
    pub fn validate(&self) -> Result<(), String> {
        if self.switches == 0 {
            return Err("need at least one switch".into());
        }
        if self.hosts == 0 {
            return Err("need at least one host".into());
        }
        let mut total_free = 0u64;
        for s in 0..self.switches {
            let h = self.hosts_on(s);
            let need_tree = u32::from(self.switches > 1);
            if h + need_tree > self.ports {
                return Err(format!(
                    "switch {s} needs {h} host ports + {need_tree} tree port(s) \
                     but has only {} ports",
                    self.ports
                ));
            }
            total_free += u64::from(self.ports - h);
        }
        // A spanning tree over S switches consumes 2(S-1) port endpoints.
        if self.switches > 1 && total_free < 2 * (u64::from(self.switches) - 1) {
            return Err(format!(
                "only {total_free} free switch ports in total; a spanning tree \
                 over {} switches needs {}",
                self.switches,
                2 * (self.switches - 1)
            ));
        }
        Ok(())
    }
}

/// A generated irregular network with its up\*/down\* routing.
#[derive(Debug, Clone)]
pub struct IrregularNetwork {
    config: IrregularConfig,
    seed: u64,
    topo: Topology,
    routing: UpDownRouting,
}

impl IrregularNetwork {
    /// Generates the network for `(config, seed)`. Deterministic: the same
    /// pair always yields the same topology and routing.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is unrealisable (see
    /// [`IrregularConfig::validate`]).
    pub fn generate(config: IrregularConfig, seed: u64) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("bad config: {e}"));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut topo = Topology::new(config.switches);

        // Attach hosts first; their ports are reserved.
        for s in 0..config.switches {
            for _ in 0..config.hosts_on(s) {
                topo.add_host(SwitchId(s));
            }
        }

        // Free switch-link ports per switch.
        let mut free: Vec<u32> = (0..config.switches)
            .map(|s| config.ports - config.hosts_on(s))
            .collect();

        // 1. Random spanning tree for guaranteed connectivity. Switches are
        //    attached in descending free-port order (random tie-break): with
        //    Σ free ≥ 2(S−1) and free ≥ 1 everywhere (checked by validate),
        //    the prefix-sum argument guarantees the growing component always
        //    retains a free port, so the greedy attachment never strands.
        if config.switches > 1 {
            let mut order: Vec<u32> = (0..config.switches).collect();
            order.shuffle(&mut rng);
            order.sort_by_key(|&s| std::cmp::Reverse(free[s as usize]));
            let mut connected = vec![order[0]];
            for &s in &order[1..] {
                let candidates: Vec<u32> = connected
                    .iter()
                    .copied()
                    .filter(|&c| free[c as usize] > 0)
                    .collect();
                // validate() guarantees every switch spares one tree port, so
                // the connected component always has a free port somewhere.
                let &peer = candidates
                    .choose(&mut rng)
                    .expect("spanning tree ran out of ports");
                topo.add_switch_link(SwitchId(peer), SwitchId(s));
                free[peer as usize] -= 1;
                free[s as usize] -= 1;
                connected.push(s);
            }
        }

        // 2. Extra random links until ports (or distinct pairs) run out.
        //    Parallel links between the same switch pair are not added.
        let mut linked: std::collections::HashSet<(u32, u32)> =
            topo.link_pairs().into_iter().collect();
        loop {
            let open: Vec<u32> = (0..config.switches)
                .filter(|&s| free[s as usize] > 0)
                .collect();
            if open.len() < 2 {
                break;
            }
            // Collect all wireable pairs; stop when none are left.
            let mut pairs: Vec<(u32, u32)> = Vec::new();
            for (i, &a) in open.iter().enumerate() {
                for &b in &open[i + 1..] {
                    if !linked.contains(&(a, b)) {
                        pairs.push((a, b));
                    }
                }
            }
            if pairs.is_empty() {
                break;
            }
            let &(a, b) = &pairs[rng.gen_range(0..pairs.len())];
            topo.add_switch_link(SwitchId(a), SwitchId(b));
            linked.insert((a, b));
            free[a as usize] -= 1;
            free[b as usize] -= 1;
        }

        debug_assert!(topo.switches_connected());
        let routing = UpDownRouting::new(&topo);
        IrregularNetwork {
            config,
            seed,
            topo,
            routing,
        }
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The generation config.
    pub fn config(&self) -> IrregularConfig {
        self.config
    }

    /// The up\*/down\* routing tables.
    pub fn routing(&self) -> &UpDownRouting {
        &self.routing
    }
}

impl Network for IrregularNetwork {
    fn num_hosts(&self) -> u32 {
        self.topo.num_hosts()
    }

    fn num_channels(&self) -> u32 {
        self.topo.num_channels()
    }

    fn route(&self, from: HostId, to: HostId) -> Vec<crate::graph::ChannelId> {
        self.routing.host_route(&self.topo, from, to)
    }

    fn topology(&self) -> &Topology {
        &self.topo
    }

    fn describe(&self) -> String {
        format!(
            "irregular network: {} hosts, {} switches x {} ports, seed {}",
            self.config.hosts, self.config.switches, self.config.ports, self.seed
        )
    }

    fn bulk_routes(&self, pairs: &[(HostId, HostId)]) -> (Vec<u32>, Vec<crate::graph::ChannelId>) {
        self.routing.bulk_host_routes(&self.topo, pairs)
    }
}

impl Topology {
    /// Unordered switch pairs already linked, as `(min, max)` id pairs.
    /// Host links are ignored.
    pub fn link_pairs(&self) -> Vec<(u32, u32)> {
        use crate::graph::Endpoint;
        (0..self.num_links())
            .filter_map(|l| {
                let link = self.link(crate::graph::LinkId(l));
                match (link.a, link.b) {
                    (Endpoint::Switch(x), Endpoint::Switch(y)) => {
                        Some((x.0.min(y.0), x.0.max(y.0)))
                    }
                    _ => None,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shape() {
        let net = IrregularNetwork::generate(IrregularConfig::default(), 42);
        assert_eq!(net.num_hosts(), 64);
        assert_eq!(net.topology().num_switches(), 16);
        for s in 0..16 {
            assert_eq!(net.topology().switch_hosts(SwitchId(s)).len(), 4);
            assert!(net.topology().ports_used(SwitchId(s)) <= 8);
        }
        assert!(net.topology().switches_connected());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = IrregularNetwork::generate(IrregularConfig::default(), 7);
        let b = IrregularNetwork::generate(IrregularConfig::default(), 7);
        assert_eq!(a.topology(), b.topology());
        assert_eq!(a.routing(), b.routing());
    }

    #[test]
    fn seeds_differ() {
        let a = IrregularNetwork::generate(IrregularConfig::default(), 1);
        let b = IrregularNetwork::generate(IrregularConfig::default(), 2);
        assert_ne!(a.topology(), b.topology(), "distinct seeds should differ");
    }

    #[test]
    fn all_pairs_routable_and_legal() {
        let net = IrregularNetwork::generate(IrregularConfig::default(), 3);
        let topo = net.topology();
        for a in 0..net.num_hosts() {
            for b in 0..net.num_hosts() {
                let route = net.route(HostId(a), HostId(b));
                if a == b {
                    assert!(route.is_empty());
                    continue;
                }
                assert!(route.len() >= 2);
                assert_eq!(route[0], topo.injection_channel(HostId(a)));
                assert_eq!(*route.last().unwrap(), topo.ejection_channel(HostId(b)));
                // Interior is a legal up*/down* switch path.
                assert!(net
                    .routing()
                    .is_legal_path(topo, &route[1..route.len() - 1]));
            }
        }
    }

    #[test]
    fn no_parallel_switch_links() {
        for seed in 0..5 {
            let net = IrregularNetwork::generate(IrregularConfig::default(), seed);
            let mut pairs = net.topology().link_pairs();
            let total = pairs.len();
            pairs.sort_unstable();
            pairs.dedup();
            assert_eq!(pairs.len(), total, "seed {seed} produced parallel links");
        }
    }

    #[test]
    fn small_configs_work() {
        let cfg = IrregularConfig {
            switches: 4,
            ports: 4,
            hosts: 8,
        };
        let net = IrregularNetwork::generate(cfg, 0);
        assert_eq!(net.num_hosts(), 8);
        assert!(net.topology().switches_connected());
    }

    #[test]
    fn single_switch_config() {
        let cfg = IrregularConfig {
            switches: 1,
            ports: 8,
            hosts: 6,
        };
        let net = IrregularNetwork::generate(cfg, 0);
        assert_eq!(net.route(HostId(0), HostId(5)).len(), 2);
    }

    #[test]
    fn uneven_host_distribution() {
        let cfg = IrregularConfig {
            switches: 3,
            ports: 8,
            hosts: 7,
        };
        let net = IrregularNetwork::generate(cfg, 0);
        let t = net.topology();
        assert_eq!(t.switch_hosts(SwitchId(0)).len(), 3);
        assert_eq!(t.switch_hosts(SwitchId(1)).len(), 2);
        assert_eq!(t.switch_hosts(SwitchId(2)).len(), 2);
    }

    #[test]
    fn validate_rejects_overfull() {
        let cfg = IrregularConfig {
            switches: 2,
            ports: 4,
            hosts: 8, // 4 hosts per switch leaves no tree port
        };
        assert!(cfg.validate().is_err());
    }

    /// The CSR adjacency must agree with nested adjacency lists rebuilt
    /// naively from the flat link/host tables (the layout `Topology` used
    /// before the CSR conversion).
    #[test]
    fn csr_adjacency_matches_nested_vec_reference() {
        use crate::graph::{Endpoint, LinkId};
        for seed in 0..5u64 {
            let net = IrregularNetwork::generate(IrregularConfig::default(), seed);
            let t = net.topology();
            let s = t.num_switches() as usize;
            let mut switch_links: Vec<Vec<LinkId>> = vec![Vec::new(); s];
            let mut switch_hosts: Vec<Vec<HostId>> = vec![Vec::new(); s];
            for l in 0..t.num_links() {
                let link = t.link(LinkId(l));
                match (link.a, link.b) {
                    (Endpoint::Switch(x), Endpoint::Switch(y)) => {
                        switch_links[x.index()].push(LinkId(l));
                        switch_links[y.index()].push(LinkId(l));
                    }
                    (Endpoint::Host(h), Endpoint::Switch(y)) => {
                        switch_hosts[y.index()].push(h);
                    }
                    _ => unreachable!("host links are host → switch"),
                }
            }
            for sw in 0..s {
                let id = SwitchId(sw as u32);
                assert_eq!(t.switch_links(id), switch_links[sw].as_slice());
                assert_eq!(t.switch_hosts(id), switch_hosts[sw].as_slice());
                let (links, peers) = t.switch_peers(id);
                assert_eq!(links, switch_links[sw].as_slice());
                for (&l, &p) in links.iter().zip(peers) {
                    let link = t.link(l);
                    match (link.a, link.b) {
                        (Endpoint::Switch(x), Endpoint::Switch(y)) => {
                            assert!(x == id && y == p || y == id && x == p);
                        }
                        _ => panic!("switch link with host endpoint"),
                    }
                }
            }
        }
    }

    #[test]
    fn bulk_routes_match_per_pair_on_irregular() {
        let net = IrregularNetwork::generate(IrregularConfig::default(), 9);
        let mut pairs = Vec::new();
        for b in 0..net.num_hosts() {
            pairs.push((HostId(0), HostId(b)));
            pairs.push((HostId(b), HostId(0)));
            pairs.push((HostId(b), HostId((b + 17) % net.num_hosts())));
        }
        let (off, dat) = net.bulk_routes(&pairs);
        assert_eq!(off.len(), pairs.len() + 1);
        for (i, &(a, b)) in pairs.iter().enumerate() {
            assert_eq!(
                &dat[off[i] as usize..off[i + 1] as usize],
                net.route(a, b).as_slice(),
                "pair {a}->{b}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "bad config")]
    fn generate_panics_on_bad_config() {
        IrregularNetwork::generate(
            IrregularConfig {
                switches: 2,
                ports: 1,
                hosts: 4,
            },
            0,
        );
    }
}
