//! k-ary n-mesh topologies (no wraparound) with dimension-ordered routing.
//!
//! The prior multi-packet multicast work the paper improves on
//! (De Coster-Dewulf-Ho, ICPP'95 \[2\]) evaluated on wormhole meshes with
//! dimension-ordered routing; this substrate lets the reproduction compare
//! k-binomial multicast on meshes too. Unlike [`crate::cube::CubeNetwork`],
//! a mesh has no wraparound links, and the natural contention-free chain is
//! the *snake* (boustrophedon) order — the dimension-ordered chain of
//! McKinley et al. for meshes.

use crate::graph::{ChannelId, HostId, SwitchId, Topology};
use crate::ordering::Ordering;
use crate::Network;

/// A k-ary n-mesh: `arity^dims` processors, one per router, no wraparound.
#[derive(Debug, Clone, PartialEq)]
pub struct MeshNetwork {
    arity: u32,
    dims: u32,
    topo: Topology,
}

impl MeshNetwork {
    /// Builds the `arity`-ary `dims`-mesh.
    ///
    /// # Panics
    ///
    /// Panics if `arity < 2`, `dims < 1`, or the node count overflows `u32`.
    pub fn new(arity: u32, dims: u32) -> Self {
        assert!(arity >= 2, "a mesh dimension needs at least 2 nodes");
        assert!(dims >= 1, "need at least one dimension");
        let nodes = (0..dims).try_fold(1u32, |acc, _| acc.checked_mul(arity));
        let nodes = nodes.expect("mesh too large for u32 node ids");
        let mut topo = Topology::new(nodes);
        for i in 0..nodes {
            topo.add_host(SwitchId(i));
        }
        let mut stride = 1u32;
        for _ in 0..dims {
            for i in 0..nodes {
                let coord = (i / stride) % arity;
                if coord + 1 < arity {
                    topo.add_switch_link(SwitchId(i), SwitchId(i + stride));
                }
            }
            stride *= arity;
        }
        MeshNetwork { arity, dims, topo }
    }

    /// Nodes per dimension.
    pub fn arity(&self) -> u32 {
        self.arity
    }

    /// Number of dimensions.
    pub fn dims(&self) -> u32 {
        self.dims
    }

    /// Per-dimension coordinates of a node (dimension 0 first).
    pub fn coords(&self, h: HostId) -> Vec<u32> {
        let mut v = Vec::with_capacity(self.dims as usize);
        let mut rest = h.0;
        for _ in 0..self.dims {
            v.push(rest % self.arity);
            rest /= self.arity;
        }
        v
    }

    /// Node id from coordinates.
    ///
    /// # Panics
    ///
    /// Panics on wrong dimensionality or out-of-range coordinates.
    pub fn node_at(&self, coords: &[u32]) -> HostId {
        assert_eq!(coords.len(), self.dims as usize, "wrong dimensionality");
        let mut id = 0u32;
        let mut stride = 1u32;
        for &c in coords {
            assert!(c < self.arity, "coordinate {c} out of range");
            id += c * stride;
            stride *= self.arity;
        }
        HostId(id)
    }

    /// Next hop under dimension-ordered routing (lowest dimension first,
    /// monotone moves — meshes have no wrap decision to make).
    pub fn next_hop(&self, at: u32, to: u32) -> Option<u32> {
        if at == to {
            return None;
        }
        let mut stride = 1u32;
        for _ in 0..self.dims {
            let ca = (at / stride) % self.arity;
            let ct = (to / stride) % self.arity;
            if ca != ct {
                let next_coord = if ct > ca { ca + 1 } else { ca - 1 };
                return Some(at - ca * stride + next_coord * stride);
            }
            stride *= self.arity;
        }
        unreachable!("at != to but all coordinates equal");
    }
}

impl Network for MeshNetwork {
    fn num_hosts(&self) -> u32 {
        self.topo.num_hosts()
    }

    fn num_channels(&self) -> u32 {
        self.topo.num_channels()
    }

    fn route(&self, from: HostId, to: HostId) -> Vec<ChannelId> {
        if from == to {
            return Vec::new();
        }
        let mut route = vec![self.topo.injection_channel(from)];
        let mut at = from.0;
        while let Some(next) = self.next_hop(at, to.0) {
            let c = self
                .topo
                .switch_channel(SwitchId(at), SwitchId(next))
                .expect("adjacent mesh nodes must be linked");
            route.push(c);
            at = next;
        }
        route.push(self.topo.ejection_channel(to));
        route
    }

    fn topology(&self) -> &Topology {
        &self.topo
    }

    fn describe(&self) -> String {
        format!(
            "{}-ary {}-mesh: {} processors",
            self.arity,
            self.dims,
            self.num_hosts()
        )
    }
}

/// The snake (boustrophedon) ordering of a mesh: dimension 0 sweeps
/// alternately forward and backward as higher dimensions advance, so
/// consecutive hosts in the ordering are always mesh neighbours — the
/// dimension-ordered chain for meshes.
pub fn snake_ordering(mesh: &MeshNetwork) -> Ordering {
    let n = mesh.num_hosts();
    let mut order = Vec::with_capacity(n as usize);
    let mut coords = vec![0u32; mesh.dims() as usize];
    snake_rec(mesh, mesh.dims() as usize, &mut coords, false, &mut order);
    Ordering::from_order(order)
}

fn snake_rec(
    mesh: &MeshNetwork,
    dims_left: usize,
    coords: &mut Vec<u32>,
    reverse: bool,
    out: &mut Vec<HostId>,
) {
    let d = dims_left - 1;
    let k = mesh.arity();
    for step in 0..k {
        let c = if reverse { k - 1 - step } else { step };
        coords[d] = c;
        if d == 0 {
            out.push(mesh.node_at(coords));
        } else {
            // In the forward sweep, block at coordinate c runs forward for
            // even c; the reverse traversal is the exact mirror, so each
            // block's direction flips with the coordinate's parity, xor'd
            // with the overall direction. (Step parity is wrong here: when
            // sweeping downward with even arity, step and coordinate
            // parities disagree and the chain would tear.)
            let inner_reverse = (c % 2 == 1) ^ reverse;
            snake_rec(mesh, d, coords, inner_reverse, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_shape() {
        let m = MeshNetwork::new(4, 2);
        assert_eq!(m.num_hosts(), 16);
        // 2 dims x 4 rows x 3 links = 24 switch links + 16 host links.
        assert_eq!(m.topology().num_links(), 24 + 16);
        assert!(m.topology().switches_connected());
    }

    #[test]
    fn line_mesh() {
        let m = MeshNetwork::new(5, 1);
        assert_eq!(m.num_hosts(), 5);
        assert_eq!(m.topology().num_links(), 4 + 5);
        // End-to-end route spans all 4 mesh hops.
        assert_eq!(m.route(HostId(0), HostId(4)).len(), 4 + 2);
    }

    #[test]
    fn no_wraparound() {
        let m = MeshNetwork::new(3, 1);
        // 2 -> 0 must go through 1 (no wrap link).
        assert_eq!(m.next_hop(2, 0), Some(1));
        assert_eq!(m.route(HostId(2), HostId(0)).len(), 2 + 2);
    }

    #[test]
    fn routes_wellformed() {
        let m = MeshNetwork::new(3, 2);
        for a in 0..9 {
            for b in 0..9 {
                let r = m.route(HostId(a), HostId(b));
                if a == b {
                    assert!(r.is_empty());
                    continue;
                }
                assert_eq!(r[0], m.topology().injection_channel(HostId(a)));
                assert_eq!(*r.last().unwrap(), m.topology().ejection_channel(HostId(b)));
                for w in r.windows(2) {
                    let (_, x) = m.topology().channel_endpoints(w[0]);
                    let (y, _) = m.topology().channel_endpoints(w[1]);
                    assert_eq!(x, y);
                }
                // Manhattan distance + inject/eject.
                let ca = m.coords(HostId(a));
                let cb = m.coords(HostId(b));
                let dist: u32 = ca.iter().zip(&cb).map(|(&x, &y)| x.abs_diff(y)).sum();
                assert_eq!(r.len(), dist as usize + 2, "{a}->{b}");
            }
        }
    }

    #[test]
    fn snake_is_neighbor_chain() {
        for (arity, dims) in [(4u32, 2u32), (3, 3), (2, 4), (5, 1)] {
            let m = MeshNetwork::new(arity, dims);
            let o = snake_ordering(&m);
            assert_eq!(o.len(), m.num_hosts() as usize);
            for w in o.hosts().windows(2) {
                let ca = m.coords(w[0]);
                let cb = m.coords(w[1]);
                let dist: u32 = ca.iter().zip(&cb).map(|(&x, &y)| x.abs_diff(y)).sum();
                assert_eq!(dist, 1, "snake broke between {} and {}", w[0], w[1]);
            }
        }
    }

    #[test]
    fn snake_2d_pattern() {
        let m = MeshNetwork::new(3, 2);
        let o = snake_ordering(&m);
        let ids: Vec<u32> = o.hosts().iter().map(|h| h.0).collect();
        // Row 0 forward (0,1,2), row 1 backward (5,4,3), row 2 forward.
        assert_eq!(ids, vec![0, 1, 2, 5, 4, 3, 6, 7, 8]);
    }

    #[test]
    fn snake_ordering_is_contention_free_on_lines_and_small_meshes() {
        use crate::contention::is_contention_free;
        let m = MeshNetwork::new(5, 1);
        let o = snake_ordering(&m);
        assert!(is_contention_free(&m, o.hosts()));
        let m = MeshNetwork::new(3, 2);
        let o = snake_ordering(&m);
        assert!(is_contention_free(&m, o.hosts()));
    }

    #[test]
    fn coords_roundtrip() {
        let m = MeshNetwork::new(4, 3);
        for i in 0..64 {
            assert_eq!(m.node_at(&m.coords(HostId(i))), HostId(i));
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn arity_one_panics() {
        MeshNetwork::new(1, 2);
    }
}
