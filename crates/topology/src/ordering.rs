//! Node orderings for contention-free tree construction (paper §4.3.2).
//!
//! The paper builds k-binomial trees on a *contention-free ordering* of the
//! participating nodes: an ordering `≺` such that for any
//! `a ≺ b ≼ c ≺ d`, a message `a → b` shares no channel with a message
//! `c → d`. For k-ary n-cubes the dimension-ordered chain of McKinley et al.
//! provides one; for irregular networks no contention-free ordering exists
//! under up\*/down\* routing (HPCA'97 \[5\]), and the paper instead uses the
//! **Chain Concatenated Ordering (CCO)** of \[5\], which minimises (but does
//! not eliminate) contention.
//!
//! Our CCO (documented substitution — we reconstruct it from its defining
//! property, see DESIGN.md): traverse the up\*/down\* BFS switch tree
//! depth-first from the root and concatenate each switch's attached hosts at
//! first visit. Hosts that are topologically close are then contiguous in
//! the ordering, so the nested/disjoint chain segments used by the Fig. 11
//! construction mostly map to disjoint channel sets.

use crate::cube::CubeNetwork;
use crate::graph::{HostId, SwitchId};
use crate::irregular::IrregularNetwork;
use crate::Network;
use optimcast_rng::{ChaCha8Rng, SliceRandom};

/// A total ordering of all hosts of a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ordering {
    order: Vec<HostId>,
    /// Position of each host in `order`.
    pos: Vec<u32>,
}

impl Ordering {
    /// Wraps an explicit permutation of `0..n` hosts.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of all host ids `0..len`.
    pub fn from_order(order: Vec<HostId>) -> Self {
        let n = order.len();
        let mut pos = vec![u32::MAX; n];
        for (i, h) in order.iter().enumerate() {
            assert!(h.index() < n, "host {h} out of range for ordering of {n}");
            assert!(pos[h.index()] == u32::MAX, "host {h} appears twice");
            pos[h.index()] = i as u32;
        }
        Ordering { order, pos }
    }

    /// The identity ordering `h0, h1, …`.
    pub fn identity(n: u32) -> Self {
        Ordering::from_order((0..n).map(HostId).collect())
    }

    /// A seeded random permutation (ablation baseline).
    pub fn random(n: u32, seed: u64) -> Self {
        let mut order: Vec<HostId> = (0..n).map(HostId).collect();
        order.shuffle(&mut ChaCha8Rng::seed_from_u64(seed));
        Ordering::from_order(order)
    }

    /// Hosts in order.
    pub fn hosts(&self) -> &[HostId] {
        &self.order
    }

    /// Position of a host in the ordering.
    pub fn position(&self, h: HostId) -> u32 {
        self.pos[h.index()]
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if the ordering is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Arranges a multicast set on this ordering: the participants (source
    /// plus destinations) are sorted by ordering position and then rotated
    /// so the source comes first — the paper's "without loss of generality,
    /// the source is the first node in the ordering".
    ///
    /// The result is the chain on which the Fig. 11 construction runs:
    /// `result[0]` is the source (tree rank 0), `result[i]` is rank `i`.
    ///
    /// # Panics
    ///
    /// Panics if `dests` contains the source or duplicate hosts.
    pub fn arrange(&self, source: HostId, dests: &[HostId]) -> Vec<HostId> {
        let mut chain: Vec<HostId> = Vec::with_capacity(dests.len() + 1);
        chain.push(source);
        chain.extend_from_slice(dests);
        chain.sort_by_key(|&h| self.position(h));
        for w in chain.windows(2) {
            assert!(w[0] != w[1], "duplicate participant {}", w[0]);
        }
        let src_at = chain
            .iter()
            .position(|&h| h == source)
            .expect("source is in the chain");
        chain.rotate_left(src_at);
        chain
    }
}

/// The Chain Concatenated Ordering for an irregular network: depth-first
/// traversal of the up\*/down\* BFS switch tree (children in discovery
/// order), concatenating each switch's hosts at first visit.
pub fn cco(net: &IrregularNetwork) -> Ordering {
    cco_of(net.topology(), net.routing())
}

/// CCO over any up\*/down\*-routed topology (irregular networks, fat-trees,
/// dragonflies): one O(hosts + switches) pass over the routing's BFS switch
/// tree.
pub fn cco_of(topo: &crate::graph::Topology, routing: &crate::updown::UpDownRouting) -> Ordering {
    let mut order = Vec::with_capacity(topo.num_hosts() as usize);
    let mut stack = vec![routing.root()];
    while let Some(s) = stack.pop() {
        order.extend_from_slice(topo.switch_hosts(s));
        // Reverse so children pop in discovery order.
        for &c in routing.tree_children(s).iter().rev() {
            stack.push(c);
        }
    }
    Ordering::from_order(order)
}

/// The dimension-ordered chain for a k-ary n-cube: hosts in lexicographic
/// coordinate order (dimension 0 varying fastest), which is exactly
/// ascending node-id order by construction.
pub fn dimension_ordered(cube: &CubeNetwork) -> Ordering {
    Ordering::identity(cube.num_hosts())
}

/// A per-switch clustered ordering for *any* switch topology: hosts grouped
/// by switch id (not topology-aware beyond that). Useful as a middle
/// ablation point between CCO and random.
pub fn switch_grouped(topo: &crate::graph::Topology) -> Ordering {
    let mut order = Vec::with_capacity(topo.num_hosts() as usize);
    for s in 0..topo.num_switches() {
        order.extend_from_slice(topo.switch_hosts(SwitchId(s)));
    }
    Ordering::from_order(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::irregular::IrregularConfig;

    #[test]
    fn identity_positions() {
        let o = Ordering::identity(5);
        for i in 0..5 {
            assert_eq!(o.position(HostId(i)), i);
            assert_eq!(o.hosts()[i as usize], HostId(i));
        }
    }

    #[test]
    fn random_is_permutation_and_seeded() {
        let a = Ordering::random(64, 9);
        let b = Ordering::random(64, 9);
        assert_eq!(a, b);
        let c = Ordering::random(64, 10);
        assert_ne!(a, c);
        let mut hosts: Vec<u32> = a.hosts().iter().map(|h| h.0).collect();
        hosts.sort_unstable();
        assert_eq!(hosts, (0..64).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn duplicate_rejected() {
        Ordering::from_order(vec![HostId(0), HostId(0)]);
    }

    #[test]
    fn arrange_sorts_and_rotates() {
        let o = Ordering::from_order(vec![HostId(3), HostId(1), HostId(4), HostId(0), HostId(2)]);
        // Participants 0, 2, 4 with source 4: sorted by position = [4, 0, 2]
        // (positions 2, 3, 4); source already first.
        assert_eq!(
            o.arrange(HostId(4), &[HostId(0), HostId(2)]),
            vec![HostId(4), HostId(0), HostId(2)]
        );
        // Source 0: sorted [4, 0, 2] rotated to [0, 2, 4].
        assert_eq!(
            o.arrange(HostId(0), &[HostId(2), HostId(4)]),
            vec![HostId(0), HostId(2), HostId(4)]
        );
    }

    #[test]
    #[should_panic(expected = "duplicate participant")]
    fn arrange_rejects_source_in_dests() {
        let o = Ordering::identity(4);
        o.arrange(HostId(1), &[HostId(1), HostId(2)]);
    }

    #[test]
    fn cco_covers_all_hosts_and_clusters_by_switch() {
        let net = IrregularNetwork::generate(IrregularConfig::default(), 11);
        let o = cco(&net);
        assert_eq!(o.len(), 64);
        // Hosts of one switch are contiguous in CCO.
        let topo = net.topology();
        for s in 0..topo.num_switches() {
            let hosts = topo.switch_hosts(SwitchId(s));
            let mut positions: Vec<u32> = hosts.iter().map(|&h| o.position(h)).collect();
            positions.sort_unstable();
            for w in positions.windows(2) {
                assert_eq!(w[1], w[0] + 1, "switch {s} hosts not contiguous");
            }
        }
        // Root switch's hosts come first.
        assert_eq!(o.hosts()[0], topo.switch_hosts(net.routing().root())[0]);
    }

    #[test]
    fn cco_deterministic() {
        let n1 = IrregularNetwork::generate(IrregularConfig::default(), 4);
        let n2 = IrregularNetwork::generate(IrregularConfig::default(), 4);
        assert_eq!(cco(&n1), cco(&n2));
    }

    #[test]
    fn dimension_ordered_is_identity() {
        let c = CubeNetwork::new(2, 3);
        let o = dimension_ordered(&c);
        assert_eq!(o, Ordering::identity(8));
    }

    #[test]
    fn switch_grouped_groups() {
        let net = IrregularNetwork::generate(IrregularConfig::default(), 5);
        let o = switch_grouped(net.topology());
        assert_eq!(o.len(), 64);
        // Hosts 0..3 are on switch 0 by generation order.
        assert_eq!(
            &o.hosts()[0..4],
            &[HostId(0), HostId(1), HostId(2), HostId(3)]
        );
    }
}

/// A Partial Ordered Chain decomposition (after \[Kesavan-Bondalapati-Panda,
/// HPCA'97\], reconstructed from its defining property — see DESIGN.md):
/// the hosts are partitioned into chains such that each chain is a
/// contention-free ordering on its own, by greedily extending the current
/// chain through the CCO order and starting a new chain whenever adding the
/// next host would create a forward-chain conflict. The concatenation of
/// the chains is an ordering with *minimal* (not zero) contention — the
/// paper's §4.3.2 statement that no fully contention-free ordering exists
/// for up*/down* routed irregular networks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialOrderedChains {
    chains: Vec<Vec<HostId>>,
}

impl PartialOrderedChains {
    /// The chains, in construction order.
    pub fn chains(&self) -> &[Vec<HostId>] {
        &self.chains
    }

    /// Number of chains (1 would mean a fully contention-free ordering).
    pub fn len(&self) -> usize {
        self.chains.len()
    }

    /// True if there are no chains (empty network).
    pub fn is_empty(&self) -> bool {
        self.chains.is_empty()
    }

    /// Concatenates the chains into a single host ordering.
    pub fn into_ordering(self) -> Ordering {
        Ordering::from_order(self.chains.into_iter().flatten().collect())
    }
}

/// Builds the Partial Ordered Chain decomposition of an irregular network,
/// seeding the traversal with the CCO order.
pub fn partial_ordered_chains(net: &IrregularNetwork) -> PartialOrderedChains {
    let base = cco(net);
    let mut chains: Vec<Vec<HostId>> = Vec::new();
    let mut current: Vec<HostId> = Vec::new();
    for &h in base.hosts() {
        if chain_accepts(net, &current, h) {
            current.push(h);
        } else {
            chains.push(std::mem::take(&mut current));
            current.push(h);
        }
    }
    if !current.is_empty() {
        chains.push(current);
    }
    PartialOrderedChains { chains }
}

/// The POC ordering: concatenated partial ordered chains.
pub fn poc(net: &IrregularNetwork) -> Ordering {
    partial_ordered_chains(net).into_ordering()
}

/// Whether appending `h` keeps `chain` a contention-free ordering: checks
/// every new quadruple `a ≺ b ≼ c ≺ h` introduced by the extension.
fn chain_accepts(net: &IrregularNetwork, chain: &[HostId], h: HostId) -> bool {
    use crate::contention::share_channel;
    let n = chain.len();
    if n < 2 {
        return true;
    }
    // New quadruples have d = h; c ranges over the chain, (a, b) over
    // earlier pairs with b <= c.
    for pc in 0..n {
        let route_cd = net.route(chain[pc], h);
        for pa in 0..pc {
            for pb in pa + 1..=pc {
                let route_ab = net.route(chain[pa], chain[pb]);
                if share_channel(&route_ab, &route_cd) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod poc_tests {
    use super::*;
    use crate::contention::{is_contention_free, ordering_violations};
    use crate::irregular::IrregularConfig;

    fn small_net(seed: u64) -> IrregularNetwork {
        IrregularNetwork::generate(
            IrregularConfig {
                switches: 6,
                ports: 6,
                hosts: 18,
            },
            seed,
        )
    }

    #[test]
    fn chains_partition_all_hosts() {
        let net = small_net(0);
        let poc = partial_ordered_chains(&net);
        let mut all: Vec<HostId> = poc.chains().iter().flatten().copied().collect();
        assert_eq!(all.len(), 18);
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 18);
        assert!(!poc.is_empty());
    }

    #[test]
    fn every_chain_is_contention_free() {
        for seed in 0..4 {
            let net = small_net(seed);
            let poc = partial_ordered_chains(&net);
            for chain in poc.chains() {
                assert!(
                    is_contention_free(&net, chain),
                    "seed {seed}: chain {chain:?} contends"
                );
            }
        }
    }

    #[test]
    fn poc_ordering_no_worse_than_cco_on_average() {
        let mut poc_total = 0u64;
        let mut cco_total = 0u64;
        for seed in 0..4 {
            let net = small_net(seed);
            let p = poc(&net);
            poc_total += ordering_violations(&net, p.hosts(), u64::MAX).0;
            let c = cco(&net);
            cco_total += ordering_violations(&net, c.hosts(), u64::MAX).0;
        }
        assert!(
            poc_total <= cco_total,
            "POC {poc_total} violations should not exceed CCO {cco_total}"
        );
    }

    #[test]
    fn poc_deterministic() {
        let a = poc(&small_net(2));
        let b = poc(&small_net(2));
        assert_eq!(a, b);
    }

    #[test]
    fn single_switch_poc_is_one_chain() {
        let net = IrregularNetwork::generate(
            IrregularConfig {
                switches: 1,
                ports: 8,
                hosts: 6,
            },
            0,
        );
        let poc = partial_ordered_chains(&net);
        assert_eq!(poc.len(), 1, "a crossbar needs no chain splits");
    }
}
