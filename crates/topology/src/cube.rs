//! k-ary n-cube topologies with dimension-ordered routing.
//!
//! The paper notes (§4.3.2, §7) that contention-free k-binomial trees can be
//! built on k-ary n-cubes using the *dimension-ordered chain* of
//! McKinley et al. (TPDS'94). This module provides that substrate: every
//! processor has its own router (modelled as a one-host switch), routers are
//! connected in rings along each dimension, and routes are dimension-ordered
//! (lowest dimension corrected first, shorter ring direction, ties towards
//! increasing coordinates) — the deterministic, deadlock-free e-cube routing
//! of wormhole k-ary n-cubes.

use crate::graph::{ChannelId, HostId, SwitchId, Topology};
use crate::Network;

/// A k-ary n-cube: `arity^dims` processors.
#[derive(Debug, Clone, PartialEq)]
pub struct CubeNetwork {
    arity: u32,
    dims: u32,
    topo: Topology,
}

impl CubeNetwork {
    /// Builds the `arity`-ary `dims`-cube.
    ///
    /// # Panics
    ///
    /// Panics if `arity < 2`, `dims < 1`, or the node count overflows `u32`.
    pub fn new(arity: u32, dims: u32) -> Self {
        assert!(arity >= 2, "a ring dimension needs at least 2 nodes");
        assert!(dims >= 1, "need at least one dimension");
        let nodes = (0..dims).try_fold(1u32, |acc, _| acc.checked_mul(arity));
        let nodes = nodes.expect("cube too large for u32 node ids");
        let mut topo = Topology::new(nodes);
        for i in 0..nodes {
            topo.add_host(SwitchId(i));
        }
        // Ring links along each dimension. For arity 2 the "+1 mod 2"
        // neighbour pair would be added twice; add it only from coord 0.
        let mut stride = 1u32;
        for _ in 0..dims {
            for i in 0..nodes {
                let coord = (i / stride) % arity;
                if arity == 2 && coord != 0 {
                    continue;
                }
                let next_coord = (coord + 1) % arity;
                let j = i - coord * stride + next_coord * stride;
                topo.add_switch_link(SwitchId(i), SwitchId(j));
            }
            stride *= arity;
        }
        CubeNetwork { arity, dims, topo }
    }

    /// Ring size per dimension.
    pub fn arity(&self) -> u32 {
        self.arity
    }

    /// Number of dimensions.
    pub fn dims(&self) -> u32 {
        self.dims
    }

    /// Decomposes a node id into per-dimension coordinates (dimension 0
    /// first).
    pub fn coords(&self, h: HostId) -> Vec<u32> {
        let mut v = Vec::with_capacity(self.dims as usize);
        let mut rest = h.0;
        for _ in 0..self.dims {
            v.push(rest % self.arity);
            rest /= self.arity;
        }
        v
    }

    /// Recomposes coordinates into a node id.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate count or any coordinate is out of range.
    pub fn node_at(&self, coords: &[u32]) -> HostId {
        assert_eq!(coords.len(), self.dims as usize, "wrong dimensionality");
        let mut id = 0u32;
        let mut stride = 1u32;
        for &c in coords {
            assert!(c < self.arity, "coordinate {c} out of range");
            id += c * stride;
            stride *= self.arity;
        }
        HostId(id)
    }

    /// The next hop from `at` towards `to` under dimension-ordered routing,
    /// or `None` if `at == to`: correct the lowest differing dimension,
    /// moving around its ring in the shorter direction (ties towards
    /// increasing coordinates).
    pub fn next_hop(&self, at: u32, to: u32) -> Option<u32> {
        if at == to {
            return None;
        }
        let mut stride = 1u32;
        for _ in 0..self.dims {
            let ca = (at / stride) % self.arity;
            let ct = (to / stride) % self.arity;
            if ca != ct {
                let fwd = (ct + self.arity - ca) % self.arity; // +1 hops needed
                let bwd = (ca + self.arity - ct) % self.arity;
                let next_coord = if fwd <= bwd {
                    (ca + 1) % self.arity
                } else {
                    (ca + self.arity - 1) % self.arity
                };
                return Some(at - ca * stride + next_coord * stride);
            }
            stride *= self.arity;
        }
        unreachable!("at != to but all coordinates equal");
    }
}

impl Network for CubeNetwork {
    fn num_hosts(&self) -> u32 {
        self.topo.num_hosts()
    }

    fn num_channels(&self) -> u32 {
        self.topo.num_channels()
    }

    fn route(&self, from: HostId, to: HostId) -> Vec<ChannelId> {
        if from == to {
            return Vec::new();
        }
        let mut route = vec![self.topo.injection_channel(from)];
        let mut at = from.0;
        while let Some(next) = self.next_hop(at, to.0) {
            let c = self
                .topo
                .switch_channel(SwitchId(at), SwitchId(next))
                .expect("adjacent cube nodes must be linked");
            route.push(c);
            at = next;
        }
        route.push(self.topo.ejection_channel(to));
        route
    }

    fn topology(&self) -> &Topology {
        &self.topo
    }

    fn describe(&self) -> String {
        format!(
            "{}-ary {}-cube: {} processors",
            self.arity,
            self.dims,
            self.num_hosts()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypercube_shape() {
        let c = CubeNetwork::new(2, 3);
        assert_eq!(c.num_hosts(), 8);
        // 3 links per node / 2 = 12 switch links + 8 host links.
        assert_eq!(c.topology().num_links(), 12 + 8);
        assert!(c.topology().switches_connected());
    }

    #[test]
    fn torus_shape() {
        let c = CubeNetwork::new(4, 2);
        assert_eq!(c.num_hosts(), 16);
        // 2 rings of 4 per row/column: 2 * 16 switch links.
        assert_eq!(c.topology().num_links(), 32 + 16);
    }

    #[test]
    fn coords_roundtrip() {
        let c = CubeNetwork::new(3, 3);
        for i in 0..27 {
            let h = HostId(i);
            assert_eq!(c.node_at(&c.coords(h)), h);
        }
        assert_eq!(c.coords(HostId(5)), vec![2, 1, 0]); // 5 = 2 + 1*3
    }

    #[test]
    fn routes_correct_lowest_dimension_first() {
        let c = CubeNetwork::new(4, 2);
        // From (0,0) to (2,1): fix dim 0 first (0->1->2), then dim 1.
        let from = c.node_at(&[0, 0]);
        let to = c.node_at(&[2, 1]);
        let hops: Vec<u32> = {
            let mut v = vec![from.0];
            let mut at = from.0;
            while let Some(n) = c.next_hop(at, to.0) {
                v.push(n);
                at = n;
            }
            v
        };
        assert_eq!(
            hops,
            vec![
                c.node_at(&[0, 0]).0,
                c.node_at(&[1, 0]).0,
                c.node_at(&[2, 0]).0,
                c.node_at(&[2, 1]).0
            ]
        );
    }

    #[test]
    fn shorter_ring_direction_used() {
        let c = CubeNetwork::new(5, 1);
        // 0 -> 4 is one hop backwards around the ring.
        assert_eq!(c.next_hop(0, 4), Some(4));
        // 0 -> 2 goes forward.
        assert_eq!(c.next_hop(0, 2), Some(1));
        // Tie at distance 2 vs 2 in a 4-ring goes forward.
        let c4 = CubeNetwork::new(4, 1);
        assert_eq!(c4.next_hop(0, 2), Some(1));
    }

    #[test]
    fn all_routes_wellformed() {
        let c = CubeNetwork::new(3, 2);
        for a in 0..9 {
            for b in 0..9 {
                let r = c.route(HostId(a), HostId(b));
                if a == b {
                    assert!(r.is_empty());
                    continue;
                }
                assert_eq!(r[0], c.topology().injection_channel(HostId(a)));
                assert_eq!(*r.last().unwrap(), c.topology().ejection_channel(HostId(b)));
                for w in r.windows(2) {
                    let (_, x) = c.topology().channel_endpoints(w[0]);
                    let (y, _) = c.topology().channel_endpoints(w[1]);
                    assert_eq!(x, y, "route discontinuity {a}->{b}");
                }
            }
        }
    }

    #[test]
    fn hypercube_route_length_is_hamming_distance() {
        let c = CubeNetwork::new(2, 4);
        for a in 0..16u32 {
            for b in 0..16u32 {
                if a == b {
                    continue;
                }
                let dist = (a ^ b).count_ones() as usize;
                assert_eq!(c.route(HostId(a), HostId(b)).len(), dist + 2);
            }
        }
    }

    #[test]
    fn deterministic_routes() {
        let c = CubeNetwork::new(3, 2);
        assert_eq!(c.route(HostId(1), HostId(7)), c.route(HostId(1), HostId(7)));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn arity_one_panics() {
        CubeNetwork::new(1, 2);
    }
}

#[cfg(test)]
mod distance_tests {
    use super::*;

    /// Torus routes are minimal: length equals the sum of per-dimension
    /// minimal ring distances (plus injection/ejection).
    #[test]
    fn torus_routes_are_minimal() {
        for (arity, dims) in [(4u32, 2u32), (5, 2), (3, 3)] {
            let c = CubeNetwork::new(arity, dims);
            let n = c.num_hosts();
            for a in 0..n {
                for b in 0..n {
                    if a == b {
                        continue;
                    }
                    let ca = c.coords(HostId(a));
                    let cb = c.coords(HostId(b));
                    let dist: u32 = ca
                        .iter()
                        .zip(&cb)
                        .map(|(&x, &y)| {
                            let fwd = (y + arity - x) % arity;
                            let bwd = (x + arity - y) % arity;
                            fwd.min(bwd)
                        })
                        .sum();
                    assert_eq!(
                        c.route(HostId(a), HostId(b)).len(),
                        dist as usize + 2,
                        "{arity}-ary {dims}-cube {a}->{b}"
                    );
                }
            }
        }
    }
}
