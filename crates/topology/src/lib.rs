//! # optimcast-topology
//!
//! Network substrates for the ICPP'97 multicast study: the paper evaluates
//! k-binomial multicast trees on a **64-processor irregular switch-based
//! network built from 16 eight-port switches** with up\*/down\* routing, using
//! the Chain Concatenated Ordering (CCO) as the base node ordering. This
//! crate builds all of that, plus the regular k-ary n-cube substrate the
//! paper names as the other application domain (dimension-ordered chains).
//!
//! * [`graph`] — hosts, switches, links, and directed channels;
//! * [`irregular`] — seeded random irregular switch networks with the
//!   paper's shape (16 switches × 8 ports, 64 hosts);
//! * [`updown`] — up\*/down\* routing on irregular networks;
//! * [`cube`] — k-ary n-cube topologies with dimension-ordered routing;
//! * [`ordering`] — CCO, dimension-ordered, and random node orderings;
//! * [`contention`] — link-sharing analysis between paths, the
//!   contention-free-ordering test of McKinley et al. (TPDS'94), and
//!   per-step schedule contention counts.
//!
//! The central abstraction is the [`Network`] trait: anything that can route
//! a packet between two hosts as a sequence of directed [`graph::ChannelId`]s.

pub mod contention;
pub mod cube;
pub mod fabric;
pub mod graph;
pub mod irregular;
pub mod mesh;
pub mod ordering;
pub mod updown;

use graph::{ChannelId, HostId, Topology};

/// A routed network: hosts, directed channels, and a deterministic route
/// between any pair of hosts.
pub trait Network {
    /// Number of hosts (processors) in the network.
    fn num_hosts(&self) -> u32;

    /// Total number of directed channels (for occupancy vectors).
    fn num_channels(&self) -> u32;

    /// The deterministic route from `from` to `to` as directed channels,
    /// including the source injection and destination ejection channels.
    /// Empty iff `from == to`.
    fn route(&self, from: HostId, to: HostId) -> Vec<ChannelId>;

    /// The underlying physical topology.
    fn topology(&self) -> &Topology;

    /// Short human-readable description.
    fn describe(&self) -> String;

    /// Routes for a batch of host pairs, CSR-packed in pair order: the
    /// route of `pairs[i]` is `channels[offsets[i]..offsets[i + 1]]`.
    ///
    /// The default delegates to [`Self::route`] per pair; substrates whose
    /// routing amortizes over a shared source (up\*/down\* single-source
    /// passes) override this so one multicast job's route build is O(n)
    /// passes instead of O(n) independent searches. Overrides must produce
    /// byte-identical channels to the per-pair default.
    fn bulk_routes(&self, pairs: &[(HostId, HostId)]) -> (Vec<u32>, Vec<ChannelId>) {
        let mut offsets = Vec::with_capacity(pairs.len() + 1);
        offsets.push(0u32);
        let mut channels = Vec::new();
        for &(from, to) in pairs {
            channels.extend(self.route(from, to));
            offsets.push(channels.len() as u32);
        }
        (offsets, channels)
    }
}

impl<N: Network + ?Sized> Network for &N {
    fn num_hosts(&self) -> u32 {
        (**self).num_hosts()
    }
    fn num_channels(&self) -> u32 {
        (**self).num_channels()
    }
    fn route(&self, from: HostId, to: HostId) -> Vec<ChannelId> {
        (**self).route(from, to)
    }
    fn topology(&self) -> &Topology {
        (**self).topology()
    }
    fn describe(&self) -> String {
        (**self).describe()
    }
    fn bulk_routes(&self, pairs: &[(HostId, HostId)]) -> (Vec<u32>, Vec<ChannelId>) {
        (**self).bulk_routes(pairs)
    }
}

pub use cube::CubeNetwork;
pub use fabric::{FabricConfig, FabricNetwork};
pub use graph::{Endpoint, LinkId, SwitchId};
pub use irregular::{IrregularConfig, IrregularNetwork};
pub use mesh::MeshNetwork;
pub use ordering::Ordering;
