//! up\*/down\* routing for irregular switch networks.
//!
//! up\*/down\* (Autonet-style) routing is the standard deadlock-free routing
//! for irregular switch-based networks, and the routing the paper's
//! evaluation (and its CCO ordering, from \[Kesavan-Bondalapati-Panda,
//! HPCA'97\]) assumes. A breadth-first spanning tree is built from a root
//! switch; every switch–switch channel is oriented *up* (towards the root:
//! lower BFS level, ties broken by lower switch id) or *down*. A legal route
//! is zero or more up channels followed by zero or more down channels —
//! acyclic by construction, hence deadlock-free.
//!
//! Routes are computed *on demand*: a [`SingleSourcePaths`] pass runs one
//! deterministic BFS over `(switch, phase)` states from a source switch and
//! can then extract the shortest legal path to any destination. The former
//! eager all-pairs table was O(S²·path-len) memory — hopeless at mega scale
//! (a 65,536-host fat-tree has 5,120 switches) — while a multicast job only
//! ever needs the O(n) routes of its tree edges. [`bulk_host_routes`] groups
//! those edges by source switch so each distinct source pays for exactly one
//! BFS pass. Determinism is unchanged: the per-source pass expands
//! neighbours in link insertion order and breaks phase ties exactly as the
//! old table builder did, so extracted paths are byte-identical.
//!
//! [`bulk_host_routes`]: UpDownRouting::bulk_host_routes

use crate::graph::{ChannelId, Endpoint, HostId, LinkId, SwitchId, Topology};
use std::collections::VecDeque;

/// Precomputed up\*/down\* orientation state for one topology (root, BFS
/// levels, spanning tree in CSR form). Paths are derived lazily.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpDownRouting {
    root: SwitchId,
    level: Vec<u32>,
    /// BFS spanning-tree parent per switch (`None` for the root).
    parent: Vec<Option<(LinkId, SwitchId)>>,
    /// CSR offsets into `child_dat`: children of `s` are
    /// `child_dat[child_off[s]..child_off[s + 1]]`, in discovery order.
    child_off: Vec<u32>,
    child_dat: Vec<SwitchId>,
}

/// One single-source shortest-legal-path pass: the predecessor forest of a
/// BFS over `(switch, phase)` states, phase 0 = may still ascend, phase 1 =
/// descend only. Extract paths with [`Self::path_to`] / [`Self::extend_path_to`].
pub struct SingleSourcePaths {
    from: SwitchId,
    /// `pred[state] = (prev_state, channel)`; `state = switch * 2 + phase`.
    pred: Vec<Option<(u32, ChannelId)>>,
    seen: Vec<bool>,
}

impl UpDownRouting {
    /// Builds routing with the conventional root choice: the
    /// highest-connectivity switch (most switch links), ties to the lowest
    /// id.
    ///
    /// # Panics
    ///
    /// Panics if the topology has no switches or its switch graph is
    /// disconnected (no legal route would exist between some pairs).
    pub fn new(topo: &Topology) -> Self {
        let root = (0..topo.num_switches())
            .map(SwitchId)
            .max_by_key(|&s| (topo.switch_links(s).len(), std::cmp::Reverse(s.0)))
            .expect("topology has no switches");
        Self::with_root(topo, root)
    }

    /// Builds routing rooted at a specific switch.
    ///
    /// # Panics
    ///
    /// Panics if the switch graph is disconnected or `root` is out of range.
    pub fn with_root(topo: &Topology, root: SwitchId) -> Self {
        let s = topo.num_switches() as usize;
        assert!(root.index() < s, "root switch out of range");
        assert!(
            topo.switches_connected(),
            "up*/down* routing requires a connected switch graph"
        );

        // BFS spanning tree and levels. Children of each parent are
        // discovered consecutively when the parent is popped, so `pairs`
        // comes out grouped by parent in BFS order; the stable counting
        // sort below re-keys the groups by switch id without disturbing
        // each parent's discovery order.
        let mut level = vec![u32::MAX; s];
        let mut parent = vec![None; s];
        let mut pairs: Vec<(SwitchId, SwitchId)> = Vec::new();
        let mut queue = VecDeque::new();
        level[root.index()] = 0;
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            let (links, peers) = topo.switch_peers(u);
            for (&l, &nb) in links.iter().zip(peers) {
                if level[nb.index()] == u32::MAX {
                    level[nb.index()] = level[u.index()] + 1;
                    parent[nb.index()] = Some((l, u));
                    pairs.push((u, nb));
                    queue.push_back(nb);
                }
            }
        }

        let mut child_off = vec![0u32; s + 1];
        for &(p, _) in &pairs {
            child_off[p.index() + 1] += 1;
        }
        for i in 0..s {
            child_off[i + 1] += child_off[i];
        }
        let mut cursor: Vec<u32> = child_off[..s].to_vec();
        let mut child_dat = vec![SwitchId(0); pairs.len()];
        for &(p, c) in &pairs {
            let i = cursor[p.index()] as usize;
            cursor[p.index()] += 1;
            child_dat[i] = c;
        }

        UpDownRouting {
            root,
            level,
            parent,
            child_off,
            child_dat,
        }
    }

    /// The root switch of the up\*/down\* orientation.
    pub fn root(&self) -> SwitchId {
        self.root
    }

    /// BFS level (distance from root) of a switch.
    pub fn level(&self, s: SwitchId) -> u32 {
        self.level[s.index()]
    }

    /// BFS spanning-tree parent of a switch (`None` for the root).
    pub fn tree_parent(&self, s: SwitchId) -> Option<(LinkId, SwitchId)> {
        self.parent[s.index()]
    }

    /// BFS spanning-tree children of a switch, in discovery order.
    pub fn tree_children(&self, s: SwitchId) -> &[SwitchId] {
        &self.child_dat[self.child_off[s.index()] as usize..self.child_off[s.index() + 1] as usize]
    }

    /// Whether a switch–switch channel points *up* (towards the root).
    ///
    /// # Panics
    ///
    /// Panics if the channel touches a host (host links have no up/down
    /// orientation).
    pub fn is_up(&self, topo: &Topology, c: ChannelId) -> bool {
        let (from, to) = topo.channel_endpoints(c);
        match (from, to) {
            (Endpoint::Switch(x), Endpoint::Switch(y)) => {
                (self.level(y), y.0) < (self.level(x), x.0)
            }
            _ => panic!("up/down orientation is defined only on switch links"),
        }
    }

    /// Runs one shortest-legal-path BFS from `from` over `(switch, phase)`
    /// states: phase 0 may still ascend, phase 1 may only descend.
    /// Deterministic: neighbours expanded in link insertion order.
    pub fn single_source(&self, topo: &Topology, from: SwitchId) -> SingleSourcePaths {
        let s = topo.num_switches() as usize;
        let mut pred: Vec<Option<(u32, ChannelId)>> = vec![None; s * 2];
        let mut seen = vec![false; s * 2];
        let start = from.index() * 2;
        seen[start] = true;
        let mut queue = VecDeque::new();
        queue.push_back(start as u32);
        while let Some(state) = queue.pop_front() {
            let sw = SwitchId(state / 2);
            let phase = state % 2;
            let (links, peers) = topo.switch_peers(sw);
            for (&l, &nb) in links.iter().zip(peers) {
                let c = self.directed_channel(topo, l, sw);
                let up = self.is_up(topo, c);
                let next_phase = if up {
                    if phase == 1 {
                        continue; // up after down is illegal
                    }
                    0
                } else {
                    1
                };
                let next = nb.index() * 2 + next_phase as usize;
                if !seen[next] {
                    seen[next] = true;
                    pred[next] = Some((state, c));
                    queue.push_back(next as u32);
                }
            }
        }
        SingleSourcePaths { from, pred, seen }
    }

    /// Shortest legal path between two switches, computed on demand (empty
    /// iff `from == to`). One BFS pass per call — batch queries that share a
    /// source through [`Self::single_source`] or [`Self::bulk_host_routes`].
    pub fn switch_path(&self, topo: &Topology, from: SwitchId, to: SwitchId) -> Vec<ChannelId> {
        if from == to {
            return Vec::new();
        }
        self.single_source(topo, from).path_to(to)
    }

    /// Full host-to-host route: injection channel, switch path, ejection
    /// channel. Empty iff `from == to`.
    pub fn host_route(&self, topo: &Topology, from: HostId, to: HostId) -> Vec<ChannelId> {
        if from == to {
            return Vec::new();
        }
        let sf = topo.host_switch(from);
        let st = topo.host_switch(to);
        let mut route = Vec::new();
        route.push(topo.injection_channel(from));
        if sf != st {
            self.single_source(topo, sf).extend_path_to(st, &mut route);
        }
        route.push(topo.ejection_channel(to));
        route
    }

    /// Routes for a batch of host pairs, CSR-packed in pair order: the
    /// route of `pairs[i]` is `channels[offsets[i]..offsets[i + 1]]`.
    ///
    /// Pairs are grouped by source switch so each distinct source switch
    /// runs exactly one [`Self::single_source`] pass — for a multicast tree
    /// bound to n hosts on S switches this is O(min(n, S)) passes instead
    /// of the former all-pairs O(S²) table. Each extracted route is
    /// byte-identical to the corresponding [`Self::host_route`] call.
    pub fn bulk_host_routes(
        &self,
        topo: &Topology,
        pairs: &[(HostId, HostId)],
    ) -> (Vec<u32>, Vec<ChannelId>) {
        let s = topo.num_switches() as usize;
        // Group pair indices by source switch, first-appearance order.
        let mut group_of: Vec<u32> = vec![u32::MAX; s];
        let mut groups: Vec<(SwitchId, Vec<u32>)> = Vec::new();
        for (i, &(from, to)) in pairs.iter().enumerate() {
            if from == to {
                continue; // empty route, nothing to compute
            }
            let sf = topo.host_switch(from);
            let g = group_of[sf.index()];
            if g == u32::MAX {
                group_of[sf.index()] = groups.len() as u32;
                groups.push((sf, vec![i as u32]));
            } else {
                groups[g as usize].1.push(i as u32);
            }
        }

        let mut routes: Vec<Vec<ChannelId>> = vec![Vec::new(); pairs.len()];
        for (sf, members) in &groups {
            let sssp = self.single_source(topo, *sf);
            for &i in members {
                let (from, to) = pairs[i as usize];
                let st = topo.host_switch(to);
                let route = &mut routes[i as usize];
                route.push(topo.injection_channel(from));
                if *sf != st {
                    sssp.extend_path_to(st, route);
                }
                route.push(topo.ejection_channel(to));
            }
        }

        let mut offsets = Vec::with_capacity(pairs.len() + 1);
        offsets.push(0u32);
        let total: usize = routes.iter().map(Vec::len).sum();
        let mut channels = Vec::with_capacity(total);
        for route in &routes {
            channels.extend_from_slice(route);
            offsets.push(channels.len() as u32);
        }
        (offsets, channels)
    }

    /// The channel of link `l` leaving switch `from`.
    fn directed_channel(&self, topo: &Topology, l: LinkId, from: SwitchId) -> ChannelId {
        let link = topo.link(l);
        match (link.a, link.b) {
            (Endpoint::Switch(x), _) if x == from => l.forward(),
            (_, Endpoint::Switch(y)) if y == from => l.backward(),
            _ => unreachable!("link {l:?} does not touch switch {from}"),
        }
    }

    /// Checks that a switch-level path is legal up\*/down\*: monotone
    /// phase (no up channel after a down channel).
    pub fn is_legal_path(&self, topo: &Topology, path: &[ChannelId]) -> bool {
        let mut descending = false;
        for &c in path {
            if self.is_up(topo, c) {
                if descending {
                    return false;
                }
            } else {
                descending = true;
            }
        }
        true
    }
}

impl SingleSourcePaths {
    /// The source switch of this pass.
    pub fn from(&self) -> SwitchId {
        self.from
    }

    /// The shortest legal path from the source to `to` (empty iff
    /// `to == from`).
    pub fn path_to(&self, to: SwitchId) -> Vec<ChannelId> {
        let mut path = Vec::new();
        if to != self.from {
            self.extend_path_to(to, &mut path);
        }
        path
    }

    /// Appends the shortest legal path from the source to `to` onto `out`.
    ///
    /// # Panics
    ///
    /// Panics if no legal path exists (disconnected switch graph) or
    /// `to == from` (there is no zero-length terminal state to select).
    pub fn extend_path_to(&self, to: SwitchId, out: &mut Vec<ChannelId>) {
        let from = self.from;
        let to_idx = to.index();
        // Prefer the earliest-found terminal state (BFS order makes either
        // phase shortest; tie-break to phase 0).
        let cand = [to_idx * 2, to_idx * 2 + 1];
        let goal = cand
            .iter()
            .copied()
            .filter(|&st| self.seen[st] && self.pred[st].is_some())
            .min_by_key(|&st| self.path_len(st))
            .unwrap_or_else(|| panic!("no legal up*/down* path from s{from} to s{to}"));
        let start = out.len();
        let mut cur = goal;
        while let Some((prev, c)) = self.pred[cur] {
            out.push(c);
            cur = prev as usize;
        }
        out[start..].reverse();
    }

    fn path_len(&self, mut state: usize) -> usize {
        let mut n = 0;
        while let Some((prev, _)) = self.pred[state] {
            n += 1;
            state = prev as usize;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Line of three switches: s0 - s1 - s2, one host each.
    fn line() -> Topology {
        let mut t = Topology::new(3);
        for i in 0..3 {
            t.add_host(SwitchId(i));
        }
        t.add_switch_link(SwitchId(0), SwitchId(1));
        t.add_switch_link(SwitchId(1), SwitchId(2));
        t
    }

    /// A cycle of four switches (gives up*/down* a non-tree link).
    fn ring4() -> Topology {
        let mut t = Topology::new(4);
        for i in 0..4 {
            t.add_host(SwitchId(i));
        }
        t.add_switch_link(SwitchId(0), SwitchId(1));
        t.add_switch_link(SwitchId(1), SwitchId(2));
        t.add_switch_link(SwitchId(2), SwitchId(3));
        t.add_switch_link(SwitchId(3), SwitchId(0));
        t
    }

    #[test]
    fn root_is_highest_degree_lowest_id() {
        let t = line();
        let r = UpDownRouting::new(&t);
        assert_eq!(r.root(), SwitchId(1)); // degree 2
        let t = ring4();
        let r = UpDownRouting::new(&t);
        assert_eq!(r.root(), SwitchId(0)); // all degree 2, lowest id
    }

    #[test]
    fn levels_and_tree() {
        let t = line();
        let r = UpDownRouting::with_root(&t, SwitchId(0));
        assert_eq!(r.level(SwitchId(0)), 0);
        assert_eq!(r.level(SwitchId(1)), 1);
        assert_eq!(r.level(SwitchId(2)), 2);
        assert_eq!(r.tree_parent(SwitchId(0)), None);
        assert_eq!(r.tree_parent(SwitchId(2)).unwrap().1, SwitchId(1));
        assert_eq!(r.tree_children(SwitchId(0)), &[SwitchId(1)]);
    }

    #[test]
    fn all_paths_legal_and_shortest_on_ring() {
        let t = ring4();
        let r = UpDownRouting::with_root(&t, SwitchId(0));
        for a in 0..4u32 {
            for b in 0..4u32 {
                if a == b {
                    assert!(r.switch_path(&t, SwitchId(a), SwitchId(b)).is_empty());
                    continue;
                }
                let p = r.switch_path(&t, SwitchId(a), SwitchId(b));
                assert!(!p.is_empty());
                assert!(r.is_legal_path(&t, &p), "{a}->{b} illegal");
                // Path endpoints line up.
                let (first_src, _) = t.channel_endpoints(p[0]);
                assert_eq!(first_src, Endpoint::Switch(SwitchId(a)));
                let (_, last_dst) = t.channel_endpoints(*p.last().unwrap());
                assert_eq!(last_dst, Endpoint::Switch(SwitchId(b)));
                // Contiguity.
                for w in p.windows(2) {
                    let (_, x) = t.channel_endpoints(w[0]);
                    let (y, _) = t.channel_endpoints(w[1]);
                    assert_eq!(x, y);
                }
            }
        }
        // On a 4-ring rooted at 0 (levels 0,1,1,2) the shortest legal
        // s1 -> s3 path is at most 2 hops (e.g. up to s0, down to s3).
        let p13 = r.switch_path(&t, SwitchId(1), SwitchId(3));
        assert!(p13.len() <= 2);
    }

    #[test]
    fn single_source_matches_per_pair_queries() {
        let t = ring4();
        let r = UpDownRouting::with_root(&t, SwitchId(0));
        for a in 0..4u32 {
            let sssp = r.single_source(&t, SwitchId(a));
            for b in 0..4u32 {
                if a == b {
                    continue;
                }
                assert_eq!(
                    sssp.path_to(SwitchId(b)),
                    r.switch_path(&t, SwitchId(a), SwitchId(b)),
                    "{a}->{b}"
                );
            }
        }
    }

    #[test]
    fn bulk_routes_match_per_pair_host_routes() {
        let t = ring4();
        let r = UpDownRouting::with_root(&t, SwitchId(0));
        let mut pairs = Vec::new();
        for a in 0..4u32 {
            for b in 0..4u32 {
                pairs.push((HostId(a), HostId(b)));
            }
        }
        let (off, dat) = r.bulk_host_routes(&t, &pairs);
        assert_eq!(off.len(), pairs.len() + 1);
        for (i, &(a, b)) in pairs.iter().enumerate() {
            let got = &dat[off[i] as usize..off[i + 1] as usize];
            assert_eq!(got, r.host_route(&t, a, b).as_slice(), "{a}->{b}");
        }
    }

    #[test]
    fn up_after_down_rejected() {
        let t = ring4();
        let r = UpDownRouting::with_root(&t, SwitchId(0));
        // Construct an illegal path: down from 0 to 1, then up 1 to 0.
        let down = t.switch_channel(SwitchId(0), SwitchId(1)).unwrap();
        let up = t.switch_channel(SwitchId(1), SwitchId(0)).unwrap();
        assert!(!r.is_up(&t, down));
        assert!(r.is_up(&t, up));
        assert!(!r.is_legal_path(&t, &[down, up]));
        assert!(r.is_legal_path(&t, &[up, down]));
    }

    #[test]
    fn host_route_has_injection_and_ejection() {
        let t = line();
        let r = UpDownRouting::with_root(&t, SwitchId(0));
        let route = r.host_route(&t, HostId(0), HostId(2));
        assert_eq!(route[0], t.injection_channel(HostId(0)));
        assert_eq!(*route.last().unwrap(), t.ejection_channel(HostId(2)));
        assert_eq!(route.len(), 4); // inject + 2 switch hops + eject
        assert!(r.host_route(&t, HostId(1), HostId(1)).is_empty());
    }

    #[test]
    fn same_switch_hosts_route_through_switch_only() {
        let mut t = Topology::new(1);
        let a = t.add_host(SwitchId(0));
        let b = t.add_host(SwitchId(0));
        let r = UpDownRouting::new(&t);
        let route = r.host_route(&t, a, b);
        assert_eq!(route.len(), 2);
        assert_eq!(route[0], t.injection_channel(a));
        assert_eq!(route[1], t.ejection_channel(b));
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_panics() {
        let mut t = Topology::new(2);
        t.add_host(SwitchId(0));
        UpDownRouting::new(&t);
    }

    #[test]
    fn routes_are_deterministic() {
        let t = ring4();
        let r1 = UpDownRouting::with_root(&t, SwitchId(0));
        let r2 = UpDownRouting::with_root(&t, SwitchId(0));
        assert_eq!(r1, r2);
        for a in 0..4u32 {
            for b in 0..4u32 {
                assert_eq!(
                    r1.switch_path(&t, SwitchId(a), SwitchId(b)),
                    r2.switch_path(&t, SwitchId(a), SwitchId(b)),
                );
            }
        }
    }
}

#[cfg(test)]
mod distance_tests {
    use super::*;
    use crate::irregular::{IrregularConfig, IrregularNetwork};
    use crate::Network;
    use std::collections::VecDeque;

    /// Unrestricted BFS distance between switches (ignoring up/down rules).
    fn bfs_dist(topo: &Topology, from: SwitchId, to: SwitchId) -> u32 {
        let mut dist = vec![u32::MAX; topo.num_switches() as usize];
        dist[from.index()] = 0;
        let mut q = VecDeque::from([from]);
        while let Some(u) = q.pop_front() {
            if u == to {
                return dist[u.index()];
            }
            for (_, nb) in topo.switch_neighbors(u) {
                if dist[nb.index()] == u32::MAX {
                    dist[nb.index()] = dist[u.index()] + 1;
                    q.push_back(nb);
                }
            }
        }
        dist[to.index()]
    }

    /// Legal up*/down* paths are at least as long as the unrestricted
    /// shortest path, and on the paper-size networks the detour stays small
    /// (bounded by twice the BFS-tree depth).
    #[test]
    fn legal_paths_vs_unrestricted_shortest() {
        for seed in 0..4u64 {
            let net = IrregularNetwork::generate(IrregularConfig::default(), seed);
            let topo = net.topology();
            let routing = net.routing();
            let max_level = (0..topo.num_switches())
                .map(|s| routing.level(SwitchId(s)))
                .max()
                .unwrap();
            for a in 0..topo.num_switches() {
                let sssp = routing.single_source(topo, SwitchId(a));
                for b in 0..topo.num_switches() {
                    if a == b {
                        continue;
                    }
                    let legal = sssp.path_to(SwitchId(b)).len() as u32;
                    let free = bfs_dist(topo, SwitchId(a), SwitchId(b));
                    assert!(
                        legal >= free,
                        "seed {seed}: {a}->{b} legal {legal} < {free}"
                    );
                    assert!(
                        legal <= 2 * max_level.max(1),
                        "seed {seed}: {a}->{b} legal {legal} exceeds tree bound"
                    );
                }
            }
        }
    }

    /// On a pure tree topology (no extra links) the legal path *is* the
    /// unique tree path, hence exactly the unrestricted shortest.
    #[test]
    fn tree_topologies_route_optimally() {
        let mut topo = Topology::new(7);
        // Balanced binary tree of switches.
        for (parent, child) in [(0u32, 1u32), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)] {
            topo.add_switch_link(SwitchId(parent), SwitchId(child));
        }
        let routing = UpDownRouting::with_root(&topo, SwitchId(0));
        for a in 0..7 {
            for b in 0..7 {
                if a == b {
                    continue;
                }
                let legal = routing.switch_path(&topo, SwitchId(a), SwitchId(b)).len() as u32;
                let free = bfs_dist(&topo, SwitchId(a), SwitchId(b));
                assert_eq!(legal, free, "{a}->{b}");
            }
        }
    }
}
