//! Physical topology: hosts, switches, links, and directed channels.
//!
//! A topology is a set of *switches* interconnected by bidirectional *links*,
//! with each *host* (processor) attached to exactly one switch through its
//! own access link. Every bidirectional link is modelled as two directed
//! [`ChannelId`]s — wormhole contention is per *directed* channel: two
//! messages crossing the same physical cable in opposite directions do not
//! contend.

use std::fmt;
use std::sync::OnceLock;

/// A processor (host) identifier, dense `0..num_hosts`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct HostId(pub u32);

impl HostId {
    /// Index into host-sized arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// A switch identifier, dense `0..num_switches`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SwitchId(pub u32);

impl SwitchId {
    /// Index into switch-sized arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A bidirectional link identifier, dense `0..num_links`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

impl LinkId {
    /// Index into link-sized arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The directed channel from endpoint `a` to endpoint `b` of this link.
    #[inline]
    pub fn forward(self) -> ChannelId {
        ChannelId(self.0 * 2)
    }

    /// The directed channel from endpoint `b` to endpoint `a` of this link.
    #[inline]
    pub fn backward(self) -> ChannelId {
        ChannelId(self.0 * 2 + 1)
    }
}

/// A directed channel: one direction of a bidirectional link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(pub u32);

impl ChannelId {
    /// Index into channel-sized arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The link this channel belongs to.
    #[inline]
    pub fn link(self) -> LinkId {
        LinkId(self.0 / 2)
    }

    /// True for the `a → b` direction of the link.
    #[inline]
    pub fn is_forward(self) -> bool {
        self.0.is_multiple_of(2)
    }

    /// The opposite direction of the same link.
    #[inline]
    pub fn reverse(self) -> ChannelId {
        ChannelId(self.0 ^ 1)
    }
}

/// One end of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// A processor.
    Host(HostId),
    /// A switch.
    Switch(SwitchId),
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Host(h) => write!(f, "{h}"),
            Endpoint::Switch(s) => write!(f, "{s}"),
        }
    }
}

/// A bidirectional link between two endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    /// First endpoint (the `forward` channel's source).
    pub a: Endpoint,
    /// Second endpoint (the `forward` channel's destination).
    pub b: Endpoint,
}

/// Per-switch adjacency in compressed-sparse-row form, derived lazily from
/// the flat link/host tables. At mega scale (thousands of switches, tens of
/// thousands of hosts) the former nested `Vec<Vec<_>>` layout cost one heap
/// allocation per switch twice over; the CSR arrays are four allocations
/// total and iterate cache-linearly.
#[derive(Debug)]
struct CsrAdj {
    /// `link_off[s]..link_off[s + 1]` indexes `link_dat`/`link_peer`.
    link_off: Vec<u32>,
    /// Incident switch–switch links, per switch in insertion order.
    link_dat: Vec<LinkId>,
    /// Parallel to `link_dat`: the neighbouring switch across that link.
    link_peer: Vec<SwitchId>,
    /// `host_off[s]..host_off[s + 1]` indexes `host_dat`.
    host_off: Vec<u32>,
    /// Attached hosts, per switch in attachment order.
    host_dat: Vec<HostId>,
}

/// A switch-based network topology under construction or in use.
///
/// Invariants maintained by the builder methods:
/// * every host is attached to exactly one switch via its own access link;
/// * switch–switch links connect distinct switches;
/// * port counts are tracked per switch (hosts + switch links).
///
/// Adjacency queries ([`Self::switch_links`], [`Self::switch_hosts`],
/// [`Self::switch_peers`]) are served from a CSR index built on first use
/// and invalidated by the mutating builder methods; identity (equality,
/// hashing of the link tables) depends only on the flat link/host tables.
pub struct Topology {
    num_switches: u32,
    links: Vec<Link>,
    /// Per host: the switch it hangs off.
    host_switch: Vec<SwitchId>,
    /// Per host: its access link (host is endpoint `a`).
    host_link: Vec<LinkId>,
    /// Lazy CSR adjacency over `links`/`host_switch`.
    adj: OnceLock<CsrAdj>,
}

impl fmt::Debug for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Topology")
            .field("num_switches", &self.num_switches)
            .field("links", &self.links)
            .field("host_switch", &self.host_switch)
            .field("host_link", &self.host_link)
            .finish()
    }
}

impl Clone for Topology {
    fn clone(&self) -> Self {
        // The CSR cache is derived state; the clone rebuilds it on demand.
        Topology {
            num_switches: self.num_switches,
            links: self.links.clone(),
            host_switch: self.host_switch.clone(),
            host_link: self.host_link.clone(),
            adj: OnceLock::new(),
        }
    }
}

impl PartialEq for Topology {
    fn eq(&self, other: &Self) -> bool {
        self.num_switches == other.num_switches
            && self.links == other.links
            && self.host_switch == other.host_switch
            && self.host_link == other.host_link
    }
}

impl Eq for Topology {}

impl Topology {
    /// An empty topology with `num_switches` switches and no hosts or links.
    pub fn new(num_switches: u32) -> Self {
        Topology {
            num_switches,
            links: Vec::new(),
            host_switch: Vec::new(),
            host_link: Vec::new(),
            adj: OnceLock::new(),
        }
    }

    /// The CSR adjacency, built on first use. Construction is a counting
    /// sort over the link table, so per-switch entries come out in link
    /// insertion order — exactly the order the former nested-Vec layout
    /// maintained incrementally.
    fn adj(&self) -> &CsrAdj {
        self.adj.get_or_init(|| {
            let s = self.num_switches as usize;
            let mut link_off = vec![0u32; s + 1];
            for link in &self.links {
                if let (Endpoint::Switch(a), Endpoint::Switch(b)) = (link.a, link.b) {
                    link_off[a.index() + 1] += 1;
                    link_off[b.index() + 1] += 1;
                }
            }
            for i in 0..s {
                link_off[i + 1] += link_off[i];
            }
            let total = link_off[s] as usize;
            let mut cursor: Vec<u32> = link_off[..s].to_vec();
            let mut link_dat = vec![LinkId(0); total];
            let mut link_peer = vec![SwitchId(0); total];
            for (l, link) in self.links.iter().enumerate() {
                if let (Endpoint::Switch(a), Endpoint::Switch(b)) = (link.a, link.b) {
                    let i = cursor[a.index()] as usize;
                    cursor[a.index()] += 1;
                    link_dat[i] = LinkId(l as u32);
                    link_peer[i] = b;
                    let j = cursor[b.index()] as usize;
                    cursor[b.index()] += 1;
                    link_dat[j] = LinkId(l as u32);
                    link_peer[j] = a;
                }
            }
            let mut host_off = vec![0u32; s + 1];
            for sw in &self.host_switch {
                host_off[sw.index() + 1] += 1;
            }
            for i in 0..s {
                host_off[i + 1] += host_off[i];
            }
            let mut cursor: Vec<u32> = host_off[..s].to_vec();
            let mut host_dat = vec![HostId(0); self.host_switch.len()];
            for (h, sw) in self.host_switch.iter().enumerate() {
                let i = cursor[sw.index()] as usize;
                cursor[sw.index()] += 1;
                host_dat[i] = HostId(h as u32);
            }
            CsrAdj {
                link_off,
                link_dat,
                link_peer,
                host_off,
                host_dat,
            }
        })
    }

    /// Attaches a new host to `switch`, returning its id. The access link's
    /// `forward` channel is host → switch (injection).
    ///
    /// # Panics
    ///
    /// Panics if `switch` is out of range.
    pub fn add_host(&mut self, switch: SwitchId) -> HostId {
        assert!(
            switch.index() < self.num_switches as usize,
            "no such switch"
        );
        let host = HostId(self.host_switch.len() as u32);
        let link = LinkId(self.links.len() as u32);
        self.links.push(Link {
            a: Endpoint::Host(host),
            b: Endpoint::Switch(switch),
        });
        self.host_switch.push(switch);
        self.host_link.push(link);
        self.adj.take();
        host
    }

    /// Connects two distinct switches with a new link (forward channel is
    /// `s1 → s2`), returning its id.
    ///
    /// # Panics
    ///
    /// Panics if the switches are equal or out of range.
    pub fn add_switch_link(&mut self, s1: SwitchId, s2: SwitchId) -> LinkId {
        assert_ne!(s1, s2, "self-links are not allowed");
        assert!(
            s1.index() < self.num_switches as usize,
            "no such switch {s1}"
        );
        assert!(
            s2.index() < self.num_switches as usize,
            "no such switch {s2}"
        );
        let link = LinkId(self.links.len() as u32);
        self.links.push(Link {
            a: Endpoint::Switch(s1),
            b: Endpoint::Switch(s2),
        });
        self.adj.take();
        link
    }

    /// Number of switches.
    pub fn num_switches(&self) -> u32 {
        self.num_switches
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> u32 {
        self.host_switch.len() as u32
    }

    /// Number of bidirectional links (host access links included).
    pub fn num_links(&self) -> u32 {
        self.links.len() as u32
    }

    /// Number of directed channels (`2 × num_links`).
    pub fn num_channels(&self) -> u32 {
        self.num_links() * 2
    }

    /// The link record.
    pub fn link(&self, l: LinkId) -> Link {
        self.links[l.index()]
    }

    /// Source and destination endpoints of a directed channel.
    pub fn channel_endpoints(&self, c: ChannelId) -> (Endpoint, Endpoint) {
        let l = self.link(c.link());
        if c.is_forward() {
            (l.a, l.b)
        } else {
            (l.b, l.a)
        }
    }

    /// The switch a host is attached to.
    pub fn host_switch(&self, h: HostId) -> SwitchId {
        self.host_switch[h.index()]
    }

    /// The host's access link.
    pub fn host_link(&self, h: HostId) -> LinkId {
        self.host_link[h.index()]
    }

    /// The injection channel (host → its switch).
    pub fn injection_channel(&self, h: HostId) -> ChannelId {
        self.host_link(h).forward()
    }

    /// The ejection channel (switch → host).
    pub fn ejection_channel(&self, h: HostId) -> ChannelId {
        self.host_link(h).backward()
    }

    /// Hosts attached to a switch, in attachment order.
    pub fn switch_hosts(&self, s: SwitchId) -> &[HostId] {
        let adj = self.adj();
        &adj.host_dat[adj.host_off[s.index()] as usize..adj.host_off[s.index() + 1] as usize]
    }

    /// Switch–switch links incident to `s`, in insertion order.
    pub fn switch_links(&self, s: SwitchId) -> &[LinkId] {
        let adj = self.adj();
        &adj.link_dat[adj.link_off[s.index()] as usize..adj.link_off[s.index() + 1] as usize]
    }

    /// Incident links and neighbouring switches of `s` as two parallel
    /// slices, insertion order. Allocation-free — this is the form routing
    /// passes should iterate.
    pub fn switch_peers(&self, s: SwitchId) -> (&[LinkId], &[SwitchId]) {
        let adj = self.adj();
        let range = adj.link_off[s.index()] as usize..adj.link_off[s.index() + 1] as usize;
        (&adj.link_dat[range.clone()], &adj.link_peer[range])
    }

    /// Neighbouring switches of `s` as `(link, neighbour)`, insertion order.
    pub fn switch_neighbors(&self, s: SwitchId) -> Vec<(LinkId, SwitchId)> {
        let (links, peers) = self.switch_peers(s);
        links.iter().copied().zip(peers.iter().copied()).collect()
    }

    /// Ports in use at `s`: attached hosts plus incident switch links.
    pub fn ports_used(&self, s: SwitchId) -> u32 {
        (self.switch_hosts(s).len() + self.switch_links(s).len()) as u32
    }

    /// The directed channel from switch `from` to switch `to`, if any link
    /// connects them (first matching link in insertion order).
    pub fn switch_channel(&self, from: SwitchId, to: SwitchId) -> Option<ChannelId> {
        self.switch_links(from).iter().find_map(|&l| {
            let link = self.link(l);
            match (link.a, link.b) {
                (Endpoint::Switch(x), Endpoint::Switch(y)) if x == from && y == to => {
                    Some(l.forward())
                }
                (Endpoint::Switch(x), Endpoint::Switch(y)) if y == from && x == to => {
                    Some(l.backward())
                }
                _ => None,
            }
        })
    }

    /// True if the switch graph (ignoring hosts) is connected. Vacuously
    /// true for fewer than two switches.
    pub fn switches_connected(&self) -> bool {
        if self.num_switches <= 1 {
            return true;
        }
        let mut seen = vec![false; self.num_switches as usize];
        let mut stack = vec![SwitchId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(s) = stack.pop() {
            let (_, peers) = self.switch_peers(s);
            for &nb in peers {
                if !seen[nb.index()] {
                    seen[nb.index()] = true;
                    count += 1;
                    stack.push(nb);
                }
            }
        }
        count == self.num_switches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Topology {
        // s0 - s1, two hosts on each.
        let mut t = Topology::new(2);
        t.add_host(SwitchId(0));
        t.add_host(SwitchId(0));
        t.add_host(SwitchId(1));
        t.add_host(SwitchId(1));
        t.add_switch_link(SwitchId(0), SwitchId(1));
        t
    }

    #[test]
    fn counts() {
        let t = tiny();
        assert_eq!(t.num_switches(), 2);
        assert_eq!(t.num_hosts(), 4);
        assert_eq!(t.num_links(), 5);
        assert_eq!(t.num_channels(), 10);
        assert_eq!(t.ports_used(SwitchId(0)), 3);
        assert_eq!(t.ports_used(SwitchId(1)), 3);
    }

    #[test]
    fn host_attachment() {
        let t = tiny();
        assert_eq!(t.host_switch(HostId(0)), SwitchId(0));
        assert_eq!(t.host_switch(HostId(3)), SwitchId(1));
        assert_eq!(t.switch_hosts(SwitchId(0)), &[HostId(0), HostId(1)]);
        assert_eq!(t.switch_hosts(SwitchId(1)), &[HostId(2), HostId(3)]);
    }

    #[test]
    fn channel_directions() {
        let t = tiny();
        let inj = t.injection_channel(HostId(0));
        let (src, dst) = t.channel_endpoints(inj);
        assert_eq!(src, Endpoint::Host(HostId(0)));
        assert_eq!(dst, Endpoint::Switch(SwitchId(0)));
        let ej = t.ejection_channel(HostId(0));
        let (src, dst) = t.channel_endpoints(ej);
        assert_eq!(src, Endpoint::Switch(SwitchId(0)));
        assert_eq!(dst, Endpoint::Host(HostId(0)));
        assert_eq!(inj.reverse(), ej);
        assert_eq!(inj.link(), ej.link());
    }

    #[test]
    fn switch_channel_lookup() {
        let t = tiny();
        let fwd = t.switch_channel(SwitchId(0), SwitchId(1)).unwrap();
        let bwd = t.switch_channel(SwitchId(1), SwitchId(0)).unwrap();
        assert_eq!(fwd.reverse(), bwd);
        let (src, dst) = t.channel_endpoints(fwd);
        assert_eq!(src, Endpoint::Switch(SwitchId(0)));
        assert_eq!(dst, Endpoint::Switch(SwitchId(1)));
        assert!(t.switch_channel(SwitchId(0), SwitchId(0)).is_none());
    }

    #[test]
    fn neighbors() {
        let t = tiny();
        let nb = t.switch_neighbors(SwitchId(0));
        assert_eq!(nb.len(), 1);
        assert_eq!(nb[0].1, SwitchId(1));
    }

    #[test]
    fn connectivity() {
        let t = tiny();
        assert!(t.switches_connected());
        let mut u = Topology::new(3);
        u.add_switch_link(SwitchId(0), SwitchId(1));
        assert!(!u.switches_connected());
        u.add_switch_link(SwitchId(2), SwitchId(1));
        assert!(u.switches_connected());
        assert!(Topology::new(0).switches_connected());
        assert!(Topology::new(1).switches_connected());
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_panics() {
        Topology::new(2).add_switch_link(SwitchId(1), SwitchId(1));
    }

    #[test]
    fn channel_id_arithmetic() {
        let l = LinkId(7);
        assert_eq!(l.forward().link(), l);
        assert_eq!(l.backward().link(), l);
        assert!(l.forward().is_forward());
        assert!(!l.backward().is_forward());
        assert_eq!(l.forward().reverse(), l.backward());
        assert_eq!(l.backward().reverse(), l.forward());
    }
}

impl Topology {
    /// Renders the physical topology as a Graphviz `dot` graph: boxes for
    /// switches, circles for hosts, one undirected edge per link.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("graph topology {\n  layout=neato;\n");
        for s in 0..self.num_switches {
            let _ = writeln!(out, "  s{s} [shape=box];");
        }
        for h in 0..self.num_hosts() {
            let _ = writeln!(out, "  h{h} [shape=circle];");
        }
        for l in 0..self.num_links() {
            let link = self.link(LinkId(l));
            let _ = writeln!(out, "  {} -- {};", link.a, link.b);
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;

    #[test]
    fn dot_covers_all_elements() {
        let mut t = Topology::new(2);
        t.add_host(SwitchId(0));
        t.add_host(SwitchId(1));
        t.add_switch_link(SwitchId(0), SwitchId(1));
        let dot = t.to_dot();
        assert!(dot.contains("s0 [shape=box]"));
        assert!(dot.contains("h1 [shape=circle]"));
        assert_eq!(dot.matches(" -- ").count(), 3); // 2 host links + 1 switch link
        assert!(dot.contains("s0 -- s1"));
    }
}
