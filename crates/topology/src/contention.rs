//! Channel-sharing (contention) analysis between routed paths.
//!
//! Depth contention-freedom (paper §4.3.2, after McKinley et al.) requires
//! the paths that tree edges map onto to be pairwise edge-disjoint whenever
//! they can be active simultaneously. The primitive here is *directed
//! channel sharing* between two host-to-host routes; on top of it sit the
//! contention-free-*ordering* test (`∀ a ≺ b ≼ c ≺ d`: routes `a→b` and
//! `c→d` are disjoint) and bulk counting helpers used by the ablation
//! benches.

use crate::graph::{ChannelId, HostId};
use crate::Network;

/// True if two channel lists share any directed channel.
///
/// Routes are short (≤ network diameter + 2), so a quadratic scan beats
/// hashing for the sizes involved.
pub fn share_channel(a: &[ChannelId], b: &[ChannelId]) -> bool {
    a.iter().any(|c| b.contains(c))
}

/// The channels shared by two routes (for diagnostics).
pub fn shared_channels(a: &[ChannelId], b: &[ChannelId]) -> Vec<ChannelId> {
    a.iter().copied().filter(|c| b.contains(c)).collect()
}

/// True if the unicast routes `from1 → to1` and `from2 → to2` contend.
pub fn routes_contend<N: Network>(
    net: &N,
    from1: HostId,
    to1: HostId,
    from2: HostId,
    to2: HostId,
) -> bool {
    share_channel(&net.route(from1, to1), &net.route(from2, to2))
}

/// One violating quadruple of the contention-free-ordering property.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// Sender of the left message (`a`).
    pub a: HostId,
    /// Receiver of the left message (`b`).
    pub b: HostId,
    /// Sender of the right message (`c`, with `b ≼ c`).
    pub c: HostId,
    /// Receiver of the right message (`d`).
    pub d: HostId,
}

/// Counts quadruples `a ≺ b ≼ c ≺ d` along `chain` whose messages `a→b` and
/// `c→d` share a directed channel, up to `limit` violations (pass
/// `u64::MAX` for an exact count). Zero means the chain is a
/// contention-free ordering in the paper's sense.
///
/// Cost is `O(n⁴)` route-pair checks; intended for analysis, not hot paths.
pub fn ordering_violations<N: Network>(
    net: &N,
    chain: &[HostId],
    limit: u64,
) -> (u64, Option<Violation>) {
    let n = chain.len();
    // Precompute all chain-forward routes a -> b (positions pa < pb).
    let mut routes: Vec<Vec<Vec<ChannelId>>> = vec![Vec::new(); n];
    for pa in 0..n {
        routes[pa] = (0..n)
            .map(|pb| {
                if pa < pb {
                    net.route(chain[pa], chain[pb])
                } else {
                    Vec::new()
                }
            })
            .collect();
    }
    let mut count = 0u64;
    let mut first = None;
    for pa in 0..n {
        for pb in pa + 1..n {
            for pc in pb..n {
                for pd in pc + 1..n {
                    if pa == pc && pb == pd {
                        continue; // the same message does not contend with itself
                    }
                    if share_channel(&routes[pa][pb], &routes[pc][pd]) {
                        count += 1;
                        if first.is_none() {
                            first = Some(Violation {
                                a: chain[pa],
                                b: chain[pb],
                                c: chain[pc],
                                d: chain[pd],
                            });
                        }
                        if count >= limit {
                            return (count, first);
                        }
                    }
                }
            }
        }
    }
    (count, first)
}

/// True if `chain` is a contention-free ordering on `net`.
pub fn is_contention_free<N: Network>(net: &N, chain: &[HostId]) -> bool {
    ordering_violations(net, chain, 1).0 == 0
}

/// Counts pairwise channel conflicts among a set of simultaneously active
/// unicast transfers (e.g. all sends of one multicast step).
pub fn concurrent_conflicts<N: Network>(net: &N, transfers: &[(HostId, HostId)]) -> u64 {
    let routes: Vec<Vec<ChannelId>> = transfers.iter().map(|&(f, t)| net.route(f, t)).collect();
    let mut conflicts = 0;
    for i in 0..routes.len() {
        for j in i + 1..routes.len() {
            if share_channel(&routes[i], &routes[j]) {
                conflicts += 1;
            }
        }
    }
    conflicts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::CubeNetwork;
    use crate::graph::{SwitchId, Topology};
    use crate::irregular::{IrregularConfig, IrregularNetwork};
    use crate::ordering::{cco, dimension_ordered, Ordering};
    use crate::updown::UpDownRouting;

    /// Minimal two-switch network.
    struct Tiny {
        topo: Topology,
        routing: UpDownRouting,
    }

    impl Tiny {
        fn new() -> Self {
            let mut topo = Topology::new(2);
            for s in [0, 0, 1, 1] {
                topo.add_host(SwitchId(s));
            }
            topo.add_switch_link(SwitchId(0), SwitchId(1));
            let routing = UpDownRouting::new(&topo);
            Tiny { topo, routing }
        }
    }

    impl Network for Tiny {
        fn num_hosts(&self) -> u32 {
            self.topo.num_hosts()
        }
        fn num_channels(&self) -> u32 {
            self.topo.num_channels()
        }
        fn route(&self, from: HostId, to: HostId) -> Vec<ChannelId> {
            self.routing.host_route(&self.topo, from, to)
        }
        fn topology(&self) -> &Topology {
            &self.topo
        }
        fn describe(&self) -> String {
            "tiny".into()
        }
    }

    #[test]
    fn same_direction_crossing_contends() {
        let net = Tiny::new();
        // h0 -> h2 and h1 -> h3 both cross s0 -> s1.
        assert!(routes_contend(
            &net,
            HostId(0),
            HostId(2),
            HostId(1),
            HostId(3)
        ));
        // Opposite directions do not contend.
        assert!(!routes_contend(
            &net,
            HostId(0),
            HostId(2),
            HostId(3),
            HostId(1)
        ));
        // Distinct ejections to distinct hosts do not contend.
        assert!(!routes_contend(
            &net,
            HostId(0),
            HostId(1),
            HostId(2),
            HostId(3)
        ));
    }

    #[test]
    fn shared_channels_identifies_link() {
        let net = Tiny::new();
        let r1 = net.route(HostId(0), HostId(2));
        let r2 = net.route(HostId(1), HostId(3));
        let shared = shared_channels(&r1, &r2);
        assert_eq!(shared.len(), 1);
        let c = net
            .topology()
            .switch_channel(SwitchId(0), SwitchId(1))
            .unwrap();
        assert_eq!(shared[0], c);
    }

    #[test]
    fn hypercube_id_order_is_contention_free() {
        // Classic TPDS'94 result: the (dimension-ordered) id order on a
        // hypercube with e-cube routing is a contention-free ordering.
        let c = CubeNetwork::new(2, 3);
        let o = dimension_ordered(&c);
        assert!(is_contention_free(&c, o.hosts()));
    }

    #[test]
    fn hypercube_bad_order_violates() {
        // Chain [0, 7, 1, 3, ...]: messages 0->7 (route 0->1->3->7 under
        // lowest-dimension-first e-cube) and 1->3 (route 1->3) both traverse
        // the directed channel 1->3, and the quadruple is ordered a<b<=c<d.
        let c = CubeNetwork::new(2, 3);
        let chain: Vec<HostId> = [0u32, 7, 1, 3, 2, 4, 5, 6]
            .into_iter()
            .map(HostId)
            .collect();
        let (v, w) = ordering_violations(&c, &chain, u64::MAX);
        assert!(v > 0, "expected violations");
        let w = w.unwrap();
        assert_eq!(
            (w.a, w.b, w.c, w.d),
            (HostId(0), HostId(7), HostId(1), HostId(3))
        );
        assert!(!is_contention_free(&c, &chain));
    }

    #[test]
    fn tiny_ordering_quality_depends_on_clustering() {
        // Grouping hosts by switch ([0,1,2,3]) keeps forward non-overlapping
        // messages off shared channels; interleaving switches ([0,2,1,3])
        // makes 0->2 and 1->3 both cross s0->s1 as an ordered quadruple.
        let net = Tiny::new();
        let grouped: Vec<HostId> = [0u32, 1, 2, 3].into_iter().map(HostId).collect();
        assert!(is_contention_free(&net, &grouped));
        let interleaved: Vec<HostId> = [0u32, 2, 1, 3].into_iter().map(HostId).collect();
        assert!(!is_contention_free(&net, &interleaved));
    }

    #[test]
    fn cco_beats_random_on_irregular_networks() {
        // The paper's claim (via HPCA'97): CCO minimises contention. Compare
        // violation counts on a small irregular network so the O(n^4) scan
        // stays fast.
        let cfg = IrregularConfig {
            switches: 6,
            ports: 6,
            hosts: 18,
        };
        let mut cco_total = 0u64;
        let mut rnd_total = 0u64;
        for seed in 0..4 {
            let net = IrregularNetwork::generate(cfg, seed);
            let c = cco(&net);
            cco_total += ordering_violations(&net, c.hosts(), u64::MAX).0;
            let r = Ordering::random(18, seed.wrapping_mul(77).wrapping_add(5));
            rnd_total += ordering_violations(&net, r.hosts(), u64::MAX).0;
        }
        assert!(
            cco_total < rnd_total,
            "CCO {cco_total} should contend less than random {rnd_total}"
        );
    }

    #[test]
    fn concurrent_conflicts_counts_pairs() {
        let net = Tiny::new();
        let transfers = [
            (HostId(0), HostId(2)),
            (HostId(1), HostId(3)),
            (HostId(3), HostId(1)),
        ];
        // (0->2, 1->3) share s0->s1; (3->1) shares s1->s0 with nobody, but
        // shares the ejection to h1 with nobody either.
        assert_eq!(concurrent_conflicts(&net, &transfers), 1);
    }

    #[test]
    fn violation_limit_short_circuits() {
        let net = Tiny::new();
        // Interleaved chain: 0->2 and 1->3 share s0->s1 (see above).
        let chain: Vec<HostId> = [0u32, 2, 1, 3].into_iter().map(HostId).collect();
        let exact = ordering_violations(&net, &chain, u64::MAX).0;
        assert!(exact >= 1);
        let (v, w) = ordering_violations(&net, &chain, 1);
        assert_eq!(v, 1, "limit must short-circuit");
        assert!(w.is_some());
    }

    #[test]
    fn empty_and_singleton_chains_trivially_free() {
        let net = Tiny::new();
        assert!(is_contention_free(&net, &[]));
        assert!(is_contention_free(&net, &[HostId(2)]));
    }
}
