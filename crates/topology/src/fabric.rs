//! Mega-scale datacenter fabrics: fat-tree and dragonfly generators.
//!
//! The paper validates optimal-k multicast on a 64-host irregular network;
//! these generators extend the study two orders of magnitude onto the
//! regular fabrics where simultaneous-multicast scheduling actually matters
//! at scale. Both produce an ordinary [`Topology`] and route it with the
//! same up\*/down\* machinery as the irregular substrate, so every layer
//! above (CCO ordering, tree building, the simulator) works unchanged.
//!
//! * **Fat-tree** (`k`-ary, 3 levels): `k` pods of `k/2` edge and `k/2`
//!   aggregation switches plus `(k/2)²` core switches; `k/2` hosts per edge
//!   switch, so capacity is `k³/4` hosts (`k = 64` → 65,536).
//! * **Dragonfly**: `g` groups of `a` routers, all-to-all inside a group,
//!   one global link per group pair (router chosen round-robin), `h` hosts
//!   per router.
//!
//! Everything is deterministic: switch ids, link insertion order, and host
//! attachment order are pure functions of the config, so routing and
//! simulation results are reproducible byte-for-byte.

use crate::graph::{ChannelId, HostId, SwitchId, Topology};
use crate::updown::UpDownRouting;
use crate::Network;

/// Which fabric to generate, with its shape parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricConfig {
    /// Three-level `k`-ary fat-tree (Clos). `k_ary` must be even and ≥ 2.
    FatTree {
        /// Switch radix `k`: pods, ports per switch, and `k/2` hosts per
        /// edge switch.
        k_ary: u32,
    },
    /// Dragonfly: `groups` groups of `routers_per_group` routers.
    Dragonfly {
        /// Number of groups (≥ 1).
        groups: u32,
        /// Routers per group (≥ 1).
        routers_per_group: u32,
        /// Hosts attached to each router (≥ 1).
        hosts_per_router: u32,
    },
}

impl FabricConfig {
    /// Smallest fat-tree radix (even `k`) whose `k³/4` host capacity covers
    /// `hosts`.
    pub fn fat_tree_for_hosts(hosts: u32) -> FabricConfig {
        let mut k = 2u32;
        while k * k * k / 4 < hosts {
            k += 2;
        }
        FabricConfig::FatTree { k_ary: k }
    }

    /// Maximum number of hosts this fabric can attach.
    pub fn host_capacity(&self) -> u32 {
        match *self {
            FabricConfig::FatTree { k_ary } => k_ary * k_ary * k_ary / 4,
            FabricConfig::Dragonfly {
                groups,
                routers_per_group,
                hosts_per_router,
            } => groups * routers_per_group * hosts_per_router,
        }
    }

    /// Number of switches in the fabric.
    pub fn num_switches(&self) -> u32 {
        match *self {
            FabricConfig::FatTree { k_ary } => {
                // k pods × (k/2 edge + k/2 agg) + (k/2)² core.
                k_ary * k_ary + (k_ary / 2) * (k_ary / 2)
            }
            FabricConfig::Dragonfly {
                groups,
                routers_per_group,
                ..
            } => groups * routers_per_group,
        }
    }

    fn validate(&self) {
        match *self {
            FabricConfig::FatTree { k_ary } => {
                assert!(
                    k_ary >= 2 && k_ary.is_multiple_of(2),
                    "fat-tree radix must be even and at least 2, got {k_ary}"
                );
            }
            FabricConfig::Dragonfly {
                groups,
                routers_per_group,
                hosts_per_router,
            } => {
                assert!(groups >= 1, "dragonfly needs at least one group");
                assert!(
                    routers_per_group >= 1,
                    "dragonfly needs at least one router per group"
                );
                assert!(
                    hosts_per_router >= 1,
                    "dragonfly needs at least one host per router"
                );
                if groups > 1 {
                    // One global link per group pair must fit somewhere.
                    assert!(
                        routers_per_group >= 1,
                        "dragonfly global links need routers"
                    );
                }
            }
        }
    }
}

/// A generated fabric: topology plus up\*/down\* routing, behind [`Network`].
#[derive(Debug, Clone)]
pub struct FabricNetwork {
    config: FabricConfig,
    topo: Topology,
    routing: UpDownRouting,
}

impl FabricNetwork {
    /// Generates the fabric at full host capacity.
    pub fn generate(config: FabricConfig) -> Self {
        Self::generate_with_hosts(config, config.host_capacity())
    }

    /// Generates the fabric with only `hosts` hosts attached (round-robin
    /// across the edge/router switches, so partial populations stay
    /// balanced).
    ///
    /// # Panics
    ///
    /// Panics if the config is malformed, `hosts` is zero, or `hosts`
    /// exceeds the fabric's capacity.
    pub fn generate_with_hosts(config: FabricConfig, hosts: u32) -> Self {
        config.validate();
        assert!(hosts >= 1, "a fabric needs at least one host");
        assert!(
            hosts <= config.host_capacity(),
            "fabric capacity is {} hosts, asked for {hosts}",
            config.host_capacity()
        );
        let topo = match config {
            FabricConfig::FatTree { k_ary } => build_fat_tree(k_ary, hosts),
            FabricConfig::Dragonfly {
                groups,
                routers_per_group,
                hosts_per_router,
            } => build_dragonfly(groups, routers_per_group, hosts_per_router, hosts),
        };
        let routing = UpDownRouting::new(&topo);
        FabricNetwork {
            config,
            topo,
            routing,
        }
    }

    /// The generator config.
    pub fn config(&self) -> FabricConfig {
        self.config
    }

    /// The up\*/down\* routing state (for CCO ordering and diagnostics).
    pub fn routing(&self) -> &UpDownRouting {
        &self.routing
    }
}

impl Network for FabricNetwork {
    fn num_hosts(&self) -> u32 {
        self.topo.num_hosts()
    }

    fn num_channels(&self) -> u32 {
        self.topo.num_channels()
    }

    fn route(&self, from: HostId, to: HostId) -> Vec<ChannelId> {
        self.routing.host_route(&self.topo, from, to)
    }

    fn topology(&self) -> &Topology {
        &self.topo
    }

    fn describe(&self) -> String {
        match self.config {
            FabricConfig::FatTree { k_ary } => format!(
                "{}-ary fat-tree: {} switches, {} hosts, up*/down* routing",
                k_ary,
                self.topo.num_switches(),
                self.topo.num_hosts()
            ),
            FabricConfig::Dragonfly {
                groups,
                routers_per_group,
                hosts_per_router,
            } => format!(
                "dragonfly g={groups} a={routers_per_group} h={hosts_per_router}: \
                 {} switches, {} hosts, up*/down* routing",
                self.topo.num_switches(),
                self.topo.num_hosts()
            ),
        }
    }

    fn bulk_routes(&self, pairs: &[(HostId, HostId)]) -> (Vec<u32>, Vec<ChannelId>) {
        self.routing.bulk_host_routes(&self.topo, pairs)
    }
}

/// Switch ids: pod-p edge switches first (`p·k/2 + e`), then all
/// aggregation switches (`k²/2 + p·k/2 + a`), then core (`k² + c`).
fn build_fat_tree(k: u32, hosts: u32) -> Topology {
    let half = k / 2;
    let num_edge = k * half;
    let edge = |p: u32, e: u32| SwitchId(p * half + e);
    let agg = |p: u32, a: u32| SwitchId(num_edge + p * half + a);
    let core = |c: u32| SwitchId(2 * num_edge + c);
    let mut topo = Topology::new(2 * num_edge + half * half);

    // Hosts round-robin across edge switches keeps partial populations
    // balanced; at full capacity each edge switch gets exactly k/2.
    for h in 0..hosts {
        topo.add_host(SwitchId(h % num_edge));
    }
    // Pod-internal bipartite edge ↔ aggregation mesh.
    for p in 0..k {
        for e in 0..half {
            for a in 0..half {
                topo.add_switch_link(edge(p, e), agg(p, a));
            }
        }
    }
    // Aggregation switch `a` of every pod reaches core group `a`.
    for p in 0..k {
        for a in 0..half {
            for j in 0..half {
                topo.add_switch_link(agg(p, a), core(a * half + j));
            }
        }
    }
    topo
}

/// Switch ids: router `r` of group `g` is `g·a + r`. Intra-group links
/// first (all-to-all per group), then one global link per group pair with
/// the endpoint router chosen round-robin per group.
fn build_dragonfly(g: u32, a: u32, h: u32, hosts: u32) -> Topology {
    let router = |gi: u32, r: u32| SwitchId(gi * a + r);
    let mut topo = Topology::new(g * a);

    // Hosts round-robin across all routers.
    for i in 0..hosts {
        topo.add_host(SwitchId(i % (g * a)));
    }
    let _ = h; // capacity is validated by the caller
    for gi in 0..g {
        for r1 in 0..a {
            for r2 in (r1 + 1)..a {
                topo.add_switch_link(router(gi, r1), router(gi, r2));
            }
        }
    }
    // Global links: per-group round-robin over routers spreads the global
    // channels evenly.
    let mut next_port = vec![0u32; g as usize];
    for g1 in 0..g {
        for g2 in (g1 + 1)..g {
            let r1 = next_port[g1 as usize] % a;
            let r2 = next_port[g2 as usize] % a;
            next_port[g1 as usize] += 1;
            next_port[g2 as usize] += 1;
            topo.add_switch_link(router(g1, r1), router(g2, r2));
        }
    }
    topo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fat_tree_shape() {
        let net = FabricNetwork::generate(FabricConfig::FatTree { k_ary: 4 });
        // k=4: 16 hosts, 4 pods × (2 edge + 2 agg) + 4 core = 20 switches.
        assert_eq!(net.num_hosts(), 16);
        assert_eq!(net.topology().num_switches(), 20);
        assert!(net.topology().switches_connected());
        // Every switch uses at most k ports.
        for s in 0..net.topology().num_switches() {
            assert!(net.topology().ports_used(SwitchId(s)) <= 4, "switch {s}");
        }
    }

    #[test]
    fn fat_tree_under_population() {
        let net = FabricNetwork::generate_with_hosts(FabricConfig::FatTree { k_ary: 4 }, 5);
        assert_eq!(net.num_hosts(), 5);
        // Round-robin: at most ⌈5/8⌉ = 1 host on each of the first 5 edges.
        for s in 0..8u32 {
            assert!(net.topology().switch_hosts(SwitchId(s)).len() <= 1);
        }
    }

    #[test]
    fn fat_tree_for_hosts_picks_smallest_radix() {
        assert_eq!(
            FabricConfig::fat_tree_for_hosts(1024),
            FabricConfig::FatTree { k_ary: 16 }
        );
        assert_eq!(
            FabricConfig::fat_tree_for_hosts(1025),
            FabricConfig::FatTree { k_ary: 18 }
        );
        assert_eq!(
            FabricConfig::fat_tree_for_hosts(65536),
            FabricConfig::FatTree { k_ary: 64 }
        );
    }

    #[test]
    fn dragonfly_shape() {
        let cfg = FabricConfig::Dragonfly {
            groups: 4,
            routers_per_group: 3,
            hosts_per_router: 2,
        };
        let net = FabricNetwork::generate(cfg);
        assert_eq!(net.num_hosts(), 24);
        assert_eq!(net.topology().num_switches(), 12);
        assert!(net.topology().switches_connected());
        // Links: per group C(3,2)=3 intra × 4 groups + C(4,2)=6 global
        // + 24 host links.
        assert_eq!(net.topology().num_links(), 24 + 12 + 6);
    }

    #[test]
    fn routes_are_legal_and_deterministic() {
        for cfg in [
            FabricConfig::FatTree { k_ary: 4 },
            FabricConfig::Dragonfly {
                groups: 3,
                routers_per_group: 2,
                hosts_per_router: 2,
            },
        ] {
            let net = FabricNetwork::generate(cfg);
            let n = net.num_hosts();
            for a in 0..n {
                for b in 0..n {
                    let r = net.route(HostId(a), HostId(b));
                    if a == b {
                        assert!(r.is_empty());
                        continue;
                    }
                    assert_eq!(r[0], net.topology().injection_channel(HostId(a)));
                    assert_eq!(
                        *r.last().unwrap(),
                        net.topology().ejection_channel(HostId(b))
                    );
                    // Interior (switch-switch) portion must be legal
                    // up*/down*.
                    assert!(net
                        .routing()
                        .is_legal_path(net.topology(), &r[1..r.len() - 1]));
                    assert_eq!(r, net.route(HostId(a), HostId(b)));
                }
            }
        }
    }

    #[test]
    fn bulk_routes_match_per_pair() {
        let net = FabricNetwork::generate(FabricConfig::FatTree { k_ary: 4 });
        let n = net.num_hosts();
        let mut pairs = Vec::new();
        for b in 0..n {
            pairs.push((HostId(0), HostId(b)));
            pairs.push((HostId(b), HostId(n - 1 - b)));
        }
        let (off, dat) = net.bulk_routes(&pairs);
        for (i, &(a, b)) in pairs.iter().enumerate() {
            assert_eq!(
                &dat[off[i] as usize..off[i + 1] as usize],
                net.route(a, b).as_slice()
            );
        }
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn over_population_panics() {
        FabricNetwork::generate_with_hosts(FabricConfig::FatTree { k_ary: 4 }, 17);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_radix_panics() {
        FabricNetwork::generate(FabricConfig::FatTree { k_ary: 5 });
    }
}
