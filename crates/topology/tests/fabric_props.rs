//! Property battery for the mega-scale fabric generators: for random
//! fat-tree radices and dragonfly shapes —
//!
//! * host counts and switch counts match the closed forms;
//! * every switch stays within its port budget (radix for fat-trees,
//!   `a - 1 + g - 1 + h` for dragonflies);
//! * the switch graph is connected (checked by BFS);
//! * the up\*/down\* orientation is deadlock-free: levels strictly decrease
//!   along every up channel, so no cycle of legal paths exists;
//! * sampled host routes are legal up\*/down\* paths and agree with the
//!   bulk (grouped single-source) route builder byte-for-byte.

use optimcast_topology::fabric::{FabricConfig, FabricNetwork};
use optimcast_topology::graph::{ChannelId, Endpoint, HostId, SwitchId};
use optimcast_topology::Network;
use proptest::prelude::*;

/// The `(switch, phase)` legality invariant, checked structurally: an up
/// channel strictly decreases `(level, id)`, so any sequence of ups is
/// acyclic, any sequence of downs is acyclic, and a legal path (ups then
/// downs) can never revisit a configuration — the classic up*/down*
/// deadlock-freedom argument.
fn assert_updown_orientation(net: &FabricNetwork) {
    let topo = net.topology();
    let routing = net.routing();
    for l in 0..topo.num_links() {
        let link = topo.link(optimcast_topology::LinkId(l));
        if let (Endpoint::Switch(x), Endpoint::Switch(y)) = (link.a, link.b) {
            let fwd = optimcast_topology::LinkId(l).forward();
            let up = routing.is_up(topo, fwd);
            let down = routing.is_up(topo, fwd.reverse());
            assert_ne!(up, down, "link {l} must be up in exactly one direction");
            let (hi, lo) = if up { (x, y) } else { (y, x) };
            assert!(
                (routing.level(lo), lo.0) < (routing.level(hi), hi.0),
                "up channel must strictly decrease (level, id)"
            );
        }
    }
}

fn assert_routes_legal_and_bulk_identical(net: &FabricNetwork, samples: &[(u32, u32)]) {
    let topo = net.topology();
    let routing = net.routing();
    let pairs: Vec<(HostId, HostId)> = samples
        .iter()
        .map(|&(a, b)| (HostId(a % net.num_hosts()), HostId(b % net.num_hosts())))
        .collect();
    let (off, dat) = net.bulk_routes(&pairs);
    for (i, &(a, b)) in pairs.iter().enumerate() {
        let bulk: &[ChannelId] = &dat[off[i] as usize..off[i + 1] as usize];
        let single = net.route(a, b);
        assert_eq!(bulk, single.as_slice(), "bulk vs per-pair route {a}->{b}");
        if a == b {
            assert!(single.is_empty());
            continue;
        }
        assert_eq!(single[0], topo.injection_channel(a));
        assert_eq!(*single.last().unwrap(), topo.ejection_channel(b));
        assert!(
            routing.is_legal_path(topo, &single[1..single.len() - 1]),
            "route {a}->{b} violates up*/down*"
        );
    }
}

proptest! {
    #[test]
    fn fat_tree_invariants(
        half in 1u32..7,
        hosts_frac in 1u32..=4,
        s1 in 0u32..1000,
        s2 in 0u32..1000,
    ) {
        let k = half * 2;
        let cap = k * k * k / 4;
        let hosts = (cap * hosts_frac / 4).max(1);
        let net = FabricNetwork::generate_with_hosts(
            FabricConfig::FatTree { k_ary: k }, hosts);
        prop_assert_eq!(net.num_hosts(), hosts);
        let topo = net.topology();
        prop_assert_eq!(topo.num_switches(), k * k + half * half);
        prop_assert!(topo.switches_connected());
        for s in 0..topo.num_switches() {
            prop_assert!(
                topo.ports_used(SwitchId(s)) <= k,
                "switch {} exceeds radix {}", s, k
            );
        }
        assert_updown_orientation(&net);
        assert_routes_legal_and_bulk_identical(
            &net, &[(s1, s2), (s2, s1), (0, s1), (s2, s2)]);
    }

    #[test]
    fn dragonfly_invariants(
        g in 1u32..6,
        a in 1u32..5,
        h in 1u32..4,
        s1 in 0u32..1000,
        s2 in 0u32..1000,
    ) {
        let cfg = FabricConfig::Dragonfly {
            groups: g,
            routers_per_group: a,
            hosts_per_router: h,
        };
        let net = FabricNetwork::generate(cfg);
        prop_assert_eq!(net.num_hosts(), g * a * h);
        let topo = net.topology();
        prop_assert_eq!(topo.num_switches(), g * a);
        prop_assert!(topo.switches_connected());
        // Port bound: a-1 intra links + at most ceil((g-1)/a) global links
        // + attached hosts (h plus round-robin remainder is exactly h here).
        for s in 0..topo.num_switches() {
            let globals = (g - 1).div_ceil(a.max(1));
            prop_assert!(
                topo.ports_used(SwitchId(s)) <= (a - 1) + globals + h,
                "router {} exceeds port budget", s
            );
        }
        assert_updown_orientation(&net);
        assert_routes_legal_and_bulk_identical(
            &net, &[(s1, s2), (s2, s1), (0, s1), (s2, s2)]);
    }
}
