//! The sim-vs-wire parity contract: for the same `(n, k, m)`, the
//! per-receiver delivery order observed on clean loopback UDP must equal
//! the order the discrete-event simulator predicts for the same k-binomial
//! tree and FPFS schedule — which in turn must equal the analytic
//! [`Schedule::arrival_order`] oracle.
//!
//! Loopback is FIFO per socket pair and lossless, and FPFS forwards each
//! packet the moment it completes, so all three views of "when does packet
//! `p` reach rank `r`" have to agree; any divergence means either the wire
//! runner or the simulator has drifted from the schedule.

use optimcast_core::builders::kbinomial_tree;
use optimcast_core::params::SystemParams;
use optimcast_core::tree::Rank;
use optimcast_netsim::{MulticastJob, SimRun, TraceKind, WorkloadConfig, WorkloadOutcome};
use optimcast_topology::graph::HostId;
use optimcast_topology::irregular::{IrregularConfig, IrregularNetwork};
use optimcast_transport_udp::{loopback_demo, WirePlan};
use std::time::Duration;

const N: u32 = 12;
const K: u32 = 2;
const M: u32 = 3;

/// Per-rank packet order in first-completion sequence, from the sim trace.
fn sim_orders(wl: &WorkloadOutcome, n: u32) -> Vec<Vec<u32>> {
    let mut orders = vec![Vec::new(); n as usize];
    for r in &wl.trace {
        if let TraceKind::RecvDone { at, packet } = r.kind {
            orders[at.index()].push(packet);
        }
    }
    orders
}

#[test]
fn wire_order_matches_simulator_prediction() {
    // Simulator side: the same tree bound to hosts 0..N on the paper's
    // irregular network, full wormhole contention, trace on.
    let net = IrregularNetwork::generate(IrregularConfig::default(), 42);
    let binding: Vec<HostId> = (0..N).map(HostId).collect();
    let wl = SimRun::new(
        &net,
        &[MulticastJob::fpfs(kbinomial_tree(N, K), binding, M)],
        &SystemParams::paper_1997(),
        WorkloadConfig {
            trace: true,
            ..WorkloadConfig::default()
        },
    )
    .run()
    .expect("sim runs");
    let sim = sim_orders(&wl, N);

    // Wire side: the same (n, k, m) over real loopback datagrams.
    let plan = WirePlan::new(N, K, M, 900, 200);
    let reports =
        loopback_demo(N, K, M, 900, 200, Duration::from_secs(30)).expect("wire demo runs");
    assert_eq!(reports.len(), (N - 1) as usize);

    for report in &reports {
        let rank = Rank(report.rank);
        let predicted = plan.expected_order(rank);
        assert!(
            report.parity(),
            "rank {} wire run failed parity: {:?}",
            report.rank,
            report
        );
        assert_eq!(
            report.order, predicted,
            "rank {} wire order diverged from the schedule oracle",
            report.rank
        );
        assert_eq!(
            sim[rank.index()],
            predicted,
            "rank {} simulated order diverged from the schedule oracle",
            report.rank
        );
    }
}
