//! Property tests for the wire codec: encode/decode round-trips, typed
//! rejection of truncated and corrupted buffers, and fragment reassembly
//! under adversarial (shuffled) arrival orders.

use optimcast_netsim::bytes::Bytes;
use optimcast_transport_udp::frame::{
    fragment_packet, FrameError, PacketAssembler, WireFrame, HEADER_LEN,
};

/// Deterministic payload from a drawn seed — the vendored proptest only
/// draws scalars, so byte vectors are derived.
fn payload_from(seed: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| {
            (seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(i as u64)
                >> 33) as u8
        })
        .collect()
}

proptest::proptest! {
    /// decode(encode(x)) == x for arbitrary header fields and payloads,
    /// and re-encoding the decoded frame reproduces the exact bytes.
    #[test]
    fn roundtrip_is_identity(
        stream in 0u32..u32::MAX,
        epoch in 0u32..16,
        packet in 0u32..u32::MAX,
        attempt in 0u32..64,
        from_rank in 0u32..4096,
        frag_total in 1u16..64,
        frag_off in 0u16..64,
        payload_len in 0usize..600,
        seed in 0u64..u64::MAX,
    ) {
        let frag = frag_off % frag_total;
        let f = WireFrame {
            stream,
            epoch,
            packet,
            attempt,
            from_rank,
            frag,
            frag_total,
            payload: Bytes::from(payload_from(seed, payload_len)),
        };
        let buf = f.encode().unwrap();
        proptest::prop_assert_eq!(buf.len(), HEADER_LEN + payload_len);
        let back = WireFrame::decode(&buf).unwrap();
        proptest::prop_assert_eq!(&back, &f);
        proptest::prop_assert_eq!(back.encode().unwrap(), buf);
    }

    /// Every strict prefix of a valid frame decodes to a typed error,
    /// never to a frame and never to a panic.
    #[test]
    fn truncation_yields_typed_errors(
        payload_len in 0usize..300,
        cut_num in 0u32..10_000,
        seed in 0u64..u64::MAX,
    ) {
        let f = WireFrame {
            stream: 7,
            epoch: 0,
            packet: 3,
            attempt: 0,
            from_rank: 1,
            frag: 0,
            frag_total: 1,
            payload: Bytes::from(payload_from(seed, payload_len)),
        };
        let buf = f.encode().unwrap();
        let cut = (cut_num as usize) % buf.len(); // strict prefix
        let err = WireFrame::decode(&buf[..cut]).unwrap_err();
        if cut < HEADER_LEN {
            proptest::prop_assert_eq!(err, FrameError::TooShort { need: HEADER_LEN, got: cut });
        } else {
            proptest::prop_assert_eq!(
                err,
                FrameError::LengthMismatch { declared: payload_len, got: cut - HEADER_LEN }
            );
        }
    }

    /// Arbitrary garbage never decodes successfully unless it happens to
    /// be a well-formed frame — and then re-encoding reproduces it, so
    /// decode is total and lossless either way.
    #[test]
    fn garbage_decode_is_total(
        len in 0usize..200,
        seed in 0u64..u64::MAX,
    ) {
        let buf = payload_from(seed, len);
        // A typed rejection is the expected outcome for most draws.
        if let Ok(f) = WireFrame::decode(&buf) {
            proptest::prop_assert_eq!(f.encode().unwrap(), buf);
        }
    }

    /// Fragmentation + reassembly under a drawn arrival permutation is the
    /// identity on the payload, for any MTU that admits a payload byte.
    #[test]
    fn reassembly_survives_shuffled_arrival(
        payload_len in 1usize..3000,
        room in 1usize..200,
        rot in 0usize..64,
        swap_a in 0usize..64,
        swap_b in 0usize..64,
        seed in 0u64..u64::MAX,
    ) {
        let payload = payload_from(seed, payload_len);
        let mtu = HEADER_LEN + room;
        let mut frames =
            fragment_packet(1, 0, 5, 0, 2, Bytes::from(payload.clone()), mtu).unwrap();
        proptest::prop_assert_eq!(frames.len(), payload_len.div_ceil(room));
        // Shuffle deterministically: rotate, then swap two positions.
        let n = frames.len();
        frames.rotate_left(rot % n);
        frames.swap(swap_a % n, swap_b % n);
        let mut asm = PacketAssembler::new(frames[0].frag_total);
        let mut out = None;
        for f in frames {
            // Wire-shaped path: every fragment travels encoded.
            let f = WireFrame::decode(&f.encode().unwrap()).unwrap();
            if let Some(msg) = asm.accept(f).unwrap() {
                out = Some(msg);
            }
        }
        let msg = out.expect("all fragments accepted");
        proptest::prop_assert_eq!(&*msg, &payload[..]);
    }
}
