//! The real-wire backend: [`UdpTransport`] implements the netsim
//! [`Transport`] trait over a std-only `std::net::UdpSocket`.
//!
//! The multicast itself is *software* multicast, exactly as in the paper:
//! each participant forwards packets to its children in the k-binomial tree
//! over per-peer unicast datagrams, so the wire traffic is the tree's edge
//! set — the same sends the simulator schedules. IP-multicast group
//! membership (`join_multicast_v4`, TTL, loopback) is supported for
//! group-addressed peers, so a deployment can point any peer slot at a
//! `239.0.0.0/8` group instead of a unicast address.
//!
//! `send` fragments the packet to MTU-sized [`WireFrame`]s and writes each
//! as one datagram; `poll_deliveries` runs a bounded-timeout receive loop,
//! reassembling fragments per transmission identity and handing completed
//! packets to the caller's sink. Malformed datagrams are counted and
//! skipped, never fatal: a wire transport must survive garbage.

use crate::frame::{fragment_packet, PacketAssembler, WireFrame, HEADER_LEN};
use optimcast_netsim::bytes::Bytes;
use optimcast_netsim::transport::{
    Delivery, LinkContext, PacketView, Transport, TransportError, TransportResult,
};
use optimcast_topology::graph::HostId;
use std::collections::HashMap;
use std::net::{Ipv4Addr, SocketAddr, ToSocketAddrs, UdpSocket};
use std::time::{Duration, Instant};

/// Largest UDP payload the receive path accepts (one datagram).
const MAX_DATAGRAM: usize = 65_536;

/// Default MTU: conservative Ethernet payload budget.
pub const DEFAULT_MTU: usize = 1400;

/// Reassembly key: one in-flight packet per transmission identity
/// (`stream`, `epoch`, `packet`, `attempt`, `from_rank`), so a
/// retransmitted packet never mixes fragments with its earlier attempt.
type AssemblyKey = (u32, u32, u32, u32, u32);

/// A [`Transport`] that moves packets as real UDP datagrams.
pub struct UdpTransport {
    socket: UdpSocket,
    /// Destination address per participant, indexed by `HostId`/rank.
    peers: Vec<SocketAddr>,
    mtu: usize,
    /// Reused per-frame encode buffer (the transmit path allocates only
    /// when a payload outgrows it).
    scratch: Vec<u8>,
    /// Reused datagram receive buffer.
    recv_buf: Vec<u8>,
    assemblers: HashMap<AssemblyKey, PacketAssembler>,
    /// Multicast groups joined via [`Self::join_group`], left on `close`.
    groups: Vec<(Ipv4Addr, Ipv4Addr)>,
    malformed: u64,
    frames_sent: u64,
    packets_received: u64,
    closed: bool,
}

impl UdpTransport {
    /// Binds a transport socket to `addr` (use port 0 for an ephemeral
    /// port) with the default MTU.
    pub fn bind(addr: impl ToSocketAddrs) -> Result<Self, TransportError> {
        let socket = UdpSocket::bind(addr)?;
        Ok(UdpTransport {
            socket,
            peers: Vec::new(),
            mtu: DEFAULT_MTU,
            scratch: Vec::with_capacity(DEFAULT_MTU),
            recv_buf: vec![0u8; MAX_DATAGRAM],
            assemblers: HashMap::new(),
            groups: Vec::new(),
            malformed: 0,
            frames_sent: 0,
            packets_received: 0,
            closed: false,
        })
    }

    /// The socket's local address (the ephemeral port once bound to `:0`).
    pub fn local_addr(&self) -> Result<SocketAddr, TransportError> {
        Ok(self.socket.local_addr()?)
    }

    /// Installs the participant address table: `peers[rank]` is where
    /// packets for `HostId(rank)` go. Entries may be unicast addresses or
    /// multicast groups.
    pub fn set_peers(&mut self, peers: Vec<SocketAddr>) {
        self.peers = peers;
    }

    /// Overrides the MTU (datagram budget per frame, header included).
    ///
    /// # Panics
    ///
    /// Panics if `mtu` leaves no payload room after the header.
    pub fn set_mtu(&mut self, mtu: usize) {
        assert!(mtu > HEADER_LEN, "mtu {mtu} must exceed the header");
        self.mtu = mtu;
    }

    /// Joins an IPv4 multicast group on `interface` (use
    /// `Ipv4Addr::UNSPECIFIED` for the default interface), sets the
    /// multicast TTL, and enables loopback so co-located members hear this
    /// socket's group sends. The membership is dropped on [`close`].
    ///
    /// [`close`]: Transport::close
    pub fn join_group(
        &mut self,
        group: Ipv4Addr,
        interface: Ipv4Addr,
        ttl: u32,
    ) -> Result<(), TransportError> {
        self.socket.join_multicast_v4(&group, &interface)?;
        self.socket.set_multicast_ttl_v4(ttl)?;
        self.socket.set_multicast_loop_v4(true)?;
        self.groups.push((group, interface));
        Ok(())
    }

    /// Datagrams that failed to decode (bad magic, truncation, length
    /// mismatch) or whose fragments violated reassembly invariants.
    pub fn malformed(&self) -> u64 {
        self.malformed
    }

    /// Frames (datagrams) written so far.
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent
    }

    /// Packets fully reassembled and delivered so far.
    pub fn packets_received(&self) -> u64 {
        self.packets_received
    }
}

impl Transport for UdpTransport {
    fn open(&mut self) -> Result<(), TransportError> {
        if self.closed {
            return Err(TransportError::Closed);
        }
        // The receive loop manages its own deadline slices; start blocking
        // with a timeout rather than spinning nonblocking.
        self.socket.set_nonblocking(false)?;
        Ok(())
    }

    fn send(
        &mut self,
        _from: HostId,
        to: HostId,
        packet: PacketView<'_>,
        link: LinkContext<'_>,
    ) -> Result<TransportResult, TransportError> {
        if self.closed {
            return Err(TransportError::Closed);
        }
        let Some(&addr) = self.peers.get(to.index()) else {
            return Err(TransportError::Invalid(
                "destination rank has no peer address",
            ));
        };
        let frames = fragment_packet(
            packet.stream,
            packet.epoch,
            packet.packet,
            packet.attempt,
            link.from_rank,
            Bytes::from(packet.payload),
            self.mtu,
        )
        .map_err(|_| TransportError::Invalid("mtu leaves no payload room"))?;
        for frame in &frames {
            let len = frame
                .encode_into(&mut self.scratch)
                .map_err(|_| TransportError::Invalid("unencodable frame"))?;
            let written = self.socket.send_to(&self.scratch[..len], addr)?;
            if written != len {
                return Err(TransportError::Invalid("short datagram write"));
            }
            self.frames_sent += 1;
        }
        // The wire has no simulated clock: the packet left now, and UDP
        // promises nothing about arrival. Report the logical dispatch
        // instant; actual delivery surfaces at the receiver's poll loop.
        Ok(TransportResult::Delivered {
            start_us: link.now_us,
            arrival_us: link.now_us,
            corrupt: false,
        })
    }

    fn poll_deliveries(
        &mut self,
        budget_us: u64,
        sink: &mut dyn FnMut(Delivery<'_>),
    ) -> Result<usize, TransportError> {
        if self.closed {
            return Err(TransportError::Closed);
        }
        let deadline = Instant::now() + Duration::from_micros(budget_us);
        let mut delivered = 0usize;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Ok(delivered);
            }
            // Never block past the budget (minimum 1ms: a zero Duration
            // would mean "no timeout" on std sockets).
            self.socket
                .set_read_timeout(Some((deadline - now).max(Duration::from_millis(1))))?;
            let n = match self.socket.recv_from(&mut self.recv_buf) {
                Ok((n, _peer)) => n,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(delivered);
                }
                Err(e) => return Err(TransportError::Io(e)),
            };
            let frame = match WireFrame::decode(&self.recv_buf[..n]) {
                Ok(f) => f,
                Err(_) => {
                    self.malformed += 1;
                    continue;
                }
            };
            let key = (
                frame.stream,
                frame.epoch,
                frame.packet,
                frame.attempt,
                frame.from_rank,
            );
            let frag_total = frame.frag_total;
            let asm = self
                .assemblers
                .entry(key)
                .or_insert_with(|| PacketAssembler::new(frag_total));
            match asm.accept(frame) {
                Ok(Some(payload)) => {
                    self.assemblers.remove(&key);
                    self.packets_received += 1;
                    delivered += 1;
                    sink(Delivery {
                        stream: key.0,
                        epoch: key.1,
                        packet: key.2,
                        attempt: key.3,
                        from_rank: key.4,
                        payload: &payload,
                    });
                }
                Ok(None) => {}
                Err(_) => {
                    // Inconsistent fragment (duplicate, range, total
                    // mismatch): drop the datagram, keep the assembly.
                    self.malformed += 1;
                }
            }
        }
    }

    fn close(&mut self) -> Result<(), TransportError> {
        if self.closed {
            return Ok(());
        }
        self.closed = true;
        for (group, interface) in self.groups.drain(..) {
            // Best effort: the membership dies with the socket anyway.
            let _ = self.socket.leave_multicast_v4(&group, &interface);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (UdpTransport, UdpTransport) {
        let a = UdpTransport::bind("127.0.0.1:0").unwrap();
        let b = UdpTransport::bind("127.0.0.1:0").unwrap();
        let addrs = vec![a.local_addr().unwrap(), b.local_addr().unwrap()];
        let (mut a, mut b) = (a, b);
        a.set_peers(addrs.clone());
        b.set_peers(addrs);
        (a, b)
    }

    fn view(packet: u32, payload: &[u8]) -> PacketView<'_> {
        PacketView {
            stream: 1,
            epoch: 0,
            packet,
            attempt: 0,
            payload,
        }
    }

    fn ctx() -> LinkContext<'static> {
        LinkContext {
            now_us: 0.0,
            route: &[],
            from_rank: 0,
            to_rank: 1,
        }
    }

    #[test]
    fn unicast_packet_roundtrip() {
        let (mut a, mut b) = pair();
        a.open().unwrap();
        b.open().unwrap();
        let payload: Vec<u8> = (0..5000).map(|i| (i % 253) as u8).collect();
        a.set_mtu(HEADER_LEN + 100); // force 50 fragments
        a.send(HostId(0), HostId(1), view(7, &payload), ctx())
            .unwrap();
        let mut got: Vec<(u32, Vec<u8>)> = Vec::new();
        let n = b
            .poll_deliveries(2_000_000, &mut |d| got.push((d.packet, d.payload.to_vec())))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 7);
        assert_eq!(got[0].1, payload);
        assert_eq!(a.frames_sent(), 50);
        assert_eq!(b.malformed(), 0);
        a.close().unwrap();
        b.close().unwrap();
    }

    #[test]
    fn garbage_datagrams_are_counted_not_fatal() {
        let (mut a, mut b) = pair();
        let raw = UdpSocket::bind("127.0.0.1:0").unwrap();
        raw.send_to(b"not a frame", b.local_addr().unwrap())
            .unwrap();
        raw.send_to(&[0u8; 64], b.local_addr().unwrap()).unwrap();
        a.send(HostId(0), HostId(1), view(0, b"ok"), ctx()).unwrap();
        let mut got = 0usize;
        // Budget generous enough for three datagrams on loopback.
        b.poll_deliveries(2_000_000, &mut |_d| got += 1).unwrap();
        assert_eq!(got, 1);
        assert_eq!(b.malformed(), 2);
    }

    #[test]
    fn send_without_peer_table_is_invalid() {
        let mut t = UdpTransport::bind("127.0.0.1:0").unwrap();
        let err = t.send(HostId(0), HostId(3), view(0, b"x"), ctx());
        assert!(matches!(err, Err(TransportError::Invalid(_))));
    }

    #[test]
    fn closed_transport_refuses_traffic() {
        let (mut a, _b) = pair();
        a.close().unwrap();
        assert!(matches!(
            a.send(HostId(0), HostId(1), view(0, b"x"), ctx()),
            Err(TransportError::Closed)
        ));
        assert!(matches!(
            a.poll_deliveries(10, &mut |_d| {}),
            Err(TransportError::Closed)
        ));
        assert!(matches!(a.open(), Err(TransportError::Closed)));
    }

    /// Real IGMP membership: join a 239.0.0.0/8 group with loopback on,
    /// address a peer slot at the group, and hear our own group send. Some
    /// sandboxes forbid multicast joins — that skips the test, it doesn't
    /// fail it (the capability is exercised wherever the OS allows it).
    #[test]
    fn multicast_group_self_receive() {
        let mut t = match UdpTransport::bind("0.0.0.0:0") {
            Ok(t) => t,
            Err(e) => {
                eprintln!("skipping multicast smoke: bind failed: {e}");
                return;
            }
        };
        let group = Ipv4Addr::new(239, 41, 7, 3);
        if let Err(e) = t.join_group(group, Ipv4Addr::UNSPECIFIED, 1) {
            eprintln!("skipping multicast smoke: join failed: {e}");
            return;
        }
        let port = t.local_addr().unwrap().port();
        t.set_peers(vec![
            SocketAddr::from((Ipv4Addr::LOCALHOST, 0)), // rank 0 unused
            SocketAddr::from((group, port)),
        ]);
        t.open().unwrap();
        t.send(HostId(0), HostId(1), view(3, b"group"), ctx())
            .unwrap();
        let mut got: Vec<u32> = Vec::new();
        t.poll_deliveries(2_000_000, &mut |d| got.push(d.packet))
            .unwrap();
        if got != [3] {
            eprintln!("skipping multicast smoke: no loopback delivery (kernel may filter)");
            return;
        }
        t.close().unwrap();
    }
}
