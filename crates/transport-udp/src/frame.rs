//! The wire codec: one UDP datagram per frame, one or more frames per
//! multicast packet.
//!
//! A frame is a fixed 30-byte little-endian header followed by up to
//! `mtu - HEADER_LEN` payload bytes:
//!
//! ```text
//! offset  size  field
//!      0     4  magic        0x4F4D4358 ("OMCX" little-endian)
//!      4     4  stream       job index within the workload
//!      8     4  epoch        repair epoch (0 = initial issue)
//!     12     4  packet       0-based packet sequence within the message
//!     16     4  attempt      transmission attempt (0 = first)
//!     20     4  from_rank    sender's rank in the multicast tree
//!     24     2  frag         0-based fragment index within the packet
//!     26     2  frag_total   fragments in the packet (>= 1)
//!     28     2  payload_len  payload bytes following the header
//!     30     …  payload
//! ```
//!
//! The identity quintuple `(stream, epoch, packet, attempt, from_rank)` is
//! exactly the simulator's transmission identity — the same tuple the fault
//! PRF keys off — so a wire trace and a simulator trace describe the same
//! events in the same vocabulary. Fragmentation reuses the packetization
//! substrate ([`optimcast_netsim::packet`]) and the zero-copy
//! [`Bytes`] buffer, so a fragmented packet never copies its payload until
//! reassembly concatenates it.
//!
//! Decoding is strict: short buffers, bad magic, fragment indices out of
//! range, and length mismatches (including trailing garbage) all return
//! typed [`FrameError`]s rather than truncating silently.

use optimcast_netsim::bytes::Bytes;
use optimcast_netsim::packet::{fragment, Reassembly, ReassemblyError};

/// Frame magic: "OMCX" read as a little-endian `u32`.
pub const MAGIC: u32 = 0x4F4D_4358;

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 30;

/// One frame: the unit that fits in a single UDP datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFrame {
    /// Job index within the workload.
    pub stream: u32,
    /// Repair epoch the transmission was issued under.
    pub epoch: u32,
    /// 0-based packet sequence within the message.
    pub packet: u32,
    /// Transmission attempt, 0 on first dispatch.
    pub attempt: u32,
    /// Sender's rank in the multicast tree.
    pub from_rank: u32,
    /// 0-based fragment index within the packet.
    pub frag: u16,
    /// Fragments in the packet (>= 1).
    pub frag_total: u16,
    /// Fragment payload (zero-copy view of the packet payload).
    pub payload: Bytes,
}

/// Typed wire-codec failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer is shorter than the header (or its declared payload).
    TooShort {
        /// Bytes required.
        need: usize,
        /// Bytes available.
        got: usize,
    },
    /// The first four bytes are not the frame magic.
    BadMagic {
        /// The value found instead of [`MAGIC`].
        got: u32,
    },
    /// `frag_total` was zero — a packet always has at least one fragment.
    ZeroFragments,
    /// `frag >= frag_total`.
    FragOutOfRange {
        /// The offending fragment index.
        frag: u16,
        /// The packet's fragment count.
        total: u16,
    },
    /// Declared payload length disagrees with the buffer (trailing garbage
    /// is rejected, not ignored).
    LengthMismatch {
        /// Bytes the header declared.
        declared: usize,
        /// Bytes actually present after the header.
        got: usize,
    },
    /// The payload cannot be described by the u16 length field.
    PayloadTooLarge {
        /// The oversized payload length.
        len: usize,
    },
    /// The MTU leaves no room for payload after the header.
    MtuTooSmall {
        /// The offending MTU.
        mtu: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooShort { need, got } => {
                write!(f, "frame too short: need {need} bytes, got {got}")
            }
            FrameError::BadMagic { got } => {
                write!(f, "bad frame magic {got:#010x} (expected {MAGIC:#010x})")
            }
            FrameError::ZeroFragments => write!(f, "frame declares zero fragments"),
            FrameError::FragOutOfRange { frag, total } => {
                write!(f, "fragment {frag} out of range (total {total})")
            }
            FrameError::LengthMismatch { declared, got } => {
                write!(f, "payload length mismatch: declared {declared}, got {got}")
            }
            FrameError::PayloadTooLarge { len } => {
                write!(f, "payload of {len} bytes exceeds the u16 length field")
            }
            FrameError::MtuTooSmall { mtu } => {
                write!(
                    f,
                    "mtu {mtu} leaves no payload room (header is {HEADER_LEN} bytes)"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl WireFrame {
    /// Encoded size of this frame in bytes.
    pub fn encoded_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }

    /// Serializes the frame into `buf` (cleared first) and returns the
    /// encoded length. Reusing one scratch buffer across sends keeps the
    /// transmit path allocation-free.
    pub fn encode_into(&self, buf: &mut Vec<u8>) -> Result<usize, FrameError> {
        if self.payload.len() > usize::from(u16::MAX) {
            return Err(FrameError::PayloadTooLarge {
                len: self.payload.len(),
            });
        }
        if self.frag_total == 0 {
            return Err(FrameError::ZeroFragments);
        }
        if self.frag >= self.frag_total {
            return Err(FrameError::FragOutOfRange {
                frag: self.frag,
                total: self.frag_total,
            });
        }
        buf.clear();
        buf.reserve(self.encoded_len());
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.extend_from_slice(&self.stream.to_le_bytes());
        buf.extend_from_slice(&self.epoch.to_le_bytes());
        buf.extend_from_slice(&self.packet.to_le_bytes());
        buf.extend_from_slice(&self.attempt.to_le_bytes());
        buf.extend_from_slice(&self.from_rank.to_le_bytes());
        buf.extend_from_slice(&self.frag.to_le_bytes());
        buf.extend_from_slice(&self.frag_total.to_le_bytes());
        buf.extend_from_slice(&(self.payload.len() as u16).to_le_bytes());
        buf.extend_from_slice(&self.payload);
        Ok(buf.len())
    }

    /// Serializes the frame into a fresh buffer.
    pub fn encode(&self) -> Result<Vec<u8>, FrameError> {
        let mut buf = Vec::new();
        self.encode_into(&mut buf)?;
        Ok(buf)
    }

    /// Parses one frame from `buf`. Strict: the buffer must contain exactly
    /// the header plus the declared payload.
    pub fn decode(buf: &[u8]) -> Result<WireFrame, FrameError> {
        if buf.len() < HEADER_LEN {
            return Err(FrameError::TooShort {
                need: HEADER_LEN,
                got: buf.len(),
            });
        }
        let u32_at = |o: usize| u32::from_le_bytes(buf[o..o + 4].try_into().expect("4 bytes"));
        let u16_at = |o: usize| u16::from_le_bytes(buf[o..o + 2].try_into().expect("2 bytes"));
        let magic = u32_at(0);
        if magic != MAGIC {
            return Err(FrameError::BadMagic { got: magic });
        }
        let frag = u16_at(24);
        let frag_total = u16_at(26);
        if frag_total == 0 {
            return Err(FrameError::ZeroFragments);
        }
        if frag >= frag_total {
            return Err(FrameError::FragOutOfRange {
                frag,
                total: frag_total,
            });
        }
        let declared = usize::from(u16_at(28));
        let got = buf.len() - HEADER_LEN;
        if declared != got {
            return Err(FrameError::LengthMismatch { declared, got });
        }
        Ok(WireFrame {
            stream: u32_at(4),
            epoch: u32_at(8),
            packet: u32_at(12),
            attempt: u32_at(16),
            from_rank: u32_at(20),
            frag,
            frag_total,
            payload: Bytes::from(&buf[HEADER_LEN..]),
        })
    }
}

/// Fragments one multicast packet's payload into MTU-sized frames, all
/// carrying the same transmission identity. Zero-copy: each frame's payload
/// is a view of `payload`. An empty payload still yields one (empty) frame —
/// the multicast must deliver at least a header.
#[allow(clippy::too_many_arguments)]
pub fn fragment_packet(
    stream: u32,
    epoch: u32,
    packet: u32,
    attempt: u32,
    from_rank: u32,
    payload: Bytes,
    mtu: usize,
) -> Result<Vec<WireFrame>, FrameError> {
    if mtu <= HEADER_LEN {
        return Err(FrameError::MtuTooSmall { mtu });
    }
    let room = (mtu - HEADER_LEN).min(usize::from(u16::MAX));
    let pieces = fragment(payload, room as u32);
    let total = u16::try_from(pieces.len())
        .map_err(|_| FrameError::PayloadTooLarge { len: pieces.len() })?;
    Ok(pieces
        .into_iter()
        .map(|p| WireFrame {
            stream,
            epoch,
            packet,
            attempt,
            from_rank,
            frag: p.index as u16,
            frag_total: total,
            payload: p.payload,
        })
        .collect())
}

/// Reassembles one packet from its fragments (any arrival order,
/// duplicates rejected), wrapping [`Reassembly`] with wire-level identity
/// checks.
#[derive(Debug)]
pub struct PacketAssembler {
    frag_total: u16,
    inner: Reassembly,
}

/// Reassembly failures at the wire level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssembleError {
    /// A fragment advertised a different fragment count than the first.
    FragTotalMismatch {
        /// Count the assembler was created with.
        expected: u16,
        /// Count the offending fragment carried.
        got: u16,
    },
    /// The underlying reassembly rejected the fragment.
    Reassembly(ReassemblyError),
}

impl std::fmt::Display for AssembleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AssembleError::FragTotalMismatch { expected, got } => {
                write!(f, "fragment total {got} != stream total {expected}")
            }
            AssembleError::Reassembly(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AssembleError {}

impl PacketAssembler {
    /// An assembler for a packet split into `frag_total` fragments.
    ///
    /// # Panics
    ///
    /// Panics if `frag_total == 0` (decode rejects such frames first).
    pub fn new(frag_total: u16) -> Self {
        PacketAssembler {
            frag_total,
            inner: Reassembly::new(u32::from(frag_total)),
        }
    }

    /// Accepts one fragment; returns the reassembled payload once the last
    /// fragment lands.
    pub fn accept(&mut self, frame: WireFrame) -> Result<Option<Bytes>, AssembleError> {
        if frame.frag_total != self.frag_total {
            return Err(AssembleError::FragTotalMismatch {
                expected: self.frag_total,
                got: frame.frag_total,
            });
        }
        self.inner
            .accept(optimcast_netsim::packet::Packet {
                index: u32::from(frame.frag),
                total: u32::from(self.frag_total),
                payload: frame.payload,
            })
            .map_err(AssembleError::Reassembly)?;
        if self.inner.is_complete() {
            let done = std::mem::replace(&mut self.inner, Reassembly::new(1));
            Ok(Some(done.assemble()))
        } else {
            Ok(None)
        }
    }

    /// Fragments received so far.
    pub fn received(&self) -> u32 {
        self.inner.received()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(payload: &[u8]) -> WireFrame {
        WireFrame {
            stream: 3,
            epoch: 1,
            packet: 9,
            attempt: 2,
            from_rank: 4,
            frag: 0,
            frag_total: 1,
            payload: Bytes::from(payload),
        }
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let f = WireFrame {
            stream: u32::MAX,
            epoch: 7,
            packet: 12345,
            attempt: 3,
            from_rank: 63,
            frag: 5,
            frag_total: 9,
            payload: Bytes::from(&b"hello multicast"[..]),
        };
        let buf = f.encode().unwrap();
        assert_eq!(buf.len(), HEADER_LEN + 15);
        assert_eq!(WireFrame::decode(&buf).unwrap(), f);
    }

    #[test]
    fn truncated_and_garbage_are_typed_errors() {
        let buf = frame(b"abc").encode().unwrap();
        assert_eq!(
            WireFrame::decode(&buf[..10]),
            Err(FrameError::TooShort {
                need: HEADER_LEN,
                got: 10
            })
        );
        assert_eq!(
            WireFrame::decode(&buf[..HEADER_LEN + 1]),
            Err(FrameError::LengthMismatch {
                declared: 3,
                got: 1
            })
        );
        let mut extra = buf.clone();
        extra.push(0xAA);
        assert_eq!(
            WireFrame::decode(&extra),
            Err(FrameError::LengthMismatch {
                declared: 3,
                got: 4
            })
        );
        let mut bad = buf;
        bad[0] ^= 0xFF;
        assert!(matches!(
            WireFrame::decode(&bad),
            Err(FrameError::BadMagic { .. })
        ));
    }

    #[test]
    fn fragment_reassemble_shuffled() {
        let payload: Vec<u8> = (0..1000).map(|i| (i % 251) as u8).collect();
        let frames =
            fragment_packet(0, 0, 4, 0, 2, Bytes::from(payload.clone()), HEADER_LEN + 64).unwrap();
        assert_eq!(frames.len(), 1000usize.div_ceil(64));
        let mut shuffled = frames.clone();
        shuffled.reverse();
        shuffled.swap(0, 3);
        let mut asm = PacketAssembler::new(frames[0].frag_total);
        let mut out = None;
        for f in shuffled {
            if let Some(msg) = asm.accept(f).unwrap() {
                out = Some(msg);
            }
        }
        assert_eq!(&*out.expect("complete"), &payload[..]);
    }

    #[test]
    fn empty_payload_is_one_frame() {
        let frames = fragment_packet(0, 0, 0, 0, 0, Bytes::new(), 1500).unwrap();
        assert_eq!(frames.len(), 1);
        let buf = frames[0].encode().unwrap();
        assert_eq!(buf.len(), HEADER_LEN);
        assert_eq!(WireFrame::decode(&buf).unwrap(), frames[0]);
    }

    #[test]
    fn tiny_mtu_rejected() {
        assert_eq!(
            fragment_packet(0, 0, 0, 0, 0, Bytes::from(&[1u8][..]), HEADER_LEN),
            Err(FrameError::MtuTooSmall { mtu: HEADER_LEN })
        );
    }

    #[test]
    fn duplicate_fragment_rejected() {
        let frames =
            fragment_packet(0, 0, 0, 0, 0, Bytes::from(vec![5u8; 100]), HEADER_LEN + 40).unwrap();
        let mut asm = PacketAssembler::new(frames[0].frag_total);
        asm.accept(frames[0].clone()).unwrap();
        assert_eq!(
            asm.accept(frames[0].clone()),
            Err(AssembleError::Reassembly(ReassemblyError::Duplicate {
                index: 0
            }))
        );
    }
}
