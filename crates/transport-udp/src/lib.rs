//! # optimcast-transport-udp
//!
//! The real-wire backend for the optimcast [`Transport`] abstraction:
//! the same k-binomial trees and FPFS schedules the paper analyses and the
//! simulator executes, driven over `std::net::UdpSocket` datagrams.
//!
//! Three layers:
//!
//! * [`frame`] — the MTU-aware wire codec: a 30-byte little-endian header
//!   carrying the transmission identity (`stream`, `epoch`, `packet`,
//!   `attempt`, `from_rank`) plus fragmentation/reassembly built on the
//!   netsim packetization substrate;
//! * [`udp`] — [`UdpTransport`], implementing the netsim `Transport` trait
//!   with per-peer unicast (software multicast along the tree) and optional
//!   real IPv4 multicast-group membership, with bounded-timeout receive
//!   loops and malformed-datagram accounting;
//! * [`runner`] — [`WirePlan`] / [`run_source`] / [`run_sink`] /
//!   [`loopback_demo`]: the schedule-driven roles whose per-receiver
//!   delivery order is checked against [`Schedule::arrival_order`] — the
//!   sim-vs-wire parity contract.
//!
//! Std-only by design: the build environment is offline, so everything
//! here rests on `std::net` and the workspace's own crates.
//!
//! [`Transport`]: optimcast_netsim::transport::Transport
//! [`Schedule::arrival_order`]: optimcast_core::schedule::Schedule::arrival_order

pub mod frame;
pub mod runner;
pub mod udp;

pub use frame::{
    fragment_packet, AssembleError, FrameError, PacketAssembler, WireFrame, HEADER_LEN, MAGIC,
};
pub use runner::{loopback_demo, run_sink, run_source, SinkReport, WirePlan};
pub use udp::{UdpTransport, DEFAULT_MTU};
