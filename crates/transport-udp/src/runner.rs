//! Driving a k-binomial multicast over a real transport.
//!
//! The simulator executes a [`Schedule`] against simulated time; this
//! module executes the *same* schedule against a [`Transport`]: the source
//! walks `sends_from_iter(SOURCE)` in step order, and every interior node
//! applies the FPFS forwarding rule — forward each packet to all tree
//! children the moment it completes reassembly. On a clean loopback link
//! (FIFO per socket pair, no loss) the per-receiver completion order must
//! therefore equal [`Schedule::arrival_order`] — the parity contract the
//! sim-vs-wire test and the `wire-smoke` CI job assert.

use crate::udp::UdpTransport;
use optimcast_core::builders::kbinomial_tree;
use optimcast_core::schedule::{fpfs_schedule, Schedule};
use optimcast_core::tree::{MulticastTree, Rank};
use optimcast_netsim::bytes::Bytes;
use optimcast_netsim::transport::{LinkContext, PacketView, Transport, TransportError};
use optimcast_topology::graph::HostId;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One wire run's complete description: the tree, the step schedule, and
/// the deterministic message every participant can independently verify.
#[derive(Debug, Clone)]
pub struct WirePlan {
    /// Participants (source + n-1 destinations).
    pub n: u32,
    /// k-binomial tree parameter.
    pub k: u32,
    /// Packets per message.
    pub m: u32,
    /// Payload bytes per packet (every packet the same size, so packet
    /// boundaries are implied by index).
    pub packet_payload: usize,
    /// Datagram budget per frame, header included.
    pub mtu: usize,
    /// The multicast tree (rank space, source = rank 0).
    pub tree: MulticastTree,
    /// The FPFS step schedule the wire run replays.
    pub schedule: Schedule,
}

impl WirePlan {
    /// Plans an `m`-packet multicast to `n` participants over the
    /// k-binomial tree. `payload_len` is rounded up so the message splits
    /// into exactly `m` equal packets.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, `k < 1`, or `m < 1`.
    pub fn new(n: u32, k: u32, m: u32, payload_len: usize, mtu: usize) -> WirePlan {
        assert!(n >= 2, "a multicast needs at least one destination");
        assert!(k >= 1, "k-binomial trees need k >= 1");
        assert!(m >= 1, "a message has at least one packet");
        let tree = kbinomial_tree(n, k);
        let schedule = fpfs_schedule(&tree, m);
        let packet_payload = payload_len.div_ceil(m as usize).max(1);
        WirePlan {
            n,
            k,
            m,
            packet_payload,
            mtu,
            tree,
            schedule,
        }
    }

    /// The full message: a deterministic byte pattern every participant
    /// regenerates locally to verify reassembly without any side channel.
    pub fn message(&self) -> Bytes {
        let len = self.packet_payload * self.m as usize;
        Bytes::from(
            (0..len)
                .map(|i| (i.wrapping_mul(131).wrapping_add(17) % 256) as u8)
                .collect::<Vec<u8>>(),
        )
    }

    /// Zero-copy payload of packet `p`.
    pub fn packet_payload_of(&self, message: &Bytes, p: u32) -> Bytes {
        let per = self.packet_payload;
        message.slice(p as usize * per..(p as usize + 1) * per)
    }

    /// The predicted per-receiver delivery order (the parity oracle).
    pub fn expected_order(&self, rank: Rank) -> Vec<u32> {
        self.schedule.arrival_order(rank)
    }
}

/// What one sink observed, against what the schedule predicted.
#[derive(Debug, Clone)]
pub struct SinkReport {
    /// The sink's rank.
    pub rank: u32,
    /// Packet indices in first-completion order.
    pub order: Vec<u32>,
    /// [`Schedule::arrival_order`] for this rank.
    pub predicted: Vec<u32>,
    /// The reassembled message matched the plan's deterministic pattern.
    pub message_ok: bool,
    /// The deadline expired before all packets arrived.
    pub timed_out: bool,
}

impl SinkReport {
    /// True when the wire run matched the simulator's prediction exactly:
    /// every packet arrived, in predicted order, with correct bytes.
    pub fn parity(&self) -> bool {
        !self.timed_out && self.message_ok && self.order == self.predicted
    }

    /// One-line JSON rendering for scripting (the CLI prints this).
    pub fn to_json_line(&self) -> String {
        let fmt_order = |v: &[u32]| {
            let items: Vec<String> = v.iter().map(u32::to_string).collect();
            format!("[{}]", items.join(","))
        };
        format!(
            "{{\"rank\": {}, \"order\": {}, \"predicted\": {}, \"message_ok\": {}, \"timed_out\": {}, \"parity\": {}}}",
            self.rank,
            fmt_order(&self.order),
            fmt_order(&self.predicted),
            self.message_ok,
            self.timed_out,
            self.parity()
        )
    }
}

fn link_ctx(from: Rank, to: Rank, now_us: f64) -> LinkContext<'static> {
    LinkContext {
        now_us,
        route: &[],
        from_rank: from.0,
        to_rank: to.0,
    }
}

/// Runs the source role: walk the schedule's root sends in step order,
/// putting each packet on the wire. Returns the number of sends performed.
pub fn run_source(plan: &WirePlan, transport: &mut dyn Transport) -> Result<u32, TransportError> {
    transport.open()?;
    let message = plan.message();
    let mut sent = 0u32;
    for e in plan.schedule.sends_from_iter(Rank::SOURCE) {
        let payload = plan.packet_payload_of(&message, e.packet);
        transport.send(
            HostId(0),
            HostId(e.to.0),
            PacketView {
                stream: 0,
                epoch: 0,
                packet: e.packet,
                attempt: 0,
                payload: &payload,
            },
            link_ctx(Rank::SOURCE, e.to, f64::from(e.step)),
        )?;
        sent += 1;
    }
    Ok(sent)
}

/// Runs one sink role: poll for deliveries until the whole message is in
/// (or `timeout` expires), applying the FPFS rule — each packet is
/// forwarded to all tree children the moment it first completes. Duplicate
/// completions (UDP is at-least-once here) are ignored.
pub fn run_sink(
    plan: &WirePlan,
    rank: Rank,
    transport: &mut dyn Transport,
    timeout: Duration,
) -> Result<SinkReport, TransportError> {
    transport.open()?;
    let m = plan.m as usize;
    let kids = plan.tree.children(rank);
    let mut seen = vec![false; m];
    let mut order: Vec<u32> = Vec::with_capacity(m);
    let mut payloads: Vec<Option<Vec<u8>>> = vec![None; m];
    let deadline = Instant::now() + timeout;
    let mut timed_out = false;
    while order.len() < m {
        let now = Instant::now();
        if now >= deadline {
            timed_out = true;
            break;
        }
        let slice = (deadline - now).min(Duration::from_millis(50));
        // Completions are buffered and forwarded after the poll returns
        // (the transport is busy inside its own receive loop).
        let mut fresh: Vec<(u32, Vec<u8>)> = Vec::new();
        transport.poll_deliveries(slice.as_micros() as u64, &mut |d| {
            if d.stream != 0 || d.epoch != 0 {
                return;
            }
            let p = d.packet as usize;
            if p >= m || seen[p] {
                return;
            }
            seen[p] = true;
            order.push(d.packet);
            payloads[p] = Some(d.payload.to_vec());
            fresh.push((d.packet, d.payload.to_vec()));
        })?;
        for (p, payload) in &fresh {
            for &c in kids {
                transport.send(
                    HostId(rank.0),
                    HostId(c.0),
                    PacketView {
                        stream: 0,
                        epoch: 0,
                        packet: *p,
                        attempt: 0,
                        payload,
                    },
                    link_ctx(rank, c, 0.0),
                )?;
            }
        }
    }
    let message_ok = !timed_out && {
        let expect = plan.message();
        let mut whole: Vec<u8> = Vec::with_capacity(expect.len());
        for p in &payloads {
            match p {
                Some(bytes) => whole.extend_from_slice(bytes),
                None => break,
            }
        }
        whole[..] == *expect
    };
    transport.close()?;
    Ok(SinkReport {
        rank: rank.0,
        order,
        predicted: plan.expected_order(rank),
        message_ok,
        timed_out,
    })
}

/// Single-process loopback demo: one [`UdpTransport`] per rank on an
/// ephemeral `127.0.0.1` port, sinks on threads, source on the caller's
/// thread — the same tree, the same schedule, real datagrams. Returns the
/// sink reports sorted by rank.
pub fn loopback_demo(
    n: u32,
    k: u32,
    m: u32,
    payload_len: usize,
    mtu: usize,
    timeout: Duration,
) -> Result<Vec<SinkReport>, TransportError> {
    let plan = Arc::new(WirePlan::new(n, k, m, payload_len, mtu));
    let mut transports = Vec::with_capacity(n as usize);
    for _ in 0..n {
        transports.push(UdpTransport::bind("127.0.0.1:0")?);
    }
    let peers: Vec<SocketAddr> = transports
        .iter()
        .map(UdpTransport::local_addr)
        .collect::<Result<_, _>>()?;
    for t in &mut transports {
        t.set_peers(peers.clone());
        t.set_mtu(mtu);
    }
    let mut iter = transports.into_iter();
    let mut source = iter.next().expect("n >= 2");
    let handles: Vec<_> = iter
        .enumerate()
        .map(|(i, mut t)| {
            let plan = Arc::clone(&plan);
            std::thread::spawn(move || run_sink(&plan, Rank(i as u32 + 1), &mut t, timeout))
        })
        .collect();
    run_source(&plan, &mut source)?;
    source.close()?;
    let mut reports = Vec::with_capacity(handles.len());
    for h in handles {
        reports.push(h.join().expect("sink thread panicked")?);
    }
    reports.sort_by_key(|r| r.rank);
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::HEADER_LEN;

    #[test]
    fn plan_rounds_payload_to_packet_multiple() {
        let plan = WirePlan::new(8, 2, 3, 1000, 1400);
        assert_eq!(plan.packet_payload, 334);
        assert_eq!(plan.message().len(), 1002);
        let msg = plan.message();
        let p2 = plan.packet_payload_of(&msg, 2);
        assert_eq!(p2.len(), 334);
        assert_eq!(&*p2, &msg[668..]);
    }

    #[test]
    fn loopback_demo_reaches_parity() {
        let reports = loopback_demo(
            10,
            2,
            4,
            2000,
            HEADER_LEN + 200, // force multi-fragment packets
            Duration::from_secs(20),
        )
        .expect("demo runs");
        assert_eq!(reports.len(), 9);
        for r in &reports {
            assert!(
                r.parity(),
                "rank {} diverged: got {:?}, predicted {:?}, message_ok {}, timed_out {}",
                r.rank,
                r.order,
                r.predicted,
                r.message_ok,
                r.timed_out
            );
        }
    }

    #[test]
    fn sink_report_json_line_shape() {
        let r = SinkReport {
            rank: 3,
            order: vec![0, 1],
            predicted: vec![0, 1],
            message_ok: true,
            timed_out: false,
        };
        assert_eq!(
            r.to_json_line(),
            "{\"rank\": 3, \"order\": [0,1], \"predicted\": [0,1], \"message_ok\": true, \"timed_out\": false, \"parity\": true}"
        );
    }
}
