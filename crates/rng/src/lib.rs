//! # optimcast-rng
//!
//! Self-contained deterministic randomness for the workspace. The
//! experiment pipeline (§5.2 methodology) needs nothing more than a
//! seedable, portable, statistically solid stream generator plus uniform
//! range sampling and shuffling — this crate provides exactly that with no
//! external dependencies, so every topology, destination set, and workload
//! is a pure function of its `u64` seed on every platform.
//!
//! The generator is ChaCha with 8 rounds (Bernstein's ChaCha reduced-round
//! variant, the same core the `rand_chacha` crate exposes as `ChaCha8Rng`):
//! far stronger than the LCGs simulators habitually reach for, cheap enough
//! to be nowhere near any profile, and with a well-known reference
//! implementation the block function below is checked against in the tests.

mod chacha;

pub use chacha::ChaCha8Rng;

/// Uniform sampling helpers over a raw 32/64-bit generator.
///
/// Implemented by [`ChaCha8Rng`]; the methods are provided so call sites
/// read like the familiar `rand::Rng` API.
pub trait Rng {
    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// A uniform draw from `[0, bound)` (Lemire's multiply-shift with
    /// rejection — unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling range");
        // Widening-multiply rejection sampling (Lemire 2019).
        let mut m = u128::from(self.next_u64()) * u128::from(bound);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                m = u128::from(self.next_u64()) * u128::from(bound);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform draw from a half-open or inclusive integer range, like
    /// `rand::Rng::gen_range`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformInt,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// A fair coin flip.
    fn gen_bool(&mut self) -> bool {
        self.next_u32() & 1 == 1
    }
}

/// Integer types [`Rng::gen_range`] can sample.
pub trait UniformInt: Copy {
    /// Converts to the u64 sampling domain (order-preserving).
    fn to_u64(self) -> u64;
    /// Converts back from the u64 sampling domain.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn to_u64(self) -> u64 {
                self as u64
            }
            #[inline]
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

/// Ranges [`Rng::gen_range`] accepts (`a..b` and `a..=b`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: UniformInt> SampleRange<T> for core::ops::Range<T> {
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "empty sampling range");
        T::from_u64(lo + rng.bounded_u64(hi - lo))
    }
}

impl<T: UniformInt> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "empty sampling range");
        let span = hi - lo + 1; // never overflows for the impls above (< 2^64)
        T::from_u64(lo + rng.bounded_u64(span))
    }
}

/// In-place Fisher–Yates shuffling, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Uniformly permutes the slice in place.
    fn shuffle<G: Rng + ?Sized>(&mut self, rng: &mut G);

    /// A uniformly chosen element, or `None` if the slice is empty.
    fn choose<G: Rng + ?Sized>(&self, rng: &mut G) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<G: Rng + ?Sized>(&mut self, rng: &mut G) {
        for i in (1..self.len()).rev() {
            let j = rng.bounded_u64(i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<G: Rng + ?Sized>(&self, rng: &mut G) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.bounded_u64(self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible_and_distinct() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u32> = (0..64).map(|_| a.next_u32()).collect();
        let ys: Vec<u32> = (0..64).map(|_| b.next_u32()).collect();
        let zs: Vec<u32> = (0..64).map(|_| c.next_u32()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit in 1000 draws");
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(5..=7);
            assert!((5..=7).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle moved something");
    }

    #[test]
    fn bounded_is_unbiased_at_the_edges() {
        // bound = 1 always returns 0; bound = 2^32 spans the full u32 range.
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(rng.bounded_u64(1), 0);
        }
    }

    #[test]
    #[should_panic(expected = "empty sampling range")]
    fn empty_range_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let _: u32 = rng.gen_range(5..5);
    }
}
