//! The ChaCha8 stream generator.
//!
//! Standard ChaCha state layout (Bernstein 2008 / RFC 7539 §2.3): four
//! constant words, eight key words, a 64-bit block counter, and a 64-bit
//! stream id, permuted by 8 rounds (4 double-rounds) per block. The key is
//! expanded from a `u64` seed with SplitMix64, so a single integer seed
//! yields a full 256-bit key deterministically.

use crate::Rng;

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const DOUBLE_ROUNDS: usize = 4; // ChaCha8

/// A seedable ChaCha8 random stream.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    stream: u64,
    block: [u32; 16],
    /// Next unread word of `block`; 16 = exhausted.
    cursor: usize,
}

impl ChaCha8Rng {
    /// Expands `seed` into a 256-bit key (SplitMix64) and starts the stream
    /// at block zero.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64(seed);
        let mut key = [0u32; 8];
        for pair in key.chunks_exact_mut(2) {
            let v = sm.next();
            pair[0] = v as u32;
            pair[1] = (v >> 32) as u32;
        }
        ChaCha8Rng {
            key,
            counter: 0,
            stream: 0,
            block: [0; 16],
            cursor: 16,
        }
    }

    fn refill(&mut self) {
        let mut x = [0u32; 16];
        x[..4].copy_from_slice(&CONSTANTS);
        x[4..12].copy_from_slice(&self.key);
        x[12] = self.counter as u32;
        x[13] = (self.counter >> 32) as u32;
        x[14] = self.stream as u32;
        x[15] = (self.stream >> 32) as u32;
        let input = x;
        for _ in 0..DOUBLE_ROUNDS {
            // Column round.
            quarter_round(&mut x, 0, 4, 8, 12);
            quarter_round(&mut x, 1, 5, 9, 13);
            quarter_round(&mut x, 2, 6, 10, 14);
            quarter_round(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut x, 0, 5, 10, 15);
            quarter_round(&mut x, 1, 6, 11, 12);
            quarter_round(&mut x, 2, 7, 8, 13);
            quarter_round(&mut x, 3, 4, 9, 14);
        }
        for (o, i) in x.iter_mut().zip(input) {
            *o = o.wrapping_add(i);
        }
        self.block = x;
        self.cursor = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl Rng for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor == 16 {
            self.refill();
        }
        let v = self.block[self.cursor];
        self.cursor += 1;
        v
    }
}

#[inline]
fn quarter_round(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

/// SplitMix64 (Steele, Lea & Flood 2014) — the standard seed expander.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 7539 §2.1.1 quarter-round test vector (round-count independent).
    #[test]
    fn rfc7539_quarter_round_vector() {
        let mut x = [0u32; 16];
        x[0] = 0x1111_1111;
        x[1] = 0x0102_0304;
        x[2] = 0x9b8d_6f43;
        x[3] = 0x0123_4567;
        quarter_round(&mut x, 0, 1, 2, 3);
        assert_eq!(x[0], 0xea2a_92f4);
        assert_eq!(x[1], 0xcb1c_f8ce);
        assert_eq!(x[2], 0x4581_472e);
        assert_eq!(x[3], 0x5881_c4bb);
    }

    /// Blocks differ as the counter advances, and word extraction spans
    /// block boundaries without repetition.
    #[test]
    fn stream_advances_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    /// Basic equidistribution smoke check: bit frequencies near 50%.
    #[test]
    fn bits_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut ones = 0u64;
        let draws = 4096u64;
        for _ in 0..draws {
            ones += u64::from(rng.next_u32().count_ones());
        }
        let total = draws * 32;
        let frac = ones as f64 / total as f64;
        assert!((0.49..0.51).contains(&frac), "one-bit fraction {frac}");
    }
}
