//! Simulation event vocabulary shared by the component core and the
//! forwarding engines.

use optimcast_core::tree::Rank;
use optimcast_topology::graph::HostId;

/// A discrete simulation event.
///
/// Host-level events (`TrySend`, `SendRelease`, `AckTimeout`) address
/// physical hosts, because a host's NI send unit is shared by every job it
/// participates in; the remaining events are scoped to one (job, rank).
#[derive(Debug, Clone, Copy)]
pub(crate) enum Ev {
    /// A smart-NI job with a deferred start finished its `t_s` source
    /// staging: enqueue its packets and let the source send unit go. Jobs
    /// starting at time zero skip this event and stage before the run
    /// (their packets cannot be dispatched early — no send unit fires
    /// before `t_s`); a staggered job must not surface packets in the
    /// shared host queues before it starts, or a host serving an
    /// already-running job would relay them ahead of arrival.
    JobStart(u32),
    /// The host's send unit may dispatch its next queued packet.
    TrySend(HostId),
    /// A packet's head reached the receiving NI; queue it on the receive
    /// unit. `corrupt` marks a transmission the fault plan damaged in
    /// flight — it still occupies the wire and the receive unit, then is
    /// NACKed instead of delivered.
    Arrive { item: SendItem, corrupt: bool },
    /// The receive unit finished pulling the packet in.
    RecvDone { item: SendItem, corrupt: bool },
    /// A conventional-NI host processor is ready to prepare its next child
    /// message.
    HostReady { job: u32, at: Rank },
    /// A conventional-NI host finished `t_s` staging the message for one
    /// child; enqueue its packets.
    SendPrepared {
        job: u32,
        at: Rank,
        child_idx: usize,
    },
    /// Overlapped timing: the send unit frees `t_send` after dispatch.
    /// `seq` names the dispatch the release belongs to, so with several
    /// send units the release frees exactly the unit that fired it.
    SendRelease { host: HostId, seq: u64 },
    /// Reliability layer: the acknowledgement for the host's in-flight send
    /// did not arrive in time. `seq` is the dispatch sequence number the
    /// timeout was armed for, so a stale timeout cannot release a newer
    /// transmission.
    AckTimeout { host: HostId, seq: u64 },
    /// Windowed ARQ: a send unit frees `t_send` after dispatch (the wire is
    /// clear) *without* retiring the packet's window slot — the slot stays
    /// charged until the handshake or an abandonment retires it.
    ArqRelease { host: HostId, seq: u64 },
    /// Windowed ARQ: the retransmission timer for one window slot fired
    /// (armed with PRF-derived jitter on a lost transmission). Stale if the
    /// slot has since been retired or retransmitted under a newer attempt.
    ArqTimeout {
        job: u32,
        child: Rank,
        packet: u32,
        attempt: u32,
    },
    /// Windowed ARQ: the receiver at `at` detected a gap and NACKs the
    /// coalesced missing range `[first, last]` back to its parent.
    ArqNack {
        job: u32,
        at: Rank,
        first: u32,
        last: u32,
    },
}

/// A queued packet transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SendItem {
    pub job: u32,
    pub packet: u32,
    /// Sending participant (the child's parent in the job's tree).
    pub from: Rank,
    /// Next-hop rank the packet is transmitted to.
    pub child: Rank,
    /// Final destination rank (for personalized payloads; equals `child`
    /// for replicated copies, whose identity is just the packet index).
    pub dest: Rank,
    /// Transmission attempt, 0 on first dispatch; the reliability layer
    /// re-enqueues failed sends with the attempt bumped.
    pub attempt: u32,
}
