//! Streaming multicast with backpressure and membership churn.
//!
//! The paper models one fixed `m`-packet message to a fixed group. This
//! module layers the complementary steady-state scenario over the same
//! engine: a **source emits frames** at a configured inter-frame gap, each
//! frame fragmented into MTU-sized packets, through a **bounded source
//! buffer with a drop-oldest policy** when the multicast service lags, to
//! a group whose **members join and leave mid-stream** via the incremental
//! tree splices of [`optimcast_core::membership::Membership`].
//!
//! ## Execution model
//!
//! [`StreamRun`] drives frames through the simulator one at a time: the
//! source serves at most one frame concurrently (its NI send unit is the
//! bottleneck the paper's `t_s`/`t_send` model describes), so frame `i`'s
//! service starts at `max(free_time, emit_i)` where `free_time` is the
//! previous frame's completion. Each service is one [`SimRun`] over the
//! *current* membership tree, so every per-packet mechanism — FPFS
//! forwarding, wormhole contention, sharding — applies unchanged, and a
//! one-frame churn-free stream is bit-identical to the equivalent
//! [`SimRun`] (the differential tests pin this).
//!
//! ## Drop-oldest backpressure
//!
//! While a frame is in service, newly emitted frames queue in the source
//! buffer. With a bound of `buffer_frames`, admitting a frame to a full
//! buffer evicts the **oldest queued frame** (live streams prefer fresh
//! data over stale data; dropping the newest would let one slow service
//! starve the stream's head indefinitely). A frame's fate is therefore
//! either [`FrameFate::Delivered`] or [`FrameFate::Dropped`] — never both,
//! never neither.
//!
//! ## PRF-deterministic churn
//!
//! Churn is **planned, then executed**: [`churn_plan`] derives every event
//! (time + member) as a pure function of `churn_seed` before the stream
//! starts, so the event sequence is byte-identical at any worker or shard
//! count. Events fire when the stream clock passes them (at the next
//! frame's service start): a present member leaves, an absent one joins,
//! splicing the tree live via `add_rank`/`remove_rank` while preserving
//! the ≤k fan-out bound. Leaves that would reduce the group to the source
//! alone are skipped (counted in [`StreamOutcome::churn_skipped`]).
//!
//! ## Staleness
//!
//! A delivered frame's **staleness** is `completion − emission`: the age
//! of the frame's data by the time the last receiver holds it. Queueing
//! delay under overload is included — that is the metric's point.

use crate::error::SimError;
use crate::workload::{MulticastJob, SimRun, WorkloadConfig, WorkloadOutcome};
use optimcast_core::builders::kbinomial_tree;
use optimcast_core::membership::Membership;
use optimcast_core::params::SystemParams;
use optimcast_core::tree::MulticastTree;
use optimcast_rng::{ChaCha8Rng, Rng};
use optimcast_topology::graph::HostId;
use optimcast_topology::Network;
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// Shape of one frame stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamSpec {
    /// Bytes per frame (fragmented into MTU-sized packets).
    pub frame_bytes: u32,
    /// MTU in bytes; a frame is `ceil(frame_bytes / mtu_bytes)` packets.
    pub mtu_bytes: u32,
    /// Inter-frame gap at the source (µs); frame `i` is emitted at
    /// `i * gap_us`.
    pub gap_us: f64,
    /// Total frames emitted.
    pub frames: u32,
    /// Source buffer bound in frames; `0` means unbounded. A frame
    /// admitted to a full buffer evicts the oldest queued frame.
    pub buffer_frames: u32,
    /// Number of scheduled membership churn events.
    pub churn_events: u32,
    /// PRF seed the churn plan is derived from.
    pub churn_seed: u64,
    /// Keep every frame's full [`WorkloadOutcome`] in the result (for
    /// differential tests; costs memory on long streams).
    pub keep_frame_outcomes: bool,
}

impl Default for StreamSpec {
    fn default() -> Self {
        StreamSpec {
            frame_bytes: 256,
            mtu_bytes: 64,
            gap_us: 100.0,
            frames: 16,
            buffer_frames: 0,
            churn_events: 0,
            churn_seed: 1997,
            keep_frame_outcomes: false,
        }
    }
}

/// One scheduled membership toggle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnEvent {
    /// Simulated time the event fires at (µs).
    pub at_us: f64,
    /// The member id toggled: a present member leaves, an absent one
    /// joins.
    pub member: u32,
}

/// The PRF-deterministic churn plan: `churn_events` toggles of non-source
/// members, at times uniform over the stream's emission span, in firing
/// order. A pure function of `(spec, universe)` — byte-identical at any
/// worker or shard count.
pub fn churn_plan(spec: &StreamSpec, universe: u32) -> Vec<ChurnEvent> {
    let mut rng = ChaCha8Rng::seed_from_u64(spec.churn_seed);
    let span = spec.gap_us * f64::from(spec.frames);
    let mut plan: Vec<ChurnEvent> = (0..spec.churn_events)
        .map(|_| {
            let tq = rng.bounded_u64(1_000_000);
            ChurnEvent {
                at_us: span * (tq as f64) / 1e6,
                member: rng.gen_range(1..universe),
            }
        })
        .collect();
    // Stable: simultaneous events keep their draw order.
    plan.sort_by(|a, b| a.at_us.partial_cmp(&b.at_us).expect("finite times"));
    plan
}

/// What became of one emitted frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FrameFate {
    /// Multicast to every member current at service start.
    Delivered {
        /// When the source began serving the frame (µs).
        service_start_us: f64,
        /// When the last receiver completed (µs).
        completion_us: f64,
        /// Receivers credited (group size minus the source).
        receivers: u32,
    },
    /// Evicted from a full source buffer by a newer frame.
    Dropped {
        /// Emission time of the evicting frame (µs).
        at_us: f64,
    },
}

/// One emitted frame's record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameRecord {
    /// When the source emitted the frame (µs).
    pub emitted_us: f64,
    /// Delivered or dropped.
    pub fate: FrameFate,
}

/// Per-receiver sustained-delivery statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReceiverStats {
    /// Member id (1-based; the source is member 0).
    pub member: u32,
    /// Frames this member received in full.
    pub frames_delivered: u32,
    /// Payload bytes received (`frames_delivered * frame_bytes`).
    pub bytes_delivered: u64,
    /// Sustained goodput over the stream duration (Mbit/s).
    pub goodput_mbps: f64,
    /// Mean staleness of received frames (µs).
    pub mean_staleness_us: f64,
    /// Worst staleness of received frames (µs).
    pub max_staleness_us: f64,
}

/// Results of one stream execution.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamOutcome {
    /// Packets per frame (`ceil(frame_bytes / mtu_bytes)`).
    pub packets_per_frame: u32,
    /// Every emitted frame, in emission order; each is delivered or
    /// dropped, never both.
    pub frames: Vec<FrameRecord>,
    /// Per-receiver statistics, in member-id order, for every member that
    /// received at least one frame.
    pub receivers: Vec<ReceiverStats>,
    /// Frames multicast to the group.
    pub served: u32,
    /// Frames evicted by the drop-oldest policy.
    pub dropped: u32,
    /// Churn joins applied.
    pub joins: u32,
    /// Churn leaves applied.
    pub leaves: u32,
    /// Churn leaves skipped because the group was at its minimum (source
    /// plus one receiver).
    pub churn_skipped: u32,
    /// Stream duration: last completion or last emission, whichever is
    /// later (µs).
    pub duration_us: f64,
    /// Discrete events processed across all frame services.
    pub events: u64,
    /// Worst NI send-queue depth seen across all frame services.
    pub peak_queue_len: usize,
    /// Per-frame simulator outcomes, service order (only with
    /// [`StreamSpec::keep_frame_outcomes`]).
    pub frame_outcomes: Vec<WorkloadOutcome>,
}

/// Why a stream could not run.
#[derive(Debug)]
pub enum StreamError {
    /// The [`StreamSpec`] or group shape is malformed.
    InvalidStream(&'static str),
    /// A frame's multicast failed in the simulator.
    Sim(SimError),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::InvalidStream(why) => write!(f, "invalid stream: {why}"),
            StreamError::Sim(e) => write!(f, "frame multicast failed: {e}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Sim(e) => Some(e),
            StreamError::InvalidStream(_) => None,
        }
    }
}

impl From<SimError> for StreamError {
    fn from(e: SimError) -> Self {
        StreamError::Sim(e)
    }
}

/// Builder for one stream execution, beside [`SimRun`] in the workload
/// vocabulary.
///
/// ```ignore
/// let out = StreamRun::new(&net, &binding, 16, 2, &params, spec)
///     .config(cfg)          // optional: contention / NI / sharding
///     .run()?;
/// ```
pub struct StreamRun<'a, N: Network> {
    net: &'a N,
    binding: &'a [HostId],
    initial: u32,
    k: u32,
    params: &'a SystemParams,
    spec: StreamSpec,
    config: WorkloadConfig,
}

impl<'a, N: Network> StreamRun<'a, N> {
    /// Starts a stream description. `binding[u]` is the host of member
    /// `u`, fixing the member universe to `binding.len()`; the initial
    /// group is members `0..initial` (member 0 is the source) on a
    /// k-binomial tree of fan-out `k`.
    pub fn new(
        net: &'a N,
        binding: &'a [HostId],
        initial: u32,
        k: u32,
        params: &'a SystemParams,
        spec: StreamSpec,
    ) -> Self {
        StreamRun {
            net,
            binding,
            initial,
            k,
            params,
            spec,
            config: WorkloadConfig::default(),
        }
    }

    /// Per-frame simulator configuration (contention, NI timing/model,
    /// sharding). Shard settings change wall-clock strategy only: the
    /// outcome stays byte-identical.
    #[must_use]
    pub fn config(mut self, config: WorkloadConfig) -> Self {
        self.config = config;
        self
    }

    fn validate(&self) -> Result<(), StreamError> {
        let err = StreamError::InvalidStream;
        if self.binding.len() < 2 {
            return Err(err("the member universe needs a source and a receiver"));
        }
        if self.initial < 2 || self.initial as usize > self.binding.len() {
            return Err(err("initial group must be 2..=universe members"));
        }
        if self.k == 0 {
            return Err(err("fan-out bound k must be at least 1"));
        }
        if self.spec.frame_bytes == 0 || self.spec.mtu_bytes == 0 {
            return Err(err("frame and MTU sizes must be at least one byte"));
        }
        if self.spec.frames == 0 {
            return Err(err("a stream emits at least one frame"));
        }
        if !(self.spec.gap_us > 0.0 && self.spec.gap_us.is_finite()) {
            return Err(err("inter-frame gap must be positive and finite"));
        }
        Ok(())
    }

    /// Executes the stream.
    ///
    /// # Errors
    ///
    /// [`StreamError::InvalidStream`] for a malformed spec or group shape;
    /// [`StreamError::Sim`] if any frame's multicast fails.
    pub fn run(self) -> Result<StreamOutcome, StreamError> {
        self.validate()?;
        let spec = &self.spec;
        let universe = self.binding.len() as u32;
        let packets = spec.frame_bytes.div_ceil(spec.mtu_bytes);
        let emit = |i: u32| f64::from(i) * spec.gap_us;

        let members: Vec<u32> = (0..self.initial).collect();
        let mut group = Membership::new(
            kbinomial_tree(self.initial, self.k),
            &members,
            universe,
            self.k,
        )
        .expect("validated group shape");

        let plan = churn_plan(spec, universe);
        let mut next_event = 0usize;

        let mut fates: Vec<Option<FrameRecord>> = vec![None; spec.frames as usize];
        let mut queue: VecDeque<u32> = VecDeque::new();
        let mut next_emit = 0u32;
        let mut t_free = 0.0f64;
        let mut out = StreamOutcome {
            packets_per_frame: packets,
            frames: Vec::new(),
            receivers: Vec::new(),
            served: 0,
            dropped: 0,
            joins: 0,
            leaves: 0,
            churn_skipped: 0,
            duration_us: 0.0,
            events: 0,
            peak_queue_len: 0,
            frame_outcomes: Vec::new(),
        };
        // Per-member accumulators over the universe.
        let mut delivered = vec![0u32; universe as usize];
        let mut stale_sum = vec![0.0f64; universe as usize];
        let mut stale_max = vec![0.0f64; universe as usize];

        while !queue.is_empty() || next_emit < spec.frames {
            if queue.is_empty() {
                // Idle source: jump to the next emission.
                queue.push_back(next_emit);
                t_free = t_free.max(emit(next_emit));
                next_emit += 1;
            }
            // Service start for the current head; admitting (and possibly
            // evicting) frames can move the head forward in time, so
            // iterate to a fixpoint.
            let mut start = t_free.max(emit(queue[0]));
            loop {
                let before = next_emit;
                while next_emit < spec.frames && emit(next_emit) <= start {
                    if spec.buffer_frames > 0 && queue.len() >= spec.buffer_frames as usize {
                        let victim = queue.pop_front().expect("bounded buffer is non-empty");
                        fates[victim as usize] = Some(FrameRecord {
                            emitted_us: emit(victim),
                            fate: FrameFate::Dropped {
                                at_us: emit(next_emit),
                            },
                        });
                        out.dropped += 1;
                    }
                    queue.push_back(next_emit);
                    next_emit += 1;
                }
                let now = t_free.max(emit(queue[0]));
                if next_emit == before && now == start {
                    break;
                }
                start = now;
            }
            // Fire churn scheduled before this service starts.
            while next_event < plan.len() && plan[next_event].at_us <= start {
                let ev = plan[next_event];
                next_event += 1;
                if group.is_member(ev.member) {
                    if group.len() > 2 {
                        group.leave(ev.member).expect("present member can leave");
                        out.leaves += 1;
                    } else {
                        out.churn_skipped += 1;
                    }
                } else {
                    group.join(ev.member).expect("absent member can join");
                    out.joins += 1;
                }
            }
            // Serve the head frame over the current membership.
            let frame = queue.pop_front().expect("loop guard");
            let tree: Arc<MulticastTree> = Arc::new(group.tree().clone());
            let job_binding: Vec<HostId> = group
                .members()
                .iter()
                .map(|&u| self.binding[u as usize])
                .collect();
            let job = MulticastJob::fpfs(tree, job_binding, packets);
            let sim = SimRun::new(
                self.net,
                std::slice::from_ref(&job),
                self.params,
                self.config,
            )
            .run()?;
            let completion = start + sim.jobs[0].latency_us;
            let staleness = completion - emit(frame);
            for &u in &group.members()[1..] {
                let i = u as usize;
                delivered[i] += 1;
                stale_sum[i] += staleness;
                stale_max[i] = stale_max[i].max(staleness);
            }
            fates[frame as usize] = Some(FrameRecord {
                emitted_us: emit(frame),
                fate: FrameFate::Delivered {
                    service_start_us: start,
                    completion_us: completion,
                    receivers: group.len() as u32 - 1,
                },
            });
            out.served += 1;
            out.events += sim.events;
            out.peak_queue_len = out.peak_queue_len.max(sim.counters.peak_queue_len);
            t_free = completion;
            if spec.keep_frame_outcomes {
                out.frame_outcomes.push(sim);
            }
        }

        out.duration_us = t_free.max(emit(spec.frames - 1));
        out.frames = fates
            .into_iter()
            .map(|f| f.expect("every frame resolves to delivered or dropped"))
            .collect();
        out.receivers = (1..universe)
            .filter(|&u| delivered[u as usize] > 0)
            .map(|u| {
                let i = u as usize;
                let bytes = u64::from(delivered[i]) * u64::from(spec.frame_bytes);
                ReceiverStats {
                    member: u,
                    frames_delivered: delivered[i],
                    bytes_delivered: bytes,
                    goodput_mbps: 8.0 * bytes as f64 / out.duration_us,
                    mean_staleness_us: stale_sum[i] / f64::from(delivered[i]),
                    max_staleness_us: stale_max[i],
                }
            })
            .collect();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimcast_topology::irregular::{IrregularConfig, IrregularNetwork};

    fn params() -> SystemParams {
        SystemParams::paper_1997()
    }

    fn net(seed: u64) -> IrregularNetwork {
        IrregularNetwork::generate(IrregularConfig::default(), seed)
    }

    fn binding(n: u32) -> Vec<HostId> {
        (0..n).map(HostId).collect()
    }

    #[test]
    fn spec_and_shape_are_validated() {
        let n = net(1);
        let b = binding(8);
        let bad = |f: &dyn Fn(&mut StreamSpec)| {
            let mut s = StreamSpec::default();
            f(&mut s);
            StreamRun::new(&n, &b, 4, 2, &params(), s).run().err()
        };
        assert!(matches!(
            bad(&|s| s.frames = 0),
            Some(StreamError::InvalidStream(_))
        ));
        assert!(matches!(
            bad(&|s| s.gap_us = 0.0),
            Some(StreamError::InvalidStream(_))
        ));
        assert!(matches!(
            bad(&|s| s.mtu_bytes = 0),
            Some(StreamError::InvalidStream(_))
        ));
        let one = binding(1);
        assert!(matches!(
            StreamRun::new(&n, &one, 1, 2, &params(), StreamSpec::default())
                .run()
                .err(),
            Some(StreamError::InvalidStream(_))
        ));
        assert!(matches!(
            StreamRun::new(&n, &b, 9, 2, &params(), StreamSpec::default())
                .run()
                .err(),
            Some(StreamError::InvalidStream(_))
        ));
        assert!(matches!(
            StreamRun::new(&n, &b, 4, 0, &params(), StreamSpec::default())
                .run()
                .err(),
            Some(StreamError::InvalidStream(_))
        ));
    }

    #[test]
    fn churn_plan_is_a_pure_function_of_the_seed() {
        let spec = StreamSpec {
            churn_events: 12,
            churn_seed: 42,
            ..StreamSpec::default()
        };
        let a = churn_plan(&spec, 16);
        let b = churn_plan(&spec, 16);
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        let span = spec.gap_us * f64::from(spec.frames);
        for w in a.windows(2) {
            assert!(w[0].at_us <= w[1].at_us, "plan is time-sorted");
        }
        for ev in &a {
            assert!((0.0..span).contains(&ev.at_us));
            assert!((1..16).contains(&ev.member), "source never churns");
        }
        let other = churn_plan(
            &StreamSpec {
                churn_seed: 43,
                ..spec
            },
            16,
        );
        assert_ne!(a, other, "different seeds give different plans");
    }

    #[test]
    fn unbounded_buffers_never_drop() {
        let n = net(3);
        let b = binding(16);
        let spec = StreamSpec {
            gap_us: 1.0, // heavy overload
            frames: 12,
            buffer_frames: 0,
            ..StreamSpec::default()
        };
        let out = StreamRun::new(&n, &b, 16, 2, &params(), spec)
            .run()
            .unwrap();
        assert_eq!(out.dropped, 0);
        assert_eq!(out.served, 12);
        assert_eq!(out.frames.len(), 12);
        // Under overload every later frame queues: staleness grows.
        let stale = |f: &FrameRecord| match f.fate {
            FrameFate::Delivered { completion_us, .. } => completion_us - f.emitted_us,
            FrameFate::Dropped { .. } => unreachable!(),
        };
        assert!(stale(&out.frames[11]) > stale(&out.frames[0]));
    }

    #[test]
    fn bounded_buffers_drop_oldest_under_overload() {
        let n = net(3);
        let b = binding(16);
        let spec = StreamSpec {
            gap_us: 1.0,
            frames: 12,
            buffer_frames: 2,
            ..StreamSpec::default()
        };
        let out = StreamRun::new(&n, &b, 16, 2, &params(), spec)
            .run()
            .unwrap();
        assert!(out.dropped > 0, "overload with a 2-frame buffer must drop");
        assert_eq!(out.served + out.dropped, 12);
        // Drop-oldest: every dropped frame is older than some served one
        // that was emitted while it waited; the LAST frame always serves.
        assert!(matches!(out.frames[11].fate, FrameFate::Delivered { .. }));
        // A dropped frame's eviction time is a later frame's emission.
        for f in &out.frames {
            if let FrameFate::Dropped { at_us } = f.fate {
                assert!(at_us > f.emitted_us);
            }
        }
    }

    #[test]
    fn churn_splices_members_live() {
        let n = net(5);
        let b = binding(24);
        let spec = StreamSpec {
            frames: 8,
            churn_events: 10,
            churn_seed: 7,
            ..StreamSpec::default()
        };
        let out = StreamRun::new(&n, &b, 12, 2, &params(), spec)
            .run()
            .unwrap();
        // Events after the final frame's service start never fire.
        let applied = out.joins + out.leaves + out.churn_skipped;
        assert!(applied > 0 && applied <= 10);
        assert!(out.joins > 0, "seed 7 schedules at least one join");
        // Receiver counts per frame reflect the changing group size.
        let sizes: Vec<u32> = out
            .frames
            .iter()
            .filter_map(|f| match f.fate {
                FrameFate::Delivered { receivers, .. } => Some(receivers),
                FrameFate::Dropped { .. } => None,
            })
            .collect();
        assert!(sizes.iter().any(|&s| s != sizes[0]), "group size changed");
    }

    #[test]
    fn stream_is_deterministic_across_runs() {
        let n = net(9);
        let b = binding(20);
        let spec = StreamSpec {
            frames: 6,
            buffer_frames: 2,
            gap_us: 10.0,
            churn_events: 6,
            ..StreamSpec::default()
        };
        let a = StreamRun::new(&n, &b, 10, 2, &params(), spec)
            .run()
            .unwrap();
        let c = StreamRun::new(&n, &b, 10, 2, &params(), spec)
            .run()
            .unwrap();
        assert_eq!(a, c);
    }
}
