//! Deterministic, seed-driven fault injection.
//!
//! A [`FaultPlan`] describes everything that can go wrong in a run: random
//! per-transmission packet loss and corruption, link failure windows,
//! permanent host crashes, and NI forwarding-buffer exhaustion. Every random
//! decision is a **pure function** of the plan's seed and the transmission's
//! identity `(job, from, to, packet, attempt)` — sampled through one
//! [`ChaCha8Rng`] draw per decision, never from shared mutable RNG state —
//! so a plan produces the same fault schedule regardless of event
//! interleaving or worker count. That property is what lets the chaos sweep
//! (`optimcast chaos`) promise byte-identical JSON at any parallelism.
//!
//! The simulator consumes a plan through three queries:
//!
//! * [`FaultPlan::tx_outcome`] — the fate of one dispatched transmission;
//! * [`FaultPlan::host_crashed`] — whether a host is dead at a given time;
//! * [`FaultPlan::rto`] — the capped-exponential retransmission timeout.
//!
//! A *trivial* plan (no fault source enabled) is recognised by
//! [`FaultPlan::is_trivial`]; the simulator then takes the exact fault-free
//! code path, so wiring a trivial plan through changes nothing — not even
//! the event count — which `tests/golden_equivalence.rs` pins down.

use optimcast_rng::{ChaCha8Rng, Rng};
use optimcast_topology::graph::{ChannelId, HostId};

/// What a fault did to a transmission (observer/diagnostic vocabulary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The packet was lost in the network (random drop).
    Drop,
    /// The packet arrived but failed its integrity check; the receiver
    /// NACKs and the sender retransmits immediately.
    Corrupt,
    /// A channel on the route was inside a failure window at dispatch.
    LinkDown,
    /// The receiving host is crashed at arrival time.
    ReceiverDead,
    /// The sending host is crashed; its queued transmissions are discarded.
    SenderDead,
    /// The receiving NI's forwarding buffer was exhausted; the packet is
    /// refused (NACK) and retransmitted.
    BufferOverflow,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FaultKind::Drop => "drop",
            FaultKind::Corrupt => "corrupt",
            FaultKind::LinkDown => "link-down",
            FaultKind::ReceiverDead => "receiver-dead",
            FaultKind::SenderDead => "sender-dead",
            FaultKind::BufferOverflow => "buffer-overflow",
        })
    }
}

/// A directed channel out of service during `[from_us, until_us)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFailure {
    /// The failed channel.
    pub channel: ChannelId,
    /// Window start (inclusive, µs).
    pub from_us: f64,
    /// Window end (exclusive, µs).
    pub until_us: f64,
}

/// A host permanently crashed from `at_us` onward (fail-stop: it neither
/// sends nor receives after that instant).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostCrash {
    /// The crashed host.
    pub host: HostId,
    /// Crash time (µs); packets arriving at or after this instant are lost.
    pub at_us: f64,
}

/// Live mid-run repair policy: when set on a [`FaultPlan`], an exhausted
/// delivery (`max_attempts` abandonments) no longer terminates the run.
/// Instead the source learns of the failure after `notify_us`, calls
/// `MulticastTree::repair` on the surviving membership, and re-issues the
/// undelivered packets over the repaired tree — a new *repair epoch*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairPolicy {
    /// Modeled latency (µs) between the last delivery attempt and the
    /// source learning enough to trigger a repair.
    pub notify_us: f64,
    /// Maximum repair epochs per run (≥ 1); exhausting it yields
    /// `SimError::DeliveryFailed` with the still-unreached destinations.
    pub max_epochs: u32,
}

impl Default for RepairPolicy {
    fn default() -> Self {
        RepairPolicy {
            notify_us: 120.0,
            max_epochs: 8,
        }
    }
}

/// A deterministic fault schedule plus the reliability-layer knobs.
///
/// All fields are public: a plan is plain data, validated once when the
/// simulation is constructed.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of every random fault decision.
    pub seed: u64,
    /// Per-transmission loss probability in `[0, 1)`.
    pub drop_rate: f64,
    /// Per-transmission corruption probability in `[0, 1)`. A corrupted
    /// packet traverses the network and occupies the receive unit, then is
    /// NACKed.
    pub corrupt_rate: f64,
    /// Channel outage windows.
    pub link_failures: Vec<LinkFailure>,
    /// Permanent host crashes.
    pub crashes: Vec<HostCrash>,
    /// NI forwarding-buffer capacity in packets (`None` = unbounded, the
    /// fault-free model). A forwarding NI with `capacity` resident packets
    /// refuses further arrivals that would need buffering.
    pub ni_buffer_capacity: Option<u32>,
    /// Total transmission attempts per packet copy before the sender
    /// abandons it (≥ 1). The cap is what guarantees termination under
    /// permanent faults.
    pub max_attempts: u32,
    /// Base acknowledgement timeout (µs) before a lost packet is
    /// retransmitted.
    pub ack_timeout_us: f64,
    /// Exponent cap of the backoff: attempt `a` waits
    /// `ack_timeout_us * 2^min(a, backoff_cap)`.
    pub backoff_cap: u32,
    /// Selective-repeat send window: unacknowledged packets allowed in
    /// flight per tree edge. `1` (the default) is the PR 3 stop-and-wait
    /// layer; `window > 1` switches the simulator to the windowed ARQ path
    /// with out-of-order acceptance and coalesced NACK ranges. Because
    /// pipelining changes timing even with every fault source disabled, a
    /// `window > 1` plan is **not** trivial.
    pub window: u32,
    /// Per-message delivery deadline (µs past the job's start). When a
    /// windowed-ARQ retry decision falls past the deadline, the stuck
    /// child (and its undelivered subtree) is written off as a typed
    /// `deadline_writeoffs` outcome instead of retrying until
    /// `max_attempts`. `None` disables deadlines.
    pub deadline_us: Option<f64>,
    /// Live mid-run repair policy. `None` (the default) keeps the PR 3
    /// behaviour: exhausted deliveries terminate the run with
    /// `SimError::DeliveryFailed`. The policy does not make a plan
    /// non-trivial — a plan with no fault source never triggers a repair,
    /// so it still normalises onto the fault-free golden path.
    pub repair: Option<RepairPolicy>,
}

impl FaultPlan {
    /// A plan with every fault source disabled and default reliability
    /// parameters — [`Self::is_trivial`] holds.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_rate: 0.0,
            corrupt_rate: 0.0,
            link_failures: Vec::new(),
            crashes: Vec::new(),
            ni_buffer_capacity: None,
            max_attempts: 8,
            ack_timeout_us: 60.0,
            backoff_cap: 4,
            window: 1,
            deadline_us: None,
            repair: None,
        }
    }

    /// True when no fault source is enabled *and* the ARQ is stop-and-wait,
    /// so the plan cannot perturb a run. The simulator short-circuits
    /// trivial plans onto the exact fault-free code path. A `window > 1`
    /// plan is never trivial: pipelined dispatch reshapes timing even at
    /// zero fault rates.
    pub fn is_trivial(&self) -> bool {
        self.drop_rate == 0.0
            && self.corrupt_rate == 0.0
            && self.link_failures.is_empty()
            && self.crashes.is_empty()
            && self.ni_buffer_capacity.is_none()
            && self.window <= 1
    }

    /// Checks the plan's parameters; the simulator rejects invalid plans
    /// with a typed error before any event runs.
    pub fn validate(&self) -> Result<(), &'static str> {
        let prob_ok = |p: f64| (0.0..1.0).contains(&p);
        if !prob_ok(self.drop_rate) {
            return Err("drop_rate must lie in [0, 1)");
        }
        if !prob_ok(self.corrupt_rate) {
            return Err("corrupt_rate must lie in [0, 1)");
        }
        if self.max_attempts == 0 {
            return Err("max_attempts must be at least 1");
        }
        if self.ack_timeout_us <= 0.0 || self.ack_timeout_us.is_nan() {
            return Err("ack_timeout_us must be positive");
        }
        if self.window == 0 {
            return Err("window must be at least 1");
        }
        if let Some(d) = self.deadline_us {
            if d.is_nan() || d <= 0.0 {
                return Err("deadline_us must be positive");
            }
            if d < self.ack_timeout_us {
                return Err("deadline_us must be at least ack_timeout_us");
            }
        }
        if self.window > 1 {
            if self.repair.is_some() {
                return Err("windowed ARQ does not combine with live repair; use deadline_us");
            }
            if self.ni_buffer_capacity.is_some() {
                return Err(
                    "windowed ARQ bounds queues via NiModel::queue_capacity, not ni_buffer_capacity",
                );
            }
        }
        for w in &self.link_failures {
            if w.from_us.is_nan() || w.until_us.is_nan() || w.from_us < 0.0 {
                return Err("link failure window must be non-negative and not NaN");
            }
        }
        for c in &self.crashes {
            if c.at_us.is_nan() || c.at_us < 0.0 {
                return Err("crash time must be non-negative and not NaN");
            }
        }
        if let Some(r) = &self.repair {
            if r.notify_us < 0.0 || r.notify_us.is_nan() {
                return Err("repair notify_us must be non-negative and not NaN");
            }
            if r.max_epochs == 0 {
                return Err("repair max_epochs must be at least 1");
            }
        }
        Ok(())
    }

    /// Whether `host` is crashed at `t_us` (crash instants are inclusive).
    pub fn host_crashed(&self, host: HostId, t_us: f64) -> bool {
        self.crashes
            .iter()
            .any(|c| c.host == host && t_us >= c.at_us)
    }

    /// Whether any channel of `route` is inside a failure window at `t_us`.
    pub fn link_down(&self, route: &[ChannelId], t_us: f64) -> bool {
        self.link_failures
            .iter()
            .any(|w| t_us >= w.from_us && t_us < w.until_us && route.contains(&w.channel))
    }

    /// The fate of one transmission, decided at dispatch.
    ///
    /// Checked in severity order: a crashed receiver (at arrival time), a
    /// failed link (at depart time), random loss, random corruption.
    /// `None` means the packet is delivered intact. Loss and corruption are
    /// pure functions of `(seed, job, epoch, from, to, packet, attempt)` —
    /// each retransmission redraws, and each repair epoch redraws
    /// independently of the epochs before it. Epoch 0 keys are bit-identical
    /// to the pre-repair scheme, so plans without live repair reproduce the
    /// committed chaos goldens exactly.
    #[allow(clippy::too_many_arguments)]
    pub fn tx_outcome(
        &self,
        job: u32,
        epoch: u32,
        from: u32,
        to: u32,
        packet: u32,
        attempt: u32,
        route: &[ChannelId],
        depart_us: f64,
        arrive_us: f64,
        receiver: HostId,
    ) -> Option<FaultKind> {
        if self.host_crashed(receiver, arrive_us) {
            return Some(FaultKind::ReceiverDead);
        }
        if self.link_down(route, depart_us) {
            return Some(FaultKind::LinkDown);
        }
        if self.decide(1, job, epoch, from, to, packet, attempt) < self.drop_rate {
            return Some(FaultKind::Drop);
        }
        if self.decide(2, job, epoch, from, to, packet, attempt) < self.corrupt_rate {
            return Some(FaultKind::Corrupt);
        }
        None
    }

    /// Retransmission timeout of attempt `a`: capped exponential backoff
    /// `ack_timeout_us * 2^min(a, backoff_cap)`.
    pub fn rto(&self, attempt: u32) -> f64 {
        let exp = attempt.min(self.backoff_cap);
        self.ack_timeout_us * f64::from(1u32 << exp.min(31))
    }

    /// Deterministic jitter (µs) added to a windowed-ARQ retransmission
    /// timer: up to a quarter of the attempt's RTO, drawn from PRF stream 3
    /// keyed by the transmission identity — never wall time, so retry
    /// schedules are byte-identical at any worker count. Jitter de-phases
    /// the per-edge timers so a burst of losses does not retransmit in
    /// lockstep.
    pub fn retry_jitter_us(&self, job: u32, from: u32, to: u32, packet: u32, attempt: u32) -> f64 {
        0.25 * self.rto(attempt) * self.decide(3, job, 0, from, to, packet, attempt)
    }

    /// One uniform draw in `[0, 1)` keyed by the transmission identity and
    /// a stream tag (so drop and corruption use independent streams). The
    /// repair epoch is folded in only when non-zero, keeping epoch-0 draws
    /// bit-identical to the scheme the committed goldens were pinned under.
    #[allow(clippy::too_many_arguments)]
    fn decide(
        &self,
        stream: u64,
        job: u32,
        epoch: u32,
        from: u32,
        to: u32,
        packet: u32,
        attempt: u32,
    ) -> f64 {
        let mut key = self.seed ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
        if epoch > 0 {
            key ^= u64::from(epoch).wrapping_mul(0x94D0_49BB_1331_11EB);
        }
        for field in [job, from, to, packet, attempt] {
            key = key
                .wrapping_add(u64::from(field))
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            key ^= key >> 29;
        }
        let bits = ChaCha8Rng::seed_from_u64(key).next_u64();
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A compact, `Copy` description of a fault plan for sweep axes: the chaos
/// engine materialises it into a full [`FaultPlan`] per sample, choosing
/// the concrete crashed hosts deterministically from the sample's identity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlanSpec {
    /// Seed folded into every sample's fault schedule.
    pub seed: u64,
    /// Per-transmission loss probability in `[0, 1)`.
    pub drop_rate: f64,
    /// Per-transmission corruption probability in `[0, 1)`.
    pub corrupt_rate: f64,
    /// Number of destination hosts to crash (never the source). With
    /// `live_repair` off the tree is repaired around them *before* the run;
    /// with it on they crash mid-run at [`Self::crash_at_us`] and the
    /// simulator repairs live.
    pub crashes: u32,
    /// Crash instant (µs) of the drawn hosts. `0.0` reproduces the legacy
    /// crash-at-time-zero schedule.
    pub crash_at_us: f64,
    /// Number of directed channels per sample pulled into a failure window
    /// `[outage_from_us, outage_until_us)`, drawn deterministically from
    /// the sample's identity.
    pub link_outages: u32,
    /// Outage window start (inclusive, µs).
    pub outage_from_us: f64,
    /// Outage window end (exclusive, µs).
    pub outage_until_us: f64,
    /// NI forwarding-buffer capacity in packets (`None` = unbounded).
    pub ni_buffer_capacity: Option<u32>,
    /// Enable live mid-run repair: crashed hosts are *not* repaired around
    /// up front; the simulator detects abandonment, repairs the surviving
    /// membership, and re-issues undelivered packets inside the run.
    pub live_repair: bool,
    /// Total attempts per packet copy before abandoning.
    pub max_attempts: u32,
    /// Base acknowledgement timeout (µs).
    pub ack_timeout_us: f64,
    /// Selective-repeat send window per tree edge (`1` = stop-and-wait).
    pub window: u32,
    /// Per-message delivery deadline (µs past job start; `None` = none).
    pub deadline_us: Option<f64>,
    /// NI send units per host, threaded into the run's
    /// [`crate::arq::NiModel`] by the sweep and CLI layers (the plan itself
    /// does not consume it).
    pub send_units: u32,
}

impl Default for FaultPlanSpec {
    /// The trivial spec: no faults, default reliability knobs.
    fn default() -> Self {
        FaultPlanSpec {
            seed: 0,
            drop_rate: 0.0,
            corrupt_rate: 0.0,
            crashes: 0,
            crash_at_us: 0.0,
            link_outages: 0,
            outage_from_us: 0.0,
            outage_until_us: 0.0,
            ni_buffer_capacity: None,
            live_repair: false,
            max_attempts: 8,
            ack_timeout_us: 60.0,
            window: 1,
            deadline_us: None,
            send_units: 1,
        }
    }
}

impl FaultPlanSpec {
    /// True when the spec cannot produce any fault. (`live_repair`,
    /// `crash_at_us`, `deadline_us`, and `send_units` are modifiers, not
    /// fault sources — they leave a trivial spec trivial; `window > 1` is
    /// not, because pipelining reshapes timing on its own.)
    pub fn is_trivial(&self) -> bool {
        self.drop_rate == 0.0
            && self.corrupt_rate == 0.0
            && self.crashes == 0
            && self.link_outages == 0
            && self.ni_buffer_capacity.is_none()
            && self.window <= 1
    }

    /// Expands the spec into a [`FaultPlan`] with the given crash and link
    /// outage schedules; `salt` distinguishes samples so each draws an
    /// independent fault stream from the same spec.
    pub fn plan(&self, salt: u64, crashes: Vec<HostCrash>) -> FaultPlan {
        self.plan_with_outages(salt, crashes, Vec::new())
    }

    /// [`Self::plan`] with an explicit link-failure schedule.
    pub fn plan_with_outages(
        &self,
        salt: u64,
        crashes: Vec<HostCrash>,
        link_failures: Vec<LinkFailure>,
    ) -> FaultPlan {
        FaultPlan {
            seed: self
                .seed
                .wrapping_mul(0xD6E8_FEB8_6659_FD93)
                .wrapping_add(salt),
            drop_rate: self.drop_rate,
            corrupt_rate: self.corrupt_rate,
            crashes,
            link_failures,
            ni_buffer_capacity: self.ni_buffer_capacity,
            max_attempts: self.max_attempts,
            ack_timeout_us: self.ack_timeout_us,
            window: self.window,
            deadline_us: self.deadline_us,
            repair: self.live_repair.then(|| RepairPolicy {
                notify_us: 2.0 * self.ack_timeout_us,
                ..RepairPolicy::default()
            }),
            ..FaultPlan::new(0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_plan_has_no_faults() {
        let plan = FaultPlan::new(7);
        assert!(plan.is_trivial());
        plan.validate().unwrap();
        assert_eq!(
            plan.tx_outcome(0, 0, 0, 1, 0, 0, &[ChannelId(0)], 0.0, 10.0, HostId(1)),
            None
        );
        assert!(FaultPlanSpec::default().is_trivial());
    }

    #[test]
    fn decisions_are_pure_functions_of_identity() {
        let plan = FaultPlan {
            drop_rate: 0.5,
            ..FaultPlan::new(42)
        };
        let route = [ChannelId(3)];
        let a = plan.tx_outcome(0, 0, 0, 5, 2, 0, &route, 0.0, 10.0, HostId(5));
        let b = plan.tx_outcome(0, 0, 0, 5, 2, 0, &route, 99.0, 200.0, HostId(5));
        // Same identity, different times: the random verdict is identical.
        assert_eq!(a, b);
        // A different attempt redraws.
        let mut varied = false;
        for attempt in 0..16 {
            if plan.tx_outcome(0, 0, 0, 5, 2, attempt, &route, 0.0, 1.0, HostId(5)) != a {
                varied = true;
            }
        }
        assert!(varied, "attempts never redrew at 50% drop rate");
        // A different repair epoch redraws too.
        let mut epoch_varied = false;
        for epoch in 1..16 {
            if plan.tx_outcome(0, epoch, 0, 5, 2, 0, &route, 0.0, 1.0, HostId(5)) != a {
                epoch_varied = true;
            }
        }
        assert!(epoch_varied, "epochs never redrew at 50% drop rate");
    }

    #[test]
    fn drop_rate_is_respected_statistically() {
        let plan = FaultPlan {
            drop_rate: 0.25,
            ..FaultPlan::new(11)
        };
        let dropped = (0..4000)
            .filter(|&p| {
                plan.tx_outcome(0, 0, 0, 1, p, 0, &[], 0.0, 1.0, HostId(1)) == Some(FaultKind::Drop)
            })
            .count();
        let rate = dropped as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.03, "observed drop rate {rate}");
    }

    #[test]
    fn link_windows_are_half_open() {
        let plan = FaultPlan {
            link_failures: vec![LinkFailure {
                channel: ChannelId(2),
                from_us: 10.0,
                until_us: 20.0,
            }],
            ..FaultPlan::new(0)
        };
        assert!(!plan.is_trivial());
        let route = [ChannelId(1), ChannelId(2)];
        assert!(!plan.link_down(&route, 9.9));
        assert!(plan.link_down(&route, 10.0));
        assert!(plan.link_down(&route, 19.9));
        assert!(!plan.link_down(&route, 20.0));
        assert!(!plan.link_down(&[ChannelId(1)], 15.0));
        assert_eq!(
            plan.tx_outcome(0, 0, 0, 1, 0, 0, &route, 15.0, 25.0, HostId(1)),
            Some(FaultKind::LinkDown)
        );
    }

    #[test]
    fn crashes_are_permanent_and_dominant() {
        let plan = FaultPlan {
            crashes: vec![HostCrash {
                host: HostId(3),
                at_us: 50.0,
            }],
            ..FaultPlan::new(0)
        };
        assert!(!plan.host_crashed(HostId(3), 49.9));
        assert!(plan.host_crashed(HostId(3), 50.0));
        assert!(plan.host_crashed(HostId(3), 1e9));
        assert!(!plan.host_crashed(HostId(2), 60.0));
        assert_eq!(
            plan.tx_outcome(0, 0, 0, 1, 0, 0, &[], 55.0, 60.0, HostId(3)),
            Some(FaultKind::ReceiverDead)
        );
    }

    #[test]
    fn rto_backs_off_exponentially_with_cap() {
        let plan = FaultPlan::new(0);
        assert_eq!(plan.rto(0), 60.0);
        assert_eq!(plan.rto(1), 120.0);
        assert_eq!(plan.rto(4), 960.0);
        // Capped at backoff_cap = 4.
        assert_eq!(plan.rto(40), 960.0);
    }

    #[test]
    fn validation_rejects_nonsense() {
        let bad = |f: fn(&mut FaultPlan)| {
            let mut p = FaultPlan::new(0);
            f(&mut p);
            p.validate().unwrap_err()
        };
        assert!(bad(|p| p.drop_rate = 1.0).contains("drop_rate"));
        assert!(bad(|p| p.corrupt_rate = -0.1).contains("corrupt_rate"));
        assert!(bad(|p| p.max_attempts = 0).contains("max_attempts"));
        assert!(bad(|p| p.ack_timeout_us = 0.0).contains("ack_timeout_us"));
        assert!(bad(|p| p.crashes.push(HostCrash {
            host: HostId(0),
            at_us: -1.0,
        }))
        .contains("crash"));
        assert!(bad(|p| p.repair = Some(RepairPolicy {
            notify_us: -1.0,
            ..RepairPolicy::default()
        }))
        .contains("notify_us"));
        assert!(bad(|p| p.repair = Some(RepairPolicy {
            max_epochs: 0,
            ..RepairPolicy::default()
        }))
        .contains("max_epochs"));
        assert!(bad(|p| p.window = 0).contains("window"));
        assert!(bad(|p| p.deadline_us = Some(0.0)).contains("deadline_us must be positive"));
        assert!(bad(|p| p.deadline_us = Some(f64::NAN)).contains("deadline_us must be positive"));
        assert!(
            bad(|p| p.deadline_us = Some(1.0)).contains("at least ack_timeout_us"),
            "a deadline shorter than one RTO can never be met"
        );
        assert!(bad(|p| {
            p.window = 8;
            p.repair = Some(RepairPolicy::default());
        })
        .contains("live repair"));
        assert!(bad(|p| {
            p.window = 8;
            p.ni_buffer_capacity = Some(4);
        })
        .contains("queue_capacity"));
    }

    #[test]
    fn windowed_plans_are_not_trivial() {
        let plan = FaultPlan {
            window: 8,
            ..FaultPlan::new(0)
        };
        assert!(
            !plan.is_trivial(),
            "window > 1 pipelines dispatch and must not normalise onto the fault-free path"
        );
        plan.validate().unwrap();
        let spec = FaultPlanSpec {
            window: 8,
            ..FaultPlanSpec::default()
        };
        assert!(!spec.is_trivial());
        let expanded = spec.plan(0, Vec::new());
        assert_eq!(expanded.window, 8);
        assert_eq!(expanded.deadline_us, None);
    }

    #[test]
    fn retry_jitter_is_deterministic_and_bounded() {
        let plan = FaultPlan::new(13);
        let j = plan.retry_jitter_us(0, 0, 5, 2, 1);
        assert_eq!(j, plan.retry_jitter_us(0, 0, 5, 2, 1), "pure function");
        assert!(
            (0.0..0.25 * plan.rto(1)).contains(&j),
            "jitter {j} out of range"
        );
        // Distinct identities de-phase.
        let mut varied = false;
        for p in 0..16 {
            if plan.retry_jitter_us(0, 0, 5, p, 1) != j {
                varied = true;
            }
        }
        assert!(varied, "jitter never varied across packets");
        // Independent of the drop stream: enabling drops does not move it.
        let dropping = FaultPlan {
            drop_rate: 0.5,
            ..FaultPlan::new(13)
        };
        assert_eq!(dropping.retry_jitter_us(0, 0, 5, 2, 1), j);
    }

    #[test]
    fn repair_policy_does_not_break_trivial_normalisation() {
        let plan = FaultPlan {
            repair: Some(RepairPolicy::default()),
            ..FaultPlan::new(3)
        };
        assert!(
            plan.is_trivial(),
            "repair without a fault source must stay on the fault-free path"
        );
        plan.validate().unwrap();
    }

    #[test]
    fn live_repair_spec_expands_to_a_repair_plan() {
        let spec = FaultPlanSpec {
            seed: 5,
            crashes: 1,
            live_repair: true,
            ..FaultPlanSpec::default()
        };
        let plan = spec.plan(
            9,
            vec![HostCrash {
                host: HostId(4),
                at_us: 0.0,
            }],
        );
        let policy = plan.repair.expect("live_repair sets a policy");
        assert_eq!(policy.notify_us, 2.0 * spec.ack_timeout_us);
        assert!(policy.max_epochs >= 1);
        plan.validate().unwrap();
        // Non-crash axes thread through plan_with_outages.
        let spec2 = FaultPlanSpec {
            link_outages: 2,
            outage_until_us: 50.0,
            ni_buffer_capacity: Some(4),
            ..FaultPlanSpec::default()
        };
        assert!(!spec2.is_trivial());
        let windows = vec![LinkFailure {
            channel: ChannelId(1),
            from_us: 0.0,
            until_us: 50.0,
        }];
        let plan2 = spec2.plan_with_outages(0, Vec::new(), windows.clone());
        assert_eq!(plan2.link_failures, windows);
        assert_eq!(plan2.ni_buffer_capacity, Some(4));
        assert!(plan2.repair.is_none());
    }

    #[test]
    fn spec_expansion_salts_the_seed() {
        let spec = FaultPlanSpec {
            seed: 7,
            drop_rate: 0.1,
            ..FaultPlanSpec::default()
        };
        let a = spec.plan(0, Vec::new());
        let b = spec.plan(1, Vec::new());
        assert_ne!(a.seed, b.seed);
        assert_eq!(a.drop_rate, 0.1);
        assert_eq!(a, spec.plan(0, Vec::new()), "expansion is deterministic");
    }
}
