//! A minimal deterministic discrete-event engine.
//!
//! Events are ordered by `(time, insertion sequence)`: ties in simulated
//! time resolve in scheduling order, so a run is a pure function of its
//! inputs — crucial for reproducing the paper's experiments from seeds.
//!
//! Payloads are stored inline in the heap entries: event types are small
//! `Copy` values, so there is no side table to grow for the life of a run
//! and no indirection on pop. Ordering compares only `(at, seq)` — the
//! payload never participates, so `E` needs no `Ord` bound.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A heap entry: the packed ordering key plus the event payload carried
/// inline.
///
/// `key` is `(time bits << 64) | seq`: `SimTime` is non-negative and
/// non-NaN, so its IEEE bits sort exactly like the value
/// ([`SimTime::key_bits`]) and the full `(time, insertion seq)` order
/// collapses into ONE `u128` comparison — the heap's sift loops run a
/// single branch per level instead of a float compare plus a tie-break.
/// `seq` is unique per queue, so two entries never compare equal in
/// practice; the `Eq` impl exists only to satisfy `BinaryHeap`'s bounds.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Entry<E> {
    key: u128,
    pub(crate) event: E,
}

impl<E> Entry<E> {
    #[inline]
    pub(crate) fn new(at: SimTime, seq: u64, event: E) -> Self {
        Entry {
            key: (u128::from(at.key_bits()) << 64) | u128::from(seq),
            event,
        }
    }

    #[inline]
    pub(crate) fn at(&self) -> SimTime {
        SimTime::from_key_bits((self.key >> 64) as u64)
    }

    /// The packed `(time, seq)` ordering key — what the sharded executor's
    /// global-minimum reduction compares.
    #[inline]
    pub(crate) fn key(&self) -> u128 {
        self.key
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// A deterministic future-event list.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    now: SimTime,
    seq: u64,
    processed: u64,
    peak_len: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            processed: 0,
            peak_len: 0,
        }
    }

    /// Current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events already processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the current time (causality violation).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < now {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry::new(at, seq, event)));
        self.peak_len = self.peak_len.max(self.heap.len());
    }

    /// Schedules `event` after a delay from now.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(entry) = self.heap.pop()?;
        let at = entry.at();
        self.now = at;
        self.processed += 1;
        Some((at, entry.event))
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Largest number of events simultaneously pending over the queue's life.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::us(3.0), "c");
        q.schedule(SimTime::us(1.0), "a");
        q.schedule(SimTime::us(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::us(3.0));
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(SimTime::us(5.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::us(10.0), "first");
        q.pop();
        q.schedule_in(2.5, "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::us(12.5));
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::us(1.0), ());
        q.schedule(SimTime::us(1.0), ());
        q.schedule(SimTime::us(4.0), ());
        let mut last = SimTime::ZERO;
        while let Some((t, ())) = q.pop() {
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::us(5.0), ());
        q.pop();
        q.schedule(SimTime::us(4.0), ());
    }

    #[test]
    fn empty_and_len() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        q.schedule(SimTime::us(1.0), ());
        assert!(!q.is_empty());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut q = EventQueue::new();
        assert_eq!(q.peak_len(), 0);
        q.schedule(SimTime::us(1.0), ());
        q.schedule(SimTime::us(2.0), ());
        q.schedule(SimTime::us(3.0), ());
        assert_eq!(q.peak_len(), 3);
        q.pop();
        q.pop();
        assert_eq!(q.len(), 1);
        // Peak is a high-water mark: it never decreases.
        assert_eq!(q.peak_len(), 3);
        q.schedule(SimTime::us(4.0), ());
        assert_eq!(q.peak_len(), 3);
    }
}
