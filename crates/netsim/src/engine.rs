//! A minimal deterministic discrete-event engine.
//!
//! Events are ordered by `(time, insertion sequence)`: ties in simulated
//! time resolve in scheduling order, so a run is a pure function of its
//! inputs — crucial for reproducing the paper's experiments from seeds.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    at: SimTime,
    seq: u64,
}

/// A deterministic future-event list.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(Key, usize)>>,
    payload: Vec<Option<E>>,
    now: SimTime,
    seq: u64,
    processed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            payload: Vec::new(),
            now: SimTime::ZERO,
            seq: 0,
            processed: 0,
        }
    }

    /// Current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events already processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the current time (causality violation).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < now {}",
            self.now
        );
        let key = Key { at, seq: self.seq };
        self.seq += 1;
        let slot = self.payload.len();
        self.payload.push(Some(event));
        self.heap.push(Reverse((key, slot)));
    }

    /// Schedules `event` after a delay from now.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse((key, slot)) = self.heap.pop()?;
        self.now = key.at;
        self.processed += 1;
        let ev = self.payload[slot].take().expect("event popped twice");
        Some((key.at, ev))
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::us(3.0), "c");
        q.schedule(SimTime::us(1.0), "a");
        q.schedule(SimTime::us(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::us(3.0));
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(SimTime::us(5.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::us(10.0), "first");
        q.pop();
        q.schedule_in(2.5, "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::us(12.5));
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::us(1.0), ());
        q.schedule(SimTime::us(1.0), ());
        q.schedule(SimTime::us(4.0), ());
        let mut last = SimTime::ZERO;
        while let Some((t, ())) = q.pop() {
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::us(5.0), ());
        q.pop();
        q.schedule(SimTime::us(4.0), ());
    }

    #[test]
    fn empty_and_len() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        q.schedule(SimTime::us(1.0), ());
        assert!(!q.is_empty());
        assert_eq!(q.len(), 1);
    }
}
