//! A counting global allocator: wraps [`System`] with relaxed atomic
//! tallies of allocation calls and bytes requested.
//!
//! The simulator's hot path is designed to be allocation-free in steady
//! state (inline event-queue payloads, interned route tables, in-place
//! send-queue draining); this allocator is how that claim is *measured*
//! rather than assumed. It is deliberately not registered by the library —
//! a binary opts in:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: optimcast_netsim::alloc::CountingAlloc = CountingAlloc::new();
//! ```
//!
//! The `optimcast` CLI registers it so `bench-sim` can report
//! allocations-per-event, and the `zero_alloc` integration test registers
//! it to assert the steady-state budget. When no binary registers it the
//! counters simply stay at zero ([`CountingAlloc::enabled`] distinguishes
//! "zero allocations" from "not measuring").
//!
//! Counter reads are *process-wide*: any thread's allocations land in the
//! same tallies, so measurement windows should bracket single-threaded
//! regions only.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static DEALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static BYTES_ALLOCATED: AtomicU64 = AtomicU64::new(0);
/// Bytes currently live (allocated minus deallocated).
static CURRENT_BYTES: AtomicU64 = AtomicU64::new(0);
/// High-water mark of `CURRENT_BYTES` since process start (or the last
/// [`CountingAlloc::reset_peak`]).
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);
static REGISTERED: AtomicBool = AtomicBool::new(false);

/// Bumps `CURRENT_BYTES` by `delta` and folds the new value into the peak.
#[inline]
fn grow_current(delta: u64) {
    let now = CURRENT_BYTES.fetch_add(delta, Ordering::Relaxed) + delta;
    PEAK_BYTES.fetch_max(now, Ordering::Relaxed);
}

/// The counting allocator; see the module docs for registration.
pub struct CountingAlloc;

impl CountingAlloc {
    /// A new allocator instance (const so it can be a `static`).
    #[must_use]
    pub const fn new() -> Self {
        CountingAlloc
    }

    /// Total allocation calls (`alloc`, `alloc_zeroed`, and growth via
    /// `realloc`) since process start.
    pub fn allocations() -> u64 {
        ALLOCATIONS.load(Ordering::Relaxed)
    }

    /// Total deallocation calls since process start.
    pub fn deallocations() -> u64 {
        DEALLOCATIONS.load(Ordering::Relaxed)
    }

    /// Total bytes requested across all allocation calls.
    pub fn bytes_allocated() -> u64 {
        BYTES_ALLOCATED.load(Ordering::Relaxed)
    }

    /// Bytes currently live (allocated and not yet freed). A peak-RSS
    /// *estimate*: heap payload only, no allocator metadata or stacks.
    pub fn current_bytes() -> u64 {
        CURRENT_BYTES.load(Ordering::Relaxed)
    }

    /// High-water mark of [`Self::current_bytes`] since process start or
    /// the last [`Self::reset_peak`]. This is the setup-memory budget gauge
    /// for mega-scale runs: an accidental all-pairs table shows up here
    /// long before the process OOMs.
    pub fn peak_bytes() -> u64 {
        PEAK_BYTES.load(Ordering::Relaxed)
    }

    /// Restarts the high-water tracking from the current live-byte level
    /// and returns that level. Call at the start of a measurement phase.
    pub fn reset_peak() -> u64 {
        let now = CURRENT_BYTES.load(Ordering::Relaxed);
        PEAK_BYTES.store(now, Ordering::Relaxed);
        now
    }

    /// Whether a `CountingAlloc` is actually serving allocations in this
    /// process — `false` means the counters are vacuously zero.
    pub fn enabled() -> bool {
        REGISTERED.load(Ordering::Relaxed)
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: every method delegates to `System` unchanged; the atomic
// bookkeeping has no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        REGISTERED.store(true, Ordering::Relaxed);
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES_ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        grow_current(layout.size() as u64);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        REGISTERED.store(true, Ordering::Relaxed);
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES_ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        grow_current(layout.size() as u64);
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        CURRENT_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow/shrink is one allocation event: the interesting signal for
        // the steady-state budget is "did the heap get touched", not the
        // alloc/free pairing underneath.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES_ALLOCATED.fetch_add(new_size as u64, Ordering::Relaxed);
        if new_size as u64 >= layout.size() as u64 {
            grow_current(new_size as u64 - layout.size() as u64);
        } else {
            CURRENT_BYTES.fetch_sub(layout.size() as u64 - new_size as u64, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}
