//! The channel manager: wormhole route reservation and contention.
//!
//! Under [`ContentionMode::Wormhole`] a transmission holds **every** directed
//! channel of its deterministic route for `t_send + t_prop` from dispatch —
//! the conservative wormhole model of the paper's §5: a blocked head stalls
//! the sending NI until the whole route is free (head-of-line blocking).
//! Under [`ContentionMode::Ideal`] the network has infinite capacity and
//! reservation is a no-op, which reduces the simulator to the paper's
//! analytic step model.

use crate::sim::ContentionMode;
use crate::time::SimTime;
use optimcast_topology::graph::ChannelId;

/// Channel occupancy bookkeeping for one simulation run.
#[derive(Debug)]
pub(crate) struct ChannelManager {
    mode: ContentionMode,
    /// Per-channel earliest free time.
    free: Vec<SimTime>,
}

impl ChannelManager {
    pub fn new(mode: ContentionMode, n_channels: usize) -> Self {
        ChannelManager {
            mode,
            free: vec![SimTime::ZERO; n_channels],
        }
    }

    /// Reserves the route for a transmission dispatched at `now` holding its
    /// channels for `hold_us`. Returns the actual start time: `now` under
    /// ideal contention, else the instant the whole route is free.
    pub fn reserve(&mut self, route: &[ChannelId], now: SimTime, hold_us: f64) -> SimTime {
        match self.mode {
            ContentionMode::Ideal => now,
            ContentionMode::Wormhole => {
                let free = route
                    .iter()
                    .map(|ch| self.free[ch.index()])
                    .max()
                    .unwrap_or(SimTime::ZERO);
                let t0 = now.max(free);
                let hold = t0 + hold_us;
                for ch in route {
                    self.free[ch.index()] = hold;
                }
                t0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(ids: &[u32]) -> Vec<ChannelId> {
        ids.iter().map(|&i| ChannelId(i)).collect()
    }

    #[test]
    fn ideal_mode_never_delays() {
        let mut cm = ChannelManager::new(ContentionMode::Ideal, 4);
        let now = SimTime::us(5.0);
        assert_eq!(cm.reserve(&route(&[0, 1]), now, 10.0), now);
        assert_eq!(cm.reserve(&route(&[0, 1]), now, 10.0), now);
    }

    #[test]
    fn wormhole_serializes_overlapping_routes() {
        let mut cm = ChannelManager::new(ContentionMode::Wormhole, 4);
        let t0 = cm.reserve(&route(&[0, 1]), SimTime::ZERO, 7.0);
        assert_eq!(t0, SimTime::ZERO);
        // Shares channel 1: must wait for the first worm to drain.
        let t1 = cm.reserve(&route(&[1, 2]), SimTime::us(1.0), 7.0);
        assert_eq!(t1, SimTime::us(7.0));
        // Disjoint route: starts immediately.
        let t2 = cm.reserve(&route(&[3]), SimTime::us(1.0), 7.0);
        assert_eq!(t2, SimTime::us(1.0));
    }

    #[test]
    fn holds_extend_from_actual_start() {
        let mut cm = ChannelManager::new(ContentionMode::Wormhole, 2);
        cm.reserve(&route(&[0]), SimTime::ZERO, 5.0);
        let t1 = cm.reserve(&route(&[0]), SimTime::ZERO, 5.0);
        assert_eq!(t1, SimTime::us(5.0));
        let t2 = cm.reserve(&route(&[0]), SimTime::ZERO, 5.0);
        assert_eq!(t2, SimTime::us(10.0));
    }
}
