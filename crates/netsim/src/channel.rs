//! The channel manager: wormhole route reservation and contention.
//!
//! Under [`ContentionMode::Wormhole`] a transmission holds **every** directed
//! channel of its deterministic route for `t_send + t_prop` from dispatch —
//! the conservative wormhole model of the paper's §5: a blocked head stalls
//! the sending NI until the whole route is free (head-of-line blocking).
//! Under [`ContentionMode::Ideal`] the network has infinite capacity and
//! reservation is a no-op, which reduces the simulator to the paper's
//! analytic step model.

use crate::sim::ContentionMode;
use crate::time::SimTime;
use optimcast_topology::graph::ChannelId;

/// Channel occupancy bookkeeping for one simulation run.
#[derive(Debug)]
pub(crate) struct ChannelManager {
    mode: ContentionMode,
    /// Per-channel earliest free time.
    free: Vec<SimTime>,
}

impl ChannelManager {
    pub fn new(mode: ContentionMode, n_channels: usize) -> Self {
        ChannelManager {
            mode,
            free: vec![SimTime::ZERO; n_channels],
        }
    }

    /// Reserves the route for a transmission dispatched at `now` holding its
    /// channels for `hold_us`. Returns the actual start time: `now` under
    /// ideal contention, else the instant the whole route is free.
    ///
    /// The max-free scan and the hold write are fused into one pass over the
    /// route, writing holds optimistically as if the worm starts at `now`;
    /// only a contended route (some channel still held past `now` — the rare
    /// case on the sweep workloads) takes a second pass to restate the holds
    /// from the delayed start. Requires a duplicate-free route (deterministic
    /// up*/down* routes are simple paths), since each channel's prior free
    /// time is read just before being overwritten.
    pub fn reserve(&mut self, route: &[ChannelId], now: SimTime, hold_us: f64) -> SimTime {
        match self.mode {
            ContentionMode::Ideal => now,
            ContentionMode::Wormhole => {
                let optimistic = now + hold_us;
                let mut free = SimTime::ZERO;
                for ch in route {
                    let slot = &mut self.free[ch.index()];
                    free = free.max(*slot);
                    *slot = optimistic;
                }
                let t0 = now.max(free);
                if t0 > now {
                    let hold = t0 + hold_us;
                    for ch in route {
                        self.free[ch.index()] = hold;
                    }
                }
                t0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(ids: &[u32]) -> Vec<ChannelId> {
        ids.iter().map(|&i| ChannelId(i)).collect()
    }

    #[test]
    fn ideal_mode_never_delays() {
        let mut cm = ChannelManager::new(ContentionMode::Ideal, 4);
        let now = SimTime::us(5.0);
        assert_eq!(cm.reserve(&route(&[0, 1]), now, 10.0), now);
        assert_eq!(cm.reserve(&route(&[0, 1]), now, 10.0), now);
    }

    #[test]
    fn wormhole_serializes_overlapping_routes() {
        let mut cm = ChannelManager::new(ContentionMode::Wormhole, 4);
        let t0 = cm.reserve(&route(&[0, 1]), SimTime::ZERO, 7.0);
        assert_eq!(t0, SimTime::ZERO);
        // Shares channel 1: must wait for the first worm to drain.
        let t1 = cm.reserve(&route(&[1, 2]), SimTime::us(1.0), 7.0);
        assert_eq!(t1, SimTime::us(7.0));
        // Disjoint route: starts immediately.
        let t2 = cm.reserve(&route(&[3]), SimTime::us(1.0), 7.0);
        assert_eq!(t2, SimTime::us(1.0));
    }

    /// The fused single-pass reservation yields bit-identical start times
    /// *and* channel holds to the historic two-pass implementation over
    /// randomized duplicate-free routes — the golden-equivalence contract
    /// at unit scale.
    #[test]
    fn single_pass_reserve_pins_two_pass_times() {
        use optimcast_rng::{ChaCha8Rng, Rng};

        struct TwoPass {
            free: Vec<SimTime>,
        }
        impl TwoPass {
            fn reserve(&mut self, route: &[ChannelId], now: SimTime, hold_us: f64) -> SimTime {
                let free = route
                    .iter()
                    .map(|ch| self.free[ch.index()])
                    .max()
                    .unwrap_or(SimTime::ZERO);
                let t0 = now.max(free);
                let hold = t0 + hold_us;
                for ch in route {
                    self.free[ch.index()] = hold;
                }
                t0
            }
        }

        let n = 16usize;
        let mut fused = ChannelManager::new(ContentionMode::Wormhole, n);
        let mut reference = TwoPass {
            free: vec![SimTime::ZERO; n],
        };
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut now_us = 0.0f64;
        for _ in 0..500 {
            // Dispatch times are monotone within a run, as in the simulator.
            now_us += f64::from(rng.gen_range(0u32..4));
            let len = rng.gen_range(1usize..5);
            let start = rng.gen_range(0usize..n);
            let r: Vec<ChannelId> = (0..len)
                .map(|i| ChannelId(((start + i) % n) as u32))
                .collect();
            let hold = 5.0 + f64::from(rng.gen_range(0u32..10));
            let now = SimTime::us(now_us);
            assert_eq!(
                fused.reserve(&r, now, hold),
                reference.reserve(&r, now, hold)
            );
        }
        assert_eq!(fused.free, reference.free, "channel state diverged");
    }

    #[test]
    fn holds_extend_from_actual_start() {
        let mut cm = ChannelManager::new(ContentionMode::Wormhole, 2);
        cm.reserve(&route(&[0]), SimTime::ZERO, 5.0);
        let t1 = cm.reserve(&route(&[0]), SimTime::ZERO, 5.0);
        assert_eq!(t1, SimTime::us(5.0));
        let t2 = cm.reserve(&route(&[0]), SimTime::ZERO, 5.0);
        assert_eq!(t2, SimTime::us(10.0));
    }
}
