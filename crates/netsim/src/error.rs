//! Typed simulation errors.
//!
//! Workload validation failures — malformed bindings, impossible
//! configurations — are reported as [`SimError`] values from
//! [`crate::workload::SimRun`] / [`crate::run_multicast`] instead of panics, so
//! callers embedding the simulator (CLIs, services, property tests) can
//! handle bad inputs without unwinding. Internal invariant violations
//! (scheduling into the past, an event for a non-existent rank) still panic:
//! they indicate simulator bugs, not caller mistakes.

use crate::observe::SimCounters;
use optimcast_core::tree::Rank;
use optimcast_topology::graph::HostId;

/// A rejected simulation input.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The workload contains no jobs.
    EmptyWorkload,
    /// A job's message has zero packets.
    ZeroPackets {
        /// Offending job index.
        job: usize,
    },
    /// A job's binding length differs from its tree size.
    BindingMismatch {
        /// Offending job index.
        job: usize,
        /// Hosts in the binding.
        bound: usize,
        /// Ranks in the tree.
        ranks: usize,
    },
    /// A job starts before time zero.
    NegativeStart {
        /// Offending job index.
        job: usize,
        /// The (negative) start time in µs.
        start_us: f64,
    },
    /// A personalized (scatter) payload was paired with a conventional NI,
    /// which cannot relay per-destination packets.
    PersonalizedNeedsSmartNic {
        /// Offending job index.
        job: usize,
    },
    /// A binding names a host outside the network.
    HostOutOfRange {
        /// Offending job index.
        job: usize,
        /// The out-of-range host.
        host: HostId,
        /// Number of hosts in the network.
        hosts: usize,
    },
    /// A binding names the same host for two ranks of one job.
    DuplicateHost {
        /// Offending job index.
        job: usize,
        /// The host bound twice.
        host: HostId,
    },
    /// A prerouted run supplied a route-table count that does not match
    /// its job count.
    RouteCountMismatch {
        /// Jobs in the workload.
        jobs: usize,
        /// Route tables supplied.
        routes: usize,
    },
    /// A fault plan failed validation (probability out of range, zero
    /// attempt budget, negative times).
    InvalidFaultPlan {
        /// What was wrong.
        reason: &'static str,
    },
    /// The NI model failed validation (zero send units, zero queue bound)
    /// or the workload cannot run on it (stop-and-wait reliability needs a
    /// single send unit; windowed ARQ supports only replicated smart-NI
    /// jobs).
    InvalidNiModel {
        /// What was wrong.
        reason: &'static str,
    },
    /// The fault plan's crash schedule kills a job's source host. A crashed
    /// source has nothing to send and nothing to repair around, so the plan
    /// is rejected up front instead of silently abandoning every
    /// destination mid-run.
    SourceCrashed {
        /// Offending job index.
        job: usize,
        /// The job's source host, present in the crash schedule.
        host: HostId,
    },
    /// A non-trivial fault plan was paired with overlapped NI timing.
    /// Reliable delivery is stop-and-wait: the sender must hold each
    /// packet's buffer copy until the receiver's acknowledgement, which is
    /// exactly handshake timing — overlapped release would free the copy
    /// before a retransmission could need it.
    FaultsNeedHandshakeTiming,
    /// The run terminated with destinations never reached: the fault plan's
    /// losses and crashes exceeded what the reliability layer could recover
    /// from. Carries the unreached `(job, rank)` set and the run's counters
    /// so callers can report drops/retransmits even for failed runs.
    DeliveryFailed {
        /// Every `(job, rank)` whose host never completed, in job-then-rank
        /// order.
        unreached: Vec<(u32, Rank)>,
        /// Structured counters of the failed run (boxed: the variant would
        /// otherwise dominate the enum's size).
        counters: Box<SimCounters>,
    },
}

// NegativeStart carries an f64 only for diagnostics; errors are still
// comparable enough for tests via the derived PartialEq.
impl Eq for SimError {}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::EmptyWorkload => write!(f, "a workload has at least one job"),
            SimError::ZeroPackets { job } => {
                write!(f, "job {job}: a message has at least one packet")
            }
            SimError::BindingMismatch { job, bound, ranks } => write!(
                f,
                "job {job}: binding must cover every tree rank ({bound} hosts for {ranks} ranks)"
            ),
            SimError::NegativeStart { job, start_us } => {
                write!(f, "job {job}: negative start time ({start_us} us)")
            }
            SimError::PersonalizedNeedsSmartNic { job } => {
                write!(
                    f,
                    "job {job}: personalized payloads require smart NI support"
                )
            }
            SimError::HostOutOfRange { job, host, hosts } => {
                write!(f, "job {job}: host {host} not in network ({hosts} hosts)")
            }
            SimError::DuplicateHost { job, host } => {
                write!(f, "job {job}: host {host} bound twice")
            }
            SimError::RouteCountMismatch { jobs, routes } => {
                write!(
                    f,
                    "expected one route table per job ({jobs} job(s), {routes} table(s))"
                )
            }
            SimError::InvalidFaultPlan { reason } => {
                write!(f, "invalid fault plan: {reason}")
            }
            SimError::InvalidNiModel { reason } => {
                write!(f, "invalid NI model: {reason}")
            }
            SimError::SourceCrashed { job, host } => {
                write!(
                    f,
                    "job {job}: the crash schedule kills the source host {host}; \
                     a crashed source cannot be repaired around"
                )
            }
            SimError::FaultsNeedHandshakeTiming => {
                write!(
                    f,
                    "fault injection requires handshake NI timing (stop-and-wait \
                     reliable delivery holds each buffer copy until acknowledgement)"
                )
            }
            SimError::DeliveryFailed { unreached, .. } => {
                let preview: Vec<String> = unreached
                    .iter()
                    .take(8)
                    .map(|(j, r)| format!("job {j}/{r}"))
                    .collect();
                let ellipsis = if unreached.len() > 8 { ", ..." } else { "" };
                write!(
                    f,
                    "delivery failed: {} destination(s) unreached [{}{}]",
                    unreached.len(),
                    preview.join(", "),
                    ellipsis
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_job_and_cause() {
        let cases: Vec<(SimError, &str)> = vec![
            (SimError::EmptyWorkload, "at least one job"),
            (SimError::ZeroPackets { job: 2 }, "job 2"),
            (
                SimError::BindingMismatch {
                    job: 0,
                    bound: 1,
                    ranks: 3,
                },
                "cover every tree rank",
            ),
            (
                SimError::NegativeStart {
                    job: 1,
                    start_us: -4.0,
                },
                "negative start",
            ),
            (
                SimError::PersonalizedNeedsSmartNic { job: 0 },
                "require smart NI",
            ),
            (
                SimError::HostOutOfRange {
                    job: 0,
                    host: HostId(9),
                    hosts: 4,
                },
                "not in network",
            ),
            (
                SimError::DuplicateHost {
                    job: 0,
                    host: HostId(1),
                },
                "bound twice",
            ),
            (
                SimError::RouteCountMismatch { jobs: 3, routes: 1 },
                "one route table per job",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} lacks {needle:?}");
        }
    }

    #[test]
    fn fault_errors_name_the_cause() {
        let invalid = SimError::InvalidFaultPlan {
            reason: "drop_rate must lie in [0, 1)",
        };
        assert!(invalid.to_string().contains("drop_rate"));
        let ni = SimError::InvalidNiModel {
            reason: "send_units must be at least 1",
        };
        assert!(ni.to_string().contains("invalid NI model"), "{ni}");
        assert!(ni.to_string().contains("send_units"), "{ni}");
        assert!(SimError::FaultsNeedHandshakeTiming
            .to_string()
            .contains("handshake"));
        let src = SimError::SourceCrashed {
            job: 1,
            host: HostId(0),
        };
        assert!(src.to_string().contains("source host"), "{src}");
        let failed = SimError::DeliveryFailed {
            unreached: vec![(0, Rank(3)), (0, Rank(7))],
            counters: Box::default(),
        };
        let msg = failed.to_string();
        assert!(msg.contains("2 destination(s) unreached"), "{msg}");
        assert!(msg.contains("job 0/r3"), "{msg}");
    }
}
