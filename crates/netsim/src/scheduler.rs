//! Multi-tenant job admission scheduling: N independent multicast streams
//! sharing one network.
//!
//! The paper evaluates one multicast at a time; production fabrics carry
//! many concurrent streams. Following *Near-Optimal Schedules for
//! Simultaneous Multicasts* (Haeupler, Hershkowitz & Wajc), the dominant
//! cost at scale is the admission discipline: letting every job enter the
//! network on arrival (FIFO) interleaves trees on shared wormhole channels
//! and stretches everyone's completion, while a congestion-aware schedule
//! defers jobs that would oversubscribe a channel and completes each
//! admitted job near its solo latency.
//!
//! This module is the admission layer over the workload engine:
//!
//! 1. each [`MulticastJob`]'s `start_us` is interpreted as its **arrival**
//!    time (when the tenant asks to multicast);
//! 2. a [`JobScheduler`] policy walks the jobs in arrival order and picks
//!    each job's **admission** time (≥ arrival), seeing the job's channel
//!    footprint (from its interned [`JobRoutes`]), an analytic duration
//!    estimate, and the previously admitted jobs;
//! 3. one [`SimRun`] executes all jobs with their admission times as start
//!    times on the shared network — real interleaved discrete-event
//!    contention decides the actual completions.
//!
//! The split keeps the layer deterministic and cheap: admission is a pure
//! function of arrivals, routes, and analytic estimates (no feedback from
//! simulated completions), so a scheduled run is byte-identical across
//! hosts and thread counts, and the simulator remains the single source of
//! truth for what the policy's plan actually costs.
//!
//! Two policies ship: [`FifoAdmission`] (admit on arrival — the naive
//! baseline) and [`ContentionAware`] (bound the number of concurrently
//! admitted jobs crossing any one wormhole channel, deferring jobs that
//! would oversubscribe). Both agree whenever at most one job is in flight.

use crate::error::SimError;
use crate::routes::JobRoutes;
use crate::workload::{JobPayload, MulticastJob, SimRun, WorkloadConfig, WorkloadOutcome};
use optimcast_core::latency::{conventional_latency_us, smart_latency_from_steps};
use optimcast_core::params::SystemParams;
use optimcast_core::schedule::fpfs_schedule;
use optimcast_topology::graph::ChannelId;
use optimcast_topology::Network;
use std::sync::Arc;

/// A previously admitted job, as seen by an admission policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InFlight {
    /// Job index into the workload (and into
    /// [`AdmissionRequest::footprint`]).
    pub job: u32,
    /// Chosen admission time (µs).
    pub admit_us: f64,
    /// Estimated completion time `admit_us + estimate` (µs). An estimate —
    /// the simulator decides the real completion.
    pub est_end_us: f64,
}

/// Everything an admission policy may consult when placing one job.
///
/// All fields are pure functions of the workload description (arrivals,
/// trees, bindings, routes) — never of simulated completions — so any
/// policy implemented on top is automatically deterministic.
#[derive(Debug)]
pub struct AdmissionRequest<'a> {
    /// Index of the job being admitted.
    pub job: u32,
    /// The job's arrival time (µs); admission may not precede it.
    pub arrival_us: f64,
    /// Analytic solo-latency estimate for the job (µs): FPFS step count ×
    /// `t_step` plus `t_s`/`t_r` for smart-NI multicasts, the host-forward
    /// recurrence for conventional NIs, the source-injection bound for
    /// scatters.
    pub est_duration_us: f64,
    /// Per-job wormhole channel footprints (sorted, deduplicated), indexed
    /// by job — the union of the job's parent→child routes from its
    /// [`JobRoutes`] table.
    channels: &'a [Vec<ChannelId>],
    /// Jobs admitted before this one, in admission (= arrival) order.
    pub inflight: &'a [InFlight],
}

impl AdmissionRequest<'_> {
    /// The sorted channel footprint of `job`.
    pub fn footprint(&self, job: u32) -> &[ChannelId] {
        &self.channels[job as usize]
    }
}

/// An admission policy: where the multi-tenant layer is pluggable.
///
/// `admit` returns the job's admission time; the driver clamps it to the
/// arrival (admission may not travel back in time) and treats a non-finite
/// return as "admit on arrival".
pub trait JobScheduler {
    /// Stable policy name (used in reports and JSON).
    fn name(&self) -> &'static str;

    /// Picks the admission time for the job described by `req`.
    fn admit(&self, req: &AdmissionRequest<'_>) -> f64;
}

/// Naive FIFO admission: every job enters the network the moment it
/// arrives, regardless of what is already in flight.
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoAdmission;

impl JobScheduler for FifoAdmission {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn admit(&self, req: &AdmissionRequest<'_>) -> f64 {
        req.arrival_us
    }
}

/// Contention-aware admission: bound the number of concurrently admitted
/// jobs crossing any one wormhole channel.
///
/// A job is admitted at the earliest time `t ≥ arrival` at which every
/// channel of its footprint is used by fewer than `max_channel_load` other
/// in-flight jobs throughout the job's estimated window `[t, t + est)`;
/// otherwise it is deferred to the earliest estimated completion that
/// could unblock it and re-examined. Overlap is judged on the *estimated*
/// windows of the in-flight jobs, so the policy needs no feedback from the
/// simulator and stays deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContentionAware {
    /// Maximum in-flight jobs allowed per wormhole channel, counting the
    /// candidate itself. `1` gives each admitted job exclusive use of its
    /// channels (strongest shaping); larger values admit bounded sharing.
    pub max_channel_load: u32,
}

impl Default for ContentionAware {
    fn default() -> Self {
        ContentionAware {
            max_channel_load: 1,
        }
    }
}

impl JobScheduler for ContentionAware {
    fn name(&self) -> &'static str {
        "contention-aware"
    }

    fn admit(&self, req: &AdmissionRequest<'_>) -> f64 {
        let mine = req.footprint(req.job);
        if mine.is_empty() {
            return req.arrival_us;
        }
        let mut t = req.arrival_us;
        // Each round either admits at `t` or advances `t` to a strictly
        // later in-flight estimated end, so the loop runs at most
        // `inflight.len()` rounds.
        loop {
            let end = t + req.est_duration_us;
            let mut next_free = f64::INFINITY;
            for ch in mine {
                let mut load = 0;
                let mut earliest_end = f64::INFINITY;
                for f in req.inflight {
                    if f.est_end_us > t
                        && f.admit_us < end
                        && req.footprint(f.job).binary_search(ch).is_ok()
                    {
                        load += 1;
                        earliest_end = earliest_end.min(f.est_end_us);
                    }
                }
                // `load` excludes the candidate, so the channel is over
                // budget once `load + 1 > max_channel_load`.
                if load + 1 > self.max_channel_load {
                    next_free = next_free.min(earliest_end);
                }
            }
            if next_free == f64::INFINITY {
                return t;
            }
            t = next_free;
        }
    }
}

/// Per-job scheduling metrics of one multi-tenant run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobStats {
    /// Job index into the workload.
    pub job: u32,
    /// When the tenant asked to multicast (µs).
    pub arrival_us: f64,
    /// When the policy let the job into the network (µs).
    pub admit_us: f64,
    /// Queueing delay `admit − arrival` (µs).
    pub queue_us: f64,
    /// Simulated in-network latency from admission to last delivery (µs).
    pub service_us: f64,
    /// Completion latency the tenant observes: `queue + service` (µs).
    pub completion_us: f64,
    /// Destinations that received the complete message.
    pub delivered: u32,
    /// Destinations written off by live repair (0 without faults).
    pub unreached: u32,
}

/// Results of a scheduled multi-tenant run: the per-job admission metrics
/// plus the underlying simulated [`WorkloadOutcome`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledOutcome {
    /// Name of the policy that planned the admissions.
    pub policy: &'static str,
    /// Per-job metrics, in job-index order.
    pub stats: Vec<JobStats>,
    /// The simulated outcome of the admitted workload (per-job latencies,
    /// makespan from time zero, counters, events).
    pub outcome: WorkloadOutcome,
}

impl ScheduledOutcome {
    /// Nearest-rank percentile (`q` in `[0, 100]`) of the per-job
    /// completion latencies.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 100]`.
    pub fn completion_percentile(&self, q: f64) -> f64 {
        assert!((0.0..=100.0).contains(&q), "percentile in [0, 100]");
        let mut xs: Vec<f64> = self.stats.iter().map(|s| s.completion_us).collect();
        xs.sort_by(f64::total_cmp);
        let rank = ((q / 100.0) * xs.len() as f64).ceil() as usize;
        xs[rank.max(1) - 1]
    }

    /// Mean queueing delay across jobs (µs).
    pub fn mean_queue_us(&self) -> f64 {
        self.stats.iter().map(|s| s.queue_us).sum::<f64>() / self.stats.len() as f64
    }

    /// Jobs the policy admitted strictly later than their arrival.
    pub fn deferred(&self) -> u32 {
        self.stats.iter().filter(|s| s.queue_us > 0.0).count() as u32
    }

    /// Aggregate simulator throughput in events per simulated millisecond
    /// (deterministic, unlike wall-clock throughput).
    pub fn events_per_sim_ms(&self) -> f64 {
        if self.outcome.makespan_us > 0.0 {
            self.outcome.events as f64 / (self.outcome.makespan_us / 1000.0)
        } else {
            0.0
        }
    }
}

/// Builder for one multi-tenant scheduled run, mirroring [`SimRun`].
///
/// ```ignore
/// let out = ScheduledRun::new(&net, &jobs, &params, config, &ContentionAware::default())
///     .routes(route_tables) // optional: memoized CSR route tables
///     .run()?;
/// println!("p99 completion: {} µs", out.completion_percentile(99.0));
/// ```
pub struct ScheduledRun<'a, N: Network> {
    net: &'a N,
    jobs: &'a [MulticastJob],
    params: &'a SystemParams,
    config: WorkloadConfig,
    policy: &'a dyn JobScheduler,
    routes: Option<Vec<Arc<JobRoutes>>>,
}

impl<'a, N: Network> ScheduledRun<'a, N> {
    /// Describes a scheduled run: `jobs[i].start_us` is job `i`'s arrival
    /// time; `policy` decides the admissions.
    pub fn new(
        net: &'a N,
        jobs: &'a [MulticastJob],
        params: &'a SystemParams,
        config: WorkloadConfig,
        policy: &'a dyn JobScheduler,
    ) -> Self {
        ScheduledRun {
            net,
            jobs,
            params,
            config,
            policy,
            routes: None,
        }
    }

    /// Supplies interned route tables, one per job (same contract as
    /// [`SimRun::routes`]). The scheduler derives channel footprints from
    /// these instead of recomputing routes.
    #[must_use]
    pub fn routes(mut self, routes: Vec<Arc<JobRoutes>>) -> Self {
        self.routes = Some(routes);
        self
    }

    /// Plans admissions with the policy, then executes the admitted
    /// workload in one simulation.
    ///
    /// # Errors
    ///
    /// Same validation contract as [`SimRun::run`]; additionally
    /// [`SimError::RouteCountMismatch`] if supplied route tables do not
    /// cover the jobs one-to-one.
    pub fn run(self) -> Result<ScheduledOutcome, SimError> {
        crate::simulation::validate(self.net, self.jobs)?;
        let routes = match self.routes {
            Some(r) => {
                if r.len() != self.jobs.len() {
                    return Err(SimError::RouteCountMismatch {
                        jobs: self.jobs.len(),
                        routes: r.len(),
                    });
                }
                r
            }
            None => self
                .jobs
                .iter()
                .map(|j| Arc::new(JobRoutes::build(self.net, &j.tree, &j.binding)))
                .collect(),
        };

        // Sorted channel footprints, one per job.
        let channels: Vec<Vec<ChannelId>> = routes
            .iter()
            .map(|r| {
                let mut set: Vec<ChannelId> =
                    (0..r.len()).flat_map(|k| r.route(k)).copied().collect();
                set.sort_unstable();
                set.dedup();
                set
            })
            .collect();

        // Analytic solo-duration estimates (admission planning only; the
        // simulator decides actual completions).
        let estimates: Vec<f64> = self
            .jobs
            .iter()
            .map(|j| estimate_duration_us(j, self.params))
            .collect();

        // Admit in arrival order (ties broken by job index, so the walk is
        // deterministic).
        let mut order: Vec<usize> = (0..self.jobs.len()).collect();
        order.sort_by(|&a, &b| {
            self.jobs[a]
                .start_us
                .total_cmp(&self.jobs[b].start_us)
                .then(a.cmp(&b))
        });

        let mut inflight: Vec<InFlight> = Vec::with_capacity(self.jobs.len());
        let mut admit_us = vec![0.0f64; self.jobs.len()];
        for &j in &order {
            let arrival = self.jobs[j].start_us;
            let req = AdmissionRequest {
                job: j as u32,
                arrival_us: arrival,
                est_duration_us: estimates[j],
                channels: &channels,
                inflight: &inflight,
            };
            let chosen = self.policy.admit(&req);
            let admit = if chosen.is_finite() {
                chosen.max(arrival)
            } else {
                arrival
            };
            admit_us[j] = admit;
            inflight.push(InFlight {
                job: j as u32,
                admit_us: admit,
                est_end_us: admit + estimates[j],
            });
        }

        let mut admitted = self.jobs.to_vec();
        for (j, job) in admitted.iter_mut().enumerate() {
            job.start_us = admit_us[j];
        }
        let outcome = SimRun::new(self.net, &admitted, self.params, self.config)
            .routes(routes)
            .run()?;

        let stats = (0..self.jobs.len())
            .map(|j| {
                let arrival = self.jobs[j].start_us;
                let service = outcome.jobs[j].latency_us;
                let delivered = outcome.jobs[j]
                    .host_done_us
                    .iter()
                    .skip(1)
                    .filter(|&&t| t > 0.0)
                    .count() as u32;
                let unreached = outcome
                    .unreached
                    .iter()
                    .filter(|&&(job, _)| job as usize == j)
                    .count() as u32;
                JobStats {
                    job: j as u32,
                    arrival_us: arrival,
                    admit_us: admit_us[j],
                    queue_us: admit_us[j] - arrival,
                    service_us: service,
                    completion_us: (admit_us[j] - arrival) + service,
                    delivered,
                    unreached,
                }
            })
            .collect();

        Ok(ScheduledOutcome {
            policy: self.policy.name(),
            stats,
            outcome,
        })
    }
}

/// Analytic solo-latency estimate of one job (µs), used only to plan
/// admissions.
fn estimate_duration_us(job: &MulticastJob, params: &SystemParams) -> f64 {
    match (&job.payload, &job.nic) {
        (JobPayload::Personalized { .. }, _) => {
            // Source-injection bound: m packets per destination leave the
            // source serially.
            let steps = job.packets * (job.tree.len() as u32 - 1);
            smart_latency_from_steps(steps, params)
        }
        (JobPayload::Replicated, crate::sim::NicKind::Conventional) => {
            conventional_latency_us(&job.tree, job.packets, params)
        }
        (JobPayload::Replicated, crate::sim::NicKind::Smart(_)) => {
            // FPFS step count; FCFS differs slightly but the estimate only
            // shapes admission windows.
            let steps = fpfs_schedule(&job.tree, job.packets).total_steps();
            smart_latency_from_steps(steps, params)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimcast_core::builders::binomial_tree;
    use optimcast_topology::graph::HostId;
    use optimcast_topology::irregular::{IrregularConfig, IrregularNetwork};

    fn params() -> SystemParams {
        SystemParams::paper_1997()
    }

    fn net(seed: u64) -> IrregularNetwork {
        IrregularNetwork::generate(IrregularConfig::default(), seed)
    }

    fn job_at(hosts: std::ops::Range<u32>, m: u32, arrival: f64) -> MulticastJob {
        let n = hosts.len() as u32;
        let mut j = MulticastJob::fpfs(binomial_tree(n), hosts.map(HostId).collect(), m);
        j.start_us = arrival;
        j
    }

    #[test]
    fn fifo_admits_every_job_at_arrival() {
        let n = net(1);
        let jobs = [
            job_at(0..16, 4, 0.0),
            job_at(8..24, 4, 10.0),
            job_at(16..32, 4, 20.0),
        ];
        let out = ScheduledRun::new(
            &n,
            &jobs,
            &params(),
            WorkloadConfig::default(),
            &FifoAdmission,
        )
        .run()
        .unwrap();
        for s in &out.stats {
            assert_eq!(s.queue_us, 0.0, "job {} queued under FIFO", s.job);
            assert_eq!(s.admit_us, s.arrival_us);
            assert!((s.completion_us - s.service_us).abs() < 1e-12);
        }
        assert_eq!(out.deferred(), 0);
        assert_eq!(out.policy, "fifo");
    }

    /// FIFO scheduling is exactly the plain workload with arrival = start:
    /// the layer adds bookkeeping, never perturbs the simulation.
    #[test]
    fn fifo_equals_plain_simrun() {
        let n = net(2);
        let jobs = [job_at(0..16, 4, 0.0), job_at(4..20, 4, 35.0)];
        let scheduled = ScheduledRun::new(
            &n,
            &jobs,
            &params(),
            WorkloadConfig::default(),
            &FifoAdmission,
        )
        .run()
        .unwrap();
        let plain = SimRun::new(&n, &jobs, &params(), WorkloadConfig::default())
            .run()
            .unwrap();
        assert_eq!(scheduled.outcome, plain);
    }

    /// With a single job in flight the two shipped policies are
    /// byte-identical: nothing can contend, so contention-aware admission
    /// degenerates to FIFO.
    #[test]
    fn policies_agree_on_single_job() {
        let n = net(3);
        let jobs = [job_at(0..32, 6, 42.5)];
        let fifo = ScheduledRun::new(
            &n,
            &jobs,
            &params(),
            WorkloadConfig::default(),
            &FifoAdmission,
        )
        .run()
        .unwrap();
        let shaped = ScheduledRun::new(
            &n,
            &jobs,
            &params(),
            WorkloadConfig::default(),
            &ContentionAware::default(),
        )
        .run()
        .unwrap();
        assert_eq!(fifo.outcome, shaped.outcome);
        assert_eq!(fifo.stats, shaped.stats);
    }

    /// Two identical overlapping jobs: the contention-aware policy defers
    /// the second past the first's estimated completion; FIFO does not.
    #[test]
    fn contention_aware_defers_identical_overlap() {
        let n = net(4);
        let jobs = [job_at(0..16, 8, 0.0), job_at(0..16, 8, 5.0)];
        // Identical bindings share every channel, so max_channel_load = 1
        // forces serialization.
        let shaped = ScheduledRun::new(
            &n,
            &jobs,
            &params(),
            WorkloadConfig::default(),
            &ContentionAware::default(),
        )
        .run()
        .unwrap();
        assert_eq!(shaped.stats[0].queue_us, 0.0);
        let est = estimate_duration_us(&jobs[0], &params());
        assert!(
            (shaped.stats[1].admit_us - est).abs() < 1e-9,
            "second job admitted at {} (solo estimate {est})",
            shaped.stats[1].admit_us
        );
        assert_eq!(shaped.deferred(), 1);

        let fifo = ScheduledRun::new(
            &n,
            &jobs,
            &params(),
            WorkloadConfig::default(),
            &FifoAdmission,
        )
        .run()
        .unwrap();
        assert_eq!(fifo.deferred(), 0);
    }

    /// Jobs with disjoint channel footprints are never deferred, no matter
    /// how tightly their windows overlap.
    #[test]
    fn disjoint_footprints_admit_on_arrival() {
        // A crossbar gives each host its own pair of channels, so jobs on
        // disjoint hosts have disjoint footprints.
        let n = IrregularNetwork::generate(
            IrregularConfig {
                switches: 1,
                ports: 32,
                hosts: 32,
            },
            0,
        );
        let jobs = [job_at(0..8, 4, 0.0), job_at(8..16, 4, 1.0)];
        let shaped = ScheduledRun::new(
            &n,
            &jobs,
            &params(),
            WorkloadConfig::default(),
            &ContentionAware::default(),
        )
        .run()
        .unwrap();
        assert_eq!(shaped.deferred(), 0);
    }

    /// Per-job accounting conserves the destination set: delivered +
    /// unreached = group size for every job.
    #[test]
    fn per_job_counters_conserve_group_size() {
        let n = net(6);
        let jobs = [
            job_at(0..16, 3, 0.0),
            job_at(8..24, 3, 7.0),
            job_at(16..32, 3, 14.0),
        ];
        for policy in [
            &FifoAdmission as &dyn JobScheduler,
            &ContentionAware::default(),
        ] {
            let out = ScheduledRun::new(&n, &jobs, &params(), WorkloadConfig::default(), policy)
                .run()
                .unwrap();
            for s in &out.stats {
                let group = jobs[s.job as usize].tree.len() as u32 - 1;
                assert_eq!(
                    s.delivered + s.unreached,
                    group,
                    "job {} conservation under {}",
                    s.job,
                    policy.name()
                );
                assert_eq!(s.unreached, 0, "fault-free run reached everyone");
            }
        }
    }

    /// Percentile helper: nearest-rank semantics on the completion set.
    #[test]
    fn completion_percentiles_are_nearest_rank() {
        let n = net(7);
        let jobs = [
            job_at(0..8, 2, 0.0),
            job_at(8..16, 2, 3.0),
            job_at(16..24, 2, 6.0),
            job_at(24..32, 2, 9.0),
        ];
        let out = ScheduledRun::new(
            &n,
            &jobs,
            &params(),
            WorkloadConfig::default(),
            &FifoAdmission,
        )
        .run()
        .unwrap();
        let mut xs: Vec<f64> = out.stats.iter().map(|s| s.completion_us).collect();
        xs.sort_by(f64::total_cmp);
        assert_eq!(out.completion_percentile(50.0), xs[1]);
        assert_eq!(out.completion_percentile(99.0), xs[3]);
        assert_eq!(out.completion_percentile(0.0), xs[0]);
    }

    /// Route-table mismatch is a typed error, not a panic.
    #[test]
    fn route_count_mismatch_is_reported() {
        let n = net(8);
        let jobs = [job_at(0..8, 2, 0.0), job_at(8..16, 2, 0.0)];
        let routes = vec![Arc::new(JobRoutes::build(
            &n,
            &jobs[0].tree,
            &jobs[0].binding,
        ))];
        let err = ScheduledRun::new(
            &n,
            &jobs,
            &params(),
            WorkloadConfig::default(),
            &FifoAdmission,
        )
        .routes(routes)
        .run()
        .unwrap_err();
        assert_eq!(err, SimError::RouteCountMismatch { jobs: 2, routes: 1 });
    }
}
