//! Conventional-NI forwarding (paper §2.3): the host processor replicates.
//!
//! The NI does not forward. A participant's *host* receives the complete
//! message (`t_r`), then prepares a copy for each child in turn — `t_s` of
//! host time per child — handing the NI one child's packets at a time. The
//! per-child `t_s`/`t_r` involvement is exactly why the paper's smart NI
//! wins; this engine reproduces the cost model the analytic
//! `conventional_latency_us` predicts.

use super::{record_receive, ForwardingDiscipline};
use crate::event::{Ev, SendItem};
use crate::simulation::SimState;
use crate::time::SimTime;
use optimcast_core::tree::Rank;

/// The conventional (host-forwarded) engine (stateless).
pub(crate) struct Conventional;

impl ForwardingDiscipline for Conventional {
    fn kickoff(&self, st: &mut SimState<'_>, job: u32) {
        // The source host starts preparing its first child's message at the
        // job's start time; HostReady applies the `t_s` staging cost.
        let start = st.job(job).start_us;
        st.queue.schedule(
            SimTime::us(start),
            Ev::HostReady {
                job,
                at: Rank::SOURCE,
            },
        );
    }

    fn on_recv_done(
        &self,
        st: &mut SimState<'_>,
        now: SimTime,
        job: u32,
        at: Rank,
        packet: u32,
        _dest: Rank,
    ) {
        let _ = packet;
        let jobd = st.job(job);
        let received = record_receive(st, now, job, at);
        if received == jobd.packets {
            let done = st.finish_host(now, job, at);
            if !jobd.tree.children(at).is_empty() {
                st.queue.schedule(done, Ev::HostReady { job, at });
            }
        }
    }

    /// The handshake of one of our packets completed: count down the
    /// in-progress child message and, when it is fully delivered, start
    /// preparing the next child (another `t_s` of host time).
    fn sender_ack(&self, st: &mut SimState<'_>, now: SimTime, job: u32, at: Rank) {
        let j = job as usize;
        let kids_len = st.job(job).tree.children(at).len();
        let up = &mut st.parts[j][at.index()];
        debug_assert!(up.conv_pending > 0, "ack without pending child message");
        up.conv_pending -= 1;
        if up.conv_pending == 0 && up.conv_child + 1 < kids_len {
            up.conv_child += 1;
            let idx = up.conv_child;
            st.queue.schedule(
                now + st.params.t_s,
                Ev::SendPrepared {
                    job,
                    at,
                    child_idx: idx,
                },
            );
        }
    }

    fn on_host_ready(&self, st: &mut SimState<'_>, now: SimTime, job: u32, at: Rank) {
        if st.job(job).tree.children(at).is_empty() {
            return;
        }
        st.parts[job as usize][at.index()].conv_child = 0;
        st.queue.schedule(
            now + st.params.t_s,
            Ev::SendPrepared {
                job,
                at,
                child_idx: 0,
            },
        );
    }

    fn on_send_prepared(
        &self,
        st: &mut SimState<'_>,
        now: SimTime,
        job: u32,
        at: Rank,
        child_idx: usize,
    ) {
        let jobd = st.job(job);
        let c = jobd.tree.children(at)[child_idx];
        let h = jobd.binding[at.index()];
        for p in 0..jobd.packets {
            st.enqueue_send(
                h,
                SendItem {
                    job,
                    packet: p,
                    from: at,
                    child: c,
                    dest: c,
                    attempt: 0,
                },
            );
        }
        st.parts[job as usize][at.index()].conv_pending = jobd.packets;
        st.queue.schedule(now, Ev::TrySend(h));
    }

    /// The conventional NI never stages packets in a forwarding buffer
    /// (the host owns the message), so releases carry no accounting.
    fn on_copy_released(&self, _st: &mut SimState<'_>, _item: SendItem) {}
}
