//! Pluggable NI forwarding engines.
//!
//! Each engine implements [`ForwardingDiscipline`]: the simulator core
//! ([`crate::simulation`]) owns time, channels, send/receive units, and
//! observers, and delegates every *policy* decision — what the source
//! stages, what an NI does with a received packet, when a buffered copy is
//! freed — to the job's engine:
//!
//! * [`fpfs::Fpfs`] — smart NI, first-packet-first-served (paper §3.2);
//! * [`fcfs::Fcfs`] — smart NI, first-child-first-served (paper §3.1);
//! * [`conventional::Conventional`] — host-forwarded replication (§2.3);
//! * [`scatter::Scatter`] — smart-NI personalized (scatter) relay.
//!
//! Engines are stateless (`&self` everywhere): all mutable simulation state
//! lives in [`SimState`], so one engine instance serves a job for the whole
//! run and the core can hold the engine table and the state as disjoint
//! borrows.

pub(crate) mod conventional;
pub(crate) mod fcfs;
pub(crate) mod fpfs;
pub(crate) mod scatter;

use crate::event::SendItem;
use crate::simulation::SimState;
use crate::time::SimTime;
use optimcast_core::tree::Rank;

/// One job's forwarding policy.
///
/// The core invokes hooks in a fixed order per event (see
/// [`crate::simulation`]); engines mutate [`SimState`] through its helper
/// methods so observer notifications stay consistent.
pub(crate) trait ForwardingDiscipline {
    /// Stages the job's initial work at its source and schedules the first
    /// event(s).
    fn kickoff(&self, st: &mut SimState<'_>, job: u32);

    /// A packet for this job finished arriving at rank `at`'s NI.
    ///
    /// Called after the core has released the sender's unit (handshake
    /// timing), delivered the sender acknowledgement, and notified
    /// observers of the receive.
    fn on_recv_done(
        &self,
        st: &mut SimState<'_>,
        now: SimTime,
        job: u32,
        at: Rank,
        packet: u32,
        dest: Rank,
    );

    /// The transmission `at` → (some child) completed its handshake; the
    /// sending rank learns its packet was consumed. Only the conventional
    /// NI acts on this (its host pipelines per-child message preparation).
    fn sender_ack(&self, st: &mut SimState<'_>, now: SimTime, job: u32, at: Rank) {
        let _ = (st, now, job, at);
    }

    /// A conventional host processor became ready to prepare child
    /// messages. Unreachable for smart engines.
    fn on_host_ready(&self, st: &mut SimState<'_>, now: SimTime, job: u32, at: Rank) {
        let _ = (st, now, job, at);
        debug_assert!(false, "HostReady event reached a smart engine");
    }

    /// A conventional host finished staging one child's message.
    /// Unreachable for smart engines.
    fn on_send_prepared(
        &self,
        st: &mut SimState<'_>,
        now: SimTime,
        job: u32,
        at: Rank,
        child_idx: usize,
    ) {
        let _ = (st, now, job, at, child_idx);
        debug_assert!(false, "SendPrepared event reached a smart engine");
    }

    /// The send unit finished transmitting `item`; apply the engine's
    /// buffer-release policy.
    fn on_copy_released(&self, st: &mut SimState<'_>, item: SendItem);
}

/// Shared replicated-payload buffer release: a packet stays resident at the
/// forwarding NI until its *last* copy is out, tracked by the sending
/// participant's per-packet counter.
pub(crate) fn release_replicated_copy(st: &mut SimState<'_>, item: SendItem) {
    let counter =
        &mut st.parts[item.job as usize][item.from.index()].copies_left[item.packet as usize];
    if *counter > 0 {
        *counter -= 1;
        if *counter == 0 {
            let h = st.jobs[item.job as usize].binding[item.from.index()];
            st.unstage(h);
        }
    }
}

/// Shared receive bookkeeping: counts the packet and records the NI receive
/// time. Returns the new received count.
pub(crate) fn record_receive(st: &mut SimState<'_>, now: SimTime, job: u32, at: Rank) -> u32 {
    let part = &mut st.parts[job as usize][at.index()];
    part.received += 1;
    part.last_recv = now;
    part.received
}
