//! First-Packet-First-Served smart-NI forwarding (paper §3.2).
//!
//! The source NI stages the whole message and queues its copies
//! **packet-major**: all children get packet 0, then all get packet 1, …
//! An intermediate NI forwards each packet to *all* of its children as soon
//! as the packet is received, so at most a couple of packets are ever
//! resident (§3.3.2) — the discipline behind the paper's optimal
//! k-binomial schedules.

use super::{record_receive, release_replicated_copy, ForwardingDiscipline};
use crate::event::{Ev, SendItem};
use crate::simulation::SimState;
use crate::time::SimTime;
use optimcast_core::tree::Rank;

/// The FPFS engine (stateless).
pub(crate) struct Fpfs;

impl ForwardingDiscipline for Fpfs {
    fn kickoff(&self, st: &mut SimState<'_>, job: u32) {
        let jobd = st.job(job);
        let src_host = jobd.binding[0];
        let kids = jobd.tree.root_children();
        for p in 0..jobd.packets {
            for &c in kids {
                st.enqueue_send(
                    src_host,
                    SendItem {
                        job,
                        packet: p,
                        from: Rank::SOURCE,
                        child: c,
                        dest: c,
                        attempt: 0,
                    },
                );
            }
        }
        if !kids.is_empty() {
            st.stage(src_host, jobd.packets);
            for p in 0..jobd.packets as usize {
                st.parts[job as usize][0].copies_left[p] = kids.len() as u32;
            }
        }
        st.queue.schedule(
            SimTime::us(jobd.start_us + st.params.t_s),
            Ev::TrySend(src_host),
        );
    }

    fn on_recv_done(
        &self,
        st: &mut SimState<'_>,
        now: SimTime,
        job: u32,
        at: Rank,
        packet: u32,
        _dest: Rank,
    ) {
        let j = job as usize;
        let jobd = st.job(job);
        let kids = jobd.tree.children(at);
        let packets = jobd.packets;
        let v_host = jobd.binding[at.index()];
        let received = record_receive(st, now, job, at);
        if !kids.is_empty() {
            st.parts[j][at.index()].copies_left[packet as usize] = kids.len() as u32;
            st.stage(v_host, 1);
            for &c in kids {
                st.enqueue_send(
                    v_host,
                    SendItem {
                        job,
                        packet,
                        from: at,
                        child: c,
                        dest: c,
                        attempt: 0,
                    },
                );
            }
            st.queue.schedule(now, Ev::TrySend(v_host));
        }
        if received == packets {
            st.finish_host(now, job, at);
        }
    }

    fn on_copy_released(&self, st: &mut SimState<'_>, item: SendItem) {
        release_replicated_copy(st, item);
    }
}
