//! Smart-NI personalized (scatter) forwarding.
//!
//! Every non-source rank receives its *own* packets: intermediate NIs relay
//! each packet one hop toward its destination's subtree instead of
//! replicating it. The whole payload is staged at the source NI; a relay
//! occupies one forwarding-buffer slot from receive until its onward copy
//! has left. The source injection order ([`PersonalizedOrder`]) is the
//! policy under study in `optimcast-collectives::scatter`; intermediate
//! nodes always forward in arrival order, as a real NI would.

use super::ForwardingDiscipline;
use crate::event::{Ev, SendItem};
use crate::simulation::SimState;
use crate::time::SimTime;
use crate::workload::PersonalizedOrder;
use optimcast_core::tree::{MulticastTree, Rank};

/// The scatter (personalized payload) engine; stateless apart from the
/// configured source order.
pub(crate) struct Scatter {
    pub order: PersonalizedOrder,
}

impl ForwardingDiscipline for Scatter {
    fn kickoff(&self, st: &mut SimState<'_>, job: u32) {
        let jobd = st.job(job);
        let src_host = jobd.binding[0];
        let items = source_order(&jobd.tree, jobd.packets, self.order);
        let staged = items.len() as u32;
        for (dest, p) in items {
            let child = first_hop(&jobd.tree, dest);
            st.enqueue_send(
                src_host,
                SendItem {
                    job,
                    packet: p,
                    from: Rank::SOURCE,
                    child,
                    dest,
                    attempt: 0,
                },
            );
        }
        // The whole personalized payload is staged at the source NI.
        if staged > 0 {
            st.stage(src_host, staged);
        }
        st.queue.schedule(
            SimTime::us(jobd.start_us + st.params.t_s),
            Ev::TrySend(src_host),
        );
    }

    fn on_recv_done(
        &self,
        st: &mut SimState<'_>,
        now: SimTime,
        job: u32,
        at: Rank,
        packet: u32,
        dest: Rank,
    ) {
        let jobd = st.job(job);
        if dest == at {
            let part = &mut st.parts[job as usize][at.index()];
            part.received += 1;
            part.last_recv = now;
            if part.received == jobd.packets {
                st.finish_host(now, job, at);
            }
        } else {
            // Relay the packet one hop toward its destination.
            let next = next_hop_rank(&jobd.tree, at, dest);
            let v_host = jobd.binding[at.index()];
            st.stage(v_host, 1);
            st.enqueue_send(
                v_host,
                SendItem {
                    job,
                    packet,
                    from: at,
                    child: next,
                    dest,
                    attempt: 0,
                },
            );
            st.queue.schedule(now, Ev::TrySend(v_host));
        }
    }

    /// A relayed packet frees its buffer slot as soon as its onward copy is
    /// out (exactly one copy per packet — no replication).
    fn on_copy_released(&self, st: &mut SimState<'_>, item: SendItem) {
        let h = st.jobs[item.job as usize].binding[item.from.index()];
        st.unstage(h);
    }
}

/// The source-order of a personalized payload: per root-child blocks (in
/// child order), each block ordered by the policy.
pub(crate) fn source_order(
    tree: &MulticastTree,
    m: u32,
    order: PersonalizedOrder,
) -> Vec<(Rank, u32)> {
    let mut depths = vec![0u32; tree.len()];
    for r in tree.dfs_preorder() {
        if let Some(p) = tree.parent(r) {
            depths[r.index()] = depths[p.index()] + 1;
        }
    }
    let mut items = Vec::new();
    for &c in tree.root_children() {
        // Preorder of c's subtree.
        let mut dests = Vec::new();
        let mut stack = vec![c];
        while let Some(r) = stack.pop() {
            dests.push(r);
            for &k in tree.children(r).iter().rev() {
                stack.push(k);
            }
        }
        if order == PersonalizedOrder::DeepestFirst {
            dests.sort_by_key(|&r| std::cmp::Reverse(depths[r.index()]));
        }
        for d in dests {
            for p in 0..m {
                items.push((d, p));
            }
        }
    }
    items
}

/// The root child whose subtree contains `dest`.
fn first_hop(tree: &MulticastTree, dest: Rank) -> Rank {
    next_hop_rank(tree, Rank::SOURCE, dest)
}

/// The child of `at` on the tree path towards `dest`.
///
/// # Panics
///
/// Panics if `dest` is not in `at`'s strict subtree — an engine routing bug,
/// impossible for destinations drawn from the validated tree.
fn next_hop_rank(tree: &MulticastTree, at: Rank, dest: Rank) -> Rank {
    let mut cur = dest;
    loop {
        let parent = tree
            .parent(cur)
            .unwrap_or_else(|| panic!("{dest} is not below {at}"));
        if parent == at {
            return cur;
        }
        cur = parent;
    }
}
