//! First-Child-First-Served smart-NI forwarding (paper §3.1).
//!
//! The source NI queues its copies **child-major**: the first child gets
//! every packet, then the second child, … An intermediate NI forwards each
//! received packet to its first child immediately, but serves its remaining
//! children only once the whole message has arrived — so an FCFS forwarding
//! buffer grows to the full message (§3.3.2), and deep children see the
//! message later than under FPFS.

use super::{record_receive, release_replicated_copy, ForwardingDiscipline};
use crate::event::{Ev, SendItem};
use crate::simulation::SimState;
use crate::time::SimTime;
use optimcast_core::tree::Rank;

/// The FCFS engine (stateless).
pub(crate) struct Fcfs;

impl ForwardingDiscipline for Fcfs {
    fn kickoff(&self, st: &mut SimState<'_>, job: u32) {
        let jobd = st.job(job);
        let src_host = jobd.binding[0];
        let kids = jobd.tree.root_children();
        for &c in kids {
            for p in 0..jobd.packets {
                st.enqueue_send(
                    src_host,
                    SendItem {
                        job,
                        packet: p,
                        from: Rank::SOURCE,
                        child: c,
                        dest: c,
                        attempt: 0,
                    },
                );
            }
        }
        if !kids.is_empty() {
            st.stage(src_host, jobd.packets);
            for p in 0..jobd.packets as usize {
                st.parts[job as usize][0].copies_left[p] = kids.len() as u32;
            }
        }
        st.queue.schedule(
            SimTime::us(jobd.start_us + st.params.t_s),
            Ev::TrySend(src_host),
        );
    }

    fn on_recv_done(
        &self,
        st: &mut SimState<'_>,
        now: SimTime,
        job: u32,
        at: Rank,
        packet: u32,
        _dest: Rank,
    ) {
        let j = job as usize;
        let jobd = st.job(job);
        let kids = jobd.tree.children(at);
        let packets = jobd.packets;
        let v_host = jobd.binding[at.index()];
        let received = record_receive(st, now, job, at);
        if !kids.is_empty() {
            st.parts[j][at.index()].copies_left[packet as usize] = kids.len() as u32;
            st.stage(v_host, 1);
            // The first child is served in arrival order; the rest wait for
            // the complete message.
            st.enqueue_send(
                v_host,
                SendItem {
                    job,
                    packet,
                    from: at,
                    child: kids[0],
                    dest: kids[0],
                    attempt: 0,
                },
            );
            if received == packets {
                for &c in &kids[1..] {
                    for p in 0..packets {
                        st.enqueue_send(
                            v_host,
                            SendItem {
                                job,
                                packet: p,
                                from: at,
                                child: c,
                                dest: c,
                                attempt: 0,
                            },
                        );
                    }
                }
            }
            st.queue.schedule(now, Ev::TrySend(v_host));
        }
        if received == packets {
            st.finish_host(now, job, at);
        }
    }

    fn on_copy_released(&self, st: &mut SimState<'_>, item: SendItem) {
        release_replicated_copy(st, item);
    }
}
