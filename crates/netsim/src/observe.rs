//! The observability layer: one hook vocabulary, several sinks.
//!
//! The simulator core reports what happens — dispatches, receives,
//! completions, stalls, queue/buffer occupancy — through the [`Observer`]
//! trait. The `--trace` timeline ([`TraceCollector`]), the per-job outcome
//! metrics ([`MetricsCollector`]), and the structured counters
//! ([`CountersCollector`] → [`SimCounters`]) are three implementations of
//! that one hook set; none of them can affect simulated timing, which the
//! trace-neutrality integration test pins down.

use crate::fault::FaultKind;
use crate::workload::{TraceKind, TraceRecord};
use optimcast_core::tree::Rank;
use optimcast_topology::graph::HostId;

/// Receiver of simulation occurrences.
///
/// All methods default to no-ops so an implementation only handles what it
/// cares about. Hooks receive plain values — an observer cannot perturb
/// simulation state.
pub trait Observer {
    /// A transmission entered the network at `t_us` after `stalled_us` of
    /// channel stall (0 when the route was free).
    fn send_start(
        &mut self,
        t_us: f64,
        job: u32,
        from: Rank,
        to: Rank,
        packet: u32,
        stalled_us: f64,
    ) {
        let _ = (t_us, job, from, to, packet, stalled_us);
    }

    /// A rank's NI finished receiving a packet.
    fn recv_done(&mut self, t_us: f64, job: u32, at: Rank, packet: u32) {
        let _ = (t_us, job, at, packet);
    }

    /// A rank's host holds its complete message (timestamp may lie in the
    /// simulated future: host completion is `t_r` after the last receive).
    fn host_done(&mut self, t_us: f64, job: u32, rank: Rank) {
        let _ = (t_us, job, rank);
    }

    /// An arrival waited `wait_us > 0` for the receive unit.
    fn recv_unit_wait(&mut self, job: u32, wait_us: f64) {
        let _ = (job, wait_us);
    }

    /// A transmission was appended to a host's send queue, leaving `depth`
    /// entries pending.
    fn send_enqueued(&mut self, host: HostId, depth: usize) {
        let _ = (host, depth);
    }

    /// A host's forwarding buffer changed occupancy (grew to `resident`).
    fn buffer_grew(&mut self, host: HostId, resident: u32) {
        let _ = (host, resident);
    }

    /// A transmission was lost or refused: `kind` says how (random drop,
    /// corruption, link outage, dead peer, buffer exhaustion).
    fn packet_dropped(
        &mut self,
        t_us: f64,
        job: u32,
        from: Rank,
        to: Rank,
        packet: u32,
        kind: FaultKind,
    ) {
        let _ = (t_us, job, from, to, packet, kind);
    }

    /// The reliability layer re-enqueued a failed transmission as `attempt`
    /// after `waited_us` of recovery stall (the ACK timeout for losses, 0
    /// for immediate NACKs).
    #[allow(clippy::too_many_arguments)]
    fn retransmit_scheduled(
        &mut self,
        t_us: f64,
        job: u32,
        from: Rank,
        to: Rank,
        packet: u32,
        attempt: u32,
        waited_us: f64,
    ) {
        let _ = (t_us, job, from, to, packet, attempt, waited_us);
    }

    /// An injected infrastructure fault fired (link outage hit, host crash
    /// took effect, buffer exhausted) at `host`.
    fn fault_triggered(&mut self, t_us: f64, kind: FaultKind, host: HostId) {
        let _ = (t_us, kind, host);
    }

    /// The sender gave up on a packet copy after exhausting its
    /// transmission attempts.
    fn delivery_abandoned(
        &mut self,
        t_us: f64,
        job: u32,
        from: Rank,
        to: Rank,
        packet: u32,
        attempts: u32,
    ) {
        let _ = (t_us, job, from, to, packet, attempts);
    }

    /// The source learned of undelivered destinations and opened repair
    /// epoch `epoch`: `failed` ranks were written off as crashed,
    /// `reattached` orphaned subtrees were re-bound, after `waited_us` of
    /// notification latency.
    fn repair_triggered(
        &mut self,
        t_us: f64,
        job: u32,
        epoch: u32,
        failed: u32,
        reattached: u32,
        waited_us: f64,
    ) {
        let _ = (t_us, job, epoch, failed, reattached, waited_us);
    }

    /// A repair epoch re-enqueued packet `packet` for overlay child `to` at
    /// the source.
    fn packet_reissued(&mut self, t_us: f64, job: u32, to: Rank, packet: u32) {
        let _ = (t_us, job, to, packet);
    }

    /// A windowed-ARQ receiver asked its parent to resend packet `packet`
    /// (one hook per packet a NACK range covers).
    fn resend_requested(&mut self, t_us: f64, job: u32, from: Rank, to: Rank, packet: u32) {
        let _ = (t_us, job, from, to, packet);
    }

    /// A windowed-ARQ receiver detected a delivery gap and sent the
    /// coalesced NACK range `[first, last]` to its parent.
    fn nack_range_sent(&mut self, t_us: f64, job: u32, at: Rank, first: u32, last: u32) {
        let _ = (t_us, job, at, first, last);
    }

    /// An acknowledgement arrived for a window slot already retired
    /// (acknowledged, abandoned, or written off) — the recovery machinery
    /// raced a slow handshake.
    fn late_ack(&mut self, t_us: f64, job: u32, at: Rank, packet: u32) {
        let _ = (t_us, job, at, packet);
    }

    /// A receiver accepted a packet it already held (a retransmission
    /// crossed the original's handshake).
    fn duplicate_ack(&mut self, t_us: f64, job: u32, at: Rank, packet: u32) {
        let _ = (t_us, job, at, packet);
    }

    /// A sender's window admission unblocked after `stalled_us` with the
    /// full window charged and work pending.
    fn window_stalled(&mut self, job: u32, stalled_us: f64) {
        let _ = (job, stalled_us);
    }

    /// A per-message deadline expired: `rank` (with its undelivered
    /// subtree written off separately, one hook each) will never be
    /// delivered in this run.
    fn deadline_writeoff(&mut self, t_us: f64, job: u32, rank: Rank) {
        let _ = (t_us, job, rank);
    }
}

/// Builds the `--trace` timeline.
#[derive(Debug, Default)]
pub(crate) struct TraceCollector {
    records: Vec<TraceRecord>,
}

impl TraceCollector {
    /// The timeline ordered by timestamp (stable: simultaneous records keep
    /// emission order). Some records carry future timestamps (host
    /// completion at `now + t_r`), hence the final sort.
    pub fn into_sorted(mut self) -> Vec<TraceRecord> {
        self.records.sort_by(|a, b| {
            a.t_us
                .partial_cmp(&b.t_us)
                .expect("trace times are never NaN")
        });
        self.records
    }
}

impl Observer for TraceCollector {
    fn send_start(
        &mut self,
        t_us: f64,
        job: u32,
        from: Rank,
        to: Rank,
        packet: u32,
        stalled_us: f64,
    ) {
        self.records.push(TraceRecord {
            t_us,
            job,
            kind: TraceKind::SendStart {
                from,
                to,
                packet,
                stalled_us,
            },
        });
    }

    fn recv_done(&mut self, t_us: f64, job: u32, at: Rank, packet: u32) {
        self.records.push(TraceRecord {
            t_us,
            job,
            kind: TraceKind::RecvDone { at, packet },
        });
    }

    fn host_done(&mut self, t_us: f64, job: u32, rank: Rank) {
        self.records.push(TraceRecord {
            t_us,
            job,
            kind: TraceKind::HostDone { rank },
        });
    }

    fn packet_dropped(
        &mut self,
        t_us: f64,
        job: u32,
        from: Rank,
        to: Rank,
        packet: u32,
        kind: FaultKind,
    ) {
        self.records.push(TraceRecord {
            t_us,
            job,
            kind: TraceKind::Dropped {
                from,
                to,
                packet,
                kind,
            },
        });
    }

    fn retransmit_scheduled(
        &mut self,
        t_us: f64,
        job: u32,
        from: Rank,
        to: Rank,
        packet: u32,
        attempt: u32,
        _waited_us: f64,
    ) {
        self.records.push(TraceRecord {
            t_us,
            job,
            kind: TraceKind::Retransmit {
                from,
                to,
                packet,
                attempt,
            },
        });
    }

    fn delivery_abandoned(
        &mut self,
        t_us: f64,
        job: u32,
        from: Rank,
        to: Rank,
        packet: u32,
        attempts: u32,
    ) {
        self.records.push(TraceRecord {
            t_us,
            job,
            kind: TraceKind::Abandoned {
                from,
                to,
                packet,
                attempts,
            },
        });
    }

    fn repair_triggered(
        &mut self,
        t_us: f64,
        job: u32,
        epoch: u32,
        failed: u32,
        reattached: u32,
        _waited_us: f64,
    ) {
        self.records.push(TraceRecord {
            t_us,
            job,
            kind: TraceKind::RepairTriggered {
                epoch,
                failed,
                reattached,
            },
        });
    }

    fn packet_reissued(&mut self, t_us: f64, job: u32, to: Rank, packet: u32) {
        self.records.push(TraceRecord {
            t_us,
            job,
            kind: TraceKind::Reissued { to, packet },
        });
    }
}

/// Accumulates the per-job outcome metrics (`channel_wait_us`,
/// `blocked_sends`, `total_sends`).
#[derive(Debug)]
pub(crate) struct MetricsCollector {
    pub channel_wait_us: f64,
    pub waits_us: Vec<f64>,
    pub blocked: Vec<u64>,
    pub sends: Vec<u64>,
}

impl MetricsCollector {
    pub fn new(jobs: usize) -> Self {
        MetricsCollector {
            channel_wait_us: 0.0,
            waits_us: vec![0.0; jobs],
            blocked: vec![0; jobs],
            sends: vec![0; jobs],
        }
    }
}

impl Observer for MetricsCollector {
    fn send_start(
        &mut self,
        _t_us: f64,
        job: u32,
        _from: Rank,
        _to: Rank,
        _packet: u32,
        stalled_us: f64,
    ) {
        let j = job as usize;
        self.sends[j] += 1;
        if stalled_us > 0.0 {
            self.channel_wait_us += stalled_us;
            self.waits_us[j] += stalled_us;
            self.blocked[j] += 1;
        }
    }
}

/// Structured aggregate counters of one workload run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimCounters {
    /// Packet transmissions dispatched into the network.
    pub total_sends: u64,
    /// Sends that found at least one route channel busy.
    pub blocked_sends: u64,
    /// Packets forwarded by non-source NIs (replication or relay traffic).
    pub packets_forwarded: u64,
    /// Total sender stall time on busy channels (µs).
    pub channel_stall_us: f64,
    /// Arrivals that queued behind an earlier receive.
    pub recv_unit_waits: u64,
    /// Total arrival wait on busy receive units (µs).
    pub recv_unit_wait_us: f64,
    /// Deepest send queue observed on any host.
    pub max_send_queue: usize,
    /// `buffer_occupancy[n]` counts how often some host's forwarding buffer
    /// grew to exactly `n` resident packets (index 0 unused: only growth is
    /// sampled).
    pub buffer_occupancy: Vec<u64>,
    /// Discrete events processed.
    pub events: u64,
    /// Largest number of events simultaneously pending in the event queue.
    pub peak_queue_len: usize,
    /// Transmissions lost or refused by the fault plan (all
    /// [`FaultKind`]s, corruption included).
    pub packets_dropped: u64,
    /// The corrupted subset of `packets_dropped` (arrived but NACKed).
    pub packets_corrupted: u64,
    /// Failed transmissions re-enqueued by the reliability layer.
    pub retransmits: u64,
    /// Packet copies abandoned after exhausting their attempt budget.
    pub deliveries_abandoned: u64,
    /// Infrastructure faults that fired (link outages hit, dead peers
    /// addressed, buffer exhaustions).
    pub faults_triggered: u64,
    /// Total send-unit stall spent waiting out ACK timeouts (µs) — the
    /// recovery latency the fault plan cost this run.
    pub recovery_wait_us: f64,
    /// Live repair epochs opened (one per `(job, epoch)` the source
    /// repaired and re-issued for).
    pub repairs: u64,
    /// Packet transmissions re-enqueued at the source by repair epochs.
    pub reissued_packets: u64,
    /// Total modeled failure-notification latency spent opening repair
    /// epochs (µs).
    pub repair_wait_us: f64,
    /// Windowed ARQ: per-packet resend requests carried by NACK ranges.
    pub resend_requests: u64,
    /// Windowed ARQ: coalesced NACK ranges sent by gap-detecting receivers.
    pub nack_ranges_sent: u64,
    /// Windowed ARQ: acknowledgements that arrived for already-retired
    /// window slots.
    pub late_acks: u64,
    /// Windowed ARQ: packets accepted that the receiver already held.
    pub duplicate_acks: u64,
    /// Windowed ARQ: total time senders spent with a full window and work
    /// pending (µs).
    pub window_stalls_us: f64,
    /// Destinations written off by an expired per-message deadline.
    pub deadline_writeoffs: u64,
}

/// Fills a [`SimCounters`].
#[derive(Debug, Default)]
pub(crate) struct CountersCollector {
    pub counters: SimCounters,
}

impl Observer for CountersCollector {
    fn send_start(
        &mut self,
        _t_us: f64,
        _job: u32,
        from: Rank,
        _to: Rank,
        _packet: u32,
        stalled_us: f64,
    ) {
        let c = &mut self.counters;
        c.total_sends += 1;
        if from != Rank::SOURCE {
            c.packets_forwarded += 1;
        }
        if stalled_us > 0.0 {
            c.blocked_sends += 1;
            c.channel_stall_us += stalled_us;
        }
    }

    fn recv_unit_wait(&mut self, _job: u32, wait_us: f64) {
        if wait_us > 0.0 {
            self.counters.recv_unit_waits += 1;
            self.counters.recv_unit_wait_us += wait_us;
        }
    }

    fn send_enqueued(&mut self, _host: HostId, depth: usize) {
        self.counters.max_send_queue = self.counters.max_send_queue.max(depth);
    }

    fn buffer_grew(&mut self, _host: HostId, resident: u32) {
        let c = &mut self.counters;
        let idx = resident as usize;
        if c.buffer_occupancy.len() <= idx {
            c.buffer_occupancy.resize(idx + 1, 0);
        }
        c.buffer_occupancy[idx] += 1;
    }

    fn packet_dropped(
        &mut self,
        _t_us: f64,
        _job: u32,
        _from: Rank,
        _to: Rank,
        _packet: u32,
        kind: FaultKind,
    ) {
        self.counters.packets_dropped += 1;
        if kind == FaultKind::Corrupt {
            self.counters.packets_corrupted += 1;
        }
    }

    fn retransmit_scheduled(
        &mut self,
        _t_us: f64,
        _job: u32,
        _from: Rank,
        _to: Rank,
        _packet: u32,
        _attempt: u32,
        waited_us: f64,
    ) {
        self.counters.retransmits += 1;
        self.counters.recovery_wait_us += waited_us;
    }

    fn fault_triggered(&mut self, _t_us: f64, _kind: FaultKind, _host: HostId) {
        self.counters.faults_triggered += 1;
    }

    fn delivery_abandoned(
        &mut self,
        _t_us: f64,
        _job: u32,
        _from: Rank,
        _to: Rank,
        _packet: u32,
        _attempts: u32,
    ) {
        self.counters.deliveries_abandoned += 1;
    }

    fn repair_triggered(
        &mut self,
        _t_us: f64,
        _job: u32,
        _epoch: u32,
        _failed: u32,
        _reattached: u32,
        waited_us: f64,
    ) {
        self.counters.repairs += 1;
        self.counters.repair_wait_us += waited_us;
    }

    fn packet_reissued(&mut self, _t_us: f64, _job: u32, _to: Rank, _packet: u32) {
        self.counters.reissued_packets += 1;
    }

    fn resend_requested(&mut self, _t_us: f64, _job: u32, _from: Rank, _to: Rank, _packet: u32) {
        self.counters.resend_requests += 1;
    }

    fn nack_range_sent(&mut self, _t_us: f64, _job: u32, _at: Rank, _first: u32, _last: u32) {
        self.counters.nack_ranges_sent += 1;
    }

    fn late_ack(&mut self, _t_us: f64, _job: u32, _at: Rank, _packet: u32) {
        self.counters.late_acks += 1;
    }

    fn duplicate_ack(&mut self, _t_us: f64, _job: u32, _at: Rank, _packet: u32) {
        self.counters.duplicate_acks += 1;
    }

    fn window_stalled(&mut self, _job: u32, stalled_us: f64) {
        self.counters.window_stalls_us += stalled_us;
    }

    fn deadline_writeoff(&mut self, _t_us: f64, _job: u32, _rank: Rank) {
        self.counters.deadline_writeoffs += 1;
    }
}

/// The statically composed observer set of one run: outcome metrics and
/// counters always; a trace timeline when requested; optionally one caller
/// sink ([`SimRun::observer`](crate::workload::SimRun::observer)).
pub(crate) struct ObserverHub<'a> {
    pub metrics: MetricsCollector,
    pub counters: CountersCollector,
    pub trace: Option<TraceCollector>,
    pub user: Option<&'a mut dyn Observer>,
}

impl<'a> ObserverHub<'a> {
    pub fn new(jobs: usize, trace: bool, user: Option<&'a mut dyn Observer>) -> Self {
        ObserverHub {
            metrics: MetricsCollector::new(jobs),
            counters: CountersCollector::default(),
            trace: trace.then(TraceCollector::default),
            user,
        }
    }

    /// True when a dynamically dispatched sink (trace timeline or caller
    /// observer) is installed. The built-in metric/counter sinks are always
    /// called statically, so hooks only they consume never touch a vtable;
    /// hooks consumed by *no* built-in sink become a branch and return on
    /// the common (untraced, unobserved) fast path.
    #[inline]
    fn has_dyn_sinks(&self) -> bool {
        self.trace.is_some() || self.user.is_some()
    }

    /// Applies `f` to the dynamically dispatched sinks (cold path).
    fn each_dyn(&mut self, mut f: impl FnMut(&mut dyn Observer)) {
        if let Some(t) = self.trace.as_mut() {
            f(t);
        }
        if let Some(u) = self.user.as_deref_mut() {
            f(u);
        }
    }

    pub fn send_start(
        &mut self,
        t_us: f64,
        job: u32,
        from: Rank,
        to: Rank,
        packet: u32,
        stalled_us: f64,
    ) {
        self.metrics
            .send_start(t_us, job, from, to, packet, stalled_us);
        self.counters
            .send_start(t_us, job, from, to, packet, stalled_us);
        if self.has_dyn_sinks() {
            self.each_dyn(|o| o.send_start(t_us, job, from, to, packet, stalled_us));
        }
    }

    pub fn recv_done(&mut self, t_us: f64, job: u32, at: Rank, packet: u32) {
        if self.has_dyn_sinks() {
            self.each_dyn(|o| o.recv_done(t_us, job, at, packet));
        }
    }

    pub fn host_done(&mut self, t_us: f64, job: u32, rank: Rank) {
        if self.has_dyn_sinks() {
            self.each_dyn(|o| o.host_done(t_us, job, rank));
        }
    }

    pub fn recv_unit_wait(&mut self, job: u32, wait_us: f64) {
        self.counters.recv_unit_wait(job, wait_us);
        if self.has_dyn_sinks() {
            self.each_dyn(|o| o.recv_unit_wait(job, wait_us));
        }
    }

    pub fn send_enqueued(&mut self, host: HostId, depth: usize) {
        self.counters.send_enqueued(host, depth);
        if self.has_dyn_sinks() {
            self.each_dyn(|o| o.send_enqueued(host, depth));
        }
    }

    pub fn buffer_grew(&mut self, host: HostId, resident: u32) {
        self.counters.buffer_grew(host, resident);
        if self.has_dyn_sinks() {
            self.each_dyn(|o| o.buffer_grew(host, resident));
        }
    }

    pub fn packet_dropped(
        &mut self,
        t_us: f64,
        job: u32,
        from: Rank,
        to: Rank,
        packet: u32,
        kind: FaultKind,
    ) {
        self.counters
            .packet_dropped(t_us, job, from, to, packet, kind);
        if self.has_dyn_sinks() {
            self.each_dyn(|o| o.packet_dropped(t_us, job, from, to, packet, kind));
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub fn retransmit_scheduled(
        &mut self,
        t_us: f64,
        job: u32,
        from: Rank,
        to: Rank,
        packet: u32,
        attempt: u32,
        waited_us: f64,
    ) {
        self.counters
            .retransmit_scheduled(t_us, job, from, to, packet, attempt, waited_us);
        if self.has_dyn_sinks() {
            self.each_dyn(|o| {
                o.retransmit_scheduled(t_us, job, from, to, packet, attempt, waited_us)
            });
        }
    }

    pub fn fault_triggered(&mut self, t_us: f64, kind: FaultKind, host: HostId) {
        self.counters.fault_triggered(t_us, kind, host);
        if self.has_dyn_sinks() {
            self.each_dyn(|o| o.fault_triggered(t_us, kind, host));
        }
    }

    pub fn delivery_abandoned(
        &mut self,
        t_us: f64,
        job: u32,
        from: Rank,
        to: Rank,
        packet: u32,
        attempts: u32,
    ) {
        self.counters
            .delivery_abandoned(t_us, job, from, to, packet, attempts);
        if self.has_dyn_sinks() {
            self.each_dyn(|o| o.delivery_abandoned(t_us, job, from, to, packet, attempts));
        }
    }

    pub fn repair_triggered(
        &mut self,
        t_us: f64,
        job: u32,
        epoch: u32,
        failed: u32,
        reattached: u32,
        waited_us: f64,
    ) {
        self.counters
            .repair_triggered(t_us, job, epoch, failed, reattached, waited_us);
        if self.has_dyn_sinks() {
            self.each_dyn(|o| o.repair_triggered(t_us, job, epoch, failed, reattached, waited_us));
        }
    }

    pub fn packet_reissued(&mut self, t_us: f64, job: u32, to: Rank, packet: u32) {
        self.counters.packet_reissued(t_us, job, to, packet);
        if self.has_dyn_sinks() {
            self.each_dyn(|o| o.packet_reissued(t_us, job, to, packet));
        }
    }

    pub fn resend_requested(&mut self, t_us: f64, job: u32, from: Rank, to: Rank, packet: u32) {
        self.counters.resend_requested(t_us, job, from, to, packet);
        if self.has_dyn_sinks() {
            self.each_dyn(|o| o.resend_requested(t_us, job, from, to, packet));
        }
    }

    pub fn nack_range_sent(&mut self, t_us: f64, job: u32, at: Rank, first: u32, last: u32) {
        self.counters.nack_range_sent(t_us, job, at, first, last);
        if self.has_dyn_sinks() {
            self.each_dyn(|o| o.nack_range_sent(t_us, job, at, first, last));
        }
    }

    pub fn late_ack(&mut self, t_us: f64, job: u32, at: Rank, packet: u32) {
        self.counters.late_ack(t_us, job, at, packet);
        if self.has_dyn_sinks() {
            self.each_dyn(|o| o.late_ack(t_us, job, at, packet));
        }
    }

    pub fn duplicate_ack(&mut self, t_us: f64, job: u32, at: Rank, packet: u32) {
        self.counters.duplicate_ack(t_us, job, at, packet);
        if self.has_dyn_sinks() {
            self.each_dyn(|o| o.duplicate_ack(t_us, job, at, packet));
        }
    }

    pub fn window_stalled(&mut self, job: u32, stalled_us: f64) {
        self.counters.window_stalled(job, stalled_us);
        if self.has_dyn_sinks() {
            self.each_dyn(|o| o.window_stalled(job, stalled_us));
        }
    }

    pub fn deadline_writeoff(&mut self, t_us: f64, job: u32, rank: Rank) {
        self.counters.deadline_writeoff(t_us, job, rank);
        if self.has_dyn_sinks() {
            self.each_dyn(|o| o.deadline_writeoff(t_us, job, rank));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_classify_sends_and_stalls() {
        let mut c = CountersCollector::default();
        c.send_start(0.0, 0, Rank::SOURCE, Rank(1), 0, 0.0);
        c.send_start(5.0, 0, Rank(1), Rank(2), 0, 2.5);
        let k = &c.counters;
        assert_eq!(k.total_sends, 2);
        assert_eq!(k.packets_forwarded, 1);
        assert_eq!(k.blocked_sends, 1);
        assert!((k.channel_stall_us - 2.5).abs() < 1e-12);
    }

    #[test]
    fn occupancy_histogram_grows_on_demand() {
        let mut c = CountersCollector::default();
        c.buffer_grew(HostId(0), 2);
        c.buffer_grew(HostId(1), 2);
        c.buffer_grew(HostId(0), 4);
        assert_eq!(c.counters.buffer_occupancy, vec![0, 0, 2, 0, 1]);
    }

    #[test]
    fn trace_collector_sorts_stably() {
        let mut t = TraceCollector::default();
        t.host_done(10.0, 0, Rank(3)); // future-dated completion
        t.recv_done(5.0, 0, Rank(1), 0);
        t.recv_done(5.0, 0, Rank(2), 0);
        let out = t.into_sorted();
        assert_eq!(out.len(), 3);
        assert_eq!(
            out[0].kind,
            TraceKind::RecvDone {
                at: Rank(1),
                packet: 0
            }
        );
        assert_eq!(
            out[1].kind,
            TraceKind::RecvDone {
                at: Rank(2),
                packet: 0
            }
        );
        assert_eq!(out[2].kind, TraceKind::HostDone { rank: Rank(3) });
    }

    #[test]
    fn counters_track_faults_and_recovery() {
        let mut c = CountersCollector::default();
        c.packet_dropped(1.0, 0, Rank::SOURCE, Rank(1), 0, FaultKind::Drop);
        c.packet_dropped(2.0, 0, Rank::SOURCE, Rank(1), 1, FaultKind::Corrupt);
        c.retransmit_scheduled(3.0, 0, Rank::SOURCE, Rank(1), 0, 1, 60.0);
        c.retransmit_scheduled(3.5, 0, Rank::SOURCE, Rank(1), 1, 1, 0.0);
        c.fault_triggered(4.0, FaultKind::LinkDown, HostId(0));
        c.delivery_abandoned(5.0, 0, Rank::SOURCE, Rank(1), 0, 8);
        let k = &c.counters;
        assert_eq!(k.packets_dropped, 2);
        assert_eq!(k.packets_corrupted, 1);
        assert_eq!(k.retransmits, 2);
        assert!((k.recovery_wait_us - 60.0).abs() < 1e-12);
        assert_eq!(k.faults_triggered, 1);
        assert_eq!(k.deliveries_abandoned, 1);
    }

    #[test]
    fn counters_track_repair_epochs() {
        let mut c = CountersCollector::default();
        c.repair_triggered(100.0, 0, 1, 2, 1, 120.0);
        c.packet_reissued(100.0, 0, Rank(3), 0);
        c.packet_reissued(100.0, 0, Rank(5), 0);
        let k = &c.counters;
        assert_eq!(k.repairs, 1);
        assert_eq!(k.reissued_packets, 2);
        assert!((k.repair_wait_us - 120.0).abs() < 1e-12);
        // The trace sink mirrors the same hooks.
        let mut t = TraceCollector::default();
        t.repair_triggered(100.0, 0, 1, 2, 1, 120.0);
        t.packet_reissued(100.0, 0, Rank(3), 0);
        let out = t.into_sorted();
        assert_eq!(
            out[0].kind,
            TraceKind::RepairTriggered {
                epoch: 1,
                failed: 2,
                reattached: 1
            }
        );
        assert_eq!(
            out[1].kind,
            TraceKind::Reissued {
                to: Rank(3),
                packet: 0
            }
        );
    }

    #[test]
    fn counters_track_windowed_arq() {
        let mut c = CountersCollector::default();
        c.nack_range_sent(10.0, 0, Rank(2), 3, 5);
        for p in 3..=5 {
            c.resend_requested(10.0, 0, Rank::SOURCE, Rank(2), p);
        }
        c.late_ack(11.0, 0, Rank(2), 3);
        c.duplicate_ack(12.0, 0, Rank(2), 4);
        c.window_stalled(0, 7.5);
        c.window_stalled(0, 2.5);
        c.deadline_writeoff(99.0, 0, Rank(6));
        let k = &c.counters;
        assert_eq!(k.nack_ranges_sent, 1);
        assert_eq!(k.resend_requests, 3);
        assert_eq!(k.late_acks, 1);
        assert_eq!(k.duplicate_acks, 1);
        assert!((k.window_stalls_us - 10.0).abs() < 1e-12);
        assert_eq!(k.deadline_writeoffs, 1);
    }

    #[test]
    fn metrics_split_by_job() {
        let mut m = MetricsCollector::new(2);
        m.send_start(0.0, 0, Rank::SOURCE, Rank(1), 0, 0.0);
        m.send_start(1.0, 1, Rank::SOURCE, Rank(1), 0, 3.0);
        assert_eq!(m.sends, vec![1, 1]);
        assert_eq!(m.blocked, vec![0, 1]);
        assert!((m.waits_us[1] - 3.0).abs() < 1e-12);
        assert!((m.channel_wait_us - 3.0).abs() < 1e-12);
    }
}
