//! The host model: per-host NI send/receive units and forwarding-buffer
//! occupancy.
//!
//! Each physical host owns one NI with `s` independent **send units**
//! ([`NiModel::send_units`]; the paper's NI has `s = 1`) fed by a FIFO of
//! queued [`SendItem`]s, a **receive unit** (serializes arrivals, `t_recv`
//! each), and a **forwarding buffer** whose occupancy high-water mark the
//! paper's §3.3.2 buffer analysis is checked against. All jobs a host
//! participates in share these units — that sharing *is* the node-contention
//! model.
//!
//! Every dispatch is tagged with a monotonically increasing per-host
//! sequence number; occupied units are released by sequence (wire-time
//! releases, retransmission timeouts) or by item identity (handshake
//! completions), so with `s > 1` a completion frees exactly the unit that
//! carried it.

use crate::arq::NiModel;
use crate::event::SendItem;
use crate::time::SimTime;
use optimcast_topology::graph::HostId;
use std::collections::VecDeque;

/// One host's NI state.
#[derive(Debug)]
struct HostState {
    send_queue: VecDeque<SendItem>,
    /// Occupied send units: `(seq, item)` in dispatch order. Length is
    /// bounded by the NI's `send_units`.
    in_flight: Vec<(u64, SendItem)>,
    /// Dispatch counter; each dispatch takes the next sequence number.
    /// Retransmission timeouts are armed against a dispatch's sequence so a
    /// stale timeout cannot release a newer transmission.
    next_seq: u64,
    recv_free: SimTime,
    resident: u32,
    max_resident: u32,
}

/// Send/receive-unit occupancy and buffer accounting for every host.
#[derive(Debug)]
pub(crate) struct HostModel {
    hosts: Vec<HostState>,
    units: usize,
}

impl HostModel {
    pub fn new(n_hosts: usize, ni: NiModel) -> Self {
        let units = ni.send_units as usize;
        HostModel {
            hosts: (0..n_hosts)
                .map(|_| HostState {
                    send_queue: VecDeque::new(),
                    in_flight: Vec::with_capacity(units),
                    next_seq: 0,
                    recv_free: SimTime::ZERO,
                    resident: 0,
                    max_resident: 0,
                })
                .collect(),
            units,
        }
    }

    /// Appends a transmission to the host's send queue; returns the queue
    /// depth after the push (for queue-depth observation).
    pub fn enqueue(&mut self, h: HostId, item: SendItem) -> usize {
        let q = &mut self.hosts[h.index()].send_queue;
        q.push_back(item);
        q.len()
    }

    /// Claims a free send unit for the next queued item, if one is free and
    /// work is pending.
    pub fn try_dispatch(&mut self, h: HostId) -> Option<SendItem> {
        let units = self.units;
        let hs = &mut self.hosts[h.index()];
        if hs.in_flight.len() >= units {
            return None;
        }
        let item = hs.send_queue.pop_front()?;
        hs.next_seq += 1;
        hs.in_flight.push((hs.next_seq, item));
        Some(item)
    }

    /// Sequence number of the oldest in-flight send (`None` if every unit is
    /// free). With a single send unit this is *the* in-flight send.
    pub fn in_flight_seq(&self, h: HostId) -> Option<u64> {
        self.hosts[h.index()].in_flight.first().map(|&(seq, _)| seq)
    }

    /// Sequence number of the newest in-flight send — the one `try_dispatch`
    /// just claimed a unit for.
    ///
    /// # Panics
    ///
    /// Panics if no send is in flight — an engine sequencing bug.
    pub fn last_dispatched_seq(&self, h: HostId) -> u64 {
        self.hosts[h.index()]
            .in_flight
            .last()
            .map(|&(seq, _)| seq)
            .expect("last_dispatched_seq without in-flight send")
    }

    /// True while the dispatch tagged `seq` still occupies a send unit.
    #[cfg(test)]
    pub fn has_seq(&self, h: HostId, seq: u64) -> bool {
        self.hosts[h.index()]
            .in_flight
            .iter()
            .any(|&(s, _)| s == seq)
    }

    /// Number of queued (not yet dispatched) transmissions.
    pub fn queue_len(&self, h: HostId) -> usize {
        self.hosts[h.index()].send_queue.len()
    }

    /// True when the host has no queued transmissions.
    pub fn send_queue_is_empty(&self, h: HostId) -> bool {
        self.hosts[h.index()].send_queue.is_empty()
    }

    /// Removes and returns the host's next queued transmission, bypassing
    /// the send units. Lets a crashed host's queue be discarded item by item
    /// with no scratch allocation (the caller accounts for each).
    pub fn pop_queued(&mut self, h: HostId) -> Option<SendItem> {
        self.hosts[h.index()].send_queue.pop_front()
    }

    /// Frees the oldest occupied send unit, returning the transmission it
    /// carried. Stop-and-wait paths (one unit, one outstanding send) use
    /// this; multi-unit paths release by sequence or by item instead.
    ///
    /// # Panics
    ///
    /// Panics if no transmission is in flight — an engine sequencing bug.
    pub fn release_send_unit(&mut self, h: HostId) -> SendItem {
        let hs = &mut self.hosts[h.index()];
        if hs.in_flight.is_empty() {
            panic!("release without in-flight send");
        }
        hs.in_flight.remove(0).1
    }

    /// Frees the unit carrying the dispatch tagged `seq`, returning its
    /// transmission (`None` if that dispatch already completed).
    pub fn release_by_seq(&mut self, h: HostId, seq: u64) -> Option<SendItem> {
        let hs = &mut self.hosts[h.index()];
        let at = hs.in_flight.iter().position(|&(s, _)| s == seq)?;
        Some(hs.in_flight.remove(at).1)
    }

    /// Frees the oldest unit carrying exactly `item` (handshake completion:
    /// the receiver names the transmission it acknowledges).
    ///
    /// # Panics
    ///
    /// Panics if no unit carries `item` — an engine sequencing bug.
    pub fn release_matching(&mut self, h: HostId, item: &SendItem) {
        let hs = &mut self.hosts[h.index()];
        let at = hs
            .in_flight
            .iter()
            .position(|(_, i)| i == item)
            .expect("release without in-flight send");
        hs.in_flight.remove(at);
    }

    /// Serializes an arrival on the receive unit: the receive completes
    /// `t_recv` after the unit frees (or after `now`, whichever is later).
    /// Returns `(completion, wait)` where `wait` is the time the packet
    /// spent queued behind earlier receives.
    pub fn occupy_recv_unit(&mut self, h: HostId, now: SimTime, t_recv: f64) -> (SimTime, f64) {
        let hs = &mut self.hosts[h.index()];
        let start = hs.recv_free.max(now);
        let done = start + t_recv;
        hs.recv_free = done;
        (done, start - now)
    }

    /// Stages `n` packets in the host's forwarding buffer; returns the new
    /// occupancy (for histogram observation).
    pub fn stage(&mut self, h: HostId, n: u32) -> u32 {
        let hs = &mut self.hosts[h.index()];
        hs.resident += n;
        hs.max_resident = hs.max_resident.max(hs.resident);
        hs.resident
    }

    /// Releases one buffered packet (saturating — the conventional NI never
    /// stages, so its releases are no-ops).
    pub fn unstage(&mut self, h: HostId) {
        let hs = &mut self.hosts[h.index()];
        if hs.resident > 0 {
            hs.resident -= 1;
        }
    }

    /// Packets currently resident in the host's forwarding buffer.
    pub fn resident(&self, h: HostId) -> u32 {
        self.hosts[h.index()].resident
    }

    /// The host's buffer high-water mark.
    pub fn max_resident(&self, h: HostId) -> u32 {
        self.hosts[h.index()].max_resident
    }

    /// Buffer high-water marks for every host, in host order.
    pub fn all_max_resident(&self) -> Vec<u32> {
        self.hosts.iter().map(|h| h.max_resident).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimcast_core::tree::Rank;

    fn item(packet: u32) -> SendItem {
        SendItem {
            job: 0,
            packet,
            from: Rank::SOURCE,
            child: Rank(1),
            dest: Rank(1),
            attempt: 0,
        }
    }

    fn one_unit(n_hosts: usize) -> HostModel {
        HostModel::new(n_hosts, NiModel::default())
    }

    #[test]
    fn send_unit_is_exclusive_and_fifo() {
        let mut hm = one_unit(2);
        let h = HostId(0);
        assert_eq!(hm.enqueue(h, item(0)), 1);
        assert_eq!(hm.enqueue(h, item(1)), 2);
        let first = hm.try_dispatch(h).unwrap();
        assert_eq!(first.packet, 0);
        // Busy: no second dispatch until release.
        assert!(hm.try_dispatch(h).is_none());
        assert_eq!(hm.release_send_unit(h).packet, 0);
        assert_eq!(hm.try_dispatch(h).unwrap().packet, 1);
    }

    #[test]
    fn multi_unit_dispatches_up_to_s_sends() {
        let ni = NiModel {
            send_units: 2,
            queue_capacity: None,
        };
        let mut hm = HostModel::new(1, ni);
        let h = HostId(0);
        for p in 0..3 {
            hm.enqueue(h, item(p));
        }
        assert_eq!(hm.queue_len(h), 3);
        assert_eq!(hm.try_dispatch(h).unwrap().packet, 0);
        assert_eq!(hm.try_dispatch(h).unwrap().packet, 1);
        // Both units busy.
        assert!(hm.try_dispatch(h).is_none());
        assert_eq!(hm.queue_len(h), 1);
        // Out-of-order completion: the second dispatch's handshake lands
        // first and frees exactly the unit that carried packet 1.
        hm.release_matching(h, &item(1));
        assert_eq!(hm.in_flight_seq(h), Some(1));
        assert_eq!(hm.try_dispatch(h).unwrap().packet, 2);
    }

    #[test]
    fn release_by_seq_frees_the_named_dispatch() {
        let ni = NiModel {
            send_units: 2,
            queue_capacity: None,
        };
        let mut hm = HostModel::new(1, ni);
        let h = HostId(0);
        hm.enqueue(h, item(0));
        hm.enqueue(h, item(1));
        hm.try_dispatch(h).unwrap();
        let seq1 = hm.last_dispatched_seq(h);
        hm.try_dispatch(h).unwrap();
        let seq2 = hm.last_dispatched_seq(h);
        assert_eq!((seq1, seq2), (1, 2));
        assert!(hm.has_seq(h, seq1) && hm.has_seq(h, seq2));
        assert_eq!(hm.release_by_seq(h, seq1).unwrap().packet, 0);
        assert!(!hm.has_seq(h, seq1));
        // Releasing the same dispatch twice is a stale no-op.
        assert!(hm.release_by_seq(h, seq1).is_none());
        assert_eq!(hm.release_by_seq(h, seq2).unwrap().packet, 1);
    }

    #[test]
    fn recv_unit_serializes() {
        let mut hm = one_unit(1);
        let h = HostId(0);
        let (done1, wait1) = hm.occupy_recv_unit(h, SimTime::us(10.0), 2.5);
        assert_eq!(done1, SimTime::us(12.5));
        assert_eq!(wait1, 0.0);
        // Second arrival at t=11 queues behind the first.
        let (done2, wait2) = hm.occupy_recv_unit(h, SimTime::us(11.0), 2.5);
        assert_eq!(done2, SimTime::us(15.0));
        assert!((wait2 - 1.5).abs() < 1e-12);
    }

    #[test]
    fn buffer_tracks_high_water() {
        let mut hm = one_unit(1);
        let h = HostId(0);
        assert_eq!(hm.stage(h, 3), 3);
        hm.unstage(h);
        assert_eq!(hm.stage(h, 1), 3);
        assert_eq!(hm.max_resident(h), 3);
        assert_eq!(hm.all_max_resident(), vec![3]);
        // Saturating release.
        for _ in 0..5 {
            hm.unstage(h);
        }
        assert_eq!(hm.stage(h, 1), 1);
    }

    #[test]
    fn dispatch_sequence_tracks_in_flight_sends() {
        let mut hm = one_unit(1);
        let h = HostId(0);
        assert_eq!(hm.in_flight_seq(h), None);
        hm.enqueue(h, item(0));
        hm.enqueue(h, item(1));
        hm.try_dispatch(h).unwrap();
        assert_eq!(hm.in_flight_seq(h), Some(1));
        assert_eq!(hm.last_dispatched_seq(h), 1);
        hm.release_send_unit(h);
        assert_eq!(hm.in_flight_seq(h), None);
        hm.try_dispatch(h).unwrap();
        assert_eq!(hm.in_flight_seq(h), Some(2));
    }

    #[test]
    fn pop_queued_discards_queued_sends_in_order() {
        let mut hm = one_unit(1);
        let h = HostId(0);
        assert!(hm.send_queue_is_empty(h));
        hm.enqueue(h, item(0));
        hm.enqueue(h, item(1));
        assert!(!hm.send_queue_is_empty(h));
        assert_eq!(hm.pop_queued(h).unwrap().packet, 0);
        assert_eq!(hm.pop_queued(h).unwrap().packet, 1);
        assert!(hm.pop_queued(h).is_none());
        assert!(hm.send_queue_is_empty(h));
        assert!(hm.try_dispatch(h).is_none());
    }

    #[test]
    #[should_panic(expected = "release without in-flight send")]
    fn release_without_dispatch_is_a_bug() {
        let mut hm = one_unit(1);
        hm.release_send_unit(HostId(0));
    }
}
