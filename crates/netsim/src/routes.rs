//! Interned per-job route tables in compressed-sparse-row form.
//!
//! A simulation run looks routes up once per dispatched packet, on the hot
//! path. The nested `Vec<Vec<ChannelId>>` layout (one allocation per rank)
//! this module replaces cost a rebuild per run — per *cell* in a figure
//! sweep, where the same `(topology, chain, tree)` triple recurs for every
//! packet-count point of a series. [`JobRoutes`] flattens all routes of one
//! job into a single channel array plus rank offsets, is cheap to share
//! behind an [`std::sync::Arc`], and is memoized by the sweep cache
//! alongside topologies and trees (see `optimcast-sweep`).

use optimcast_core::tree::{MulticastTree, Rank};
use optimcast_topology::graph::{ChannelId, HostId};
use optimcast_topology::Network;

/// All parent→child routes of one multicast job, flattened CSR-style.
///
/// `route(r)` is the directed channel sequence from rank `r`'s parent host
/// to rank `r`'s host, exactly as `Network::route` returns it; the source
/// rank's route is empty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRoutes {
    /// `offsets[r]..offsets[r + 1]` indexes `channels` for rank `r`.
    offsets: Vec<u32>,
    /// Concatenated routes, in rank order.
    channels: Vec<ChannelId>,
}

impl JobRoutes {
    /// Builds the table for `tree` bound to `binding` on `net`.
    ///
    /// `binding[rank]` is the physical host of tree rank `rank` — the same
    /// contract as the simulator entry points, which validate it; this
    /// constructor only requires `binding.len() == tree.len()`.
    ///
    /// # Panics
    ///
    /// Panics if `binding` is shorter than the tree.
    pub fn build<N: Network>(net: &N, tree: &MulticastTree, binding: &[HostId]) -> Self {
        assert!(
            binding.len() >= tree.len(),
            "binding covers every tree rank"
        );
        let n = tree.len();
        // One bulk query for all tree edges: substrates that route via
        // single-source passes (up*/down*) group the pairs by source switch
        // and run each pass once, so a whole job's table costs O(n) route
        // extractions instead of n independent path searches.
        let mut pairs = Vec::with_capacity(n.saturating_sub(1));
        let mut pair_of: Vec<u32> = vec![u32::MAX; n];
        for r in 0..n {
            if let Some(p) = tree.parent(Rank(r as u32)) {
                pair_of[r] = pairs.len() as u32;
                pairs.push((binding[p.index()], binding[r]));
            }
        }
        let (bulk_off, bulk_dat) = net.bulk_routes(&pairs);
        let mut offsets = Vec::with_capacity(n + 1);
        let mut channels = Vec::with_capacity(bulk_dat.len());
        offsets.push(0);
        for &i in pair_of.iter().take(n) {
            if i != u32::MAX {
                let i = i as usize;
                channels
                    .extend_from_slice(&bulk_dat[bulk_off[i] as usize..bulk_off[i + 1] as usize]);
            }
            offsets.push(channels.len() as u32);
        }
        JobRoutes { offsets, channels }
    }

    /// The channel route from `rank`'s parent to `rank` (empty for the
    /// source).
    #[inline]
    pub fn route(&self, rank: usize) -> &[ChannelId] {
        let lo = self.offsets[rank] as usize;
        let hi = self.offsets[rank + 1] as usize;
        &self.channels[lo..hi]
    }

    /// Number of ranks covered.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True for a table over zero ranks (never produced by [`Self::build`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total channels across all routes (storage footprint indicator).
    pub fn total_channels(&self) -> usize {
        self.channels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimcast_core::builders::{binomial_tree, kbinomial_tree};
    use optimcast_topology::irregular::{IrregularConfig, IrregularNetwork};

    #[test]
    fn csr_matches_per_rank_routing() {
        let net = IrregularNetwork::generate(IrregularConfig::default(), 3);
        let tree = kbinomial_tree(24, 2);
        let binding: Vec<HostId> = (0..24).map(|i| HostId(i * 2)).collect();
        let table = JobRoutes::build(&net, &tree, &binding);
        assert_eq!(table.len(), 24);
        assert!(table.route(0).is_empty(), "source has no inbound route");
        for r in 1..24usize {
            let p = tree.parent(Rank(r as u32)).unwrap();
            let direct = net.route(binding[p.index()], binding[r]);
            assert_eq!(table.route(r), direct.as_slice(), "rank {r}");
            assert!(!table.route(r).is_empty());
        }
        assert_eq!(
            table.total_channels(),
            (1..24).map(|r| table.route(r).len()).sum::<usize>()
        );
    }

    #[test]
    fn singleton_tree_has_one_empty_route() {
        let net = IrregularNetwork::generate(IrregularConfig::default(), 0);
        let tree = optimcast_core::tree::MulticastTree::singleton();
        let table = JobRoutes::build(&net, &tree, &[HostId(0)]);
        assert_eq!(table.len(), 1);
        assert!(!table.is_empty());
        assert!(table.route(0).is_empty());
        assert_eq!(table.total_channels(), 0);
    }

    #[test]
    fn build_accepts_exact_binding_only_when_covering() {
        let net = IrregularNetwork::generate(IrregularConfig::default(), 1);
        let tree = binomial_tree(8);
        let binding: Vec<HostId> = (0..8).map(HostId).collect();
        let table = JobRoutes::build(&net, &tree, &binding);
        assert_eq!(table.len(), 8);
    }

    #[test]
    #[should_panic(expected = "binding covers")]
    fn short_binding_panics() {
        let net = IrregularNetwork::generate(IrregularConfig::default(), 1);
        let tree = binomial_tree(8);
        let binding: Vec<HostId> = (0..4).map(HostId).collect();
        let _ = JobRoutes::build(&net, &tree, &binding);
    }
}
