//! The component-based simulator core.
//!
//! [`Simulation`] wires the pieces together and owns the event loop:
//!
//! * [`crate::host::HostModel`] — NI send/receive units and
//!   forwarding-buffer occupancy, shared across jobs (node contention);
//! * [`crate::channel::ChannelManager`] — wormhole route reservation
//!   (channel contention);
//! * [`crate::discipline`] — one [`ForwardingDiscipline`] engine per job,
//!   selected from its `(NicKind, JobPayload)`;
//! * [`crate::observe::ObserverHub`] — metrics, counters, and the optional
//!   trace timeline, all fed from the same hooks.
//!
//! The core handles what every engine shares — dispatching queued sends
//! through channel reservation, serializing arrivals on receive units,
//! handshake send-unit release — and delegates policy to the engines. Event
//! scheduling order is part of the simulator's contract: ties in simulated
//! time resolve by insertion order, so the golden-equivalence tests pin the
//! exact sequence this module produces.

use crate::arq::{self, ArqState, Slot};
use crate::discipline::{conventional::Conventional, fcfs::Fcfs, fpfs::Fpfs, scatter::Scatter};
use crate::discipline::{record_receive, release_replicated_copy, ForwardingDiscipline};
use crate::error::SimError;
use crate::event::{Ev, SendItem};
use crate::fault::{FaultKind, FaultPlan};
use crate::host::HostModel;
use crate::observe::{Observer, ObserverHub};
use crate::routes::JobRoutes;
use crate::shard::ExecQueue;
use crate::sim::{MulticastOutcome, NiTiming, NicKind};
use crate::time::SimTime;
use crate::transport::{LinkContext, PacketView, SimTransport, Transport, TransportResult};
use crate::workload::{JobPayload, MulticastJob, WorkloadConfig, WorkloadOutcome};
use optimcast_core::params::SystemParams;
use optimcast_core::tree::{MulticastTree, Rank};
use optimcast_topology::graph::HostId;
use optimcast_topology::Network;
use std::sync::Arc;

/// Per-(job, rank) participant state.
pub(crate) struct PartState {
    /// Packets received so far (for personalized payloads: own packets).
    pub received: u32,
    /// NI completion time of the latest received packet.
    pub last_recv: SimTime,
    /// Host completion time, once the full message is in.
    pub host_done: Option<SimTime>,
    /// Replicated payloads: outstanding copies per packet at this rank's NI
    /// (the packet leaves the forwarding buffer when its count hits zero).
    pub copies_left: Vec<u32>,
    /// Conventional NI: index of the child message being prepared.
    pub conv_child: usize,
    /// Conventional NI: packets of the current child message still in
    /// flight.
    pub conv_pending: u32,
}

/// All mutable simulation state, shared with the engines.
///
/// Kept separate from the engine table so the event loop can hold `&mut
/// SimState` and `&dyn ForwardingDiscipline` simultaneously (disjoint field
/// borrows).
pub(crate) struct SimState<'a> {
    pub jobs: &'a [MulticastJob],
    pub params: &'a SystemParams,
    pub config: WorkloadConfig,
    /// `routes[job].route(rank)`: channel route from `rank`'s parent to
    /// `rank`, interned CSR-style (shared with the sweep cache when the
    /// caller passed prebuilt tables).
    pub routes: Vec<Arc<JobRoutes>>,
    pub hosts: HostModel,
    pub parts: Vec<Vec<PartState>>,
    /// The packet-motion backend. Every send decision — channel stall,
    /// arrival instant, loss verdict — flows through this trait object; the
    /// default is [`SimTransport`] over the wormhole channel manager.
    pub transport: Box<dyn Transport + 'a>,
    pub queue: ExecQueue,
    pub obs: ObserverHub<'a>,
    /// Active fault plan, if any. `None` (including trivial plans, filtered
    /// at construction) follows the exact fault-free code path, so fault-free
    /// runs stay byte-identical to the pre-fault simulator.
    pub fault: Option<&'a FaultPlan>,
}

impl<'a> SimState<'a> {
    /// The job's descriptor, borrowed for the workload's lifetime (not the
    /// state borrow), so engines can read it while mutating state.
    pub fn job(&self, job: u32) -> &'a MulticastJob {
        &self.jobs[job as usize]
    }

    /// The physical host bound to `(job, rank)`.
    pub fn host_of(&self, job: u32, r: Rank) -> HostId {
        self.jobs[job as usize].binding[r.index()]
    }

    /// Queues a transmission on the host's send unit (with queue-depth
    /// observation).
    pub fn enqueue_send(&mut self, h: HostId, item: SendItem) {
        let depth = self.hosts.enqueue(h, item);
        self.obs.send_enqueued(h, depth);
    }

    /// Stages `n` packets in the host's forwarding buffer (with occupancy
    /// observation).
    pub fn stage(&mut self, h: HostId, n: u32) {
        let resident = self.hosts.stage(h, n);
        self.obs.buffer_grew(h, resident);
    }

    /// Releases one staged packet.
    pub fn unstage(&mut self, h: HostId) {
        self.hosts.unstage(h);
    }

    /// Marks `(job, rank)` complete `t_r` after its last receive; returns
    /// the completion time.
    pub fn finish_host(&mut self, now: SimTime, job: u32, rank: Rank) -> SimTime {
        let done = now + self.params.t_r;
        self.parts[job as usize][rank.index()].host_done = Some(done);
        self.obs.host_done(done.as_us(), job, rank);
        done
    }
}

/// Rejects malformed workloads with a typed error (the former panic set).
pub(crate) fn validate<N: Network>(net: &N, jobs: &[MulticastJob]) -> Result<(), SimError> {
    if jobs.is_empty() {
        return Err(SimError::EmptyWorkload);
    }
    let n_hosts = net.num_hosts() as usize;
    for (j, job) in jobs.iter().enumerate() {
        if job.packets < 1 {
            return Err(SimError::ZeroPackets { job: j });
        }
        if job.binding.len() != job.tree.len() {
            return Err(SimError::BindingMismatch {
                job: j,
                bound: job.binding.len(),
                ranks: job.tree.len(),
            });
        }
        // NaN must be rejected too: it would poison the event-queue order.
        if job.start_us < 0.0 || job.start_us.is_nan() {
            return Err(SimError::NegativeStart {
                job: j,
                start_us: job.start_us,
            });
        }
        if matches!(job.payload, JobPayload::Personalized { .. })
            && !matches!(job.nic, NicKind::Smart(_))
        {
            return Err(SimError::PersonalizedNeedsSmartNic { job: j });
        }
        let mut seen = vec![false; n_hosts];
        for &h in &job.binding {
            if h.index() >= n_hosts {
                return Err(SimError::HostOutOfRange {
                    job: j,
                    host: h,
                    hosts: n_hosts,
                });
            }
            if seen[h.index()] {
                return Err(SimError::DuplicateHost { job: j, host: h });
            }
            seen[h.index()] = true;
        }
    }
    Ok(())
}

/// Selects the forwarding engine for a job's `(NicKind, JobPayload)`.
fn engine_for(job: &MulticastJob) -> Box<dyn ForwardingDiscipline> {
    use optimcast_core::schedule::ForwardingDiscipline as Kind;
    match (job.nic, job.payload) {
        (NicKind::Smart(Kind::Fpfs), JobPayload::Replicated) => Box::new(Fpfs),
        (NicKind::Smart(Kind::Fcfs), JobPayload::Replicated) => Box::new(Fcfs),
        (NicKind::Smart(_), JobPayload::Personalized { order }) => Box::new(Scatter { order }),
        (NicKind::Conventional, JobPayload::Replicated) => Box::new(Conventional),
        (NicKind::Conventional, JobPayload::Personalized { .. }) => {
            unreachable!("validate() rejects personalized payloads on conventional NIs")
        }
    }
}

/// One repair epoch's forwarding structure for a job: a sparse tree over
/// the job's *original* rank space spanning the source plus the undelivered
/// survivors, and its channel routes. Built at the epoch boundary, so the
/// zero-alloc steady state of fault-free runs is untouched.
struct EpochOverlay {
    tree: Arc<MulticastTree>,
    routes: Arc<JobRoutes>,
}

/// One workload execution: the engine table plus all mutable state.
pub(crate) struct Simulation<'a, N: Network> {
    st: SimState<'a>,
    engines: Vec<Box<dyn ForwardingDiscipline>>,
    /// The topology, retained so repair epochs can rebuild routes for the
    /// repaired tree.
    net: &'a N,
    /// Current repair epoch (0 = the initial issue; folded into the fault
    /// PRF so every epoch redraws independently and deterministically).
    epoch: u32,
    /// Per-(job, rank) flags for destinations written off as crashed by a
    /// repair epoch — reported in `WorkloadOutcome::unreached`, not as
    /// `DeliveryFailed`. Empty until the first exclusion (fault-free runs
    /// never allocate it).
    excluded: Vec<Vec<bool>>,
    /// Per-job overlay for the current repair epoch (`None` until a job's
    /// first repair). Empty until the first repair.
    overlay: Vec<Option<EpochOverlay>>,
    /// Selective-repeat window state, present when the fault plan sets
    /// `window > 1`. The windowed path replays the FPFS replication pattern
    /// with per-edge send windows and bypasses the per-job engines.
    arq: Option<ArqState>,
}

impl<'a, N: Network> Simulation<'a, N> {
    /// Validates the workload and assembles the components.
    /// `routes`, when given, must hold one table per job, each built by
    /// [`JobRoutes::build`] from the job's `(tree, binding)` on `net` —
    /// the sweep engine passes memoized tables here so repeated cells skip
    /// the route computation. `None` builds the tables from scratch.
    pub fn new(
        net: &'a N,
        jobs: &'a [MulticastJob],
        params: &'a SystemParams,
        config: WorkloadConfig,
        fault: Option<&'a FaultPlan>,
        user_observer: Option<&'a mut dyn Observer>,
        routes: Option<Vec<Arc<JobRoutes>>>,
    ) -> Result<Self, SimError> {
        validate(net, jobs)?;
        config
            .ni
            .validate()
            .map_err(|reason| SimError::InvalidNiModel { reason })?;
        // A trivial plan is indistinguishable from no plan; normalizing it to
        // `None` keeps fault-free runs on the exact golden-pinned code path.
        let fault = fault.filter(|f| !f.is_trivial());
        if let Some(f) = fault {
            f.validate()
                .map_err(|reason| SimError::InvalidFaultPlan { reason })?;
            if config.timing == NiTiming::Overlapped {
                return Err(SimError::FaultsNeedHandshakeTiming);
            }
            if f.window == 1 && config.ni.send_units > 1 {
                return Err(SimError::InvalidNiModel {
                    reason: "stop-and-wait reliability holds the single send unit per \
                             handshake; multiple send units require window > 1",
                });
            }
            if f.window > 1 {
                // The windowed path replays the FPFS replication pattern
                // (like live repair does), so it supports exactly the
                // replicated smart-NI job shape.
                for job in jobs {
                    if !matches!(
                        (job.nic, job.payload),
                        (NicKind::Smart(_), JobPayload::Replicated)
                    ) {
                        return Err(SimError::InvalidNiModel {
                            reason: "windowed ARQ supports only replicated smart-NI jobs",
                        });
                    }
                }
            }
            // A crashed source has nothing to repair around and nothing to
            // send: reject the plan up front instead of silently abandoning
            // the whole destination set.
            for (j, job) in jobs.iter().enumerate() {
                if f.crashes.iter().any(|c| c.host == job.binding[0]) {
                    return Err(SimError::SourceCrashed {
                        job: j,
                        host: job.binding[0],
                    });
                }
            }
        }
        let routes = match routes {
            Some(tables) => {
                debug_assert_eq!(tables.len(), jobs.len());
                debug_assert!(tables
                    .iter()
                    .zip(jobs)
                    .all(|(t, job)| t.len() == job.tree.len()));
                tables
            }
            None => jobs
                .iter()
                .map(|job| Arc::new(JobRoutes::build(net, &job.tree, &job.binding)))
                .collect(),
        };
        // Prewarm the trees' packed-children tables: `children()` is on the
        // event loop's hot path, and the lazy pack would otherwise charge
        // its one-time allocation to the zero-alloc steady-state budget.
        for job in jobs {
            job.tree.pack();
        }
        let parts = jobs
            .iter()
            .map(|job| {
                (0..job.tree.len())
                    .map(|_| PartState {
                        received: 0,
                        last_recv: SimTime::ZERO,
                        host_done: None,
                        copies_left: vec![0; job.packets as usize],
                        conv_child: 0,
                        conv_pending: 0,
                    })
                    .collect()
            })
            .collect();
        let engines = jobs.iter().map(engine_for).collect();
        let arq = fault
            .filter(|f| f.window > 1)
            .map(|f| ArqState::new(jobs, net.num_hosts() as usize, f.window, f.deadline_us));
        Ok(Simulation {
            st: SimState {
                jobs,
                params,
                config,
                routes,
                hosts: HostModel::new(net.num_hosts() as usize, config.ni),
                parts,
                transport: Box::new(SimTransport::new(
                    config.contention,
                    net.num_channels() as usize,
                    params,
                    fault,
                )),
                queue: ExecQueue::new(&config, jobs, net.num_hosts()),
                obs: ObserverHub::new(jobs.len(), config.trace, user_observer),
                fault,
            },
            engines,
            net,
            epoch: 0,
            excluded: Vec::new(),
            overlay: Vec::new(),
            arq,
        })
    }

    /// Runs the workload to completion and collects the outcome.
    ///
    /// With an active fault plan, a run whose losses exceed the
    /// retransmission budget terminates (the attempt cap guarantees event
    /// exhaustion) and reports [`SimError::DeliveryFailed`] instead of
    /// hanging or panicking — unless the plan carries a
    /// [`crate::fault::RepairPolicy`], in which case each queue exhaustion
    /// with undelivered destinations opens a *repair epoch* (see
    /// [`Self::start_repair_epoch`]) until every surviving destination is
    /// reached or the epoch budget is spent.
    pub fn run(mut self) -> Result<WorkloadOutcome, SimError> {
        for j in 0..self.st.jobs.len() {
            let job = &self.st.jobs[j];
            // Windowed ARQ bypasses the engines end-to-end. Its kickoff only
            // activates window state and schedules the source's TrySend at
            // the job's staging time — no packets surface in the shared
            // queues early, so staggered starts need no JobStart
            // indirection.
            if self.arq.is_some() {
                self.arq_kickoff(j as u32);
                continue;
            }
            // Smart-NI kickoff surfaces the job's packets in the shared
            // host send queues immediately; for a staggered job that would
            // let a host already relaying another job dispatch them before
            // the job arrives. Defer those kickoffs behind a JobStart
            // event at the end of the job's `t_s` source staging (the
            // moment its packets become sendable). Zero-start jobs keep
            // the original pre-seeded path byte-for-byte, and the
            // conventional NI is already fully event-driven (kickoff only
            // schedules `HostReady` at the job's start).
            if job.start_us == 0.0 || matches!(job.nic, NicKind::Conventional) {
                self.engines[j].kickoff(&mut self.st, j as u32);
            } else {
                self.st.queue.schedule(
                    SimTime::us(job.start_us + self.st.params.t_s),
                    Ev::JobStart(j as u32),
                );
            }
        }
        let mut last = SimTime::ZERO;
        loop {
            while let Some((now, ev)) = self.st.queue.pop() {
                last = now;
                match ev {
                    Ev::JobStart(j) => self.engines[j as usize].kickoff(&mut self.st, j),
                    Ev::TrySend(h) => self.handle_try_send(now, h),
                    Ev::Arrive { item, corrupt } => self.handle_arrive(now, item, corrupt),
                    Ev::RecvDone { item, corrupt } => self.handle_recv_done(now, item, corrupt),
                    Ev::HostReady { job, at } => {
                        self.engines[job as usize].on_host_ready(&mut self.st, now, job, at)
                    }
                    Ev::SendPrepared { job, at, child_idx } => self.engines[job as usize]
                        .on_send_prepared(&mut self.st, now, job, at, child_idx),
                    Ev::SendRelease { host, seq } => self.handle_send_release(now, host, seq),
                    Ev::AckTimeout { host, seq } => self.handle_ack_timeout(now, host, seq),
                    Ev::ArqRelease { host, seq } => self.handle_arq_release(now, host, seq),
                    Ev::ArqTimeout {
                        job,
                        child,
                        packet,
                        attempt,
                    } => self.handle_arq_timeout(now, job, child, packet, attempt),
                    Ev::ArqNack {
                        job,
                        at,
                        first,
                        last,
                    } => self.handle_arq_nack(now, job, at, first, last),
                }
            }
            if !self.start_repair_epoch(last) {
                break;
            }
        }
        self.collect()
    }

    /// The event queue drained. With a repair policy on the fault plan and
    /// destinations still undelivered, this is an epoch boundary rather
    /// than the end of the run: the source learns of the failure at
    /// `notify_us` after the last delivery activity, writes off the crashed
    /// destinations, repairs the surviving membership
    /// ([`MulticastTree::repair_partial`] — delivered ranks are not
    /// re-bound), and re-issues all packets over the repaired tree.
    /// Returns `true` when a new epoch was opened (events are queued again).
    ///
    /// Every decision here is a pure function of delivery state, which is
    /// itself deterministic, and the fault PRF keys off
    /// `(stream, job, epoch)` — so repair runs stay byte-identical at any
    /// worker count.
    fn start_repair_epoch(&mut self, last: SimTime) -> bool {
        let Some(f) = self.st.fault else {
            return false;
        };
        let Some(policy) = f.repair else {
            return false;
        };
        if self.epoch >= policy.max_epochs {
            return false;
        }
        let detect = last + policy.notify_us;
        let epoch = self.epoch + 1;
        let mut reissued = false;
        for j in 0..self.st.jobs.len() {
            let job = self.st.job(j as u32);
            // Live repair replays the FPFS replication pattern over the
            // repaired tree; only replicated smart-NI jobs support it.
            if !matches!(
                (job.nic, job.payload),
                (NicKind::Smart(_), JobPayload::Replicated)
            ) {
                continue;
            }
            let n = job.tree.len();
            let mut delivered: Vec<Rank> = Vec::new();
            let mut failed: Vec<Rank> = Vec::new();
            let mut pending = false;
            for r in 1..n {
                if self.st.parts[j][r].host_done.is_some() {
                    delivered.push(Rank(r as u32));
                } else if f.host_crashed(job.binding[r], detect.as_us()) {
                    // Crashes are permanent, so ranks written off in an
                    // earlier epoch land here again (idempotent).
                    failed.push(Rank(r as u32));
                } else {
                    pending = true;
                }
            }
            if failed.is_empty() && !pending {
                continue; // job fully delivered
            }
            if f.host_crashed(job.binding[0], detect.as_us()) {
                continue; // dead source: unrecoverable, surfaces at collect()
            }
            // Crashed destinations leave the membership for good; they are
            // reported in the outcome's `unreached`, not as a failure.
            if !failed.is_empty() {
                if self.excluded.is_empty() {
                    self.excluded = self
                        .st
                        .jobs
                        .iter()
                        .map(|jb| vec![false; jb.tree.len()])
                        .collect();
                }
                for &r in &failed {
                    self.excluded[j][r.index()] = true;
                }
            }
            if !pending {
                continue; // pure exclusion: nothing left to re-issue
            }
            let rep = job
                .tree
                .repair_partial(&failed, &delivered)
                .expect("surviving membership is repairable");
            // Re-express the repaired tree over the job's *original* rank
            // space (sparse: crashed and delivered ranks stay unattached,
            // which `JobRoutes::build` skips), preserving each parent's
            // child send order.
            let mut ov_tree = MulticastTree::with_capacity(n as u32);
            for u in rep.tree.dfs_preorder() {
                for &c in rep.tree.children(u) {
                    ov_tree.attach(rep.new_to_old[u.index()], rep.new_to_old[c.index()]);
                }
            }
            ov_tree.pack();
            let routes = Arc::new(JobRoutes::build(self.net, &ov_tree, &job.binding));
            if self.overlay.is_empty() {
                self.overlay = (0..self.st.jobs.len()).map(|_| None).collect();
            }
            self.overlay[j] = Some(EpochOverlay {
                tree: Arc::new(ov_tree),
                routes,
            });
            self.st.obs.repair_triggered(
                detect.as_us(),
                j as u32,
                epoch,
                failed.len() as u32,
                rep.reattached.len() as u32,
                policy.notify_us,
            );
            // Message-level re-issue: partial fragments at the undelivered
            // survivors are discarded, and the source restages the whole
            // message packet-major (FPFS order) over the repaired tree.
            for r in 1..n {
                let p = &mut self.st.parts[j][r];
                if p.host_done.is_none() {
                    p.received = 0;
                }
            }
            let ov = self.overlay[j].as_ref().expect("just installed");
            let kids = ov.tree.root_children();
            debug_assert!(!kids.is_empty(), "a pending survivor implies a child");
            let src_host = job.binding[0];
            for p in 0..job.packets {
                for &c in kids {
                    self.st.obs.packet_reissued(detect.as_us(), j as u32, c, p);
                    self.st.enqueue_send(
                        src_host,
                        SendItem {
                            job: j as u32,
                            packet: p,
                            from: Rank::SOURCE,
                            child: c,
                            dest: c,
                            attempt: 0,
                        },
                    );
                }
            }
            self.st.stage(src_host, job.packets);
            for p in 0..job.packets as usize {
                self.st.parts[j][0].copies_left[p] = kids.len() as u32;
            }
            self.st
                .queue
                .schedule(detect + self.st.params.t_s, Ev::TrySend(src_host));
            reissued = true;
        }
        if reissued {
            self.epoch = epoch;
        }
        reissued
    }

    /// Dispatches the host's queued transmissions onto its free send units
    /// (one per `TrySend` with the paper's single-unit NI), then — under
    /// windowed ARQ — admits more pending packets into the freed queue
    /// space and dispatches those too. Crashed senders drain their queues
    /// instead.
    fn handle_try_send(&mut self, now: SimTime, h: HostId) {
        if let Some(f) = self.st.fault {
            if f.host_crashed(h, now.as_us()) {
                self.drain_dead_sender(now, h);
                return;
            }
        }
        loop {
            while let Some(item) = self.st.hosts.try_dispatch(h) {
                self.dispatch_one(now, h, item);
            }
            // Units exhausted or queue drained; window admission may
            // surface more queued work (only the windowed path ever does).
            if self.arq.is_none() || !self.arq_admit_host(now, h) {
                return;
            }
        }
    }

    /// One claimed send unit fires: reserve the route (stalling on busy
    /// channels under wormhole contention), notify observers, and schedule
    /// the arrival. Under an active fault plan the transmission's fate is
    /// decided here, at dispatch: stop-and-wait holds the unit and schedules
    /// an acknowledgement timeout for lost packets, while windowed ARQ frees
    /// the unit `t_send` after dispatch and arms a per-slot retransmission
    /// timer instead.
    fn dispatch_one(&mut self, now: SimTime, h: HostId, item: SendItem) {
        let st = &mut self.st;
        let j = item.job as usize;
        // During a repair epoch the job's forwarding structure is its
        // overlay (tree + routes over the original rank space); epoch 0
        // takes the unchanged hot path.
        let overlay = if self.epoch > 0 {
            self.overlay.get(j).and_then(Option::as_ref)
        } else {
            None
        };
        let route = match overlay {
            Some(ov) => ov.routes.route(item.child.index()),
            None => st.routes[j].route(item.child.index()),
        };
        debug_assert!(!route.is_empty());
        debug_assert_eq!(
            match overlay {
                Some(ov) => ov.tree.parent(item.child),
                None => st.jobs[j].tree.parent(item.child),
            },
            Some(item.from)
        );
        let dest_host = st.jobs[j].binding[item.child.index()];
        let view = PacketView {
            stream: item.job,
            epoch: self.epoch,
            packet: item.packet,
            attempt: item.attempt,
            payload: &[],
        };
        let ctx = LinkContext {
            now_us: now.as_us(),
            route,
            from_rank: item.from.0,
            to_rank: item.child.0,
        };
        let outcome = st
            .transport
            .send(h, dest_host, view, ctx)
            .expect("the simulator transport is infallible");
        let start_us = match outcome {
            TransportResult::Delivered { start_us, .. }
            | TransportResult::Lost { start_us, .. } => start_us,
        };
        st.obs.send_start(
            start_us,
            item.job,
            item.from,
            item.child,
            item.packet,
            start_us - now.as_us(),
        );
        if self.arq.is_some() {
            // Windowed ARQ: the unit frees once the wire is clear, whatever
            // the packet's fate — the window slot (and the parent's buffer
            // copy) stay charged until the handshake retires it.
            let seq = st.hosts.last_dispatched_seq(h);
            st.queue.schedule(
                SimTime::us(start_us) + st.params.t_send,
                Ev::ArqRelease { host: h, seq },
            );
            match outcome {
                TransportResult::Delivered {
                    arrival_us,
                    corrupt,
                    ..
                } => st
                    .queue
                    .schedule(SimTime::us(arrival_us), Ev::Arrive { item, corrupt }),
                TransportResult::Lost {
                    kind, retry_at_us, ..
                } => {
                    st.obs.packet_dropped(
                        start_us,
                        item.job,
                        item.from,
                        item.child,
                        item.packet,
                        kind,
                    );
                    if matches!(kind, FaultKind::LinkDown | FaultKind::ReceiverDead) {
                        let affected = if kind == FaultKind::ReceiverDead {
                            dest_host
                        } else {
                            h
                        };
                        st.obs.fault_triggered(start_us, kind, affected);
                    }
                    // The slot's retransmission timer; the PRF-derived
                    // jitter decorrelates simultaneous expirations while
                    // keeping the schedule byte-identical at any worker
                    // count.
                    let f = st.fault.expect("windowed ARQ runs under a fault plan");
                    let jitter = f.retry_jitter_us(
                        item.job,
                        item.from.0,
                        item.child.0,
                        item.packet,
                        item.attempt,
                    );
                    st.queue.schedule(
                        SimTime::us(retry_at_us + jitter),
                        Ev::ArqTimeout {
                            job: item.job,
                            child: item.child,
                            packet: item.packet,
                            attempt: item.attempt,
                        },
                    );
                }
            }
            return;
        }
        match outcome {
            TransportResult::Delivered {
                arrival_us,
                corrupt,
                ..
            } => {
                // A corrupt arrival still occupies the wire and receive
                // unit; the receiver NACKs it at RecvDone.
                st.queue
                    .schedule(SimTime::us(arrival_us), Ev::Arrive { item, corrupt })
            }
            TransportResult::Lost {
                kind, retry_at_us, ..
            } => {
                // Lost in the network: no arrival. The sender's unit stays
                // held until its acknowledgement timeout fires (handshake
                // timing is guaranteed here — construction rejects
                // overlapped timing with faults).
                st.obs
                    .packet_dropped(start_us, item.job, item.from, item.child, item.packet, kind);
                if matches!(kind, FaultKind::LinkDown | FaultKind::ReceiverDead) {
                    let affected = if kind == FaultKind::ReceiverDead {
                        dest_host
                    } else {
                        h
                    };
                    st.obs.fault_triggered(start_us, kind, affected);
                }
                let seq = st.hosts.last_dispatched_seq(h);
                st.queue
                    .schedule(SimTime::us(retry_at_us), Ev::AckTimeout { host: h, seq });
            }
        }
        if st.config.timing == NiTiming::Overlapped {
            let seq = st.hosts.last_dispatched_seq(h);
            st.queue.schedule(
                SimTime::us(start_us) + st.params.t_send,
                Ev::SendRelease { host: h, seq },
            );
        }
    }

    /// A crashed host reached its send turn: discard every queued
    /// transmission. Its unreached subtree surfaces as
    /// [`SimError::DeliveryFailed`] at collection.
    fn drain_dead_sender(&mut self, now: SimTime, h: HostId) {
        let st = &mut self.st;
        if st.hosts.send_queue_is_empty(h) {
            return;
        }
        st.obs
            .fault_triggered(now.as_us(), FaultKind::SenderDead, h);
        // Pop in place — no scratch Vec per drained host.
        while let Some(item) = st.hosts.pop_queued(h) {
            st.obs.packet_dropped(
                now.as_us(),
                item.job,
                item.from,
                item.child,
                item.packet,
                FaultKind::SenderDead,
            );
        }
    }

    /// Serializes the arrival on the receiver's NI receive unit. Under a
    /// fault plan with an NI buffer capacity, an arrival that would need
    /// forwarding-buffer space on a full NI is refused (negative
    /// acknowledgement) and the sender retransmits.
    fn handle_arrive(&mut self, now: SimTime, item: SendItem, corrupt: bool) {
        let st = &mut self.st;
        let h = st.host_of(item.job, item.child);
        if let Some(cap) = st.fault.and_then(|f| f.ni_buffer_capacity) {
            let jobd = st.job(item.job);
            // Only packets the NI must hold for forwarding compete for
            // buffer space — leaf deliveries and relayed personalized
            // packets stream through. In a repair epoch the forwarding
            // structure is the job's overlay tree.
            let overlay = if self.epoch > 0 {
                self.overlay.get(item.job as usize).and_then(Option::as_ref)
            } else {
                None
            };
            let would_stage = match jobd.payload {
                JobPayload::Replicated => match overlay {
                    Some(ov) => !ov.tree.children(item.child).is_empty(),
                    None => !jobd.tree.children(item.child).is_empty(),
                },
                JobPayload::Personalized { .. } => item.dest != item.child,
            };
            if would_stage && st.hosts.resident(h) >= cap {
                st.obs.packet_dropped(
                    now.as_us(),
                    item.job,
                    item.from,
                    item.child,
                    item.packet,
                    FaultKind::BufferOverflow,
                );
                st.obs
                    .fault_triggered(now.as_us(), FaultKind::BufferOverflow, h);
                let u_host = st.host_of(item.job, item.from);
                let released = st.hosts.release_send_unit(u_host);
                debug_assert_eq!(released.packet, item.packet);
                self.retransmit_or_abandon(now, u_host, released, 0.0);
                self.st.queue.schedule(now, Ev::TrySend(u_host));
                return;
            }
        }
        let (done, wait) = st.hosts.occupy_recv_unit(h, now, st.params.t_recv);
        if wait > 0.0 {
            st.obs.recv_unit_wait(item.job, wait);
        }
        st.queue.schedule(done, Ev::RecvDone { item, corrupt });
    }

    /// A packet finished arriving: complete the sender's handshake, deliver
    /// the sender acknowledgement, then hand the packet to the receiving
    /// job's engine. A corrupted packet is instead NACKed: the sender's unit
    /// frees (keeping its buffer copy) and the packet is re-enqueued.
    fn handle_recv_done(&mut self, now: SimTime, item: SendItem, corrupt: bool) {
        if self.arq.is_some() {
            self.arq_recv_done(now, item, corrupt);
            return;
        }
        let j = item.job as usize;
        if corrupt {
            debug_assert_eq!(self.st.config.timing, NiTiming::Handshake);
            let u_host = self.st.host_of(item.job, item.from);
            let released = self.st.hosts.release_send_unit(u_host);
            self.st.obs.packet_dropped(
                now.as_us(),
                item.job,
                item.from,
                item.child,
                item.packet,
                FaultKind::Corrupt,
            );
            self.retransmit_or_abandon(now, u_host, released, 0.0);
            self.st.queue.schedule(now, Ev::TrySend(u_host));
            return;
        }
        if self.st.config.timing == NiTiming::Handshake {
            // The handshake frees exactly the unit that carried this
            // transmission (with `s > 1` an out-of-order completion must not
            // release a sibling's unit).
            let u_host = self.st.host_of(item.job, item.from);
            self.st.hosts.release_matching(u_host, &item);
            self.engines[item.job as usize].on_copy_released(&mut self.st, item);
            self.st.queue.schedule(now, Ev::TrySend(u_host));
        }
        self.engines[j].sender_ack(&mut self.st, now, item.job, item.from);
        self.st
            .obs
            .recv_done(now.as_us(), item.job, item.child, item.packet);
        if self.epoch > 0 && self.overlay.get(j).and_then(Option::as_ref).is_some() {
            self.overlay_recv_done(now, item.job, item.child, item.packet);
        } else {
            self.engines[j].on_recv_done(
                &mut self.st,
                now,
                item.job,
                item.child,
                item.packet,
                item.dest,
            );
        }
    }

    /// Repair-epoch receive handling: the FPFS replication pattern over the
    /// job's overlay tree — forward the packet to every overlay child
    /// immediately, complete the host once the whole message is in.
    fn overlay_recv_done(&mut self, now: SimTime, job: u32, at: Rank, packet: u32) {
        let j = job as usize;
        let jobd = self.st.job(job);
        let packets = jobd.packets;
        let v_host = jobd.binding[at.index()];
        let ov = self.overlay[j].as_ref().expect("overlay epoch");
        let kids = ov.tree.children(at);
        let received = record_receive(&mut self.st, now, job, at);
        if !kids.is_empty() {
            self.st.parts[j][at.index()].copies_left[packet as usize] = kids.len() as u32;
            self.st.stage(v_host, 1);
            for &c in kids {
                self.st.enqueue_send(
                    v_host,
                    SendItem {
                        job,
                        packet,
                        from: at,
                        child: c,
                        dest: c,
                        attempt: 0,
                    },
                );
            }
            self.st.queue.schedule(now, Ev::TrySend(v_host));
        }
        if received == packets {
            self.st.finish_host(now, job, at);
        }
    }

    /// The acknowledgement for a (presumed lost) transmission never came:
    /// free the send unit and retransmit with backoff, or abandon the
    /// destination once the attempt budget is spent.
    fn handle_ack_timeout(&mut self, now: SimTime, h: HostId, seq: u64) {
        // A stale timeout (armed for an earlier transmission that has since
        // been acknowledged or NACKed) must not release a newer send.
        if self.st.hosts.in_flight_seq(h) != Some(seq) {
            return;
        }
        let item = self.st.hosts.release_send_unit(h);
        let waited = self
            .st
            .fault
            .expect("AckTimeout without a fault plan")
            .rto(item.attempt);
        self.retransmit_or_abandon(now, h, item, waited);
        self.st.queue.schedule(now, Ev::TrySend(h));
    }

    /// Re-enqueues a failed transmission with its attempt count bumped, or —
    /// once `max_attempts` is exhausted — abandons the destination, freeing
    /// the sender's buffer copy so the rest of the multicast can drain.
    fn retransmit_or_abandon(&mut self, now: SimTime, h: HostId, item: SendItem, waited_us: f64) {
        let f = self
            .st
            .fault
            .expect("reliability path requires a fault plan");
        if item.attempt + 1 >= f.max_attempts {
            self.st.obs.delivery_abandoned(
                now.as_us(),
                item.job,
                item.from,
                item.child,
                item.packet,
                item.attempt + 1,
            );
            self.engines[item.job as usize].on_copy_released(&mut self.st, item);
        } else {
            let next = SendItem {
                attempt: item.attempt + 1,
                ..item
            };
            self.st.obs.retransmit_scheduled(
                now.as_us(),
                next.job,
                next.from,
                next.child,
                next.packet,
                next.attempt,
                waited_us,
            );
            self.st.enqueue_send(h, next);
        }
    }

    /// Overlapped-timing release: the named dispatch frees its unit `t_send`
    /// after start, independent of the receiver. Applies the released job's
    /// buffer policy and lets the host dispatch its next queued packet.
    fn handle_send_release(&mut self, now: SimTime, h: HostId, seq: u64) {
        let item = self
            .st
            .hosts
            .release_by_seq(h, seq)
            .expect("overlapped release without its dispatch");
        self.engines[item.job as usize].on_copy_released(&mut self.st, item);
        self.st.queue.schedule(now, Ev::TrySend(h));
    }

    /// Windowed-ARQ unit release: the wire is clear `t_send` after dispatch,
    /// so the unit frees — but the packet's window slot (and the parent's
    /// buffer copy) stay charged until the handshake or an abandonment
    /// retires it.
    fn handle_arq_release(&mut self, now: SimTime, h: HostId, seq: u64) {
        if self.st.hosts.release_by_seq(h, seq).is_some() {
            self.st.queue.schedule(now, Ev::TrySend(h));
        }
    }

    /// Whether `now` lies past the job's per-message delivery deadline.
    fn arq_past_deadline(&self, now: SimTime, job: u32) -> bool {
        let Some(d) = self.arq.as_ref().and_then(|a| a.deadline_us) else {
            return false;
        };
        now.as_us() > self.st.job(job).start_us + d
    }

    /// Whether `(job, rank)` has been written off (deadline or repair
    /// exclusion).
    fn is_rank_excluded(&self, j: usize, r: Rank) -> bool {
        self.excluded.get(j).is_some_and(|e| e[r.index()])
    }

    /// Windowed-ARQ kickoff: stage the whole message at the source, activate
    /// the root's outgoing links with every packet pending, and schedule the
    /// source's first dispatch at the end of `t_s` staging. Window admission
    /// (round-robin, one packet per link per round) then meters the pending
    /// sets out — at unlimited window that reproduces the FPFS packet-major
    /// kickoff order.
    fn arq_kickoff(&mut self, j: u32) {
        let jobd = self.st.job(j);
        let kids = jobd.tree.root_children();
        if kids.is_empty() {
            return; // single-rank job: nothing to transmit
        }
        let src_host = jobd.binding[0];
        self.st.stage(src_host, jobd.packets);
        for p in 0..jobd.packets as usize {
            self.st.parts[j as usize][0].copies_left[p] = kids.len() as u32;
        }
        let arq = self.arq.as_mut().expect("windowed path");
        for &c in kids {
            let link = arq.link(j, c);
            link.pending.extend(0..jobd.packets);
            link.active = true;
            arq.host_links[src_host.index()].push((j, c));
        }
        self.st.queue.schedule(
            SimTime::us(jobd.start_us) + self.st.params.t_s,
            Ev::TrySend(src_host),
        );
    }

    /// Attempts to admit one pending packet of the edge `parent(child) →
    /// child` into its send window and the parent host's send queue.
    /// Returns whether a packet was admitted; a full window stamps the
    /// stall start for the `window_stalls_us` counter.
    fn arq_admit_one(&mut self, now: SimTime, job: u32, child: Rank) -> bool {
        let jobd = self.st.job(job);
        let parent = jobd.tree.parent(child).expect("non-root rank");
        let parent_host = jobd.binding[parent.index()];
        let cap = self.st.config.ni.queue_capacity;
        let arq = self.arq.as_mut().expect("windowed path");
        let window = arq.window;
        let link = arq.link(job, child);
        if link.pending.is_empty() {
            return false;
        }
        if link.in_flight >= window {
            if link.blocked_since_us.is_none() {
                link.blocked_since_us = Some(now.as_us());
            }
            return false;
        }
        if let Some(cap) = cap {
            if self.st.hosts.queue_len(parent_host) >= cap as usize {
                return false; // bounded port queue: defer, don't drop
            }
        }
        let p = link.pending.pop_front().expect("checked non-empty");
        debug_assert_eq!(link.slots[p as usize], Slot::NotSent);
        link.slots[p as usize] = Slot::InFlight { attempt: 0 };
        link.in_flight += 1;
        self.st.enqueue_send(
            parent_host,
            SendItem {
                job,
                packet: p,
                from: parent,
                child,
                dest: child,
                attempt: 0,
            },
        );
        true
    }

    /// Round-robin admission across the host's active outgoing edges: one
    /// packet per link per round until a full round admits nothing.
    /// Returns whether anything was admitted.
    fn arq_admit_host(&mut self, now: SimTime, h: HostId) -> bool {
        let arq = self.arq.as_ref().expect("windowed path");
        let n = arq.host_links[h.index()].len();
        let mut any = false;
        loop {
            let mut progressed = false;
            for i in 0..n {
                let (job, child) =
                    self.arq.as_ref().expect("windowed path").host_links[h.index()][i];
                if self.arq_admit_one(now, job, child) {
                    progressed = true;
                    any = true;
                }
            }
            if !progressed {
                return any;
            }
        }
    }

    /// Retires the window slot of edge `parent(child) → child` for `packet`:
    /// marks it done, frees the window credit (finalizing any stall), and
    /// releases the parent's buffer copy.
    fn arq_retire_slot(&mut self, now: SimTime, job: u32, child: Rank, packet: u32) {
        let arq = self.arq.as_mut().expect("windowed path");
        let link = arq.link(job, child);
        debug_assert!(matches!(link.slots[packet as usize], Slot::InFlight { .. }));
        link.slots[packet as usize] = Slot::Done;
        link.in_flight -= 1;
        let stalled = link.blocked_since_us.take();
        if let Some(t0) = stalled {
            self.st.obs.window_stalled(job, now.as_us() - t0);
        }
        let parent = self.st.job(job).tree.parent(child).expect("non-root rank");
        release_replicated_copy(
            &mut self.st,
            SendItem {
                job,
                packet,
                from: parent,
                child,
                dest: child,
                attempt: 0,
            },
        );
    }

    /// Windowed retransmit-or-abandon for one in-flight slot: bumps the
    /// slot's attempt and re-enqueues the packet, or — once the attempt
    /// budget is spent — retires the slot as abandoned (the destination then
    /// surfaces as unreached unless a deadline writes it off first).
    #[allow(clippy::too_many_arguments)]
    fn arq_resend_or_abandon(
        &mut self,
        now: SimTime,
        job: u32,
        parent: Rank,
        child: Rank,
        packet: u32,
        attempt: u32,
        waited_us: f64,
    ) {
        let f = self.st.fault.expect("windowed ARQ runs under a fault plan");
        if attempt + 1 >= f.max_attempts {
            self.st
                .obs
                .delivery_abandoned(now.as_us(), job, parent, child, packet, attempt + 1);
            self.arq_retire_slot(now, job, child, packet);
        } else {
            self.st.obs.retransmit_scheduled(
                now.as_us(),
                job,
                parent,
                child,
                packet,
                attempt + 1,
                waited_us,
            );
            let arq = self.arq.as_mut().expect("windowed path");
            arq.link(job, child).slots[packet as usize] = Slot::InFlight {
                attempt: attempt + 1,
            };
            let h = self.st.host_of(job, parent);
            self.st.enqueue_send(
                h,
                SendItem {
                    job,
                    packet,
                    from: parent,
                    child,
                    dest: child,
                    attempt: attempt + 1,
                },
            );
        }
    }

    /// A window slot's retransmission timer fired: resend (with the timer's
    /// rto + jitter as the reported wait) or abandon — unless the timeout is
    /// stale (the slot was acknowledged, resent under a newer attempt, or
    /// written off meanwhile).
    fn handle_arq_timeout(
        &mut self,
        now: SimTime,
        job: u32,
        child: Rank,
        packet: u32,
        attempt: u32,
    ) {
        let parent = self.st.job(job).tree.parent(child).expect("non-root rank");
        {
            let arq = self.arq.as_mut().expect("windowed path");
            if arq.link(job, child).slots[packet as usize] != (Slot::InFlight { attempt }) {
                return;
            }
        }
        if self.arq_past_deadline(now, job) {
            self.write_off_deadline(now, job, child);
            return;
        }
        let f = self.st.fault.expect("windowed ARQ runs under a fault plan");
        let waited = f.rto(attempt) + f.retry_jitter_us(job, parent.0, child.0, packet, attempt);
        self.arq_resend_or_abandon(now, job, parent, child, packet, attempt, waited);
        let h = self.st.host_of(job, parent);
        self.st.queue.schedule(now, Ev::TrySend(h));
    }

    /// The receiver at `at` NACKed the inclusive packet range `[first,
    /// last]`: resend every packet of the range that is still
    /// unacknowledged. NACKs ride the modelled control channel —
    /// instantaneous and reliable, like the acknowledgements.
    fn handle_arq_nack(&mut self, now: SimTime, job: u32, at: Rank, first: u32, last: u32) {
        let parent = self.st.job(job).tree.parent(at).expect("non-root rank");
        for p in first..=last {
            let slot = self.arq.as_ref().expect("windowed path").links[job as usize][at.index()]
                .slots[p as usize];
            let Slot::InFlight { attempt } = slot else {
                continue; // retired (acknowledged or abandoned) meanwhile
            };
            self.st
                .obs
                .resend_requested(now.as_us(), job, parent, at, p);
            if self.arq_past_deadline(now, job) {
                self.write_off_deadline(now, job, at);
                return;
            }
            self.arq_resend_or_abandon(now, job, parent, at, p, attempt, 0.0);
        }
        let h = self.st.host_of(job, parent);
        self.st.queue.schedule(now, Ev::TrySend(h));
    }

    /// Windowed-ARQ receive completion: retire the sender-side window slot
    /// (the modelled acknowledgement), accept the packet out of order, NACK
    /// any new gap as a coalesced range, replicate to the subtree, and
    /// complete the host once the message is whole. Corrupt arrivals are
    /// per-packet NACKs: an immediate resend of exactly that slot.
    fn arq_recv_done(&mut self, now: SimTime, item: SendItem, corrupt: bool) {
        let j = item.job as usize;
        let job = item.job;
        let at = item.child;
        let p = item.packet;
        if corrupt {
            self.st
                .obs
                .packet_dropped(now.as_us(), job, item.from, at, p, FaultKind::Corrupt);
            let slot =
                self.arq.as_ref().expect("windowed path").links[j][at.index()].slots[p as usize];
            // Only the newest attempt resends — a stale corrupt arrival
            // means a fresher transmission (with its own timer) is already
            // out.
            if slot
                == (Slot::InFlight {
                    attempt: item.attempt,
                })
            {
                self.st
                    .obs
                    .resend_requested(now.as_us(), job, item.from, at, p);
                if self.arq_past_deadline(now, job) {
                    self.write_off_deadline(now, job, at);
                    return;
                }
                self.arq_resend_or_abandon(now, job, item.from, at, p, item.attempt, 0.0);
                let h = self.st.host_of(job, item.from);
                self.st.queue.schedule(now, Ev::TrySend(h));
            }
            return;
        }
        // Sender side — the handshake acknowledges the slot.
        let u_host = self.st.host_of(job, item.from);
        let slot = self.arq.as_ref().expect("windowed path").links[j][at.index()].slots[p as usize];
        match slot {
            Slot::InFlight { .. } => {
                self.arq_retire_slot(now, job, at, p);
                // Freed window credit: let the parent admit and dispatch.
                self.st.queue.schedule(now, Ev::TrySend(u_host));
            }
            Slot::Done => {
                // A resend raced its original past the handshake; the
                // acknowledgement arrives late and retires nothing.
                self.st.obs.late_ack(now.as_us(), job, at, p);
            }
            Slot::NotSent => unreachable!("an arrival implies a transmission"),
        }
        // Receiver side — out-of-order acceptance.
        if self.is_rank_excluded(j, at) {
            return; // written off by a deadline: the subtree is retired
        }
        {
            let arq = self.arq.as_mut().expect("windowed path");
            let rs = &mut arq.recv[j][at.index()];
            if arq::mask_test(&rs.mask, p) {
                self.st.obs.duplicate_ack(now.as_us(), job, at, p);
                return;
            }
            arq::mask_set(&mut rs.mask, p);
            rs.last_seen = Some(rs.last_seen.map_or(p, |l| l.max(p)));
        }
        self.st.obs.recv_done(now.as_us(), job, at, p);
        let received = record_receive(&mut self.st, now, job, at);
        // Gap detection: per-edge delivery is FIFO, so anything missing
        // below the packet just received was lost. NACK each missing run
        // once (the sender's timer covers a lost recovery).
        let ranges = {
            let arq = self.arq.as_mut().expect("windowed path");
            let rs = &mut arq.recv[j][at.index()];
            let combined: Vec<u64> = rs.mask.iter().zip(&rs.nacked).map(|(a, b)| a | b).collect();
            let ranges = arq::coalesce_missing(&combined, p);
            for &(first, last) in &ranges {
                for q in first..=last {
                    arq::mask_set(&mut rs.nacked, q);
                }
            }
            ranges
        };
        for (first, last) in ranges {
            self.st
                .obs
                .nack_range_sent(now.as_us(), job, at, first, last);
            self.st.queue.schedule(
                now,
                Ev::ArqNack {
                    job,
                    at,
                    first,
                    last,
                },
            );
        }
        // Forwarding: replicate to every live child as soon as the packet
        // lands (the FPFS pattern), windowed per edge.
        let jobd = self.st.job(job);
        let packets = jobd.packets;
        let v_host = jobd.binding[at.index()];
        let kids = jobd.tree.children(at);
        if !kids.is_empty() {
            let live = kids
                .iter()
                .filter(|&&c| !self.is_rank_excluded(j, c))
                .count() as u32;
            if live > 0 {
                self.st.parts[j][at.index()].copies_left[p as usize] = live;
                self.st.stage(v_host, 1);
                let excluded = &self.excluded;
                let arq = self.arq.as_mut().expect("windowed path");
                for &c in kids {
                    if excluded.get(j).is_some_and(|e| e[c.index()]) {
                        continue;
                    }
                    let link = arq.link(job, c);
                    link.pending.push_back(p);
                    if !link.active {
                        link.active = true;
                        arq.host_links[v_host.index()].push((job, c));
                    }
                }
                self.st.queue.schedule(now, Ev::TrySend(v_host));
            }
        }
        if received == packets {
            self.st.finish_host(now, job, at);
        }
    }

    /// The job's delivery deadline passed with `child`'s delivery still
    /// incomplete: write off the whole undelivered subtree under (and
    /// including) `child` as typed `unreached` entries instead of letting
    /// retries run the attempt budget down. Reuses the repair-epoch
    /// exclusion mechanism, so `collect` reports the run as a success for
    /// the surviving membership.
    fn write_off_deadline(&mut self, now: SimTime, job: u32, child: Rank) {
        let j = job as usize;
        if self.excluded.is_empty() {
            self.excluded = self
                .st
                .jobs
                .iter()
                .map(|jb| vec![false; jb.tree.len()])
                .collect();
        }
        let jobd = self.st.job(job);
        let mut stack = vec![child];
        while let Some(v) = stack.pop() {
            if self.st.parts[j][v.index()].host_done.is_some() || self.excluded[j][v.index()] {
                continue;
            }
            self.excluded[j][v.index()] = true;
            self.st.obs.deadline_writeoff(now.as_us(), job, v);
            // Retire the incoming edge wholesale: pending (undispatched)
            // packets and in-flight slots each still hold a parent buffer
            // copy.
            let parent = jobd.tree.parent(v).expect("non-root rank");
            let (to_release, stalled) = {
                let arq = self.arq.as_mut().expect("windowed path");
                let link = arq.link(job, v);
                let mut to_release: Vec<u32> = link.pending.drain(..).collect();
                for (pi, s) in link.slots.iter_mut().enumerate() {
                    if matches!(*s, Slot::InFlight { .. }) {
                        to_release.push(pi as u32);
                    }
                    *s = Slot::Done;
                }
                link.in_flight = 0;
                (to_release, link.blocked_since_us.take())
            };
            if let Some(t0) = stalled {
                self.st.obs.window_stalled(job, now.as_us() - t0);
            }
            for p in to_release {
                release_replicated_copy(
                    &mut self.st,
                    SendItem {
                        job,
                        packet: p,
                        from: parent,
                        child: v,
                        dest: v,
                        attempt: 0,
                    },
                );
            }
            for &c in jobd.tree.children(v) {
                stack.push(c);
            }
        }
    }

    /// Collects per-job outcomes and workload aggregates.
    ///
    /// With an active fault plan, unreached destinations produce
    /// [`SimError::DeliveryFailed`] (carrying the run's counters).
    ///
    /// # Panics
    ///
    /// Panics if any rank never completed in a *fault-free* run — the
    /// simulator never deadlocks on validated input, so this indicates an
    /// engine bug.
    fn collect(self) -> Result<WorkloadOutcome, SimError> {
        let Simulation { st, excluded, .. } = self;
        let params = st.params;
        let is_excluded = |j: usize, r: usize| excluded.get(j).is_some_and(|e| e[r]);
        let mut unreached = Vec::new();
        for (j, job) in st.jobs.iter().enumerate() {
            for r in 1..job.tree.len() {
                if st.parts[j][r].host_done.is_none() && !is_excluded(j, r) {
                    unreached.push((j as u32, Rank(r as u32)));
                }
            }
        }
        if !unreached.is_empty() {
            if st.fault.is_some() {
                let mut counters = st.obs.counters.counters;
                counters.events = st.queue.processed();
                counters.peak_queue_len = st.queue.peak_len();
                return Err(SimError::DeliveryFailed {
                    unreached,
                    counters: Box::new(counters),
                });
            }
            let (j, r) = unreached[0];
            panic!("job {j}: rank {} never completed", r.index());
        }
        // Destinations written off as crashed by repair epochs: the run
        // *succeeded* for the surviving membership; these are reported in
        // the outcome, with zeroed per-rank times.
        let mut written_off = Vec::new();
        for (j, e) in excluded.iter().enumerate() {
            for (r, &dead) in e.iter().enumerate() {
                if dead && st.parts[j][r].host_done.is_none() {
                    written_off.push((j as u32, Rank(r as u32)));
                }
            }
        }
        let mut outcomes = Vec::with_capacity(st.jobs.len());
        let mut makespan = 0.0f64;
        for (j, job) in st.jobs.iter().enumerate() {
            let n = job.tree.len();
            let mut host_done = vec![0.0f64; n];
            let mut last_recv = vec![0.0f64; n];
            let mut latency = if n == 1 { params.t_s + params.t_r } else { 0.0 };
            for r in 1..n {
                let p = &st.parts[j][r];
                let Some(done) = p.host_done else {
                    continue; // written off as crashed by a repair epoch
                };
                host_done[r] = done.as_us() - job.start_us;
                last_recv[r] = p.last_recv.as_us() - job.start_us;
                latency = latency.max(host_done[r]);
            }
            makespan = makespan.max(latency + job.start_us);
            let max_ni_buffer = job
                .binding
                .iter()
                .map(|&h| st.hosts.max_resident(h))
                .collect();
            outcomes.push(MulticastOutcome {
                latency_us: latency,
                host_done_us: host_done,
                ni_last_recv_us: last_recv,
                channel_wait_us: st.obs.metrics.waits_us[j],
                blocked_sends: st.obs.metrics.blocked[j],
                total_sends: st.obs.metrics.sends[j],
                max_ni_buffer,
                events: 0,         // aggregate reported at workload level
                peak_queue_len: 0, // aggregate reported at workload level
            });
        }
        let mut counters = st.obs.counters.counters;
        counters.events = st.queue.processed();
        counters.peak_queue_len = st.queue.peak_len();
        Ok(WorkloadOutcome {
            jobs: outcomes,
            makespan_us: makespan,
            channel_wait_us: st.obs.metrics.channel_wait_us,
            max_host_buffer: st.hosts.all_max_resident(),
            events: st.queue.processed(),
            counters,
            unreached: written_off,
            trace: st
                .obs
                .trace
                .map(crate::observe::TraceCollector::into_sorted)
                .unwrap_or_default(),
        })
    }
}
