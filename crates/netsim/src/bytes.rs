//! A minimal zero-copy byte buffer, standing in for `bytes::Bytes`.
//!
//! The packetization layer ([`crate::packet`]) needs exactly three things
//! from its buffer type: cheap clones, zero-copy sub-slicing, and ordinary
//! `&[u8]` access. This type provides them with an `Arc<[u8]>` plus a
//! (start, len) window — the same representation strategy as the `bytes`
//! crate's shared variant, without the crates.io dependency the build
//! environment cannot fetch.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, sliceable, immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from([] as [u8; 0]),
            start: 0,
            len: 0,
        }
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A zero-copy sub-view. Accepts any range form (`a..b`, `a..`, `..b`,
    /// `..`), like `bytes::Bytes::slice`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            lo <= hi && hi <= self.len,
            "slice {lo}..{hi} out of bounds (len {})",
            self.len
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            len: hi - lo,
        }
    }

    /// Pointer to the first byte of the view (shared with the parent
    /// buffer — sub-slices alias their source).
    pub fn as_ptr(&self) -> *const u8 {
        self.as_slice().as_ptr()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.start + self.len]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{:?}", self.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_are_zero_copy_views() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&*s, &[2, 3, 4]);
        assert_eq!(s.as_ptr(), unsafe { b.as_ptr().add(1) });
        let ss = s.slice(1..);
        assert_eq!(&*ss, &[3, 4]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn empty_and_equality() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from(vec![7, 8]), Bytes::from(&[7u8, 8][..]));
        assert_ne!(Bytes::from(vec![7]), Bytes::new());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_slice_panics() {
        Bytes::from(vec![1, 2]).slice(0..3);
    }
}
