//! # optimcast-netsim
//!
//! Discrete-event simulator for packetized multicast over switch-based
//! wormhole networks with network-interface support — the experimental
//! apparatus of the paper's §5.
//!
//! The simulator models, per participating node:
//!
//! * a **host processor** with software overheads `t_s` (send start-up) and
//!   `t_r` (receive) — involved per *message*, and per *copy* under the
//!   conventional NI;
//! * a **network interface** with an independent send unit (`t_send` per
//!   packet copy) and receive unit (`t_recv` per packet), a send queue, and
//!   a packet buffer whose occupancy is tracked;
//! * the **forwarding engine**: conventional (host forwards),
//!   smart-FCFS, or smart-FPFS (paper §2–§3);
//! * the **network**: every transmission follows the topology's
//!   deterministic route and, under [`sim::ContentionMode::Wormhole`],
//!   must hold every directed channel of that route exclusively — a blocked
//!   head stalls the sending NI (wormhole back-pressure).
//!
//! In the paper's step model successive sends from one NI are one *step*
//! (`t_send + t_prop + t_recv`) apart; the simulator reproduces this with a
//! synchronous NI handshake (the send unit is released when the receiving NI
//! finishes receiving the packet), so with contention disabled its latencies
//! match the analytic model of `optimcast-core` *exactly* — a cross-check
//! the integration tests enforce. The overlapped mode
//! ([`sim::NiTiming::Overlapped`]) relaxes this for ablation.

pub mod alloc;
pub mod arq;
pub mod bytes;
mod channel;
mod discipline;
pub mod engine;
pub mod error;
mod event;
pub mod fault;
mod host;
pub mod observe;
pub mod packet;
pub mod routes;
pub mod scheduler;
mod shard;
pub mod sim;
mod simulation;
pub mod stream;
pub mod time;
pub mod transport;
pub mod workload;

pub use alloc::CountingAlloc;
pub use arq::{coalesce_missing, NiModel};
pub use error::SimError;
pub use fault::{FaultKind, FaultPlan, FaultPlanSpec, HostCrash, LinkFailure, RepairPolicy};
pub use observe::{Observer, SimCounters};
pub use routes::JobRoutes;
pub use scheduler::{
    AdmissionRequest, ContentionAware, FifoAdmission, InFlight, JobScheduler, JobStats,
    ScheduledOutcome, ScheduledRun,
};
pub use sim::{
    run_multicast, run_multicast_prerouted, run_multicast_shared, run_multicast_with_faults,
    ContentionMode, MulticastOutcome, NiTiming, NicKind, RunConfig,
};
pub use stream::{
    churn_plan, ChurnEvent, FrameFate, FrameRecord, ReceiverStats, StreamError, StreamOutcome,
    StreamRun, StreamSpec,
};
pub use time::SimTime;
pub use transport::{
    Delivery, LinkContext, PacketView, SimTransport, Transport, TransportError, TransportResult,
};
pub use workload::{
    JobPayload, MulticastJob, PersonalizedOrder, SimRun, TraceKind, TraceRecord, WorkloadConfig,
    WorkloadOutcome,
};
