//! The multicast simulator: executes one multicast over a routed network
//! with a chosen NI architecture and contention model.
//!
//! A run takes a [`MulticastTree`] over ranks, a *binding* from ranks to
//! physical [`HostId`]s (normally produced by
//! `optimcast_topology::ordering::Ordering::arrange`), the packet count, the
//! [`SystemParams`], and a [`RunConfig`]; it returns a
//! [`MulticastOutcome`] with the multicast latency and detailed metrics.
//!
//! ## Timing model
//!
//! * The source host spends `t_s` once transferring the message to its NI
//!   (smart NI), or `t_s` *per child send operation* (conventional NI).
//! * Each NI has an independent **send unit** and **receive unit**. A send
//!   occupies the send unit from dispatch until *release*: under
//!   [`NiTiming::Handshake`] (default) release happens when the receiving
//!   NI finishes receiving the packet — successive sends are then exactly
//!   one paper *step* (`t_send + t_prop + t_recv`) apart, which makes the
//!   contention-free simulator agree with `optimcast-core`'s analytic
//!   schedules to the microsecond; under [`NiTiming::Overlapped`] the send
//!   unit is released after `t_send` (ablation).
//! * The receive unit serializes arrivals, `t_recv` each.
//! * Under [`ContentionMode::Wormhole`], a transmission holds every directed
//!   channel of its route for `t_send + t_prop` starting at dispatch; if any
//!   channel is still held the worm stalls the sending NI until the route is
//!   free (head-of-line blocking, conservative wormhole).
//! * Each destination's host spends `t_r` after its NI has received the last
//!   packet; the multicast latency is the latest such completion.

use crate::arq::NiModel;
use crate::error::SimError;
use crate::fault::FaultPlan;
use crate::workload::{JobPayload, MulticastJob, SimRun, WorkloadConfig};
use optimcast_core::params::SystemParams;
use optimcast_core::schedule::ForwardingDiscipline;
use optimcast_core::tree::MulticastTree;
use optimcast_topology::graph::HostId;
use optimcast_topology::Network;

/// Network-interface architecture for a run (paper §2.3 vs §2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NicKind {
    /// Host processors forward every copy (conventional NI).
    Conventional,
    /// The NI coprocessor forwards packet replicas (smart NI) under the
    /// given discipline (FCFS or FPFS).
    Smart(ForwardingDiscipline),
}

/// Whether transmissions contend for physical channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContentionMode {
    /// Infinite network capacity: transfers never block (the paper's
    /// analytic step model).
    Ideal,
    /// Wormhole path reservation: a transfer holds all channels of its
    /// route; overlapping routes serialize.
    Wormhole,
}

/// Send-unit release policy (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NiTiming {
    /// Release on receiver handshake — one paper step per send (default).
    Handshake,
    /// Release after `t_send` — sender-side pipelining (ablation).
    Overlapped,
}

/// Full configuration of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunConfig {
    /// NI architecture.
    pub nic: NicKind,
    /// Channel contention model.
    pub contention: ContentionMode,
    /// Send-unit release policy.
    pub timing: NiTiming,
}

impl Default for RunConfig {
    /// The paper's evaluation setup: smart FPFS NI, wormhole contention,
    /// step-accurate handshake timing.
    fn default() -> Self {
        RunConfig {
            nic: NicKind::Smart(ForwardingDiscipline::Fpfs),
            contention: ContentionMode::Wormhole,
            timing: NiTiming::Handshake,
        }
    }
}

/// Results and metrics of one simulated multicast.
#[derive(Debug, Clone, PartialEq)]
pub struct MulticastOutcome {
    /// Multicast latency in µs: the latest destination-host completion.
    pub latency_us: f64,
    /// Per-rank host completion time (µs); 0 for the source.
    pub host_done_us: Vec<f64>,
    /// Per-rank time the NI finished receiving the last packet (µs); 0 for
    /// the source.
    pub ni_last_recv_us: Vec<f64>,
    /// Total time senders spent stalled on busy channels (µs).
    pub channel_wait_us: f64,
    /// Number of sends that found at least one busy channel.
    pub blocked_sends: u64,
    /// Total packet transmissions performed.
    pub total_sends: u64,
    /// Per-rank maximum number of packets resident in the NI forwarding
    /// buffer (smart NIs only; zeros under the conventional NI).
    pub max_ni_buffer: Vec<u32>,
    /// Discrete events processed (simulation effort indicator).
    pub events: u64,
    /// Largest number of events simultaneously pending in the event queue
    /// (memory high-water-mark indicator).
    pub peak_queue_len: usize,
}

/// Simulates one multicast and returns its outcome.
///
/// `binding[rank]` is the physical host of tree rank `rank`; `binding[0]` is
/// the source. This is the single-job special case of
/// [`crate::workload::SimRun`]; all analytic-exactness tests in this
/// module therefore validate the workload engine too.
///
/// # Errors
///
/// Returns a [`SimError`] if `m == 0`, the binding length differs from the
/// tree size, a bound host is out of range, or the binding repeats a host.
pub fn run_multicast<N: Network>(
    net: &N,
    tree: &MulticastTree,
    binding: &[HostId],
    m: u32,
    params: &SystemParams,
    config: RunConfig,
) -> Result<MulticastOutcome, SimError> {
    run_multicast_shared(
        net,
        std::sync::Arc::new(tree.clone()),
        binding,
        m,
        params,
        config,
    )
}

/// As [`run_multicast`], but taking the tree by shared ownership so callers
/// holding a memoized `Arc<MulticastTree>` (e.g. a sweep engine running the
/// same tree over thousands of sampled chains) avoid deep-cloning the arena
/// on every run.
///
/// # Errors
///
/// Same contract as [`run_multicast`].
pub fn run_multicast_shared<N: Network>(
    net: &N,
    tree: std::sync::Arc<MulticastTree>,
    binding: &[HostId],
    m: u32,
    params: &SystemParams,
    config: RunConfig,
) -> Result<MulticastOutcome, SimError> {
    let job = MulticastJob {
        tree,
        binding: binding.to_vec(),
        packets: m,
        start_us: 0.0,
        nic: config.nic,
        payload: JobPayload::Replicated,
    };
    let wl = SimRun::new(
        net,
        std::slice::from_ref(&job),
        params,
        WorkloadConfig {
            contention: config.contention,
            timing: config.timing,
            trace: false,
            ni: NiModel::default(),
            ..WorkloadConfig::default()
        },
    )
    .run()?;
    let mut out = wl.jobs.into_iter().next().expect("one job in, one out");
    out.events = wl.events;
    out.peak_queue_len = wl.counters.peak_queue_len;
    Ok(out)
}

/// As [`run_multicast_shared`], but with a caller-supplied interned route
/// table, built once by [`crate::routes::JobRoutes::build`] from the same
/// `(net, tree, binding)` triple and reused across runs — the sweep engine
/// memoizes tables per `(topology, chain, tree-shape)` so repeated cells
/// skip the route computation entirely. The outcome is identical to
/// [`run_multicast_shared`].
///
/// # Errors
///
/// Same contract as [`run_multicast`].
pub fn run_multicast_prerouted<N: Network>(
    net: &N,
    tree: std::sync::Arc<MulticastTree>,
    binding: &[HostId],
    routes: std::sync::Arc<crate::routes::JobRoutes>,
    m: u32,
    params: &SystemParams,
    config: RunConfig,
) -> Result<MulticastOutcome, SimError> {
    let job = MulticastJob {
        tree,
        binding: binding.to_vec(),
        packets: m,
        start_us: 0.0,
        nic: config.nic,
        payload: JobPayload::Replicated,
    };
    let wl = SimRun::new(
        net,
        std::slice::from_ref(&job),
        params,
        WorkloadConfig {
            contention: config.contention,
            timing: config.timing,
            trace: false,
            ni: NiModel::default(),
            ..WorkloadConfig::default()
        },
    )
    .routes(vec![routes])
    .run()?;
    let mut out = wl.jobs.into_iter().next().expect("one job in, one out");
    out.events = wl.events;
    out.peak_queue_len = wl.counters.peak_queue_len;
    Ok(out)
}

/// As [`run_multicast_shared`], but under a [`FaultPlan`]: the reliability
/// layer retransmits dropped/corrupted/refused packets (stop-and-wait,
/// capped exponential backoff) and crashed hosts stay silent. Returns the
/// outcome *and* the workload counters, which carry the run's drop,
/// retransmit, and recovery-latency totals.
///
/// # Errors
///
/// Same contract as [`run_multicast`], plus [`SimError::InvalidFaultPlan`],
/// [`SimError::FaultsNeedHandshakeTiming`] (a non-trivial plan requires
/// [`NiTiming::Handshake`]), and [`SimError::DeliveryFailed`] listing every
/// unreached rank when the plan's losses exceed the retransmission budget.
pub fn run_multicast_with_faults<N: Network>(
    net: &N,
    tree: std::sync::Arc<MulticastTree>,
    binding: &[HostId],
    m: u32,
    params: &SystemParams,
    config: RunConfig,
    fault: &FaultPlan,
) -> Result<(MulticastOutcome, crate::observe::SimCounters), SimError> {
    let job = MulticastJob {
        tree,
        binding: binding.to_vec(),
        packets: m,
        start_us: 0.0,
        nic: config.nic,
        payload: JobPayload::Replicated,
    };
    let wl = SimRun::new(
        net,
        std::slice::from_ref(&job),
        params,
        WorkloadConfig {
            contention: config.contention,
            timing: config.timing,
            trace: false,
            ni: NiModel::default(),
            ..WorkloadConfig::default()
        },
    )
    .faults(fault)
    .run()?;
    let counters = wl.counters;
    let mut out = wl.jobs.into_iter().next().expect("one job in, one out");
    out.events = wl.events;
    out.peak_queue_len = counters.peak_queue_len;
    Ok((out, counters))
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimcast_core::builders::{binomial_tree, kbinomial_tree, linear_tree};
    use optimcast_core::latency::{conventional_latency_us, smart_latency_us};
    use optimcast_core::schedule::{fcfs_schedule, fpfs_schedule};
    use optimcast_core::tree::Rank;
    use optimcast_topology::cube::CubeNetwork;
    use optimcast_topology::irregular::{IrregularConfig, IrregularNetwork};

    fn params() -> SystemParams {
        SystemParams::paper_1997()
    }

    fn smart_ideal(disc: ForwardingDiscipline) -> RunConfig {
        RunConfig {
            nic: NicKind::Smart(disc),
            contention: ContentionMode::Ideal,
            timing: NiTiming::Handshake,
        }
    }

    /// A single-switch network never contends beyond NI serialization, so
    /// the simulator must match the analytic model exactly.
    fn crossbar(hosts: u32) -> IrregularNetwork {
        IrregularNetwork::generate(
            IrregularConfig {
                switches: 1,
                ports: hosts,
                hosts,
            },
            0,
        )
    }

    fn identity_binding(n: u32) -> Vec<HostId> {
        (0..n).map(HostId).collect()
    }

    #[test]
    fn matches_analytic_fpfs_exactly() {
        let net = crossbar(16);
        for k in 1..=4u32 {
            for m in [1u32, 2, 5, 8] {
                let tree = kbinomial_tree(16, k);
                let sched = fpfs_schedule(&tree, m);
                let out = run_multicast(
                    &net,
                    &tree,
                    &identity_binding(16),
                    m,
                    &params(),
                    smart_ideal(ForwardingDiscipline::Fpfs),
                )
                .unwrap();
                let analytic = smart_latency_us(&sched, &params());
                assert!(
                    (out.latency_us - analytic).abs() < 1e-6,
                    "k={k} m={m}: sim {} vs analytic {analytic}",
                    out.latency_us
                );
                // Per-rank NI receive times match the schedule too.
                for r in 1..16u32 {
                    let expect = params().t_s
                        + f64::from(sched.message_completion(Rank(r))) * params().t_step();
                    assert!(
                        (out.ni_last_recv_us[r as usize] - expect).abs() < 1e-6,
                        "k={k} m={m} rank={r}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_analytic_fcfs_exactly() {
        let net = crossbar(12);
        for m in [1u32, 3, 6] {
            let tree = binomial_tree(12);
            let sched = fcfs_schedule(&tree, m);
            let out = run_multicast(
                &net,
                &tree,
                &identity_binding(12),
                m,
                &params(),
                smart_ideal(ForwardingDiscipline::Fcfs),
            )
            .unwrap();
            let analytic = smart_latency_us(&sched, &params());
            assert!(
                (out.latency_us - analytic).abs() < 1e-6,
                "m={m}: sim {} vs analytic {analytic}",
                out.latency_us
            );
        }
    }

    #[test]
    fn matches_analytic_conventional_exactly() {
        let net = crossbar(8);
        for m in [1u32, 2, 4] {
            let tree = binomial_tree(8);
            let out = run_multicast(
                &net,
                &tree,
                &identity_binding(8),
                m,
                &params(),
                RunConfig {
                    nic: NicKind::Conventional,
                    contention: ContentionMode::Ideal,
                    timing: NiTiming::Handshake,
                },
            )
            .unwrap();
            let analytic = conventional_latency_us(&tree, m, &params());
            assert!(
                (out.latency_us - analytic).abs() < 1e-6,
                "m={m}: sim {} vs analytic {analytic}",
                out.latency_us
            );
        }
    }

    #[test]
    fn fig5_step_counts_in_microseconds() {
        // Paper Fig. 5: binomial = 6 steps, linear = 5 steps (m = 3, 3 dest).
        let net = crossbar(4);
        let p = params();
        let run = |tree| {
            run_multicast(
                &net,
                &tree,
                &identity_binding(4),
                3,
                &p,
                smart_ideal(ForwardingDiscipline::Fpfs),
            )
            .unwrap()
            .latency_us
        };
        assert!((run(binomial_tree(4)) - (12.5 + 30.0 + 12.5)).abs() < 1e-6);
        assert!((run(linear_tree(4)) - (12.5 + 25.0 + 12.5)).abs() < 1e-6);
    }

    #[test]
    fn smart_beats_conventional_in_sim() {
        let net = crossbar(16);
        let tree = binomial_tree(16);
        let smart = run_multicast(
            &net,
            &tree,
            &identity_binding(16),
            4,
            &params(),
            smart_ideal(ForwardingDiscipline::Fpfs),
        )
        .unwrap();
        let conv = run_multicast(
            &net,
            &tree,
            &identity_binding(16),
            4,
            &params(),
            RunConfig {
                nic: NicKind::Conventional,
                contention: ContentionMode::Ideal,
                timing: NiTiming::Handshake,
            },
        )
        .unwrap();
        assert!(smart.latency_us < conv.latency_us);
    }

    #[test]
    fn wormhole_equals_ideal_without_conflicts() {
        // On a crossbar (single switch), distinct tree edges share only
        // injection channels of a common sender, which NI serialization
        // already spaces out — wormhole adds no delay.
        let net = crossbar(16);
        let tree = kbinomial_tree(16, 2);
        let ideal = run_multicast(
            &net,
            &tree,
            &identity_binding(16),
            4,
            &params(),
            smart_ideal(ForwardingDiscipline::Fpfs),
        )
        .unwrap();
        let worm = run_multicast(
            &net,
            &tree,
            &identity_binding(16),
            4,
            &params(),
            RunConfig {
                contention: ContentionMode::Wormhole,
                ..smart_ideal(ForwardingDiscipline::Fpfs)
            },
        )
        .unwrap();
        assert_eq!(worm.blocked_sends, 0);
        assert!((worm.latency_us - ideal.latency_us).abs() < 1e-9);
    }

    #[test]
    fn wormhole_never_faster_than_ideal() {
        let net = IrregularNetwork::generate(IrregularConfig::default(), 5);
        let tree = kbinomial_tree(24, 2);
        let binding: Vec<HostId> = (0..24).map(|i| HostId(i * 2)).collect();
        for disc in [ForwardingDiscipline::Fpfs, ForwardingDiscipline::Fcfs] {
            let ideal =
                run_multicast(&net, &tree, &binding, 6, &params(), smart_ideal(disc)).unwrap();
            let worm = run_multicast(
                &net,
                &tree,
                &binding,
                6,
                &params(),
                RunConfig {
                    contention: ContentionMode::Wormhole,
                    ..smart_ideal(disc)
                },
            )
            .unwrap();
            assert!(worm.latency_us >= ideal.latency_us - 1e-9);
        }
    }

    #[test]
    fn buffer_occupancy_fcfs_vs_fpfs() {
        // §3.3.2: an FPFS intermediate node holds at most a couple of
        // packets; FCFS holds up to the whole message.
        let net = crossbar(16);
        let tree = binomial_tree(16);
        let m = 8;
        let inner = tree.root_children()[0]; // 3 children
        let fpfs = run_multicast(
            &net,
            &tree,
            &identity_binding(16),
            m,
            &params(),
            smart_ideal(ForwardingDiscipline::Fpfs),
        )
        .unwrap();
        let fcfs = run_multicast(
            &net,
            &tree,
            &identity_binding(16),
            m,
            &params(),
            smart_ideal(ForwardingDiscipline::Fcfs),
        )
        .unwrap();
        assert!(fpfs.max_ni_buffer[inner.index()] <= 2);
        assert_eq!(fcfs.max_ni_buffer[inner.index()], m);
    }

    #[test]
    fn overlapped_timing_is_no_slower() {
        let net = crossbar(16);
        let tree = kbinomial_tree(16, 3);
        let hs = run_multicast(
            &net,
            &tree,
            &identity_binding(16),
            4,
            &params(),
            smart_ideal(ForwardingDiscipline::Fpfs),
        )
        .unwrap();
        let ov = run_multicast(
            &net,
            &tree,
            &identity_binding(16),
            4,
            &params(),
            RunConfig {
                timing: NiTiming::Overlapped,
                ..smart_ideal(ForwardingDiscipline::Fpfs)
            },
        )
        .unwrap();
        assert!(ov.latency_us <= hs.latency_us + 1e-9);
        assert!(ov.latency_us < hs.latency_us, "t_send < t_step must help");
    }

    #[test]
    fn works_on_cubes() {
        let net = CubeNetwork::new(2, 4);
        let tree = binomial_tree(16);
        let out = run_multicast(
            &net,
            &tree,
            &identity_binding(16),
            2,
            &params(),
            RunConfig::default(),
        )
        .unwrap();
        // Hypercube id-order binomial multicast is contention-free.
        assert_eq!(out.blocked_sends, 0);
        let sched = fpfs_schedule(&tree, 2);
        let analytic = smart_latency_us(&sched, &params());
        assert!((out.latency_us - analytic).abs() < 1e-6);
    }

    #[test]
    fn deterministic_runs() {
        let net = IrregularNetwork::generate(IrregularConfig::default(), 8);
        let tree = kbinomial_tree(40, 2);
        let binding: Vec<HostId> = (0..40).map(HostId).collect();
        let a = run_multicast(&net, &tree, &binding, 8, &params(), RunConfig::default()).unwrap();
        let b = run_multicast(&net, &tree, &binding, 8, &params(), RunConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn counts_total_sends() {
        let net = crossbar(8);
        let tree = binomial_tree(8);
        let out = run_multicast(
            &net,
            &tree,
            &identity_binding(8),
            5,
            &params(),
            smart_ideal(ForwardingDiscipline::Fpfs),
        )
        .unwrap();
        assert_eq!(out.total_sends, 7 * 5);
    }

    #[test]
    fn singleton_multicast() {
        let net = crossbar(2);
        let tree = optimcast_core::tree::MulticastTree::singleton();
        let out = run_multicast(
            &net,
            &tree,
            &[HostId(0)],
            3,
            &params(),
            RunConfig::default(),
        )
        .unwrap();
        assert!((out.latency_us - 25.0).abs() < 1e-9);
        assert_eq!(out.total_sends, 0);
    }

    #[test]
    fn duplicate_binding_is_an_error() {
        let net = crossbar(4);
        let tree = linear_tree(3);
        let err = run_multicast(
            &net,
            &tree,
            &[HostId(0), HostId(1), HostId(1)],
            1,
            &params(),
            RunConfig::default(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            SimError::DuplicateHost {
                job: 0,
                host: HostId(1)
            }
        );
        assert!(err.to_string().contains("bound twice"));
    }

    #[test]
    fn short_binding_is_an_error() {
        let net = crossbar(4);
        let tree = linear_tree(3);
        let err = run_multicast(
            &net,
            &tree,
            &[HostId(0)],
            1,
            &params(),
            RunConfig::default(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            SimError::BindingMismatch {
                job: 0,
                bound: 1,
                ranks: 3
            }
        );
        assert!(err.to_string().contains("cover every tree rank"));
    }
}

#[cfg(test)]
mod doc_like_tests {
    use super::*;
    use optimcast_core::builders::binomial_tree;
    use optimcast_topology::irregular::{IrregularConfig, IrregularNetwork};
    use optimcast_topology::ordering::cco;

    /// The README/quickstart pipeline as a test: generate the paper's
    /// platform, order with CCO, pick the Theorem-3 tree, simulate.
    #[test]
    fn end_to_end_quickstart_pipeline() {
        use optimcast_core::optimal::optimal_k;
        use optimcast_topology::graph::HostId;
        let net = IrregularNetwork::generate(IrregularConfig::default(), 42);
        let ordering = cco(&net);
        let params = SystemParams::paper_1997();
        let dests: Vec<HostId> = (1..32).map(HostId).collect();
        let chain = ordering.arrange(HostId(0), &dests);
        let m = params.packets_for(1024);
        let k = optimal_k(chain.len() as u64, m).k;
        let tree = optimcast_core::builders::kbinomial_tree(chain.len() as u32, k);
        let out = run_multicast(&net, &tree, &chain, m, &params, RunConfig::default()).unwrap();
        assert!(out.latency_us > 0.0);
        assert_eq!(out.total_sends, 31 * u64::from(m));
    }

    /// Outcomes serialize (the figures pipeline depends on it).
    #[test]
    fn outcome_fields_are_consistent() {
        let net = IrregularNetwork::generate(
            IrregularConfig {
                switches: 1,
                ports: 8,
                hosts: 8,
            },
            0,
        );
        let tree = binomial_tree(8);
        let binding: Vec<_> = (0..8).map(optimcast_topology::graph::HostId).collect();
        let out = run_multicast(
            &net,
            &tree,
            &binding,
            2,
            &SystemParams::paper_1997(),
            RunConfig::default(),
        )
        .unwrap();
        // latency is the max host completion.
        let max = out.host_done_us.iter().copied().fold(0.0f64, f64::max);
        assert_eq!(out.latency_us, max);
        // NI receive always precedes host completion by exactly t_r.
        for r in 1..8 {
            assert!((out.host_done_us[r] - out.ni_last_recv_us[r] - 12.5).abs() < 1e-9);
        }
    }
}
