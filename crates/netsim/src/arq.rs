//! Windowed selective-repeat ARQ: the NI send-unit model and the
//! sliding-window reliability state.
//!
//! The paper's NI has exactly one send unit per host; PR 3's stop-and-wait
//! reliability layer mirrors that — one outstanding transmission per host,
//! with the unit held until the receiver's handshake. This module
//! generalises both sides:
//!
//! * [`NiModel`] — `s` send units per host and an optional per-port send
//!   queue bound, threaded through [`crate::workload::WorkloadConfig`]. The
//!   default (`s = 1`, unbounded) reproduces the paper model bit-for-bit.
//! * The selective-repeat state ([`ArqState`]): per-destination send
//!   windows ([`LinkState`]) with at most `window` unacknowledged packets
//!   in flight per tree edge, and out-of-order acceptance buffers
//!   ([`RecvState`]) whose gap detection emits **coalesced NACK ranges**
//!   (`[first_missing, last_seen]` runs, not per-packet NACKs).
//!
//! The window machinery activates when a [`crate::fault::FaultPlan`] sets
//! `window > 1`; the event handlers live in [`crate::simulation`]. Every
//! retry decision there is driven by the fault plan's PRF (stream 3 for the
//! retransmission jitter), so windowed runs stay byte-identical at any
//! worker count.

use optimcast_core::tree::Rank;
use std::collections::VecDeque;

/// Per-host network-interface resources.
///
/// Part of [`crate::workload::WorkloadConfig`]; the default is the paper's
/// single-send-unit NI with an unbounded send queue, which the committed
/// goldens pin bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NiModel {
    /// Independent send units per host (`s ≥ 1`). Each unit holds one
    /// outstanding transmission; with handshake timing a unit frees on the
    /// receiver's handshake, under windowed ARQ it frees `t_send` after
    /// dispatch.
    pub send_units: u32,
    /// Per-host send-queue bound in packets (`None` = unbounded). Enforced
    /// by the windowed-ARQ admission path only: window admission defers
    /// packets that would overflow the queue. The legacy stop-and-wait and
    /// fault-free paths never exceed their historic queue depths, so the
    /// bound does not apply there.
    pub queue_capacity: Option<u32>,
}

impl Default for NiModel {
    fn default() -> Self {
        NiModel {
            send_units: 1,
            queue_capacity: None,
        }
    }
}

impl NiModel {
    /// Checks the model's parameters (`send_units ≥ 1`, a present queue
    /// bound ≥ 1).
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.send_units == 0 {
            return Err("send_units must be at least 1");
        }
        if self.queue_capacity == Some(0) {
            return Err("queue_capacity must be at least 1 packet when bounded");
        }
        Ok(())
    }
}

/// Coalesces the unreceived packets below `upto` into inclusive
/// `(first, last)` ranges — the NACK-range computation of the selective-
/// repeat receiver. `received` is a packet bitmask (`bit p` of word
/// `p / 64` set when packet `p` has arrived); packets at or above `upto`
/// are not considered missing.
///
/// The returned ranges are disjoint, ascending, and their union is exactly
/// the missing set — properties the proptest battery pins down.
pub fn coalesce_missing(received: &[u64], upto: u32) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut run_start: Option<u32> = None;
    for p in 0..upto {
        if mask_test(received, p) {
            if let Some(s) = run_start.take() {
                ranges.push((s, p - 1));
            }
        } else if run_start.is_none() {
            run_start = Some(p);
        }
    }
    if let Some(s) = run_start {
        ranges.push((s, upto - 1));
    }
    ranges
}

/// Tests bit `p` of a packet bitmask.
#[inline]
pub(crate) fn mask_test(mask: &[u64], p: u32) -> bool {
    mask[(p / 64) as usize] & (1u64 << (p % 64)) != 0
}

/// Sets bit `p` of a packet bitmask.
#[inline]
pub(crate) fn mask_set(mask: &mut [u64], p: u32) {
    mask[(p / 64) as usize] |= 1u64 << (p % 64);
}

/// Words needed for an `m`-packet bitmask.
#[inline]
fn mask_words(m: u32) -> usize {
    (m as usize).div_ceil(64)
}

/// Sender-side transmission state of one packet on one tree edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Slot {
    /// Not yet admitted to the window.
    NotSent,
    /// Transmitted and unacknowledged; `attempt` identifies the newest
    /// transmission so stale timeouts are ignored.
    InFlight { attempt: u32 },
    /// Retired: acknowledged, abandoned, or written off.
    Done,
}

/// Sender-side window state of one tree edge (parent → child).
#[derive(Debug)]
pub(crate) struct LinkState {
    /// Per-packet transmission state (`packets` entries).
    pub slots: Vec<Slot>,
    /// Packets awaiting window admission, in send order.
    pub pending: VecDeque<u32>,
    /// Unacknowledged packets currently charged against the window.
    pub in_flight: u32,
    /// Instant admission stalled on a full window (µs); accumulated into
    /// `window_stalls_us` when the window next slides.
    pub blocked_since_us: Option<f64>,
    /// Registered in its sender host's [`ArqState::host_links`] (set when
    /// the link first gets pending work).
    pub active: bool,
}

impl LinkState {
    fn new(packets: u32) -> Self {
        LinkState {
            slots: vec![Slot::NotSent; packets as usize],
            pending: VecDeque::new(),
            in_flight: 0,
            blocked_since_us: None,
            active: false,
        }
    }
}

/// Receiver-side out-of-order acceptance state of one `(job, rank)`.
#[derive(Debug)]
pub(crate) struct RecvState {
    /// Packets received (acceptance buffer occupancy).
    pub mask: Vec<u64>,
    /// Packets already NACKed once. Each missing packet is NACKed at most
    /// once — the sender's retransmission timeout covers a lost recovery,
    /// so repeating the NACK would only multiply duplicate resends.
    pub nacked: Vec<u64>,
    /// Highest packet index seen so far (gap detection boundary).
    pub last_seen: Option<u32>,
}

impl RecvState {
    fn new(packets: u32) -> Self {
        RecvState {
            mask: vec![0; mask_words(packets)],
            nacked: vec![0; mask_words(packets)],
            last_seen: None,
        }
    }
}

/// The whole workload's selective-repeat state, indexed `[job][rank]`
/// (rank 0 rows are unused on the link side: rank 0 has no incoming edge).
pub(crate) struct ArqState {
    /// Window size (unacknowledged packets per tree edge), from the fault
    /// plan (`window > 1`).
    pub window: u32,
    /// Per-message delivery deadline (µs past the job's start), if any.
    pub deadline_us: Option<f64>,
    /// `links[job][rank]`: sender-side state of the edge parent(rank) → rank.
    pub links: Vec<Vec<LinkState>>,
    /// `recv[job][rank]`: receiver-side acceptance state.
    pub recv: Vec<Vec<RecvState>>,
    /// Active outgoing edges per physical host, in activation order — lets
    /// a freed send unit or drained queue re-attempt admission for the
    /// host's links without scanning every job.
    pub host_links: Vec<Vec<(u32, Rank)>>,
}

impl ArqState {
    pub fn new(
        jobs: &[crate::workload::MulticastJob],
        n_hosts: usize,
        window: u32,
        deadline_us: Option<f64>,
    ) -> Self {
        ArqState {
            window,
            deadline_us,
            links: jobs
                .iter()
                .map(|j| {
                    (0..j.tree.len())
                        .map(|_| LinkState::new(j.packets))
                        .collect()
                })
                .collect(),
            recv: jobs
                .iter()
                .map(|j| {
                    (0..j.tree.len())
                        .map(|_| RecvState::new(j.packets))
                        .collect()
                })
                .collect(),
            host_links: vec![Vec::new(); n_hosts],
        }
    }

    pub fn link(&mut self, job: u32, child: Rank) -> &mut LinkState {
        &mut self.links[job as usize][child.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ni_model_is_the_paper_nic() {
        let ni = NiModel::default();
        assert_eq!(ni.send_units, 1);
        assert_eq!(ni.queue_capacity, None);
        ni.validate().unwrap();
    }

    #[test]
    fn ni_model_validation_rejects_nonsense() {
        let err = NiModel {
            send_units: 0,
            queue_capacity: None,
        }
        .validate()
        .unwrap_err();
        assert!(err.contains("send_units"));
        let err = NiModel {
            send_units: 2,
            queue_capacity: Some(0),
        }
        .validate()
        .unwrap_err();
        assert!(err.contains("queue_capacity"));
    }

    #[test]
    fn coalesce_produces_inclusive_runs() {
        // received = {1, 4, 5}; upto = 8 → missing {0, 2, 3, 6, 7}.
        let mask = [0b0011_0010u64];
        assert_eq!(coalesce_missing(&mask, 8), vec![(0, 0), (2, 3), (6, 7)]);
        // Nothing missing.
        assert_eq!(coalesce_missing(&[0b1111], 4), vec![]);
        // Everything missing.
        assert_eq!(coalesce_missing(&[0], 4), vec![(0, 3)]);
        // upto bounds the scan.
        assert_eq!(coalesce_missing(&[0], 0), vec![]);
    }

    #[test]
    fn coalesce_crosses_word_boundaries() {
        let mut mask = vec![u64::MAX, u64::MAX];
        // Clear 62..=66: one run across the word boundary.
        for p in 62..=66 {
            mask[(p / 64) as usize] &= !(1u64 << (p % 64));
        }
        assert_eq!(coalesce_missing(&mask, 128), vec![(62, 66)]);
    }

    #[test]
    fn mask_ops_round_trip() {
        let mut mask = vec![0u64; 2];
        for p in [0u32, 63, 64, 100] {
            assert!(!mask_test(&mask, p));
            mask_set(&mut mask, p);
            assert!(mask_test(&mask, p));
        }
    }
}
