//! Multi-multicast workloads: several multicasts sharing one network.
//!
//! The paper's companion problem (Kesavan & Panda, ICPP'96: *Minimizing Node
//! Contention in Multiple Multicast*) is what happens when several multicast
//! jobs run concurrently: they contend both for **channels** (wormhole links)
//! and for **nodes** (a host's NI send/receive units are shared by every job
//! it participates in). This module generalises the single-multicast
//! simulator to a [`Workload`] of jobs with per-job trees, bindings, packet
//! counts, start times, and NI disciplines; [`run_workload`] executes them
//! on one shared network and reports per-job and aggregate metrics.
//!
//! [`crate::sim::run_multicast`] is the single-job special case of this
//! executor, so every exactness test of the analytic models also validates
//! this engine.

use crate::engine::EventQueue;
use crate::sim::{ContentionMode, MulticastOutcome, NiTiming, NicKind};
use crate::time::SimTime;
use optimcast_core::params::SystemParams;
use optimcast_core::schedule::ForwardingDiscipline;
use optimcast_core::tree::{MulticastTree, Rank};
use optimcast_topology::graph::{ChannelId, HostId};
use optimcast_topology::Network;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// What the job's packets carry (replication vs personalization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobPayload {
    /// Multicast: every destination receives the same `m` packets;
    /// intermediate NIs replicate per child.
    Replicated,
    /// Scatter: every non-source rank receives its *own* `m` packets;
    /// intermediate NIs relay each packet toward its destination's subtree
    /// (no replication). Requires a smart NI.
    Personalized {
        /// Source injection order.
        order: PersonalizedOrder,
    },
}

/// Source send-order for personalized payloads (see
/// `optimcast-collectives::scatter` for the policy study). Intermediate
/// nodes always forward in arrival order (FIFO), as a real NI would.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PersonalizedOrder {
    /// Per child block, the child's own packets first, then its subtree in
    /// preorder.
    OwnFirst,
    /// Per child block, deepest destinations first (ties in preorder).
    DeepestFirst,
}

/// One multicast job within a workload.
#[derive(Debug, Clone)]
pub struct MulticastJob {
    /// The multicast tree over ranks (rank 0 = source).
    pub tree: MulticastTree,
    /// Physical host of each rank. Must be duplicate-free *within* the job;
    /// different jobs may (and usually do) share hosts.
    pub binding: Vec<HostId>,
    /// Packets in the message (per destination, for personalized payloads).
    pub packets: u32,
    /// Time (µs) at which the source host initiates the multicast.
    pub start_us: f64,
    /// NI architecture executing this job's tree.
    pub nic: NicKind,
    /// Replicated (multicast) or personalized (scatter) payload.
    pub payload: JobPayload,
}

impl MulticastJob {
    /// A smart-FPFS multicast job starting at time zero.
    pub fn fpfs(tree: MulticastTree, binding: Vec<HostId>, packets: u32) -> Self {
        MulticastJob {
            tree,
            binding,
            packets,
            start_us: 0.0,
            nic: NicKind::Smart(ForwardingDiscipline::Fpfs),
            payload: JobPayload::Replicated,
        }
    }

    /// A smart-NI scatter job starting at time zero.
    pub fn scatter(
        tree: MulticastTree,
        binding: Vec<HostId>,
        packets: u32,
        order: PersonalizedOrder,
    ) -> Self {
        MulticastJob {
            tree,
            binding,
            packets,
            start_us: 0.0,
            nic: NicKind::Smart(ForwardingDiscipline::Fpfs),
            payload: JobPayload::Personalized { order },
        }
    }
}

/// Workload-level configuration shared by every job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Channel contention model.
    pub contention: ContentionMode,
    /// NI send-unit release policy.
    pub timing: NiTiming,
    /// Record a [`TraceRecord`] timeline in the outcome (off by default —
    /// traces grow with `jobs × packets × depth`).
    pub trace: bool,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            contention: ContentionMode::Wormhole,
            timing: NiTiming::Handshake,
            trace: false,
        }
    }
}

/// One timeline entry of a traced run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Simulated time of the event (µs).
    pub t_us: f64,
    /// Job index.
    pub job: u32,
    /// What happened.
    pub kind: TraceKind,
}

/// Kinds of traced events.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceKind {
    /// A packet transmission entered the network (after any stall).
    SendStart {
        /// Sending rank.
        from: Rank,
        /// Receiving rank.
        to: Rank,
        /// Packet index.
        packet: u32,
        /// Stall time spent waiting for busy channels (µs).
        stalled_us: f64,
    },
    /// A rank's NI finished receiving a packet.
    RecvDone {
        /// Receiving rank.
        at: Rank,
        /// Packet index.
        packet: u32,
    },
    /// A rank's host holds the complete message.
    HostDone {
        /// The completed rank.
        rank: Rank,
    },
}

/// Results of a workload run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadOutcome {
    /// Per-job outcomes, in job order. `latency_us` is measured from the
    /// job's own `start_us`.
    pub jobs: Vec<MulticastOutcome>,
    /// Completion time of the last job, from time zero (µs).
    pub makespan_us: f64,
    /// Total sender stall time on busy channels, all jobs (µs).
    pub channel_wait_us: f64,
    /// Per-host maximum packets resident in the NI forwarding buffer,
    /// aggregated over all jobs the host serves.
    pub max_host_buffer: Vec<u32>,
    /// Discrete events processed.
    pub events: u64,
    /// Timeline (empty unless [`WorkloadConfig::trace`] is set).
    pub trace: Vec<TraceRecord>,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    TrySend(HostId),
    Arrive { job: u32, to: Rank, packet: u32, from: Rank, dest: Rank },
    RecvDone { job: u32, at: Rank, packet: u32, from: Rank, dest: Rank },
    HostReady { job: u32, at: Rank },
    SendPrepared { job: u32, at: Rank, child_idx: usize },
    SendRelease(HostId),
}

/// A queued packet transmission.
#[derive(Debug, Clone, Copy)]
struct SendItem {
    job: u32,
    packet: u32,
    /// Sending participant (the child's parent in the job's tree).
    from: Rank,
    child: Rank,
    /// Final destination rank (for personalized payloads; equals `child`
    /// for replicated copies, whose identity is just the packet index).
    dest: Rank,
}

/// Shared per-host NI state.
struct HostState {
    send_queue: VecDeque<SendItem>,
    send_busy: bool,
    in_flight: Option<SendItem>,
    recv_free: SimTime,
    resident: u32,
    max_resident: u32,
}

/// Per-(job, rank) state.
struct PartState {
    received: u32,
    last_recv: SimTime,
    host_done: Option<SimTime>,
    copies_left: Vec<u32>,
    conv_child: usize,
    conv_pending: u32,
}

/// Executes a workload of multicast jobs on a shared network.
///
/// # Panics
///
/// Panics on an empty workload, a job with zero packets, a binding that
/// does not cover its tree, repeats a host within one job, or names a host
/// outside the network.
pub fn run_workload<N: Network>(
    net: &N,
    jobs: &[MulticastJob],
    params: &SystemParams,
    config: WorkloadConfig,
) -> WorkloadOutcome {
    assert!(!jobs.is_empty(), "a workload has at least one job");
    let n_hosts = net.num_hosts() as usize;
    for (j, job) in jobs.iter().enumerate() {
        assert!(job.packets >= 1, "job {j}: a message has at least one packet");
        assert_eq!(
            job.binding.len(),
            job.tree.len(),
            "job {j}: binding must cover every tree rank"
        );
        assert!(job.start_us >= 0.0, "job {j}: negative start time");
        if matches!(job.payload, JobPayload::Personalized { .. }) {
            assert!(
                matches!(job.nic, NicKind::Smart(_)),
                "job {j}: personalized payloads require smart NI support"
            );
        }
        let mut seen = vec![false; n_hosts];
        for h in &job.binding {
            assert!(h.index() < n_hosts, "job {j}: host {h} not in network");
            assert!(!seen[h.index()], "job {j}: host {h} bound twice");
            seen[h.index()] = true;
        }
    }

    // Per-(job, rank): the child subtree each rank belongs to, i.e. the next
    // hop from any ancestor — derived lazily from parent pointers instead.
    // Precomputed per-(job, child-rank) routes.
    let routes: Vec<Vec<Vec<ChannelId>>> = jobs
        .iter()
        .map(|job| {
            (0..job.tree.len())
                .map(|r| match job.tree.parent(Rank(r as u32)) {
                    Some(p) => net.route(job.binding[p.index()], job.binding[r]),
                    None => Vec::new(),
                })
                .collect()
        })
        .collect();

    let mut hosts: Vec<HostState> = (0..n_hosts)
        .map(|_| HostState {
            send_queue: VecDeque::new(),
            send_busy: false,
            in_flight: None,
            recv_free: SimTime::ZERO,
            resident: 0,
            max_resident: 0,
        })
        .collect();
    let mut parts: Vec<Vec<PartState>> = jobs
        .iter()
        .map(|job| {
            (0..job.tree.len())
                .map(|_| PartState {
                    received: 0,
                    last_recv: SimTime::ZERO,
                    host_done: None,
                    copies_left: vec![0; job.packets as usize],
                    conv_child: 0,
                    conv_pending: 0,
                })
                .collect()
        })
        .collect();

    let mut channel_free = vec![SimTime::ZERO; net.num_channels() as usize];
    let mut q: EventQueue<Ev> = EventQueue::new();
    let mut channel_wait = 0.0f64;
    let mut blocked = vec![0u64; jobs.len()];
    let mut waits = vec![0.0f64; jobs.len()];
    let mut sends = vec![0u64; jobs.len()];
    let mut trace: Vec<TraceRecord> = Vec::new();
    let personalized: Vec<bool> = jobs
        .iter()
        .map(|job| matches!(job.payload, JobPayload::Personalized { .. }))
        .collect();

    // Kick off every job.
    for (j, job) in jobs.iter().enumerate() {
        let j32 = j as u32;
        match (job.nic, job.payload) {
            (NicKind::Smart(disc), JobPayload::Replicated) => {
                let src_host = job.binding[0];
                let kids = job.tree.root_children().to_vec();
                let hs = &mut hosts[src_host.index()];
                match disc {
                    ForwardingDiscipline::Fpfs => {
                        for p in 0..job.packets {
                            for &c in &kids {
                                hs.send_queue.push_back(SendItem {
                                    job: j32,
                                    packet: p,
                                    from: Rank::SOURCE,
                                    child: c,
                                    dest: c,
                                });
                            }
                        }
                    }
                    ForwardingDiscipline::Fcfs => {
                        for &c in &kids {
                            for p in 0..job.packets {
                                hs.send_queue.push_back(SendItem {
                                    job: j32,
                                    packet: p,
                                    from: Rank::SOURCE,
                                    child: c,
                                    dest: c,
                                });
                            }
                        }
                    }
                }
                if !kids.is_empty() {
                    hs.resident += job.packets;
                    hs.max_resident = hs.max_resident.max(hs.resident);
                    for p in 0..job.packets as usize {
                        parts[j][0].copies_left[p] = kids.len() as u32;
                    }
                }
                q.schedule(SimTime::us(job.start_us + params.t_s), Ev::TrySend(src_host));
            }
            (NicKind::Smart(_), JobPayload::Personalized { order }) => {
                let src_host = job.binding[0];
                let hs = &mut hosts[src_host.index()];
                let items = personalized_source_order(&job.tree, job.packets, order);
                let staged = items.len() as u32;
                for (dest, p) in items {
                    let child = first_hop(&job.tree, dest);
                    hs.send_queue.push_back(SendItem {
                        job: j32,
                        packet: p,
                        from: Rank::SOURCE,
                        child,
                        dest,
                    });
                }
                // The whole personalized payload is staged at the source NI.
                hs.resident += staged;
                hs.max_resident = hs.max_resident.max(hs.resident);
                q.schedule(SimTime::us(job.start_us + params.t_s), Ev::TrySend(src_host));
            }
            (NicKind::Conventional, JobPayload::Replicated) => {
                q.schedule(
                    SimTime::us(job.start_us),
                    Ev::HostReady { job: j32, at: Rank::SOURCE },
                );
            }
            (NicKind::Conventional, JobPayload::Personalized { .. }) => {
                unreachable!("validated above: personalized requires smart NI")
            }
        }
    }

    while let Some((now, ev)) = q.pop() {
        match ev {
            Ev::TrySend(h) => {
                let hs = &mut hosts[h.index()];
                if hs.send_busy {
                    continue;
                }
                let Some(item) = hs.send_queue.pop_front() else {
                    continue;
                };
                hs.send_busy = true;
                hs.in_flight = Some(item);
                let j = item.job as usize;
                let route = &routes[j][item.child.index()];
                debug_assert!(!route.is_empty());
                let t0 = match config.contention {
                    ContentionMode::Ideal => now,
                    ContentionMode::Wormhole => {
                        let free = route
                            .iter()
                            .map(|ch| channel_free[ch.index()])
                            .max()
                            .unwrap_or(SimTime::ZERO);
                        let t0 = now.max(free);
                        let hold = t0 + (params.t_send + params.t_prop);
                        for ch in route {
                            channel_free[ch.index()] = hold;
                        }
                        t0
                    }
                };
                if t0 > now {
                    channel_wait += t0 - now;
                    waits[j] += t0 - now;
                    blocked[j] += 1;
                }
                sends[j] += 1;
                if config.trace {
                    trace.push(TraceRecord {
                        t_us: t0.as_us(),
                        job: item.job,
                        kind: TraceKind::SendStart {
                            from: item.from,
                            to: item.child,
                            packet: item.packet,
                            stalled_us: t0 - now,
                        },
                    });
                }
                debug_assert_eq!(jobs[j].tree.parent(item.child), Some(item.from));
                let arrival = t0 + params.t_send + params.t_prop;
                q.schedule(
                    arrival,
                    Ev::Arrive {
                        job: item.job,
                        to: item.child,
                        packet: item.packet,
                        from: item.from,
                        dest: item.dest,
                    },
                );
                if config.timing == NiTiming::Overlapped {
                    q.schedule(t0 + params.t_send, Ev::SendRelease(h));
                }
            }
            Ev::Arrive { job, to, packet, from, dest } => {
                let h = jobs[job as usize].binding[to.index()];
                let hs = &mut hosts[h.index()];
                let done = hs.recv_free.max(now) + params.t_recv;
                hs.recv_free = done;
                q.schedule(done, Ev::RecvDone { job, at: to, packet, from, dest });
            }
            Ev::RecvDone { job, at: v, packet: p, from: u, dest } => {
                let j = job as usize;
                let jobd = &jobs[j];
                let u_host = jobd.binding[u.index()];
                let v_host = jobd.binding[v.index()];
                if config.timing == NiTiming::Handshake {
                    release_send_unit(&mut hosts, &mut parts, u_host, &personalized);
                    q.schedule(now, Ev::TrySend(u_host));
                }
                if jobd.nic == NicKind::Conventional {
                    let up = &mut parts[j][u.index()];
                    debug_assert!(up.conv_pending > 0);
                    up.conv_pending -= 1;
                    if up.conv_pending == 0 && up.conv_child + 1 < jobd.tree.children(u).len() {
                        up.conv_child += 1;
                        let idx = up.conv_child;
                        q.schedule(
                            now + params.t_s,
                            Ev::SendPrepared { job, at: u, child_idx: idx },
                        );
                    }
                }
                if config.trace {
                    trace.push(TraceRecord {
                        t_us: now.as_us(),
                        job,
                        kind: TraceKind::RecvDone { at: v, packet: p },
                    });
                }
                if personalized[j] {
                    if dest == v {
                        let vp = &mut parts[j][v.index()];
                        vp.received += 1;
                        vp.last_recv = now;
                        if vp.received == jobd.packets {
                            let done = now + params.t_r;
                            vp.host_done = Some(done);
                            if config.trace {
                                trace.push(TraceRecord {
                                    t_us: done.as_us(),
                                    job,
                                    kind: TraceKind::HostDone { rank: v },
                                });
                            }
                        }
                    } else {
                        // Relay the packet one hop toward its destination.
                        let next = next_hop_rank(&jobd.tree, v, dest);
                        let hs = &mut hosts[v_host.index()];
                        hs.resident += 1;
                        hs.max_resident = hs.max_resident.max(hs.resident);
                        hs.send_queue.push_back(SendItem {
                            job,
                            packet: p,
                            from: v,
                            child: next,
                            dest,
                        });
                        q.schedule(now, Ev::TrySend(v_host));
                    }
                    continue;
                }
                let kids = jobd.tree.children(v);
                let has_children = !kids.is_empty();
                {
                    let vp = &mut parts[j][v.index()];
                    vp.received += 1;
                    vp.last_recv = now;
                }
                if let NicKind::Smart(disc) = jobd.nic {
                    if has_children {
                        parts[j][v.index()].copies_left[p as usize] = kids.len() as u32;
                        let received = parts[j][v.index()].received;
                        let hs = &mut hosts[v_host.index()];
                        hs.resident += 1;
                        hs.max_resident = hs.max_resident.max(hs.resident);
                        match disc {
                            ForwardingDiscipline::Fpfs => {
                                for &c in kids {
                                    hs.send_queue.push_back(SendItem {
                                        job,
                                        packet: p,
                                        from: v,
                                        child: c,
                                        dest: c,
                                    });
                                }
                            }
                            ForwardingDiscipline::Fcfs => {
                                hs.send_queue.push_back(SendItem {
                                    job,
                                    packet: p,
                                    from: v,
                                    child: kids[0],
                                    dest: kids[0],
                                });
                                if received == jobd.packets {
                                    for &c in &kids[1..] {
                                        for pp in 0..jobd.packets {
                                            hs.send_queue.push_back(SendItem {
                                                job,
                                                packet: pp,
                                                from: v,
                                                child: c,
                                                dest: c,
                                            });
                                        }
                                    }
                                }
                            }
                        }
                        q.schedule(now, Ev::TrySend(v_host));
                    }
                }
                if parts[j][v.index()].received == jobd.packets {
                    let done = now + params.t_r;
                    parts[j][v.index()].host_done = Some(done);
                    if config.trace {
                        trace.push(TraceRecord {
                            t_us: done.as_us(),
                            job,
                            kind: TraceKind::HostDone { rank: v },
                        });
                    }
                    if jobd.nic == NicKind::Conventional && has_children {
                        q.schedule(done, Ev::HostReady { job, at: v });
                    }
                }
            }
            Ev::HostReady { job, at: u } => {
                let j = job as usize;
                if jobs[j].tree.children(u).is_empty() {
                    continue;
                }
                parts[j][u.index()].conv_child = 0;
                q.schedule(
                    now + params.t_s,
                    Ev::SendPrepared { job, at: u, child_idx: 0 },
                );
            }
            Ev::SendPrepared { job, at: u, child_idx } => {
                let j = job as usize;
                let c = jobs[j].tree.children(u)[child_idx];
                let h = jobs[j].binding[u.index()];
                for p in 0..jobs[j].packets {
                    hosts[h.index()].send_queue.push_back(SendItem {
                        job,
                        packet: p,
                        from: u,
                        child: c,
                        dest: c,
                    });
                }
                parts[j][u.index()].conv_pending = jobs[j].packets;
                q.schedule(now, Ev::TrySend(h));
            }
            Ev::SendRelease(h) => {
                release_send_unit(&mut hosts, &mut parts, h, &personalized);
                q.schedule(now, Ev::TrySend(h));
            }
        }
    }

    // Collect per-job outcomes.
    let mut outcomes = Vec::with_capacity(jobs.len());
    let mut makespan = 0.0f64;
    for (j, job) in jobs.iter().enumerate() {
        let n = job.tree.len();
        let mut host_done = vec![0.0f64; n];
        let mut last_recv = vec![0.0f64; n];
        let mut latency = if n == 1 { params.t_s + params.t_r } else { 0.0 };
        for r in 1..n {
            let p = &parts[j][r];
            let done = p
                .host_done
                .unwrap_or_else(|| panic!("job {j}: rank {r} never completed"));
            host_done[r] = done.as_us() - job.start_us;
            last_recv[r] = p.last_recv.as_us() - job.start_us;
            latency = latency.max(host_done[r]);
        }
        makespan = makespan.max(latency + job.start_us);
        let max_ni_buffer = job
            .binding
            .iter()
            .map(|h| hosts[h.index()].max_resident)
            .collect();
        outcomes.push(MulticastOutcome {
            latency_us: latency,
            host_done_us: host_done,
            ni_last_recv_us: last_recv,
            channel_wait_us: waits[j],
            blocked_sends: blocked[j],
            total_sends: sends[j],
            max_ni_buffer,
            events: 0, // aggregate reported at workload level
        });
    }

    // Some records carry future timestamps (e.g. HostDone at now + t_r), so
    // order the timeline before handing it out; the sort is stable, keeping
    // emission order among simultaneous records.
    trace.sort_by(|a, b| a.t_us.partial_cmp(&b.t_us).expect("trace times are never NaN"));
    WorkloadOutcome {
        jobs: outcomes,
        makespan_us: makespan,
        channel_wait_us: channel_wait,
        max_host_buffer: hosts.iter().map(|h| h.max_resident).collect(),
        events: q.processed(),
        trace,
    }
}

/// Frees the host's send unit after its in-flight transmission completed,
/// updating the forwarding-buffer accounting: personalized packets occupy
/// one slot per relay; replicated packets stay resident until their last
/// copy is out (tracked by the sending participant's counter).
fn release_send_unit(
    hosts: &mut [HostState],
    parts: &mut [Vec<PartState>],
    h: HostId,
    personalized: &[bool],
) {
    let hs = &mut hosts[h.index()];
    let item = hs.in_flight.take().expect("release without in-flight send");
    hs.send_busy = false;
    if personalized[item.job as usize] {
        if hs.resident > 0 {
            hs.resident -= 1;
        }
        return;
    }
    let counter = &mut parts[item.job as usize][item.from.index()].copies_left[item.packet as usize];
    if *counter > 0 {
        *counter -= 1;
        if *counter == 0 && hs.resident > 0 {
            hs.resident -= 1;
        }
    }
}

/// The source-order of a personalized payload: per root-child blocks (in
/// child order), each block ordered by the policy.
fn personalized_source_order(
    tree: &MulticastTree,
    m: u32,
    order: PersonalizedOrder,
) -> Vec<(Rank, u32)> {
    let mut depths = vec![0u32; tree.len()];
    for r in tree.dfs_preorder() {
        if let Some(p) = tree.parent(r) {
            depths[r.index()] = depths[p.index()] + 1;
        }
    }
    let mut items = Vec::new();
    for &c in tree.root_children() {
        // Preorder of c's subtree.
        let mut dests = Vec::new();
        let mut stack = vec![c];
        while let Some(r) = stack.pop() {
            dests.push(r);
            for &k in tree.children(r).iter().rev() {
                stack.push(k);
            }
        }
        if order == PersonalizedOrder::DeepestFirst {
            dests.sort_by_key(|&r| std::cmp::Reverse(depths[r.index()]));
        }
        for d in dests {
            for p in 0..m {
                items.push((d, p));
            }
        }
    }
    items
}

/// The root child whose subtree contains `dest`.
fn first_hop(tree: &MulticastTree, dest: Rank) -> Rank {
    next_hop_rank(tree, Rank::SOURCE, dest)
}

/// The child of `at` on the tree path towards `dest`.
///
/// # Panics
///
/// Panics if `dest` is not in `at`'s strict subtree.
fn next_hop_rank(tree: &MulticastTree, at: Rank, dest: Rank) -> Rank {
    let mut cur = dest;
    loop {
        let parent = tree
            .parent(cur)
            .unwrap_or_else(|| panic!("{dest} is not below {at}"));
        if parent == at {
            return cur;
        }
        cur = parent;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::run_multicast;
    use crate::sim::RunConfig;
    use optimcast_core::builders::{binomial_tree, kbinomial_tree};
    use optimcast_topology::irregular::{IrregularConfig, IrregularNetwork};

    fn params() -> SystemParams {
        SystemParams::paper_1997()
    }

    fn net(seed: u64) -> IrregularNetwork {
        IrregularNetwork::generate(IrregularConfig::default(), seed)
    }

    fn job(tree: optimcast_core::tree::MulticastTree, hosts: Vec<u32>, m: u32) -> MulticastJob {
        MulticastJob::fpfs(tree, hosts.into_iter().map(HostId).collect(), m)
    }

    /// A single-job workload reproduces run_multicast exactly (they share
    /// the engine, but the wrapper path must not perturb anything).
    #[test]
    fn single_job_equals_run_multicast() {
        let n = net(1);
        let tree = kbinomial_tree(32, 2);
        let binding: Vec<HostId> = (0..32).map(HostId).collect();
        let direct = run_multicast(&n, &tree, &binding, 6, &params(), RunConfig::default());
        let wl = run_workload(
            &n,
            &[job(tree, (0..32).collect(), 6)],
            &params(),
            WorkloadConfig::default(),
        );
        assert_eq!(wl.jobs[0].latency_us, direct.latency_us);
        assert_eq!(wl.jobs[0].host_done_us, direct.host_done_us);
        assert_eq!(wl.makespan_us, direct.latency_us);
    }

    /// Disjoint jobs on disjoint hosts with ideal contention do not affect
    /// each other at all.
    #[test]
    fn disjoint_jobs_are_independent() {
        let n = net(2);
        let t1 = binomial_tree(16);
        let t2 = kbinomial_tree(16, 2);
        let solo1 = run_multicast(
            &n,
            &t1,
            &(0..16).map(HostId).collect::<Vec<_>>(),
            4,
            &params(),
            RunConfig {
                contention: ContentionMode::Ideal,
                ..RunConfig::default()
            },
        );
        let solo2 = run_multicast(
            &n,
            &t2,
            &(16..32).map(HostId).collect::<Vec<_>>(),
            4,
            &params(),
            RunConfig {
                contention: ContentionMode::Ideal,
                ..RunConfig::default()
            },
        );
        let wl = run_workload(
            &n,
            &[
                job(t1, (0..16).collect(), 4),
                job(t2, (16..32).collect(), 4),
            ],
            &params(),
            WorkloadConfig {
                contention: ContentionMode::Ideal,
                timing: NiTiming::Handshake,
                ..WorkloadConfig::default()
            },
        );
        assert_eq!(wl.jobs[0].latency_us, solo1.latency_us);
        assert_eq!(wl.jobs[1].latency_us, solo2.latency_us);
    }

    /// Node contention: two jobs sharing every host slow each other down
    /// relative to running alone (the ICPP'96 companion problem).
    #[test]
    fn overlapping_jobs_interfere() {
        let n = net(3);
        let tree = binomial_tree(32);
        let binding: Vec<u32> = (0..32).collect();
        let rev: Vec<u32> = (0..32).rev().collect();
        let m = 8;
        let solo = run_multicast(
            &n,
            &tree,
            &binding.iter().map(|&h| HostId(h)).collect::<Vec<_>>(),
            m,
            &params(),
            RunConfig::default(),
        );
        let wl = run_workload(
            &n,
            &[
                job(tree.clone(), binding, m),
                job(tree.clone(), rev, m),
            ],
            &params(),
            WorkloadConfig::default(),
        );
        for out in &wl.jobs {
            assert!(
                out.latency_us >= solo.latency_us - 1e-9,
                "shared-host job faster than solo?"
            );
        }
        assert!(
            wl.jobs.iter().any(|o| o.latency_us > solo.latency_us + 1e-9),
            "expected at least one job to be slowed by node contention"
        );
    }

    /// Staggered start times shift completions accordingly.
    #[test]
    fn start_time_offsets_respected() {
        let n = net(4);
        let tree = binomial_tree(8);
        let mut j2 = job(tree.clone(), (8..16).collect(), 2);
        j2.start_us = 1000.0;
        let wl = run_workload(
            &n,
            &[job(tree, (0..8).collect(), 2), j2],
            &params(),
            WorkloadConfig {
                contention: ContentionMode::Ideal,
                timing: NiTiming::Handshake,
                ..WorkloadConfig::default()
            },
        );
        // Per-job latency is measured from the job's own start.
        assert!((wl.jobs[0].latency_us - wl.jobs[1].latency_us).abs() < 1e-9);
        assert!((wl.makespan_us - (1000.0 + wl.jobs[1].latency_us)).abs() < 1e-9);
    }

    /// Aggregate host buffers cover all jobs a host serves.
    #[test]
    fn shared_host_buffers_aggregate() {
        let n = net(5);
        let tree = binomial_tree(16);
        let m = 8;
        let wl = run_workload(
            &n,
            &[
                job(tree.clone(), (0..16).collect(), m),
                job(tree.clone(), (0..16).collect(), m),
            ],
            &params(),
            WorkloadConfig::default(),
        );
        // The shared source NI stages both messages.
        assert!(wl.max_host_buffer[0] >= m);
        // Workload-level determinism.
        let wl2 = run_workload(
            &n,
            &[
                job(tree.clone(), (0..16).collect(), m),
                job(tree, (0..16).collect(), m),
            ],
            &params(),
            WorkloadConfig::default(),
        );
        assert_eq!(wl, wl2);
    }

    /// Mixed NI kinds in one workload.
    #[test]
    fn mixed_nic_kinds() {
        let n = net(6);
        let tree = binomial_tree(8);
        let mut conv = job(tree.clone(), (8..16).collect(), 3);
        conv.nic = NicKind::Conventional;
        let wl = run_workload(
            &n,
            &[job(tree, (0..8).collect(), 3), conv],
            &params(),
            WorkloadConfig {
                contention: ContentionMode::Ideal,
                timing: NiTiming::Handshake,
                ..WorkloadConfig::default()
            },
        );
        assert!(wl.jobs[1].latency_us > wl.jobs[0].latency_us);
    }

    /// Traces record every send, receive, and completion in time order.
    #[test]
    fn trace_timeline_is_complete_and_ordered() {
        let n = net(7);
        let tree = binomial_tree(8);
        let m = 3;
        let wl = run_workload(
            &n,
            &[job(tree, (0..8).collect(), m)],
            &params(),
            WorkloadConfig {
                trace: true,
                ..WorkloadConfig::default()
            },
        );
        let sends = wl
            .trace
            .iter()
            .filter(|r| matches!(r.kind, TraceKind::SendStart { .. }))
            .count();
        let recvs = wl
            .trace
            .iter()
            .filter(|r| matches!(r.kind, TraceKind::RecvDone { .. }))
            .count();
        let dones = wl
            .trace
            .iter()
            .filter(|r| matches!(r.kind, TraceKind::HostDone { .. }))
            .count();
        assert_eq!(sends, 7 * m as usize);
        assert_eq!(recvs, 7 * m as usize);
        assert_eq!(dones, 7);
        for w in wl.trace.windows(2) {
            assert!(w[1].t_us >= w[0].t_us - 1e-9, "trace out of order");
        }
        // Untraced runs stay lean.
        let quiet = run_workload(
            &n,
            &[job(binomial_tree(8), (0..8).collect(), m)],
            &params(),
            WorkloadConfig::default(),
        );
        assert!(quiet.trace.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn empty_workload_panics() {
        run_workload(
            &net(0),
            &[],
            &params(),
            WorkloadConfig::default(),
        );
    }
}

#[cfg(test)]
mod scatter_tests {
    use super::*;
    
    use optimcast_core::builders::{binomial_tree, kbinomial_tree, linear_tree};
    use optimcast_core::tree::Rank;
    use optimcast_topology::irregular::{IrregularConfig, IrregularNetwork};

    fn params() -> SystemParams {
        SystemParams::paper_1997()
    }

    fn crossbar(hosts: u32) -> IrregularNetwork {
        IrregularNetwork::generate(
            IrregularConfig {
                switches: 1,
                ports: hosts,
                hosts,
            },
            0,
        )
    }

    fn ideal() -> WorkloadConfig {
        WorkloadConfig {
            contention: ContentionMode::Ideal,
            timing: NiTiming::Handshake,
            trace: false,
        }
    }

    fn run_scatter(
        net: &IrregularNetwork,
        tree: optimcast_core::tree::MulticastTree,
        m: u32,
        order: PersonalizedOrder,
        cfg: WorkloadConfig,
    ) -> MulticastOutcome {
        let n = tree.len() as u32;
        let binding: Vec<HostId> = (0..n).map(HostId).collect();
        run_workload(
            net,
            &[MulticastJob::scatter(tree, binding, m, order)],
            &params(),
            cfg,
        )
        .jobs
        .swap_remove(0)
    }

    /// Chain scatter with deepest-first injection hits the source bound:
    /// latency = t_s + m(n-1) steps * t_step + t_r, matching the analytic
    /// scatter schedule exactly.
    #[test]
    fn chain_scatter_matches_source_bound() {
        let net = crossbar(9);
        for m in [1u32, 2, 4] {
            let out = run_scatter(
                &net,
                linear_tree(9),
                m,
                PersonalizedOrder::DeepestFirst,
                ideal(),
            );
            let steps = f64::from(m * 8);
            let expect = 12.5 + steps * 5.0 + 12.5;
            assert!(
                (out.latency_us - expect).abs() < 1e-6,
                "m={m}: {} vs {expect}",
                out.latency_us
            );
        }
    }

    /// Every rank receives exactly its m packets; transit packets do not
    /// count towards completion.
    #[test]
    fn scatter_delivery_is_personalized() {
        let net = crossbar(16);
        let out = run_scatter(
            &net,
            binomial_tree(16),
            3,
            PersonalizedOrder::OwnFirst,
            ideal(),
        );
        for r in 1..16 {
            assert!(out.host_done_us[r] > 0.0, "rank {r} incomplete");
        }
        // Total transmissions = sum over dests of depth * m.
        let tree = binomial_tree(16);
        let mut depth = [0u32; 16];
        for r in tree.dfs_preorder() {
            if let Some(p) = tree.parent(r) {
                depth[r.index()] = depth[p.index()] + 1;
            }
        }
        let expect: u64 = depth.iter().map(|&d| u64::from(d) * 3).sum();
        assert_eq!(out.total_sends, expect);
    }

    /// OwnFirst scatter simulation equals the analytic scatter schedule on
    /// a crossbar (FIFO relay preserves the per-child preorder the analytic
    /// scheduler uses).
    #[test]
    fn own_first_matches_analytic_schedule() {
        // The analytic scatter scheduler lives in optimcast-collectives,
        // which depends on this crate; to avoid a cycle the equality test
        // lives there (`collectives::scatter` integration). Here: the step
        // identity for a star tree, computable by hand — the source sends
        // m(n-1) packets, one per step, and the i-th enqueued packet lands
        // at step i.
        let net = crossbar(6);
        let mut star = optimcast_core::tree::MulticastTree::with_capacity(6);
        for i in 1..6 {
            star.attach(Rank::SOURCE, Rank(i));
        }
        assert_eq!(star.depth(), 1);
        let m = 2;
        let out = run_scatter(&net, star, m, PersonalizedOrder::OwnFirst, ideal());
        let expect = 12.5 + f64::from(m * 5) * 5.0 + 12.5;
        assert!((out.latency_us - expect).abs() < 1e-6);
    }

    /// Scatter under wormhole contention never beats the ideal run.
    #[test]
    fn scatter_wormhole_no_faster() {
        let net = IrregularNetwork::generate(IrregularConfig::default(), 12);
        let tree = kbinomial_tree(32, 2);
        let binding: Vec<HostId> = (0..32).map(HostId).collect();
        let job = |order| MulticastJob::scatter(tree.clone(), binding.clone(), 4, order);
        for order in [PersonalizedOrder::OwnFirst, PersonalizedOrder::DeepestFirst] {
            let ideal_out = run_workload(&net, &[job(order)], &params(), ideal());
            let worm = run_workload(
                &net,
                &[job(order)],
                &params(),
                WorkloadConfig::default(),
            );
            assert!(
                worm.jobs[0].latency_us >= ideal_out.jobs[0].latency_us - 1e-9,
                "{order:?}"
            );
        }
    }

    /// Mixed workload: a multicast and a scatter share the network.
    #[test]
    fn multicast_and_scatter_coexist() {
        let net = IrregularNetwork::generate(IrregularConfig::default(), 13);
        let mc = MulticastJob::fpfs(
            binomial_tree(16),
            (0..16).map(HostId).collect(),
            4,
        );
        let sc = MulticastJob::scatter(
            linear_tree(16),
            (16..32).map(HostId).collect(),
            4,
            PersonalizedOrder::DeepestFirst,
        );
        let wl = run_workload(&net, &[mc, sc], &params(), WorkloadConfig::default());
        assert!(wl.jobs[0].latency_us > 0.0);
        assert!(wl.jobs[1].latency_us > 0.0);
        assert_eq!(wl.jobs.len(), 2);
    }

    /// The source NI buffer holds the full personalized payload; relays
    /// hold single packets briefly.
    #[test]
    fn scatter_buffer_accounting() {
        let net = crossbar(8);
        let tree = linear_tree(8);
        let m = 2;
        let n = tree.len() as u32;
        let binding: Vec<HostId> = (0..n).map(HostId).collect();
        let wl = run_workload(
            &net,
            &[MulticastJob::scatter(
                tree,
                binding,
                m,
                PersonalizedOrder::DeepestFirst,
            )],
            &params(),
            ideal(),
        );
        assert_eq!(wl.max_host_buffer[0], m * 7, "source stages everything");
        for h in 1..7 {
            assert!(
                wl.max_host_buffer[h] <= 2,
                "relay {h} held {}",
                wl.max_host_buffer[h]
            );
        }
    }

    #[test]
    #[should_panic(expected = "personalized payloads require smart NI")]
    fn conventional_scatter_rejected() {
        let net = crossbar(4);
        let mut job = MulticastJob::scatter(
            linear_tree(4),
            (0..4).map(HostId).collect(),
            1,
            PersonalizedOrder::OwnFirst,
        );
        job.nic = NicKind::Conventional;
        run_workload(&net, &[job], &params(), WorkloadConfig::default());
    }
}
